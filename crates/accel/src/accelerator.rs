//! The [`Accelerator`] abstraction: a hierarchical design whose arithmetic
//! operations ("slots") can be replaced by approximate circuits — the
//! "hierarchical hardware as well as software models" the methodology
//! requires from the user (paper Section 2.1).

use autoax_circuit::approx::Behavior;
use autoax_circuit::sim::exhaustive_outputs;
use autoax_circuit::{CircuitEntry, Netlist, OpSignature};
use autoax_image::ssim::ssim;
use autoax_image::GrayImage;
use std::sync::Arc;

/// One replaceable operation of an accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSlot {
    /// Slot name as used in the paper (e.g. `add1`, `sub`).
    pub name: String,
    /// The operation class the slot draws implementations from.
    pub signature: OpSignature,
}

impl OpSlot {
    /// Creates a slot.
    pub fn new(name: impl Into<String>, signature: OpSignature) -> Self {
        OpSlot {
            name: name.into(),
            signature,
        }
    }
}

/// A compiled, fast-callable implementation of one slot.
///
/// Lookup tables are built for every non-exact circuit whose operand space
/// fits in 2^16 assignments (and for netlist mutants up to 2^20, where
/// scalar simulation would otherwise dominate the software model);
/// everything else evaluates through the circuit's functional model.
#[derive(Debug, Clone)]
pub enum CompiledOp {
    /// The accurate operation (native integer arithmetic).
    Exact(OpSignature),
    /// Tabulated circuit: `table[b << wa | a]`.
    Lut {
        /// Width of operand a (table index stride).
        wa: u32,
        /// Output table, one entry per operand assignment.
        table: Arc<Vec<u16>>,
    },
    /// Direct functional evaluation.
    Func(Behavior),
}

impl CompiledOp {
    /// Compiles a library circuit into its fastest evaluable form.
    pub fn compile(entry: &CircuitEntry) -> CompiledOp {
        let sig = entry.signature();
        if entry.is_exact() {
            return CompiledOp::Exact(sig);
        }
        let bits = sig.input_bits();
        let lut_worthwhile = match &entry.behavior {
            Behavior::Raw { .. } => bits <= 20,
            _ => bits <= 16,
        };
        if lut_worthwhile {
            debug_assert!(sig.output_width() <= 16, "LUT output must fit u16");
            let table = match &entry.behavior {
                Behavior::Raw { netlist, .. } => exhaustive_outputs(netlist)
                    .into_iter()
                    .map(|v| v as u16)
                    .collect(),
                other => {
                    let wa = sig.width_a as u32;
                    let total = 1usize << bits;
                    let mut t = Vec::with_capacity(total);
                    for v in 0..total as u64 {
                        let a = v & autoax_circuit::util::mask(wa);
                        let b = v >> wa;
                        t.push(other.eval(a, b) as u16);
                    }
                    t
                }
            };
            CompiledOp::Lut {
                wa: sig.width_a as u32,
                table: Arc::new(table),
            }
        } else {
            CompiledOp::Func(entry.behavior.clone())
        }
    }

    /// Evaluates the operation.
    #[inline]
    pub fn eval(&self, a: u64, b: u64) -> u64 {
        match self {
            CompiledOp::Exact(sig) => sig.exact(a, b),
            CompiledOp::Lut { wa, table } => table[((b << wa) | a) as usize] as u64,
            CompiledOp::Func(b_) => b_.eval(a, b),
        }
    }
}

/// The per-slot implementations for one configuration.
#[derive(Debug, Clone)]
pub struct OpSet {
    ops: Vec<CompiledOp>,
}

impl OpSet {
    /// Builds from pre-compiled ops (must match the accelerator's slots).
    pub fn new(ops: Vec<CompiledOp>) -> Self {
        OpSet { ops }
    }

    /// The all-exact configuration for an accelerator.
    pub fn exact(accel: &dyn Accelerator) -> Self {
        OpSet {
            ops: accel
                .slots()
                .iter()
                .map(|s| CompiledOp::Exact(s.signature))
                .collect(),
        }
    }

    /// Compiles a configuration given one library entry per slot.
    ///
    /// # Panics
    /// Panics if an entry's signature does not match its slot.
    pub fn from_entries(accel: &dyn Accelerator, entries: &[&CircuitEntry]) -> Self {
        assert_eq!(entries.len(), accel.slots().len(), "one entry per slot");
        for (slot, e) in accel.slots().iter().zip(entries.iter()) {
            assert_eq!(
                slot.signature,
                e.signature(),
                "slot {} expects {}, got {}",
                slot.name,
                slot.signature,
                e.signature()
            );
        }
        OpSet {
            ops: entries.iter().map(|e| CompiledOp::compile(e)).collect(),
        }
    }

    /// Number of slots covered.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no ops are present.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluates slot `i`.
    #[inline]
    pub fn apply(&self, slot: usize, a: u64, b: u64) -> u64 {
        self.ops[slot].eval(a, b)
    }
}

/// Observer invoked by the software model on every operation execution.
///
/// The profiler uses this to collect operand PMFs; QoR evaluation passes
/// [`NoRecord`].
pub trait OpObserver {
    /// Called with the slot index and the operand pair before evaluation.
    fn record(&mut self, slot: usize, a: u64, b: u64);
}

/// An [`OpObserver`] that does nothing (zero-cost in the hot path).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoRecord;

impl OpObserver for NoRecord {
    #[inline]
    fn record(&mut self, _slot: usize, _a: u64, _b: u64) {}
}

/// A hierarchical accelerator: software model + hardware netlist over a
/// set of replaceable operation slots.
///
/// All three paper accelerators consume a 3×3 pixel neighbourhood per
/// output pixel. `mode` selects among behavioural variants of the same
/// hardware — the generic Gaussian filter evaluates one mode per kernel
/// coefficient set; the other accelerators have a single mode.
pub trait Accelerator: Send + Sync {
    /// Accelerator name as used in the paper.
    fn name(&self) -> &str;

    /// The replaceable operation slots, in evaluation order.
    fn slots(&self) -> &[OpSlot];

    /// Number of behavioural modes (kernel sets); defaults to 1.
    fn mode_count(&self) -> usize {
        1
    }

    /// Computes one output pixel from the 3×3 neighbourhood
    /// (row-major: `n[3*y + x]`) using `ops`, reporting every operand pair
    /// to `obs`.
    fn kernel(&self, mode: usize, n: &[u8; 9], ops: &OpSet, obs: &mut dyn OpObserver) -> u8;

    /// Builds the flat hardware netlist with the given component netlists
    /// (one per slot, in slot order).
    fn build_netlist(&self, impls: &[Netlist]) -> Netlist;

    /// Runs the software model over a whole image.
    fn run(&self, img: &GrayImage, ops: &OpSet, mode: usize) -> GrayImage {
        let mut out = GrayImage::new(img.width(), img.height());
        let mut obs = NoRecord;
        for y in 0..img.height() as isize {
            for x in 0..img.width() as isize {
                let mut n = [0u8; 9];
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        n[(3 * (dy + 1) + dx + 1) as usize] = img.get_clamped(x + dx, y + dy);
                    }
                }
                let v = self.kernel(mode, &n, ops, &mut obs);
                out.set(x as usize, y as usize, v);
            }
        }
        out
    }

    /// Golden outputs: the software model with all-exact operations, for
    /// every mode.
    fn run_exact(&self, img: &GrayImage) -> Vec<GrayImage> {
        let exact = OpSet::exact_slots(self.slots());
        (0..self.mode_count())
            .map(|m| self.run(img, &exact, m))
            .collect()
    }

    /// Quality of result: mean SSIM of the approximate outputs against the
    /// exact outputs over all images and modes (the paper's QoR measure;
    /// for the generic GF this is the "average SSIM" over 50 kernels).
    ///
    /// Deliberately sequential: on the hot path this runs *under* the
    /// parallel `evaluate_batch` (one task per configuration), so nesting
    /// another fan-out here would oversubscribe the workers.
    fn qor(&self, images: &[GrayImage], golden: &[Vec<GrayImage>], ops: &OpSet) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (img, gold) in images.iter().zip(golden.iter()) {
            for (mode, g) in gold.iter().enumerate() {
                sum += ssim(&self.run(img, ops, mode), g);
                n += 1;
            }
        }
        assert!(n > 0, "qor needs at least one image and mode");
        sum / n as f64
    }

    /// Precomputes the golden outputs for [`Accelerator::qor`], one
    /// parallel task per image (coarse-grained: a task renders every mode
    /// of a whole image).
    fn golden(&self, images: &[GrayImage]) -> Vec<Vec<GrayImage>> {
        autoax_exec::par_map_coarse(images, |img| self.run_exact(img))
    }
}

impl OpSet {
    /// The all-exact op set for a slot list (free function form used by
    /// trait default methods).
    pub fn exact_slots(slots: &[OpSlot]) -> Self {
        OpSet {
            ops: slots
                .iter()
                .map(|s| CompiledOp::Exact(s.signature))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_circuit::charlib::{build_class, LibraryConfig};

    #[test]
    fn compile_exact_entry_is_native() {
        let cfg = LibraryConfig::tiny();
        let entries = build_class(OpSignature::ADD8, 5, &cfg, 1);
        let op = CompiledOp::compile(&entries[0]);
        assert!(matches!(op, CompiledOp::Exact(_)));
        assert_eq!(op.eval(200, 100), 300);
    }

    #[test]
    fn compiled_lut_matches_behavior() {
        let cfg = LibraryConfig::tiny();
        let entries = build_class(OpSignature::ADD8, 20, &cfg, 2);
        for e in &entries[1..] {
            let op = CompiledOp::compile(e);
            for (a, b) in autoax_circuit::util::stimulus_pairs(8, 8, 200, 3) {
                assert_eq!(op.eval(a, b), e.eval(a, b), "{}", e.label);
            }
        }
    }

    #[test]
    fn sixteen_bit_entries_stay_functional() {
        let cfg = LibraryConfig::tiny();
        let entries = build_class(OpSignature::ADD16, 10, &cfg, 3);
        for e in entries.iter().filter(|e| !e.is_exact()) {
            let op = CompiledOp::compile(e);
            assert!(
                matches!(op, CompiledOp::Func(_)),
                "{} should not be tabulated",
                e.label
            );
        }
    }
}
