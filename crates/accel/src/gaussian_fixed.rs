//! The fixed-coefficient Gaussian filter (paper Fig. 2b).
//!
//! The σ = 2 kernel is quantized to `{corner: 26, edge: 30, center: 32}`
//! with coefficient sum 256 ([`crate::kernels::fixed_gf_kernel`]); the
//! constant multiplications are realized as shift-add networks
//! ([`crate::mcm::fixed_gf_plans`]). Eleven replaceable operations
//! (Table 1): four 8-bit adders (symmetric pixel pairs), two 9-bit adders
//! (corner/edge sums), four 16-bit adders and one 16-bit subtractor (MCM +
//! product summing).
//!
//! ```text
//! s1 = add8(p00, p02)   s2 = add8(p20, p22)   c = add9(s1, s2)   // corners
//! s3 = add8(p01, p21)   s4 = add8(p10, p12)   e = add9(s3, s4)   // edges
//! t1 = add16(c<<4, c<<3)        // 24c
//! t2 = add16(t1, c<<1)          // 26c
//! t3 = sub16(e<<5, e<<1)        // 30e
//! t4 = add16(t2, t3)            // 26c + 30e
//! t5 = add16(t4, m<<5)          // + 32m
//! out = t5 >> 8
//! ```

use crate::accelerator::{Accelerator, OpObserver, OpSet, OpSlot};
use autoax_circuit::netlist::{Bus, NetId, Netlist};
use autoax_circuit::OpSignature;

/// The fixed Gaussian filter accelerator.
#[derive(Debug, Clone)]
pub struct FixedGaussian {
    slots: Vec<OpSlot>,
}

impl FixedGaussian {
    /// Creates the accelerator with the paper's slot inventory.
    pub fn new() -> Self {
        FixedGaussian {
            slots: vec![
                OpSlot::new("s1", OpSignature::ADD8),
                OpSlot::new("s2", OpSignature::ADD8),
                OpSlot::new("corners", OpSignature::ADD9),
                OpSlot::new("s3", OpSignature::ADD8),
                OpSlot::new("s4", OpSignature::ADD8),
                OpSlot::new("edges", OpSignature::ADD9),
                OpSlot::new("t1", OpSignature::ADD16),
                OpSlot::new("t2", OpSignature::ADD16),
                OpSlot::new("t3", OpSignature::SUB16),
                OpSlot::new("t4", OpSignature::ADD16),
                OpSlot::new("t5", OpSignature::ADD16),
            ],
        }
    }

    /// Golden integer reference: `(26·corners + 30·edges + 32·center) >> 8`.
    pub fn reference_pixel(n: &[u8; 9]) -> u8 {
        let corners = n[0] as u32 + n[2] as u32 + n[6] as u32 + n[8] as u32;
        let edges = n[1] as u32 + n[3] as u32 + n[5] as u32 + n[7] as u32;
        let center = n[4] as u32;
        ((26 * corners + 30 * edges + 32 * center) >> 8) as u8
    }
}

impl Default for FixedGaussian {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for FixedGaussian {
    fn name(&self) -> &str {
        "Fixed GF"
    }

    fn slots(&self) -> &[OpSlot] {
        &self.slots
    }

    fn kernel(&self, _mode: usize, n: &[u8; 9], ops: &OpSet, obs: &mut dyn OpObserver) -> u8 {
        let m16 = 0xFFFFu64;
        let (p00, p01, p02) = (n[0] as u64, n[1] as u64, n[2] as u64);
        let (p10, m, p12) = (n[3] as u64, n[4] as u64, n[5] as u64);
        let (p20, p21, p22) = (n[6] as u64, n[7] as u64, n[8] as u64);
        obs.record(0, p00, p02);
        let s1 = ops.apply(0, p00, p02) & 0x1FF;
        obs.record(1, p20, p22);
        let s2 = ops.apply(1, p20, p22) & 0x1FF;
        obs.record(2, s1, s2);
        let c = ops.apply(2, s1, s2) & 0x3FF;
        obs.record(3, p01, p21);
        let s3 = ops.apply(3, p01, p21) & 0x1FF;
        obs.record(4, p10, p12);
        let s4 = ops.apply(4, p10, p12) & 0x1FF;
        obs.record(5, s3, s4);
        let e = ops.apply(5, s3, s4) & 0x3FF;
        let (c4, c3, c1) = ((c << 4) & m16, (c << 3) & m16, (c << 1) & m16);
        obs.record(6, c4, c3);
        let t1 = ops.apply(6, c4, c3) & m16;
        obs.record(7, t1, c1);
        let t2 = ops.apply(7, t1, c1) & m16;
        let (e5, e1) = ((e << 5) & m16, (e << 1) & m16);
        obs.record(8, e5, e1);
        let t3 = ops.apply(8, e5, e1) & m16;
        obs.record(9, t2, t3);
        let t4 = ops.apply(9, t2, t3) & m16;
        let m5 = (m << 5) & m16;
        obs.record(10, t4, m5);
        let t5 = ops.apply(10, t4, m5) & m16;
        (t5 >> 8) as u8
    }

    fn build_netlist(&self, impls: &[Netlist]) -> Netlist {
        assert_eq!(impls.len(), 11, "Fixed GF has eleven operation slots");
        let mut top = Netlist::new("fixed_gf");
        let pixels: Vec<Bus> = (0..9).map(|_| top.input_bus(8)).collect();
        let zero = top.const0();
        let concat =
            |a: &Bus, b: &Bus| -> Vec<NetId> { a.iter().chain(b.iter()).copied().collect() };
        let pad16 = |bus: &Bus, zero: NetId| -> Bus {
            let mut v = bus.0.clone();
            v.truncate(16);
            while v.len() < 16 {
                v.push(zero);
            }
            Bus(v)
        };
        let s1 = Bus(top.instantiate(&impls[0], &concat(&pixels[0], &pixels[2])));
        let s2 = Bus(top.instantiate(&impls[1], &concat(&pixels[6], &pixels[8])));
        let c = Bus(top.instantiate(&impls[2], &concat(&s1, &s2)));
        let s3 = Bus(top.instantiate(&impls[3], &concat(&pixels[1], &pixels[7])));
        let s4 = Bus(top.instantiate(&impls[4], &concat(&pixels[3], &pixels[5])));
        let e = Bus(top.instantiate(&impls[5], &concat(&s3, &s4)));
        // MCM for 26·c: t1 = (c<<4) + (c<<3); t2 = t1 + (c<<1)
        let c4 = pad16(&c.shifted_left(4, zero), zero);
        let c3 = pad16(&c.shifted_left(3, zero), zero);
        let t1 = Bus(top.instantiate(&impls[6], &concat(&c4, &c3)));
        let c1 = pad16(&c.shifted_left(1, zero), zero);
        let t2 = Bus(top.instantiate(&impls[7], &concat(&pad16(&t1, zero), &c1)));
        // 30·e = (e<<5) - (e<<1)
        let e5 = pad16(&e.shifted_left(5, zero), zero);
        let e1 = pad16(&e.shifted_left(1, zero), zero);
        let t3 = Bus(top.instantiate(&impls[8], &concat(&e5, &e1)));
        let t4 = Bus(top.instantiate(&impls[9], &concat(&pad16(&t2, zero), &pad16(&t3, zero))));
        let m5 = pad16(&pixels[4].shifted_left(5, zero), zero);
        let t5 = Bus(top.instantiate(&impls[10], &concat(&pad16(&t4, zero), &m5)));
        // out = t5[15:8]
        top.push_output_bus(&t5.slice(8..16));
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_circuit::approx::Behavior;
    use autoax_image::synthetic::benchmark_suite;

    #[test]
    fn slot_inventory_matches_table1() {
        let g = FixedGaussian::new();
        let count = |sig: OpSignature| g.slots().iter().filter(|s| s.signature == sig).count();
        assert_eq!(g.slots().len(), 11);
        assert_eq!(count(OpSignature::ADD8), 4);
        assert_eq!(count(OpSignature::ADD9), 2);
        assert_eq!(count(OpSignature::ADD16), 4);
        assert_eq!(count(OpSignature::SUB16), 1);
    }

    #[test]
    fn exact_model_matches_integer_reference() {
        let g = FixedGaussian::new();
        let exact = OpSet::exact(&g);
        let mut obs = crate::accelerator::NoRecord;
        let mut st = 3u64;
        for _ in 0..500 {
            let mut n = [0u8; 9];
            for p in n.iter_mut() {
                *p = (autoax_circuit::util::splitmix64(&mut st) & 0xFF) as u8;
            }
            assert_eq!(
                g.kernel(0, &n, &exact, &mut obs),
                FixedGaussian::reference_pixel(&n),
                "{n:?}"
            );
        }
    }

    #[test]
    fn output_is_gaussian_blur() {
        // Against the float reference with the same quantized kernel the
        // exact model can only differ by the floor-vs-round of the >> 8.
        let g = FixedGaussian::new();
        let img = benchmark_suite(1, 48, 32, 11).remove(0);
        let out = g.run_exact(&img).remove(0);
        let k = 1.0 / 256.0;
        let kernel = [
            [26.0 * k, 30.0 * k, 26.0 * k],
            [30.0 * k, 32.0 * k, 30.0 * k],
            [26.0 * k, 30.0 * k, 26.0 * k],
        ];
        let reference = autoax_image::convolve::convolve3x3(&img, &kernel, 1.0);
        for (a, b) in out.data().iter().zip(reference.data().iter()) {
            assert!((*a as i32 - *b as i32).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn flat_image_is_preserved() {
        let g = FixedGaussian::new();
        let img = autoax_image::GrayImage::from_fn(16, 16, |_, _| 200);
        let out = g.run_exact(&img).remove(0);
        // sum = 200 * 256 >> 8 = 200 exactly
        assert!(out.data().iter().all(|&p| p == 200));
    }

    #[test]
    fn netlist_matches_software_model_exact() {
        let g = FixedGaussian::new();
        let impls: Vec<Netlist> = g
            .slots()
            .iter()
            .map(|sl| Behavior::exact_for(sl.signature).build_netlist())
            .collect();
        let top = g.build_netlist(&impls);
        assert_eq!(top.input_count(), 72);
        assert_eq!(top.outputs().len(), 8);
        let exact = OpSet::exact(&g);
        let mut obs = crate::accelerator::NoRecord;
        let mut st = 17u64;
        for _ in 0..150 {
            let mut n = [0u8; 9];
            for p in n.iter_mut() {
                *p = (autoax_circuit::util::splitmix64(&mut st) & 0xFF) as u8;
            }
            let words: Vec<u64> = (0..72)
                .map(|bit| {
                    if (n[bit / 8] >> (bit % 8)) & 1 != 0 {
                        u64::MAX
                    } else {
                        0
                    }
                })
                .collect();
            let outs = autoax_circuit::sim::sim_lanes(&top, &words);
            let hw = outs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, w)| acc | ((w & 1) << i));
            let sw = g.kernel(0, &n, &exact, &mut obs) as u64;
            assert_eq!(hw, sw, "{n:?}");
        }
    }

    #[test]
    fn netlist_matches_software_model_approximate() {
        use autoax_circuit::charlib::{build_class, LibraryConfig};
        let g = FixedGaussian::new();
        let cfg = LibraryConfig::tiny();
        let mut libs = std::collections::HashMap::new();
        for sig in [
            OpSignature::ADD8,
            OpSignature::ADD9,
            OpSignature::ADD16,
            OpSignature::SUB16,
        ] {
            libs.insert(sig, build_class(sig, 8, &cfg, sig.input_bits() as u64));
        }
        let entries: Vec<&autoax_circuit::CircuitEntry> = g
            .slots()
            .iter()
            .enumerate()
            .map(|(i, s)| &libs[&s.signature][2 + i % 3])
            .collect();
        let impls: Vec<Netlist> = entries.iter().map(|e| e.build_netlist()).collect();
        let top = g.build_netlist(&impls);
        let ops = OpSet::from_entries(&g, &entries);
        let mut obs = crate::accelerator::NoRecord;
        let mut st = 23u64;
        for _ in 0..100 {
            let mut n = [0u8; 9];
            for p in n.iter_mut() {
                *p = (autoax_circuit::util::splitmix64(&mut st) & 0xFF) as u8;
            }
            let words: Vec<u64> = (0..72)
                .map(|bit| {
                    if (n[bit / 8] >> (bit % 8)) & 1 != 0 {
                        u64::MAX
                    } else {
                        0
                    }
                })
                .collect();
            let outs = autoax_circuit::sim::sim_lanes(&top, &words);
            let hw = outs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, w)| acc | ((w & 1) << i));
            let sw = g.kernel(0, &n, &ops, &mut obs) as u64;
            assert_eq!(hw, sw, "{n:?}");
        }
    }
}
