//! The generic Gaussian filter: a 3×3 convolution with *runtime* kernel
//! coefficients — nine 8-bit multipliers whose products are summed by
//! eight 16-bit adders (17 operations, the paper's hardest case study).
//!
//! QoR is the average SSIM over a sweep of Gaussian kernels (paper: 50
//! kernels, σ ∈ [0.3, 0.8], × 4 images = 200 simulations); each kernel is
//! one behavioural *mode* of the same hardware.

use crate::accelerator::{Accelerator, OpObserver, OpSet, OpSlot};
use crate::kernels::{sigma_sweep_kernels, SymKernel};
use autoax_circuit::netlist::{Bus, NetId, Netlist};
use autoax_circuit::OpSignature;

/// The generic Gaussian filter accelerator.
#[derive(Debug, Clone)]
pub struct GenericGaussian {
    slots: Vec<OpSlot>,
    kernels: Vec<[u8; 9]>,
}

impl GenericGaussian {
    /// Creates the accelerator with an explicit kernel sweep.
    ///
    /// # Panics
    /// Panics if `kernels` is empty.
    pub fn new(kernels: Vec<SymKernel>) -> Self {
        assert!(!kernels.is_empty(), "at least one kernel required");
        let mut slots = Vec::with_capacity(17);
        for i in 0..9 {
            slots.push(OpSlot::new(format!("mul{i}"), OpSignature::MUL8));
        }
        for i in 0..8 {
            slots.push(OpSlot::new(format!("sum{i}"), OpSignature::ADD16));
        }
        GenericGaussian {
            slots,
            kernels: kernels.into_iter().map(SymKernel::to_array).collect(),
        }
    }

    /// The paper's configuration: 50 kernels, σ ∈ [0.3, 0.8].
    pub fn paper() -> Self {
        Self::new(sigma_sweep_kernels(50))
    }

    /// A reduced sweep for fast runs (`n` kernels over the same σ range).
    pub fn with_sweep(n: usize) -> Self {
        Self::new(sigma_sweep_kernels(n))
    }

    /// The active kernel coefficient arrays.
    pub fn kernels(&self) -> &[[u8; 9]] {
        &self.kernels
    }
}

impl Accelerator for GenericGaussian {
    fn name(&self) -> &str {
        "Generic GF"
    }

    fn slots(&self) -> &[OpSlot] {
        &self.slots
    }

    fn mode_count(&self) -> usize {
        self.kernels.len()
    }

    fn kernel(&self, mode: usize, n: &[u8; 9], ops: &OpSet, obs: &mut dyn OpObserver) -> u8 {
        let m16 = 0xFFFFu64;
        let coeffs = &self.kernels[mode];
        let mut prod = [0u64; 9];
        for i in 0..9 {
            let (a, b) = (n[i] as u64, coeffs[i] as u64);
            obs.record(i, a, b);
            prod[i] = ops.apply(i, a, b) & m16;
        }
        let apply_add = |slot: usize, a: u64, b: u64, obs: &mut dyn OpObserver| {
            obs.record(slot, a, b);
            ops.apply(slot, a, b) & m16
        };
        let s1 = apply_add(9, prod[0], prod[1], obs);
        let s2 = apply_add(10, prod[2], prod[3], obs);
        let s3 = apply_add(11, prod[4], prod[5], obs);
        let s4 = apply_add(12, prod[6], prod[7], obs);
        let s5 = apply_add(13, s1, s2, obs);
        let s6 = apply_add(14, s3, s4, obs);
        let s7 = apply_add(15, s5, s6, obs);
        let s8 = apply_add(16, s7, prod[8], obs);
        (s8 >> 8) as u8
    }

    fn build_netlist(&self, impls: &[Netlist]) -> Netlist {
        assert_eq!(impls.len(), 17, "Generic GF has seventeen operation slots");
        let mut top = Netlist::new("generic_gf");
        let pixels: Vec<Bus> = (0..9).map(|_| top.input_bus(8)).collect();
        let coeffs: Vec<Bus> = (0..9).map(|_| top.input_bus(8)).collect();
        let zero = top.const0();
        let concat =
            |a: &Bus, b: &Bus| -> Vec<NetId> { a.iter().chain(b.iter()).copied().collect() };
        let pad16 = |bus: &Bus, zero: NetId| -> Bus {
            let mut v = bus.0.clone();
            v.truncate(16);
            while v.len() < 16 {
                v.push(zero);
            }
            Bus(v)
        };
        let prods: Vec<Bus> = (0..9)
            .map(|i| Bus(top.instantiate(&impls[i], &concat(&pixels[i], &coeffs[i]))))
            .collect();
        let add = |slot: usize, a: &Bus, b: &Bus, top: &mut Netlist| -> Bus {
            let args = concat(&pad16(a, zero), &pad16(b, zero));
            Bus(top.instantiate(&impls[slot], &args))
        };
        let s1 = add(9, &prods[0], &prods[1], &mut top);
        let s2 = add(10, &prods[2], &prods[3], &mut top);
        let s3 = add(11, &prods[4], &prods[5], &mut top);
        let s4 = add(12, &prods[6], &prods[7], &mut top);
        let s5 = add(13, &s1, &s2, &mut top);
        let s6 = add(14, &s3, &s4, &mut top);
        let s7 = add(15, &s5, &s6, &mut top);
        let s8 = add(16, &s7, &prods[8], &mut top);
        top.push_output_bus(&s8.slice(8..16));
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_circuit::approx::Behavior;
    use autoax_image::synthetic::benchmark_suite;

    #[test]
    fn slot_inventory_matches_table1() {
        let g = GenericGaussian::with_sweep(3);
        let count = |sig: OpSignature| g.slots().iter().filter(|s| s.signature == sig).count();
        assert_eq!(g.slots().len(), 17);
        assert_eq!(count(OpSignature::MUL8), 9);
        assert_eq!(count(OpSignature::ADD16), 8);
    }

    #[test]
    fn paper_config_has_50_modes() {
        assert_eq!(GenericGaussian::paper().mode_count(), 50);
    }

    #[test]
    fn exact_model_matches_integer_reference() {
        let g = GenericGaussian::with_sweep(4);
        let exact = OpSet::exact(&g);
        let mut obs = crate::accelerator::NoRecord;
        let mut st = 5u64;
        for mode in 0..g.mode_count() {
            for _ in 0..100 {
                let mut n = [0u8; 9];
                for p in n.iter_mut() {
                    *p = (autoax_circuit::util::splitmix64(&mut st) & 0xFF) as u8;
                }
                let want: u32 = n
                    .iter()
                    .zip(g.kernels()[mode].iter())
                    .map(|(&p, &c)| p as u32 * c as u32)
                    .sum::<u32>()
                    >> 8;
                assert_eq!(g.kernel(mode, &n, &exact, &mut obs) as u32, want);
            }
        }
    }

    #[test]
    fn sigma_small_mode_is_nearly_identity() {
        let g = GenericGaussian::with_sweep(10);
        let img = benchmark_suite(1, 32, 24, 7).remove(0);
        // mode 0 has sigma=0.3: output ~ input (center coefficient ~252)
        let out = g.run(&img, &OpSet::exact(&g), 0);
        let ssim = autoax_image::ssim::ssim(&out, &img);
        assert!(ssim > 0.95, "sigma=0.3 should barely blur: {ssim}");
        // last mode (sigma=0.8) blurs much more
        let out8 = g.run(&img, &OpSet::exact(&g), 9);
        let ssim8 = autoax_image::ssim::ssim(&out8, &img);
        assert!(ssim8 < ssim, "sigma=0.8 must blur more");
    }

    #[test]
    fn netlist_matches_software_model() {
        let g = GenericGaussian::with_sweep(2);
        let impls: Vec<Netlist> = g
            .slots()
            .iter()
            .map(|sl| Behavior::exact_for(sl.signature).build_netlist())
            .collect();
        let top = g.build_netlist(&impls);
        assert_eq!(top.input_count(), 144);
        assert_eq!(top.outputs().len(), 8);
        let exact = OpSet::exact(&g);
        let mut obs = crate::accelerator::NoRecord;
        let mut st = 29u64;
        for mode in 0..2 {
            for _ in 0..60 {
                let mut n = [0u8; 9];
                for p in n.iter_mut() {
                    *p = (autoax_circuit::util::splitmix64(&mut st) & 0xFF) as u8;
                }
                let coeffs = g.kernels()[mode];
                let mut words = Vec::with_capacity(144);
                for byte in n.iter() {
                    for b in 0..8 {
                        words.push(if (byte >> b) & 1 != 0 { u64::MAX } else { 0 });
                    }
                }
                for byte in coeffs.iter() {
                    for b in 0..8 {
                        words.push(if (byte >> b) & 1 != 0 { u64::MAX } else { 0 });
                    }
                }
                let outs = autoax_circuit::sim::sim_lanes(&top, &words);
                let hw = outs
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, w)| acc | ((w & 1) << i));
                let sw = g.kernel(mode, &n, &exact, &mut obs) as u64;
                assert_eq!(hw, sw, "mode {mode} {n:?}");
            }
        }
    }

    #[test]
    fn qor_of_exact_configuration_is_one() {
        let g = GenericGaussian::with_sweep(2);
        let imgs = benchmark_suite(2, 32, 24, 9);
        let golden = g.golden(&imgs);
        let q = g.qor(&imgs, &golden, &OpSet::exact(&g));
        assert!((q - 1.0).abs() < 1e-12);
    }
}
