//! Gaussian kernel generation and 8-bit quantization.
//!
//! All paper kernels are 3×3, symmetric, and quantized so the nine integer
//! coefficients sum to exactly 256 — the normalization then becomes the
//! `>> 8` at the accelerator output.

/// The three distinct coefficients of a symmetric 3×3 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymKernel {
    /// Corner coefficient (multiplicity 4).
    pub corner: u8,
    /// Edge coefficient (multiplicity 4).
    pub edge: u8,
    /// Center coefficient (multiplicity 1).
    pub center: u8,
}

impl SymKernel {
    /// The nine coefficients in row-major order.
    pub fn to_array(self) -> [u8; 9] {
        let (c, e, m) = (self.corner, self.edge, self.center);
        [c, e, c, e, m, e, c, e, c]
    }

    /// Coefficient sum (must be 256 for quantized kernels).
    pub fn sum(self) -> u32 {
        4 * self.corner as u32 + 4 * self.edge as u32 + self.center as u32
    }
}

/// Quantizes the 3×3 Gaussian with standard deviation `sigma` to integer
/// coefficients summing to exactly 256.
///
/// The rounding residual is absorbed by the center coefficient (step 1),
/// then by the edge/corner coefficients (step 4) when necessary.
///
/// # Panics
/// Panics if `sigma` is not positive and finite.
pub fn gaussian_kernel_256(sigma: f64) -> SymKernel {
    assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
    let g = |d2: f64| (-d2 / (2.0 * sigma * sigma)).exp();
    let (gc, ge, gm) = (g(2.0), g(1.0), g(0.0));
    let total = 4.0 * gc + 4.0 * ge + gm;
    let scale = 256.0 / total;
    let mut corner = (gc * scale).round().clamp(0.0, 255.0) as i32;
    let mut edge = (ge * scale).round().clamp(0.0, 255.0) as i32;
    let mut center = (gm * scale).round().clamp(0.0, 255.0) as i32;
    // absorb the residual: center first (step 1), then edge/corner (step 4)
    let mut residual = 256 - (4 * corner + 4 * edge + center);
    let step1 = residual.clamp(-center, 255 - center);
    center += step1;
    residual -= step1;
    while residual >= 4 && edge < 255 {
        edge += 1;
        residual -= 4;
    }
    while residual <= -4 && edge > 0 {
        edge -= 1;
        residual += 4;
    }
    while residual >= 4 && corner < 255 {
        corner += 1;
        residual -= 4;
    }
    while residual <= -4 && corner > 0 {
        corner -= 1;
        residual += 4;
    }
    // |residual| < 4 now; if the center saturated we trade one edge step
    // against the center so the sum lands exactly on 256
    if residual != 0 {
        let direct = (center + residual).clamp(0, 255);
        if 4 * corner + 4 * edge + direct == 256 {
            center = direct;
        } else if residual > 0 {
            edge += 1;
            center -= 4 - residual;
        } else {
            edge -= 1;
            center += 4 + residual;
        }
    }
    debug_assert_eq!(4 * corner + 4 * edge + center, 256);
    SymKernel {
        corner: corner as u8,
        edge: edge as u8,
        center: center as u8,
    }
}

/// The paper's generic-GF kernel sweep: `n` kernels with σ spread linearly
/// over `[0.3, 0.8]` (paper: 50 kernels).
pub fn sigma_sweep_kernels(n: usize) -> Vec<SymKernel> {
    assert!(n >= 1);
    (0..n)
        .map(|i| {
            let t = if n == 1 {
                0.0
            } else {
                i as f64 / (n - 1) as f64
            };
            gaussian_kernel_256(0.3 + 0.5 * t)
        })
        .collect()
}

/// The σ = 2 kernel used by the fixed Gaussian filter, quantized:
/// corner 26, edge 30, center 32 (sum = 256).
pub fn fixed_gf_kernel() -> SymKernel {
    SymKernel {
        corner: 26,
        edge: 30,
        center: 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_kernels_sum_to_256() {
        for i in 0..60 {
            let sigma = 0.25 + i as f64 * 0.05;
            let k = gaussian_kernel_256(sigma);
            assert_eq!(k.sum(), 256, "sigma={sigma}: {k:?}");
        }
    }

    #[test]
    fn coefficients_ordered_center_ge_edge_ge_corner() {
        // Residual absorption may perturb a coefficient by up to 3 counts,
        // so near-flat kernels are only ordered up to that slack.
        for i in 0..30 {
            let sigma = 0.3 + i as f64 * 0.1;
            let k = gaussian_kernel_256(sigma);
            assert!(k.center as i32 >= k.edge as i32 - 3, "sigma={sigma}: {k:?}");
            assert!(k.edge as i32 >= k.corner as i32 - 3, "sigma={sigma}: {k:?}");
        }
    }

    #[test]
    fn small_sigma_concentrates_on_center() {
        let k = gaussian_kernel_256(0.3);
        assert!(k.center > 240, "{k:?}");
        assert_eq!(k.corner, 0);
    }

    #[test]
    fn large_sigma_flattens() {
        let k = gaussian_kernel_256(10.0);
        assert!(k.center as i32 - k.corner as i32 <= 4, "{k:?}");
    }

    #[test]
    fn fixed_kernel_matches_sigma2_quantization() {
        // The hand-picked fixed-GF constants are the σ=2 quantization with
        // the residual absorbed by the center (33 -> 32).
        let q = gaussian_kernel_256(2.0);
        let f = fixed_gf_kernel();
        assert_eq!(q.corner, f.corner);
        assert_eq!(q.edge, f.edge);
        assert!((q.center as i32 - f.center as i32).abs() <= 1);
        assert_eq!(f.sum(), 256);
    }

    #[test]
    fn sweep_is_monotone_in_spread() {
        let ks = sigma_sweep_kernels(50);
        assert_eq!(ks.len(), 50);
        // center coefficient decreases as sigma grows
        for w in ks.windows(2) {
            assert!(w[0].center >= w[1].center);
        }
    }

    #[test]
    fn to_array_layout() {
        let k = SymKernel {
            corner: 1,
            edge: 2,
            center: 3,
        };
        assert_eq!(k.to_array(), [1, 2, 1, 2, 3, 2, 1, 2, 1]);
    }
}
