//! # autoax-accel
//!
//! The three benchmark accelerators of the autoAx paper (Table 1), each
//! with a software model (for QoR analysis), a hardware netlist builder
//! (for synthesis-lite cost analysis) and an operand profiler (for the
//! probability mass functions of Fig. 3):
//!
//! | Accelerator | Ops | Inventory |
//! |-------------|-----|-----------|
//! | [`sobel::SobelEd`] | 5 | 2× add8, 2× add9, 1× sub10 |
//! | [`gaussian_fixed::FixedGaussian`] | 11 | 4× add8, 2× add9, 4× add16, 1× sub16 |
//! | [`gaussian_generic::GenericGaussian`] | 17 | 9× mul8, 8× add16 |
//!
//! The fixed Gaussian filter realizes its constant coefficients with
//! shift-add networks ([`mcm`], standing in for the paper's SPIRAL flow);
//! the generic filter evaluates 50 σ ∈ [0.3, 0.8] kernels ([`kernels`]).
//!
//! The crate also hosts the domain-generic application layer: the
//! [`Workload`] trait ([`workload`]) that the pipeline is written
//! against. Every [`Accelerator`] is a `Workload` over grayscale images
//! with mean-SSIM QoR through a blanket implementation; other domains
//! (e.g. the quantized-NN workload of `autoax-nn`) implement `Workload`
//! directly with their own sample type and QoR measure.
//!
//! # Example
//!
//! ```
//! use autoax_accel::accelerator::{Accelerator, OpSet};
//! use autoax_accel::sobel::SobelEd;
//! use autoax_image::synthetic::benchmark_suite;
//!
//! let sobel = SobelEd::new();
//! let imgs = benchmark_suite(1, 64, 48, 3);
//! let exact = OpSet::exact(&sobel);
//! let out = sobel.run(&imgs[0], &exact, 0);
//! assert_eq!(out.width(), 64);
//! ```

pub mod accelerator;
pub mod gaussian_fixed;
pub mod gaussian_generic;
pub mod kernels;
pub mod mcm;
pub mod profile;
pub mod sobel;
pub mod workload;

pub use accelerator::{Accelerator, CompiledOp, OpSet, OpSlot};
pub use profile::{Pmf, PmfRecorder};
pub use workload::Workload;
