//! Multiplierless constant multiplication via canonical signed digit (CSD)
//! shift-add decomposition — this repo's stand-in for the SPIRAL tool the
//! paper uses to generate the fixed Gaussian filter's constant
//! multipliers.
//!
//! A [`ShiftAddPlan`] decomposes `c * x` into a sequence of adds and
//! subtracts of shifted terms. The CSD recoding guarantees a minimal
//! number of non-zero digits (no two adjacent), hence at most
//! `ceil(bits/2)` terms.

/// One term of a shift-add expression: a previous value shifted left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Term {
    /// Index of the source value: 0 = the input `x`, `i >= 1` = the result
    /// of step `i - 1`.
    pub source: usize,
    /// Left shift applied to the source.
    pub shift: u32,
}

/// One step of a plan: `lhs ± rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Left operand.
    pub lhs: Term,
    /// Right operand.
    pub rhs: Term,
    /// `false` = add, `true` = subtract.
    pub subtract: bool,
}

/// A shift-add realization of multiplication by a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftAddPlan {
    /// The constant being realized.
    pub constant: u32,
    /// The steps, in dependency order. An empty plan means the constant is
    /// a power of two (or zero) realized by `final_shift` alone.
    pub steps: Vec<Step>,
    /// Shift applied to the last value (input if `steps` is empty).
    pub final_shift: u32,
}

impl ShiftAddPlan {
    /// Number of adders (non-subtract steps).
    pub fn adds(&self) -> usize {
        self.steps.iter().filter(|s| !s.subtract).count()
    }

    /// Number of subtractors.
    pub fn subs(&self) -> usize {
        self.steps.iter().filter(|s| s.subtract).count()
    }

    /// Evaluates the plan on an input (for verification).
    pub fn eval(&self, x: u64) -> u64 {
        let mut values = vec![x];
        for step in &self.steps {
            let l = values[step.lhs.source] << step.lhs.shift;
            let r = values[step.rhs.source] << step.rhs.shift;
            values.push(if step.subtract {
                l.wrapping_sub(r)
            } else {
                l + r
            });
        }
        (*values.last().unwrap()) << self.final_shift
    }
}

/// Canonical signed digit recoding: returns `(digit, weight)` pairs with
/// digits in `{-1, +1}` and no two adjacent weights.
pub fn csd_digits(c: u32) -> Vec<(i8, u32)> {
    let mut digits = Vec::new();
    let mut v = c as i64;
    let mut weight = 0u32;
    while v != 0 {
        if v & 1 != 0 {
            // choose +1 or -1 so the remaining value is even twice over
            let d: i64 = if (v & 3) == 3 { -1 } else { 1 };
            digits.push((d as i8, weight));
            v -= d;
        }
        v >>= 1;
        weight += 1;
    }
    digits
}

/// Builds a shift-add plan for `c * x` from the CSD recoding.
///
/// Digits are accumulated most-significant-first so every step's left
/// operand is the running sum, matching how an MCM block would be laid
/// out in hardware.
///
/// # Panics
/// Panics if `c == 0` (a constant-zero product has no plan).
pub fn csd_plan(c: u32) -> ShiftAddPlan {
    assert!(c > 0, "constant must be non-zero");
    let mut digits = csd_digits(c);
    digits.sort_by_key(|d| std::cmp::Reverse(d.1)); // MSB first; first digit is +1
    debug_assert_eq!(digits[0].0, 1, "CSD leading digit is positive");
    if digits.len() == 1 {
        return ShiftAddPlan {
            constant: c,
            steps: Vec::new(),
            final_shift: digits[0].1,
        };
    }
    // accumulate: acc = x << (w0 - w_last) then fold in remaining digits;
    // to keep shifts non-negative we track the pending shift of the
    // accumulator relative to the current digit weight.
    let mut steps = Vec::new();
    let mut acc_source = 0usize; // x
    let mut acc_weight = digits[0].1;
    for &(d, w) in &digits[1..] {
        let step = Step {
            lhs: Term {
                source: acc_source,
                shift: acc_weight - w,
            },
            rhs: Term {
                source: 0,
                shift: 0,
            },
            subtract: d < 0,
        };
        steps.push(step);
        acc_source = steps.len(); // value index of the step just pushed
        acc_weight = w;
    }
    ShiftAddPlan {
        constant: c,
        steps,
        final_shift: acc_weight,
    }
}

/// The shift-add plans of the fixed Gaussian filter's three coefficients
/// `{26, 30, 32}` (paper Fig. 2b, SPIRAL output): a binary decomposition
/// for 26 (two adders), CSD for 30 (one subtractor) and a pure shift
/// for 32 — yielding exactly the 4 add16 + 1 sub16 inventory of Table 1
/// once the two product-summing adders are included.
pub fn fixed_gf_plans() -> [ShiftAddPlan; 3] {
    // 26 = (x<<4 + x<<3) + x<<1 — binary, two adds.
    let p26 = ShiftAddPlan {
        constant: 26,
        steps: vec![
            Step {
                lhs: Term {
                    source: 0,
                    shift: 4,
                },
                rhs: Term {
                    source: 0,
                    shift: 3,
                },
                subtract: false,
            },
            Step {
                lhs: Term {
                    source: 1,
                    shift: 0,
                },
                rhs: Term {
                    source: 0,
                    shift: 1,
                },
                subtract: false,
            },
        ],
        final_shift: 0,
    };
    // 30 = x<<5 - x<<1 — one subtract.
    let p30 = ShiftAddPlan {
        constant: 30,
        steps: vec![Step {
            lhs: Term {
                source: 0,
                shift: 5,
            },
            rhs: Term {
                source: 0,
                shift: 1,
            },
            subtract: true,
        }],
        final_shift: 0,
    };
    // 32 = x<<5 — free.
    let p32 = ShiftAddPlan {
        constant: 32,
        steps: Vec::new(),
        final_shift: 5,
    };
    [p26, p30, p32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csd_digits_are_sparse() {
        for c in 1u32..=1024 {
            let d = csd_digits(c);
            // reconstruct
            let v: i64 = d.iter().map(|&(s, w)| s as i64 * (1i64 << w)).sum();
            assert_eq!(v, c as i64, "c={c}");
            // no two adjacent weights
            let mut ws: Vec<u32> = d.iter().map(|&(_, w)| w).collect();
            ws.sort_unstable();
            for pair in ws.windows(2) {
                assert!(pair[1] > pair[0] + 1, "adjacent CSD digits for {c}");
            }
        }
    }

    #[test]
    fn csd_plans_evaluate_correctly() {
        for c in 1u32..=512 {
            let plan = csd_plan(c);
            for x in [0u64, 1, 7, 100, 255, 1023] {
                assert_eq!(plan.eval(x), c as u64 * x, "c={c} x={x}");
            }
        }
    }

    #[test]
    fn power_of_two_needs_no_ops() {
        for sh in 0..10 {
            let plan = csd_plan(1 << sh);
            assert!(plan.steps.is_empty());
            assert_eq!(plan.final_shift, sh);
        }
    }

    #[test]
    fn csd_op_count_is_small() {
        // CSD guarantees at most ceil(bits/2) nonzero digits, i.e. ops <=
        // digits - 1.
        for c in 1u32..=255 {
            let plan = csd_plan(c);
            assert!(plan.steps.len() <= 4, "c={c} uses {} ops", plan.steps.len());
        }
    }

    #[test]
    fn fixed_gf_plans_are_correct_and_match_table1_budget() {
        let [p26, p30, p32] = fixed_gf_plans();
        for x in [0u64, 1, 100, 1020] {
            assert_eq!(p26.eval(x), 26 * x);
            assert_eq!(p30.eval(x), 30 * x);
            assert_eq!(p32.eval(x), 32 * x);
        }
        // MCM ops: 2 adds (26) + 1 sub (30) + 0 (32); plus 2 product-sum
        // adders = 4 add16 + 1 sub16 (Table 1).
        let adds = p26.adds() + p30.adds() + p32.adds();
        let subs = p26.subs() + p30.subs() + p32.subs();
        assert_eq!(adds, 2);
        assert_eq!(subs, 1);
        assert_eq!(adds + 2, 4);
    }
}
