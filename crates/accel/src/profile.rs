//! Operand profiling: the probability mass functions `D_k` of paper
//! Section 2.2 and Fig. 3.
//!
//! The profiler runs the exact software model on benchmark images and
//! records every operand pair of every slot. The resulting [`Pmf`]s drive
//! the WMED score used for library pre-processing.

use crate::accelerator::{Accelerator, OpObserver, OpSet};
use autoax_image::GrayImage;
use std::collections::HashMap;

/// Empirical joint distribution of one slot's operand pairs.
#[derive(Debug, Clone, Default)]
pub struct Pmf {
    counts: HashMap<(u32, u32), u64>,
    total: u64,
}

impl Pmf {
    /// New empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operand pair.
    #[inline]
    pub fn add(&mut self, a: u32, b: u32) {
        *self.counts.entry((a, b)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct operand pairs.
    pub fn support_len(&self) -> usize {
        self.counts.len()
    }

    /// Probability of a specific pair.
    pub fn prob(&self, a: u32, b: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(&(a, b)).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Iterates over `((a, b), probability)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u32), f64)> + '_ {
        let t = self.total.max(1) as f64;
        self.counts.iter().map(move |(&k, &c)| (k, c as f64 / t))
    }

    /// The support sorted by descending probability, truncated to the
    /// smallest prefix covering at least `mass_frac` of the distribution.
    ///
    /// Library pre-processing uses this to bound the WMED cost on huge
    /// supports (the truncation point is documented in DESIGN.md).
    pub fn top_mass(&self, mass_frac: f64) -> Vec<((u32, u32), f64)> {
        let mut items: Vec<((u32, u32), u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let t = self.total.max(1) as f64;
        let mut acc = 0.0;
        let mut out = Vec::new();
        for (k, c) in items {
            let p = c as f64 / t;
            out.push((k, p));
            acc += p;
            if acc >= mass_frac {
                break;
            }
        }
        out
    }

    /// Downsamples the joint distribution onto a `bins × bins` grid
    /// (row-major, normalized) for heat-map export (Fig. 3).
    pub fn to_grid(&self, bins: usize, max_a: u32, max_b: u32) -> Vec<f64> {
        let mut grid = vec![0.0f64; bins * bins];
        let t = self.total.max(1) as f64;
        for (&(a, b), &c) in &self.counts {
            let ia = ((a as usize * bins) / (max_a as usize + 1)).min(bins - 1);
            let ib = ((b as usize * bins) / (max_b as usize + 1)).min(bins - 1);
            grid[ia * bins + ib] += c as f64 / t;
        }
        grid
    }

    /// The raw operand-pair counts in deterministic (sorted-key) order —
    /// the lossless serialization surface used by `autoax-store`.
    pub fn sorted_counts(&self) -> Vec<((u32, u32), u64)> {
        let mut v: Vec<((u32, u32), u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Rebuilds a distribution from raw counts (inverse of
    /// [`Pmf::sorted_counts`]; duplicate keys are summed).
    pub fn from_counts(counts: impl IntoIterator<Item = ((u32, u32), u64)>) -> Self {
        let mut pmf = Pmf::new();
        for ((a, b), c) in counts {
            *pmf.counts.entry((a, b)).or_insert(0) += c;
            pmf.total += c;
        }
        pmf
    }

    /// Merges another distribution into this one (summing counts).
    pub fn absorb(&mut self, other: Pmf) {
        for (k, c) in other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Fraction of probability mass within `band` of the diagonal
    /// (`|a - b| <= band`) — the quantitative form of Fig. 3's visual
    /// "operand values are typically very close".
    pub fn diagonal_mass(&self, band: u32) -> f64 {
        let t = self.total.max(1) as f64;
        self.counts
            .iter()
            .filter(|(&(a, b), _)| a.abs_diff(b) <= band)
            .map(|(_, &c)| c as f64)
            .sum::<f64>()
            / t
    }
}

/// An [`OpObserver`] that accumulates one [`Pmf`] per slot — the Step-1
/// profiling hook, public so non-image workloads (e.g. `autoax-nn`) can
/// drive their own exact runs through it.
#[derive(Debug, Clone)]
pub struct PmfRecorder {
    pmfs: Vec<Pmf>,
}

impl PmfRecorder {
    /// New recorder with one empty distribution per slot.
    pub fn new(slot_count: usize) -> Self {
        PmfRecorder {
            pmfs: (0..slot_count).map(|_| Pmf::new()).collect(),
        }
    }

    /// The accumulated per-slot distributions.
    pub fn into_pmfs(self) -> Vec<Pmf> {
        self.pmfs
    }
}

impl OpObserver for PmfRecorder {
    #[inline]
    fn record(&mut self, slot: usize, a: u64, b: u64) {
        self.pmfs[slot].add(a as u32, b as u32);
    }
}

/// Profiles an accelerator on one image: runs the exact software model
/// over every mode and returns one [`Pmf`] per slot.
fn profile_image<A: Accelerator + ?Sized>(accel: &A, exact: &OpSet, img: &GrayImage) -> Vec<Pmf> {
    let mut rec = PmfRecorder::new(accel.slots().len());
    for mode in 0..accel.mode_count() {
        for y in 0..img.height() as isize {
            for x in 0..img.width() as isize {
                let mut n = [0u8; 9];
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        n[(3 * (dy + 1) + dx + 1) as usize] = img.get_clamped(x + dx, y + dy);
                    }
                }
                let _ = accel.kernel(mode, &n, exact, &mut rec);
            }
        }
    }
    rec.pmfs
}

/// Profiles an accelerator on benchmark images: runs the exact software
/// model over every image (and every mode) and returns one [`Pmf`] per
/// slot.
///
/// Images are profiled in parallel through the execution layer's chunked
/// map-reduce; the per-image counts merge commutatively, so the result is
/// identical at any thread count.
pub fn profile<A: Accelerator + ?Sized>(accel: &A, images: &[GrayImage]) -> Vec<Pmf> {
    let exact = OpSet::exact_slots(accel.slots());
    autoax_exec::map_reduce(
        images,
        |img| profile_image(accel, &exact, img),
        |mut acc, next| {
            for (a, b) in acc.iter_mut().zip(next) {
                a.absorb(b);
            }
            acc
        },
    )
    .unwrap_or_else(|| (0..accel.slots().len()).map(|_| Pmf::new()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_counts_and_probs() {
        let mut p = Pmf::new();
        p.add(1, 2);
        p.add(1, 2);
        p.add(3, 4);
        assert_eq!(p.total(), 3);
        assert_eq!(p.support_len(), 2);
        assert!((p.prob(1, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.prob(9, 9), 0.0);
    }

    #[test]
    fn top_mass_truncates() {
        let mut p = Pmf::new();
        for _ in 0..98 {
            p.add(0, 0);
        }
        p.add(1, 1);
        p.add(2, 2);
        let top = p.top_mass(0.9);
        assert_eq!(top.len(), 1);
        let all = p.top_mass(1.0);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn diagonal_mass() {
        let mut p = Pmf::new();
        p.add(10, 11);
        p.add(10, 10);
        p.add(0, 200);
        p.add(5, 100);
        assert!((p.diagonal_mass(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_counts_and_totals() {
        let mut a = Pmf::new();
        a.add(1, 2);
        a.add(1, 2);
        let mut b = Pmf::new();
        b.add(1, 2);
        b.add(3, 4);
        a.absorb(b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.support_len(), 2);
        assert!((a.prob(1, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn parallel_profile_equals_per_image_merge() {
        use crate::sobel::SobelEd;
        let accel = SobelEd::new();
        let images = autoax_image::synthetic::benchmark_suite(3, 24, 16, 9);
        let par = profile(&accel, &images);
        // reference: profile each image alone and merge in order
        let mut seq: Vec<Pmf> = (0..accel.slots().len()).map(|_| Pmf::new()).collect();
        for img in &images {
            let one = profile(&accel, std::slice::from_ref(img));
            for (a, b) in seq.iter_mut().zip(one) {
                a.absorb(b);
            }
        }
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(seq.iter()) {
            assert_eq!(p.total(), s.total());
            assert_eq!(p.support_len(), s.support_len());
            for (k, prob) in p.iter() {
                assert!((prob - s.prob(k.0, k.1)).abs() < 1e-12, "{k:?}");
            }
        }
    }

    #[test]
    fn grid_sums_to_one() {
        let mut p = Pmf::new();
        for i in 0..50u32 {
            p.add(i % 16, (i * 3) % 16);
        }
        let g = p.to_grid(8, 15, 15);
        let sum: f64 = g.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
