//! The Sobel edge detector (vertical edges) — paper Fig. 2a.
//!
//! Five replaceable operations (Table 1): two 8-bit adders, two 9-bit
//! adders and one 10-bit subtractor; the two ×2 factors are wired shifts
//! and the final `|·|`/clamp glue is exact logic, exactly as in the paper
//! where only the listed arithmetic operations are approximated.
//!
//! ```text
//! add1 = add8(p00, p20)            add3 = add8(p02, p22)
//! add2 = add9(add1, p10 << 1)      add4 = add9(add3, p12 << 1)
//! sub  = sub10(add4, add2)         out  = clamp255(|sub|)
//! ```

use crate::accelerator::{Accelerator, OpObserver, OpSet, OpSlot};
use autoax_circuit::netlist::{Bus, Netlist};
use autoax_circuit::OpSignature;

/// The Sobel edge detector accelerator.
#[derive(Debug, Clone)]
pub struct SobelEd {
    slots: Vec<OpSlot>,
}

impl SobelEd {
    /// Creates the accelerator with the paper's slot inventory.
    pub fn new() -> Self {
        SobelEd {
            slots: vec![
                OpSlot::new("add1", OpSignature::ADD8),
                OpSlot::new("add2", OpSignature::ADD9),
                OpSlot::new("add3", OpSignature::ADD8),
                OpSlot::new("add4", OpSignature::ADD9),
                OpSlot::new("sub", OpSignature::SUB10),
            ],
        }
    }
}

impl Default for SobelEd {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for SobelEd {
    fn name(&self) -> &str {
        "Sobel ED"
    }

    fn slots(&self) -> &[OpSlot] {
        &self.slots
    }

    fn kernel(&self, _mode: usize, n: &[u8; 9], ops: &OpSet, obs: &mut dyn OpObserver) -> u8 {
        let (p00, p10, p20) = (n[0] as u64, n[3] as u64, n[6] as u64);
        let (p02, p12, p22) = (n[2] as u64, n[5] as u64, n[8] as u64);
        obs.record(0, p00, p20);
        let a1 = ops.apply(0, p00, p20) & 0x1FF;
        let sh1 = p10 << 1;
        obs.record(1, a1, sh1);
        let a2 = ops.apply(1, a1, sh1) & 0x3FF;
        obs.record(2, p02, p22);
        let a3 = ops.apply(2, p02, p22) & 0x1FF;
        let sh2 = p12 << 1;
        obs.record(3, a3, sh2);
        let a4 = ops.apply(3, a3, sh2) & 0x3FF;
        obs.record(4, a4, a2);
        let d = ops.apply(4, a4, a2) & 0x7FF;
        // exact glue: sign-extend the 11-bit result, abs, clamp
        let signed = if d & 0x400 != 0 {
            d as i64 - 0x800
        } else {
            d as i64
        };
        signed.unsigned_abs().min(255) as u8
    }

    fn build_netlist(&self, impls: &[Netlist]) -> Netlist {
        assert_eq!(impls.len(), 5, "Sobel ED has five operation slots");
        let mut top = Netlist::new("sobel_ed");
        // nine 8-bit pixel buses in row-major neighbourhood order
        let pixels: Vec<Bus> = (0..9).map(|_| top.input_bus(8)).collect();
        let zero = top.const0();
        let concat = |a: &Bus, b: &Bus| -> Vec<autoax_circuit::NetId> {
            a.iter().chain(b.iter()).copied().collect()
        };
        // add1 = p00 + p20
        let a1 = Bus(top.instantiate(&impls[0], &concat(&pixels[0], &pixels[6])));
        // add2 = a1 + (p10 << 1): both operands 9 bits
        let sh1 = pixels[3].shifted_left(1, zero);
        let a2 = Bus(top.instantiate(&impls[1], &concat(&a1, &sh1)));
        // add3 = p02 + p22
        let a3 = Bus(top.instantiate(&impls[2], &concat(&pixels[2], &pixels[8])));
        let sh2 = pixels[5].shifted_left(1, zero);
        let a4 = Bus(top.instantiate(&impls[3], &concat(&a3, &sh2)));
        // sub = a4 - a2 over 10 bits -> 11-bit two's complement
        let d = Bus(top.instantiate(&impls[4], &concat(&a4, &a2)));
        let out = abs_clamp_to_u8(&mut top, &d);
        top.push_output_bus(&out);
        top
    }
}

/// Exact glue: `|d|` of an 11-bit two's-complement bus, saturated to 8
/// bits. Shared by the netlist builder and (in spirit) the software model.
fn abs_clamp_to_u8(n: &mut Netlist, d: &Bus) -> Bus {
    assert_eq!(d.width(), 11);
    let sign = d.bit(10);
    // negate the low 10 bits: ~d + 1 (truncated two's-complement negation)
    let mut carry = n.const1();
    let mut neg = Vec::with_capacity(10);
    for i in 0..10 {
        let inv = n.inv(d.bit(i));
        let s = n.xor2(inv, carry);
        let c = n.and2(inv, carry);
        neg.push(s);
        carry = c;
    }
    // mag = sign ? neg : d
    let mag: Vec<_> = (0..10).map(|i| n.mux2(sign, d.bit(i), neg[i])).collect();
    // saturate: if mag[8] | mag[9], output 255
    let sat = n.or2(mag[8], mag[9]);
    Bus((0..8).map(|i| n.or2(mag[i], sat)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_circuit::approx::Behavior;
    use autoax_image::convolve::convolve3x3_abs;
    use autoax_image::synthetic::benchmark_suite;

    #[test]
    fn slot_inventory_matches_table1() {
        let s = SobelEd::new();
        let count = |sig: OpSignature| s.slots().iter().filter(|x| x.signature == sig).count();
        assert_eq!(s.slots().len(), 5);
        assert_eq!(count(OpSignature::ADD8), 2);
        assert_eq!(count(OpSignature::ADD9), 2);
        assert_eq!(count(OpSignature::SUB10), 1);
    }

    #[test]
    fn exact_model_matches_reference_convolution() {
        let s = SobelEd::new();
        let img = benchmark_suite(1, 64, 48, 5).remove(0);
        let got = s.run_exact(&img).remove(0);
        let sobel_x = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];
        let want = convolve3x3_abs(&img, &sobel_x, 1.0);
        assert_eq!(got, want);
    }

    #[test]
    fn netlist_matches_software_model_exact() {
        let s = SobelEd::new();
        let impls: Vec<Netlist> = s
            .slots()
            .iter()
            .map(|sl| Behavior::exact_for(sl.signature).build_netlist())
            .collect();
        let top = s.build_netlist(&impls);
        assert_eq!(top.input_count(), 72);
        assert_eq!(top.outputs().len(), 8);
        check_netlist_vs_sw(&s, &top);
    }

    #[test]
    fn netlist_matches_software_model_approximate() {
        use autoax_circuit::charlib::{build_class, LibraryConfig};
        let s = SobelEd::new();
        let cfg = LibraryConfig::tiny();
        // pick a non-exact entry per class
        let pick = |sig: OpSignature, seed: u64| {
            let lib = build_class(sig, 8, &cfg, seed);
            lib.into_iter().nth(3).unwrap()
        };
        let entries = [
            pick(OpSignature::ADD8, 1),
            pick(OpSignature::ADD9, 2),
            pick(OpSignature::ADD8, 3),
            pick(OpSignature::ADD9, 4),
            pick(OpSignature::SUB10, 5),
        ];
        let impls: Vec<Netlist> = entries.iter().map(|e| e.build_netlist()).collect();
        let top = s.build_netlist(&impls);
        let refs: Vec<&autoax_circuit::CircuitEntry> = entries.iter().collect();
        let ops = OpSet::from_entries(&s, &refs);
        check_netlist_vs_sw_ops(&s, &top, &ops);
    }

    fn check_netlist_vs_sw(s: &SobelEd, top: &Netlist) {
        let ops = OpSet::exact_slots(s.slots());
        check_netlist_vs_sw_ops(s, top, &ops);
    }

    fn check_netlist_vs_sw_ops(s: &SobelEd, top: &Netlist, ops: &OpSet) {
        let mut st = 7u64;
        let mut hoods = Vec::new();
        for _ in 0..200 {
            let mut n = [0u8; 9];
            for p in n.iter_mut() {
                *p = (autoax_circuit::util::splitmix64(&mut st) & 0xFF) as u8;
            }
            hoods.push(n);
        }
        let outs: Vec<u64> = hoods
            .iter()
            .map(|n| {
                let words: Vec<u64> = (0..72)
                    .map(|bit| {
                        let byte = bit / 8;
                        let b = bit % 8;
                        if (n[byte] >> b) & 1 != 0 {
                            u64::MAX
                        } else {
                            0
                        }
                    })
                    .collect();
                let o = autoax_circuit::sim::sim_lanes(top, &words);
                o.iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, w)| acc | ((w & 1) << i))
            })
            .collect();
        let mut obs = crate::accelerator::NoRecord;
        for (n, &hw) in hoods.iter().zip(outs.iter()) {
            let sw = s.kernel(0, n, ops, &mut obs) as u64;
            assert_eq!(hw, sw, "neighbourhood {n:?}");
        }
    }

    #[test]
    fn flat_image_has_no_edges() {
        let s = SobelEd::new();
        let img = autoax_image::GrayImage::from_fn(16, 16, |_, _| 77);
        let out = s.run_exact(&img).remove(0);
        assert!(out.data().iter().all(|&p| p == 0));
    }

    #[test]
    fn vertical_step_detected_horizontal_ignored() {
        let s = SobelEd::new();
        let vstep = autoax_image::GrayImage::from_fn(16, 16, |x, _| if x < 8 { 0 } else { 200 });
        let hstep = autoax_image::GrayImage::from_fn(16, 16, |_, y| if y < 8 { 0 } else { 200 });
        let vout = s.run_exact(&vstep).remove(0);
        let hout = s.run_exact(&hstep).remove(0);
        assert!(vout.get(7, 8) > 100, "vertical edge missed");
        assert!(
            hout.data().iter().all(|&p| p == 0),
            "horizontal edge should be invisible to a vertical detector"
        );
    }
}
