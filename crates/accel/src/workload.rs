//! The domain-generic application layer: the [`Workload`] trait.
//!
//! The autoAx methodology is application-agnostic — Steps 1–3 only need
//! four things from the application: a slot inventory, an operand
//! profiler, a QoR measure against an exact golden run, and a hardware
//! netlist composer. [`Workload`] captures exactly that contract, with an
//! associated sample type so the benchmark data is domain-typed (grayscale
//! images for the paper's filters, feature vectors for the NN workload of
//! `autoax-nn`, …).
//!
//! Every [`Accelerator`] — the paper's image-filter contract over 3×3
//! pixel neighbourhoods — is a `Workload` through the blanket
//! implementation below, with `Sample = GrayImage`, per-mode golden
//! outputs and mean-SSIM QoR. The generic pipeline
//! (`autoax::pipeline::run_pipeline`) is written against `Workload` only,
//! so the image path and any new domain run through identical code.

use crate::accelerator::{Accelerator, OpSet, OpSlot};
use crate::profile::Pmf;
use autoax_circuit::Netlist;
use autoax_image::GrayImage;

/// An application workload: benchmark data, a software model over
/// replaceable operation slots, a QoR measure and a hardware netlist
/// composer — everything Steps 1–3 of the methodology consume.
///
/// Implementations must be deterministic: `profile`, `golden` and `qor`
/// are pure functions of `(self, samples, ops)`, which is what makes the
/// content-addressed Step-1/2 cache and the golden-parity tests sound.
pub trait Workload: Send + Sync {
    /// One unit of benchmark input (an image, a feature vector, …).
    type Sample: Send + Sync;

    /// The precomputed exact-run result of one sample that
    /// [`Workload::qor`] compares approximate runs against (rendered
    /// images per mode, a predicted class label, …).
    type Golden: Send + Sync;

    /// Workload name (reports, cache keys).
    fn name(&self) -> &str;

    /// The replaceable operation slots, in evaluation order.
    fn slots(&self) -> &[OpSlot];

    /// Human-readable name of the QoR measure (`"SSIM"`, `"accuracy"`).
    fn qor_metric(&self) -> &'static str {
        "QoR"
    }

    /// Step 1a: runs the exact software model over the samples and
    /// returns one operand [`Pmf`] per slot.
    fn profile(&self, samples: &[Self::Sample]) -> Vec<Pmf>;

    /// Precomputes the exact-run golden result of every sample (one
    /// [`Workload::Golden`] per sample, in order).
    fn golden(&self, samples: &[Self::Sample]) -> Vec<Self::Golden>;

    /// Quality of result of an approximate configuration against the
    /// golden results, in `[0, 1]`-ish units where **higher is better**
    /// and the all-exact configuration scores the maximum.
    ///
    /// Deliberately sequential: on the hot path this runs *under* the
    /// parallel `evaluate_batch` (one task per configuration), so nesting
    /// another fan-out here would oversubscribe the workers.
    fn qor(&self, samples: &[Self::Sample], golden: &[Self::Golden], ops: &OpSet) -> f64;

    /// Builds the flat hardware netlist with the given component netlists
    /// (one per slot, in slot order).
    fn build_netlist(&self, impls: &[Netlist]) -> Netlist;

    /// Feeds the byte content of the samples to `sink` — the
    /// domain-specific part of the Step-1/2 cache key. Two sample sets
    /// must digest equal iff Steps 1–2 would produce identical results
    /// on them.
    fn digest_samples(&self, samples: &[Self::Sample], sink: &mut dyn FnMut(&[u8]));

    /// Feeds any workload identity *beyond* name and slot list that
    /// affects Steps 1–2 to `sink` (behavioural mode count, network
    /// weights, …). Defaults to nothing.
    fn digest_identity(&self, _sink: &mut dyn FnMut(&[u8])) {}
}

/// Every image-filter [`Accelerator`] is a [`Workload`] over grayscale
/// images: golden results are the exact outputs of every behavioural
/// mode, and QoR is the paper's mean SSIM.
impl<A: Accelerator + ?Sized> Workload for A {
    type Sample = GrayImage;
    type Golden = Vec<GrayImage>;

    fn name(&self) -> &str {
        Accelerator::name(self)
    }

    fn slots(&self) -> &[OpSlot] {
        Accelerator::slots(self)
    }

    fn qor_metric(&self) -> &'static str {
        "SSIM"
    }

    fn profile(&self, samples: &[GrayImage]) -> Vec<Pmf> {
        crate::profile::profile(self, samples)
    }

    fn golden(&self, samples: &[GrayImage]) -> Vec<Vec<GrayImage>> {
        Accelerator::golden(self, samples)
    }

    fn qor(&self, samples: &[GrayImage], golden: &[Vec<GrayImage>], ops: &OpSet) -> f64 {
        Accelerator::qor(self, samples, golden, ops)
    }

    fn build_netlist(&self, impls: &[Netlist]) -> Netlist {
        Accelerator::build_netlist(self, impls)
    }

    fn digest_samples(&self, samples: &[GrayImage], sink: &mut dyn FnMut(&[u8])) {
        for img in samples {
            sink(&(img.width() as u64).to_le_bytes());
            sink(&(img.height() as u64).to_le_bytes());
            sink(img.data());
        }
    }

    fn digest_identity(&self, sink: &mut dyn FnMut(&[u8])) {
        // Behavioural modes are identity: the same slots render a
        // different golden sweep (e.g. the generic GF's kernel count).
        sink(&(self.mode_count() as u64).to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian_generic::GenericGaussian;
    use crate::sobel::SobelEd;
    use autoax_image::synthetic::benchmark_suite;

    /// Collects everything a digest hook writes into one byte vector.
    fn collect(f: impl FnOnce(&mut dyn FnMut(&[u8]))) -> Vec<u8> {
        let mut out = Vec::new();
        let mut sink = |b: &[u8]| out.extend_from_slice(b);
        f(&mut sink);
        out
    }

    #[test]
    fn accelerators_are_workloads_with_ssim_qor() {
        let sobel = SobelEd::new();
        assert_eq!(Workload::slots(&sobel).len(), 5);
        assert_eq!(sobel.qor_metric(), "SSIM");
        assert_eq!(Workload::name(&sobel), "Sobel ED");
    }

    #[test]
    fn workload_qor_matches_accelerator_qor() {
        let sobel = SobelEd::new();
        let imgs = benchmark_suite(2, 32, 24, 3);
        let golden = Workload::golden(&sobel, &imgs);
        let exact = OpSet::exact_slots(Accelerator::slots(&sobel));
        let q = Workload::qor(&sobel, &imgs, &golden, &exact);
        assert!((q - 1.0).abs() < 1e-12, "exact config must score 1.0: {q}");
    }

    #[test]
    fn sample_digest_tracks_image_content() {
        let sobel = SobelEd::new();
        let a = benchmark_suite(2, 32, 24, 3);
        let b = benchmark_suite(2, 32, 24, 4);
        let da = collect(|s| sobel.digest_samples(&a, s));
        let db = collect(|s| sobel.digest_samples(&b, s));
        assert_ne!(da, db, "different images must digest differently");
        let da2 = collect(|s| sobel.digest_samples(&a, s));
        assert_eq!(da, da2, "digest must be deterministic");
    }

    #[test]
    fn identity_digest_separates_kernel_sweeps() {
        // Same name, same slots — only the mode count differs; the
        // identity digest must keep their cache keys apart.
        let g2 = GenericGaussian::with_sweep(2);
        let g5 = GenericGaussian::with_sweep(5);
        let d2 = collect(|s| g2.digest_identity(s));
        let d5 = collect(|s| g5.digest_identity(s));
        assert_ne!(d2, d5);
    }
}
