//! Criterion bench: cold vs warm pipeline runs — quantifies what the
//! persistent store saves on repeat invocations.
//!
//! "Cold" runs the full three-step methodology (cache off). "Warm" reads
//! the Steps-1/2 artifact (reduced space + PMFs + fidelity + fitted
//! models) from a populated cache, so only Step 3 (search + final real
//! evaluation) executes. Both produce byte-identical results — asserted
//! by `tests/pipeline_cache.rs`; here we measure the time difference.

use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax::CacheMode;
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cache_warm(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("autoax-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let accel = SobelEd::new();
    let lib = build_library(&LibraryConfig::tiny());
    let images = benchmark_suite(2, 96, 64, 3);

    let cold_opts = PipelineOptions::quick();
    let warm_opts = PipelineOptions::quick().with_cache(&dir, CacheMode::ReadWrite);

    // Populate the cache once; assert the next run actually warm-starts.
    let seed_run = run_pipeline(&accel, &lib, &images, &warm_opts).expect("seed run");
    assert_eq!(seed_run.timings.cache_misses, 1);

    let mut group = c.benchmark_group("pipeline_warm_start");
    group.sample_size(5);
    group.bench_function("cold_full_steps_1_2_3", |b| {
        b.iter(|| black_box(run_pipeline(&accel, &lib, &images, &cold_opts).expect("cold")))
    });
    group.bench_function("warm_step_3_only", |b| {
        b.iter(|| {
            let res = run_pipeline(&accel, &lib, &images, &warm_opts).expect("warm");
            assert_eq!(res.timings.cache_hits, 1, "bench must measure warm runs");
            black_box(res)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_cache_warm);
criterion_main!(benches);
