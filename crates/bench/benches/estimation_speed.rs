//! Criterion bench backing the paper's speed claim (Section 4.2): the
//! model-based estimate of one configuration is ~1000× faster than the
//! full analysis (10 s vs 0.01 s in the paper; the ratio, not the absolute
//! numbers, is the reproduction target).

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, EvaluatedSet};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_ml::EngineKind;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_estimation_vs_real(c: &mut Criterion) {
    let accel = SobelEd::new();
    let lib = build_library(&LibraryConfig::tiny());
    let images = benchmark_suite(2, 96, 64, 3);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, 60, 1);
    let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit");
    let mut rng = StdRng::seed_from_u64(5);
    let config = pre.space.random(&mut rng);

    let mut group = c.benchmark_group("configuration_analysis");
    group.sample_size(20);
    group.bench_function("model_estimate", |b| {
        b.iter(|| black_box(models.estimate(&pre.space, &lib, black_box(&config))))
    });
    group.bench_function("real_qor_simulation", |b| {
        b.iter(|| black_box(evaluator.evaluate_qor(black_box(&config))))
    });
    group.bench_function("real_hw_synthesis", |b| {
        b.iter(|| black_box(evaluator.evaluate_hw(black_box(&config))))
    });
    group.finish();
}

criterion_group!(benches, bench_estimation_vs_real);
criterion_main!(benches);
