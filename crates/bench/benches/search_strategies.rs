//! Criterion bench: the [`SearchStrategy`] engine compared head-to-head —
//! estimate throughput (evals/s) per strategy on the real RF-model
//! estimator, plus the **columnar-vs-scalar** hot-path comparison: the
//! same island hill climb driven through the allocation-free
//! `estimate_slice` slab gather versus the legacy path that materializes
//! a `Configuration` per candidate. The columnar path must be at least as
//! fast (it performs zero per-candidate heap allocations).
//!
//! Before timing, the bench prints the jointly normalized hypervolume of
//! each strategy's front at the benchmark budget, so throughput and
//! front quality can be read side by side.

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, EvaluatedSet, ModelEstimator};
use autoax::pareto::{joint_hypervolumes, TradeoffPoint};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{run_search, ConfigSlice, Estimator, SearchAlgo, SearchOptions};
use autoax::Configuration;
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_ml::EngineKind;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Forces the legacy scalar hot path: delegates per-row and batch
/// estimation to the real model estimator but keeps the *default*
/// `estimate_slice` (materialize a `Configuration` per candidate, then
/// batch) — the pre-columnar behaviour, isolated as a baseline.
struct ScalarPlane<'a>(ModelEstimator<'a>);

impl Estimator for ScalarPlane<'_> {
    fn estimate(&self, c: &Configuration) -> TradeoffPoint {
        self.0.estimate(c)
    }

    fn estimate_batch(&self, configs: &[Configuration]) -> Vec<TradeoffPoint> {
        self.0.estimate_batch(configs)
    }

    // estimate_slice intentionally NOT overridden: the default
    // materializes every candidate — the scalar baseline.
}

fn bench_strategies(c: &mut Criterion) {
    let accel = SobelEd::new();
    let lib = build_library(&LibraryConfig::tiny());
    let images = benchmark_suite(2, 96, 64, 3);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, 60, 1);
    let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit");
    let columnar = ModelEstimator::new(&models, &pre.space, &lib);
    let scalar = ScalarPlane(ModelEstimator::new(&models, &pre.space, &lib));

    let evals = 50_000usize;
    let opts_for = |algo: SearchAlgo| SearchOptions {
        strategy: algo,
        max_evals: evals,
        stagnation_limit: 50,
        seed: 3,
        ..SearchOptions::default()
    };
    let budgeted = [SearchAlgo::Hill, SearchAlgo::Nsga2, SearchAlgo::Random];

    // Front quality at the benchmark budget, one shared normalization.
    let fronts: Vec<Vec<TradeoffPoint>> = budgeted
        .iter()
        .map(|&algo| run_search(&pre.space, &columnar, &opts_for(algo)).points())
        .collect();
    let refs: Vec<&[TradeoffPoint]> = fronts.iter().map(|f| f.as_slice()).collect();
    let hv = joint_hypervolumes(&refs);
    for (algo, (front, h)) in budgeted.iter().zip(fronts.iter().zip(hv.iter())) {
        println!(
            "search_strategies: {algo} at {evals} evals -> {} front members, hypervolume {h:.5}",
            front.len()
        );
    }

    let mut group = c.benchmark_group("search_strategies");
    group.sample_size(3);
    group.throughput(Throughput::Elements(evals as u64));
    for algo in budgeted {
        let opts = opts_for(algo);
        group.bench_function(&format!("{algo}_columnar"), |b| {
            b.iter(|| black_box(run_search(&pre.space, &columnar, &opts)))
        });
    }
    // Scalar-vs-columnar: identical search, different candidate plane.
    let hill = opts_for(SearchAlgo::Hill);
    group.bench_function("hill_scalar_plane_baseline", |b| {
        b.iter(|| black_box(run_search(&pre.space, &scalar, &hill)))
    });
    group.finish();
}

/// The raw candidate plane, isolated from search logic and model cost:
/// proposing one round of neighbours into the reused slab versus
/// allocating a `Configuration` per candidate.
fn bench_plane(c: &mut Criterion) {
    use autoax::search::ConfigBatch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let accel = SobelEd::new();
    let lib = build_library(&LibraryConfig::tiny());
    let images = benchmark_suite(1, 48, 32, 3);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let stride = pre.space.slot_count();
    let n = 4096usize;
    let mut group = c.benchmark_group("candidate_plane");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("columnar_neighbor_into", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let parent = pre.space.random(&mut rng);
        let mut batch = ConfigBatch::with_capacity(stride, n);
        b.iter(|| {
            batch.clear();
            for _ in 0..n {
                pre.space
                    .neighbor_into(parent.genes(), batch.push_row(), &mut rng);
            }
            black_box(ConfigSlice::new(black_box(batch.row(n - 1)), stride).len())
        })
    });
    group.bench_function("scalar_neighbor_alloc", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let parent = pre.space.random(&mut rng);
        b.iter(|| {
            let v: Vec<Configuration> = (0..n)
                .map(|_| pre.space.neighbor(&parent, &mut rng))
                .collect();
            black_box(v.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_plane);
criterion_main!(benches);
