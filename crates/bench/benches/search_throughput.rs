//! Criterion bench: throughput of the Pareto-construction algorithms
//! (Algorithm 1 and random sampling) per model evaluation — the paper runs
//! 10⁶ iterations in 3 hours including model calls.

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, EvaluatedSet};
use autoax::pareto::TradeoffPoint;
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{heuristic_pareto, random_sampling, SearchOptions};
use autoax::Configuration;
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_ml::EngineKind;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let accel = SobelEd::new();
    let lib = build_library(&LibraryConfig::tiny());
    let images = benchmark_suite(2, 96, 64, 3);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default());
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, 60, 1);
    let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit");
    let estimator = |cfg: &Configuration| {
        let (q, hw) = models.estimate(&pre.space, &lib, cfg);
        TradeoffPoint::new(q, hw)
    };

    let evals = 2000usize;
    let mut group = c.benchmark_group("pareto_construction");
    group.sample_size(10);
    group.throughput(Throughput::Elements(evals as u64));
    group.bench_function("algorithm1_hill_climbing", |b| {
        b.iter(|| {
            black_box(heuristic_pareto(
                &pre.space,
                &estimator,
                &SearchOptions {
                    max_evals: evals,
                    stagnation_limit: 50,
                    seed: 3,
                },
            ))
        })
    });
    group.bench_function("random_sampling", |b| {
        b.iter(|| {
            black_box(random_sampling(
                &pre.space,
                &estimator,
                &SearchOptions {
                    max_evals: evals,
                    stagnation_limit: 50,
                    seed: 3,
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
