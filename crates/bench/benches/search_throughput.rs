//! Criterion bench: throughput of the Pareto-construction algorithms per
//! model evaluation — the paper runs 10⁵ (Sobel) to 10⁶ (GF) estimates per
//! search, which makes this the Step-3 hot path.
//!
//! Compares the **scalar** baseline (the paper-literal sequential
//! Algorithm 1, one `predict_row` per candidate) against the **batched
//! island** search (`heuristic_pareto`: candidates proposed in rounds,
//! estimated through one batched prediction per model, islands spread
//! across `AUTOAX_THREADS` workers). The scalar/batched ratio is the
//! speedup reported in CHANGES.md; on a multi-core host it scales with
//! the core count.

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, EvaluatedSet, ModelEstimator};
use autoax::pareto::TradeoffPoint;
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{heuristic_pareto, heuristic_pareto_scalar, random_sampling, SearchOptions};
use autoax::Configuration;
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_ml::EngineKind;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let accel = SobelEd::new();
    let lib = build_library(&LibraryConfig::tiny());
    let images = benchmark_suite(2, 96, 64, 3);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, 60, 1);
    let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit");
    // Scalar path: one feature encode + one predict_row per candidate.
    let scalar_estimator = |cfg: &Configuration| {
        let (q, hw) = models.estimate(&pre.space, &lib, cfg);
        TradeoffPoint::new(q, hw)
    };
    // Batched path: one matrix + one predict per model per round.
    let batched_estimator = ModelEstimator::new(&models, &pre.space, &lib);

    // A paper_sobel-sized run (10⁵ estimates), few samples: each sample is
    // a full search.
    let evals = 100_000usize;
    let opts = SearchOptions {
        max_evals: evals,
        stagnation_limit: 50,
        seed: 3,
        ..SearchOptions::default()
    };
    println!(
        "search_throughput: {} worker threads ({}={:?})",
        autoax_exec::thread_count(),
        autoax_exec::THREADS_ENV,
        std::env::var(autoax_exec::THREADS_ENV).ok(),
    );
    let mut group = c.benchmark_group("pareto_construction");
    group.sample_size(3);
    group.throughput(Throughput::Elements(evals as u64));
    group.bench_function("algorithm1_scalar_baseline", |b| {
        b.iter(|| {
            black_box(heuristic_pareto_scalar(
                &pre.space,
                &scalar_estimator,
                &opts,
            ))
        })
    });
    group.bench_function("algorithm1_island_batched", |b| {
        b.iter(|| black_box(heuristic_pareto(&pre.space, &batched_estimator, &opts)))
    });
    group.bench_function("random_sampling_scalar", |b| {
        b.iter(|| {
            black_box(random_sampling(
                &pre.space,
                &scalar_estimator,
                &SearchOptions {
                    batch_size: 1,
                    ..opts
                },
            ))
        })
    });
    group.bench_function("random_sampling_batched", |b| {
        b.iter(|| black_box(random_sampling(&pre.space, &batched_estimator, &opts)))
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
