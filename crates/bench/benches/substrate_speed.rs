//! Criterion bench of the substrate layers: bit-parallel logic
//! simulation, synthesis-lite, exhaustive characterization and SSIM —
//! the costs that determine every "real analysis" second in the pipeline.

use autoax_circuit::approx::muls::MulKind;
use autoax_circuit::approx::Behavior;
use autoax_circuit::arith::{array_multiplier, ripple_carry_adder};
use autoax_circuit::sim::{eval_binop_batch, exhaustive_outputs};
use autoax_circuit::synth::synthesize;
use autoax_image::ssim::ssim;
use autoax_image::synthetic::benchmark_suite;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let add8 = ripple_carry_adder(8);
    let mul8 = array_multiplier(8, 8);
    let mut group = c.benchmark_group("bit_parallel_simulation");
    group.throughput(Throughput::Elements(65_536));
    group.bench_function("add8_exhaustive_65536", |b| {
        b.iter(|| black_box(exhaustive_outputs(black_box(&add8))))
    });
    group.bench_function("mul8_exhaustive_65536", |b| {
        b.iter(|| black_box(exhaustive_outputs(black_box(&mul8))))
    });
    let pairs = autoax_circuit::util::stimulus_pairs(8, 8, 4096, 1);
    group.throughput(Throughput::Elements(4096));
    group.bench_function("mul8_sampled_4096", |b| {
        b.iter(|| black_box(eval_binop_batch(black_box(&mul8), 8, 8, black_box(&pairs))))
    });
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mul8 = array_multiplier(8, 8);
    let bam = Behavior::Multiplier {
        wa: 8,
        wb: 8,
        kind: MulKind::Bam { vbl: 8, hbl: 2 },
    }
    .build_netlist();
    let mut group = c.benchmark_group("synthesis_lite");
    group.bench_function("mul8_exact", |b| {
        b.iter(|| black_box(synthesize(black_box(&mul8))))
    });
    group.bench_function("mul8_bam", |b| {
        b.iter(|| black_box(synthesize(black_box(&bam))))
    });
    group.finish();
}

fn bench_ssim(c: &mut Criterion) {
    let imgs = benchmark_suite(2, 384, 256, 9);
    let mut group = c.benchmark_group("qor_metrics");
    group.sample_size(20);
    group.bench_function("ssim_384x256", |b| {
        b.iter(|| black_box(ssim(black_box(&imgs[0]), black_box(&imgs[1]))))
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_synthesis, bench_ssim);
criterion_main!(benches);
