//! Machine-readable benchmark artifact: `bench_out/BENCH_pipeline.json`.
//!
//! The table/figure binaries each own one top-level *section* of a single
//! JSON object (`"table4"`, `"table5"`, `"nn_table"`, …) holding their
//! performance numbers — evals/s, hypervolume, cache hits/misses,
//! per-step timings — so the perf trajectory of the repo is trackable
//! across PRs by diffing one file.
//!
//! Everything is hand-rolled (no serde in the tree): a tiny JSON value
//! model with a deterministic renderer, plus a tolerant *top-level*
//! splitter that lets one binary update its own section without
//! disturbing — or needing to fully parse — the sections written by the
//! others. A malformed existing file is replaced rather than appended to.

use std::fmt::Write as _;
use std::path::Path;

/// A JSON value (insertion-ordered objects, so output is deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience integer constructor.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Renders the value compactly (objects/arrays on one line).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Num(v) if v.is_finite() => {
                // shortest round-trip float; integers lose the ".0"
                if *v == v.trunc() && v.abs() < 9e15 {
                    write!(out, "{}", *v as i64).unwrap();
                } else {
                    write!(out, "{v:?}").unwrap();
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => render_str(s, out),
            Json::Bool(b) => {
                write!(out, "{b}").unwrap();
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_str(k, out);
                    out.push_str(": ");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Splits the *top level* of a JSON object into `(key, raw value text)`
/// pairs without interpreting the values (balanced braces/brackets,
/// escape-aware strings). Returns `None` when the text is not a single
/// well-formed-enough object — the caller then starts a fresh file.
pub fn split_top_level(text: &str) -> Option<Vec<(String, String)>> {
    let bytes = text.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if i >= bytes.len() || bytes[i] != b'{' {
        return None;
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        i = skip_ws(bytes, i);
        if i >= bytes.len() {
            return None;
        }
        if bytes[i] == b'}' {
            return Some(out);
        }
        // key string
        let (key, next) = take_string(text, i)?;
        i = skip_ws(bytes, next);
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let start = i;
        i = take_value(text, i)?;
        out.push((key, text[start..i].trim().to_string()));
        i = skip_ws(bytes, i);
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        } else if i < bytes.len() && bytes[i] == b'}' {
            return Some(out);
        } else {
            return None;
        }
    }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Parses the JSON string starting at `i` (which must be a `"`); returns
/// the unescaped content and the index just past the closing quote.
fn take_string(text: &str, i: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    if i >= bytes.len() || bytes[i] != b'"' {
        return None;
    }
    let mut out = String::new();
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'"' => return Some((out, j + 1)),
            b'\\' => {
                let esc = *bytes.get(j + 1)?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = text.get(j + 2..j + 6)?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        j += 4;
                    }
                    other => out.push(other as char),
                }
                j += 2;
            }
            _ => {
                let c = text[j..].chars().next()?;
                out.push(c);
                j += c.len_utf8();
            }
        }
    }
    None
}

/// Advances past one balanced JSON value starting at `i`; returns the
/// index just past it.
fn take_value(text: &str, i: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    match *bytes.get(i)? {
        b'"' => take_string(text, i).map(|(_, j)| j),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            while j < bytes.len() {
                match bytes[j] {
                    b'"' => {
                        j = take_string(text, j)?.1;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j + 1);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            None
        }
        _ => {
            // scalar: number / true / false / null — runs until a
            // top-level delimiter
            let mut j = i;
            while j < bytes.len() && !matches!(bytes[j], b',' | b'}' | b']') {
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

/// Writes (or replaces) one top-level section of the JSON artifact at
/// `path`, preserving every other section verbatim. A missing or
/// malformed file starts fresh with just this section.
pub fn upsert_section(path: &Path, section: &str, value: &Json) {
    let mut sections: Vec<(String, String)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| split_top_level(&text))
        .unwrap_or_default();
    let rendered = value.render();
    match sections.iter_mut().find(|(k, _)| k == section) {
        Some((_, v)) => *v = rendered,
        None => sections.push((section.to_string(), rendered)),
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in sections.iter().enumerate() {
        let mut key = String::new();
        render_str(k, &mut key);
        out.push_str("  ");
        out.push_str(&key);
        out.push_str(": ");
        out.push_str(v);
        if i + 1 < sections.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
    std::fs::write(path, out).expect("write BENCH json");
}

/// Writes (or replaces) `section` in `bench_out/BENCH_pipeline.json` and
/// reports the path.
pub fn write_bench_section(section: &str, value: &Json) {
    let path = crate::out_dir().join("BENCH_pipeline.json");
    upsert_section(&path, section, value);
    println!("[json] updated section `{section}` of {}", path.display());
}

/// The shared per-run record: per-step timings (seconds), search
/// throughput and the cache ledger of one pipeline result.
pub fn pipeline_record(t: &autoax::pipeline::PipelineTimings) -> Json {
    Json::Obj(vec![
        ("profiling_s".into(), Json::Num(t.profiling.as_secs_f64())),
        ("preprocess_s".into(), Json::Num(t.preprocess.as_secs_f64())),
        (
            "training_data_s".into(),
            Json::Num(t.training_data.as_secs_f64()),
        ),
        ("model_fit_s".into(), Json::Num(t.model_fit.as_secs_f64())),
        (
            "step12_compute_s".into(),
            Json::Num(t.step12_compute.as_secs_f64()),
        ),
        ("cache_load_s".into(), Json::Num(t.cache_load.as_secs_f64())),
        ("cache_hits".into(), Json::int(t.cache_hits as u64)),
        ("cache_misses".into(), Json::int(t.cache_misses as u64)),
        ("search_s".into(), Json::Num(t.search.as_secs_f64())),
        (
            "search_strategy".into(),
            Json::Str(t.search_strategy.to_string()),
        ),
        (
            "search_evals_per_sec".into(),
            Json::Num(t.search_evals_per_sec),
        ),
        ("search_estimates".into(), Json::int(t.search_estimates)),
        (
            "search_propose_s".into(),
            Json::Num(t.search_propose.as_secs_f64()),
        ),
        (
            "search_estimate_s".into(),
            Json::Num(t.search_estimate.as_secs_f64()),
        ),
        (
            "search_insert_s".into(),
            Json::Num(t.search_insert.as_secs_f64()),
        ),
        (
            "search_engines".into(),
            Json::Arr(vec![
                Json::Str(t.search_engines.0.to_string()),
                Json::Str(t.search_engines.1.to_string()),
            ]),
        ),
        ("final_eval_s".into(), Json::Num(t.final_eval.as_secs_f64())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_and_deterministic() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x \"y\"".into())),
            ("c".into(), Json::Arr(vec![Json::Bool(true), Json::int(3)])),
            ("nan".into(), Json::Num(f64::NAN)),
        ]);
        let s = v.render();
        assert_eq!(
            s,
            r#"{"a": 1.5, "b": "x \"y\"", "c": [true, 3], "nan": null}"#
        );
        assert_eq!(v.render(), s);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::int(42).render(), "42");
        assert_eq!(Json::Num(1e-7).render(), "1e-7");
    }

    #[test]
    fn split_top_level_round_trips_rendered_objects() {
        let v = Json::Obj(vec![
            ("t4".into(), Json::Obj(vec![("hv".into(), Json::Num(0.25))])),
            ("t5".into(), Json::Arr(vec![Json::Str("a,b}".into())])),
        ]);
        let parts = split_top_level(&v.render()).expect("parse");
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, "t4");
        assert_eq!(parts[0].1, r#"{"hv": 0.25}"#);
        assert_eq!(parts[1].1, r#"["a,b}"]"#);
    }

    #[test]
    fn split_rejects_malformed_text() {
        assert!(split_top_level("not json").is_none());
        assert!(split_top_level("{\"a\": ").is_none());
        assert!(split_top_level("{\"a\" 1}").is_none());
    }

    #[test]
    fn upsert_preserves_other_sections() {
        let dir = std::env::temp_dir().join(format!("axbench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_pipeline.json");
        let _ = std::fs::remove_file(&path);
        upsert_section(
            &path,
            "table4",
            &Json::Obj(vec![("hv".into(), Json::Num(0.5))]),
        );
        upsert_section(
            &path,
            "table5",
            &Json::Obj(vec![("apps".into(), Json::int(3))]),
        );
        // replace table4, table5 must survive byte-identically
        upsert_section(
            &path,
            "table4",
            &Json::Obj(vec![("hv".into(), Json::Num(0.75))]),
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let parts = split_top_level(&text).expect("well-formed artifact");
        assert_eq!(
            parts,
            vec![
                ("table4".to_string(), r#"{"hv": 0.75}"#.to_string()),
                ("table5".to_string(), r#"{"apps": 3}"#.to_string()),
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
