//! Ablation studies for the design choices the paper calls out
//! (Section 4.1.2):
//!
//! 1. **Hardware model features** — "omitting of power and delay in
//!    hardware modeling led to 2 % lower fidelities of these models in
//!    average": fit the area model on (area, power, delay) per slot vs
//!    area-only features.
//! 2. **QoR model features** — "including different error metrics such as
//!    the error variance did not improve the fidelity of QoR models":
//!    WMED-only vs WMED + per-circuit MAE/variance features.
//! 3. **Application-aware WMED vs workload-blind MAE** for library
//!    pre-processing: how much of the reduced-library quality comes from
//!    profiling the PMFs at all.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin ablation -- --scale default
//! ```

use autoax::evaluate::Evaluator;
use autoax::model::EvaluatedSet;
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax_accel::sobel::SobelEd;
use autoax_bench::{sobel_image_suite, write_csv, Scale};
use autoax_circuit::charlib::build_library;
use autoax_ml::engine::EngineKind;
use autoax_ml::fidelity;
use autoax_ml::linalg::Matrix;

fn fit_and_test(x_train: &Matrix, y_train: &[f64], x_test: &Matrix, y_test: &[f64]) -> f64 {
    let mut model = EngineKind::RandomForest.make(42);
    model.fit(x_train, y_train).expect("fit");
    fidelity(&model.predict(x_test), y_test).expect("fidelity")
}

fn main() {
    let scale = Scale::from_args();
    let accel = SobelEd::new();
    println!("building library (scale {}) ...", scale.label());
    let lib = build_library(&scale.library_config());
    let images = sobel_image_suite(scale);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let (train_n, test_n) = scale.model_budget();
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, train_n, 1);
    let test = EvaluatedSet::generate(&evaluator, &pre.space, test_n, 2);

    let mut rows = Vec::new();

    // --- Ablation 1: hardware model feature sets -------------------------
    let hw_full = |set: &EvaluatedSet| set.hw_matrix(&pre.space, &lib);
    let hw_area_only = |set: &EvaluatedSet| {
        let rows: Vec<Vec<f64>> = set
            .configs
            .iter()
            .map(|c| {
                pre.space
                    .entries(&lib, c)
                    .iter()
                    .map(|e| e.hw.area)
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows)
    };
    let f_full = fit_and_test(
        &hw_full(&train),
        &train.area_targets(),
        &hw_full(&test),
        &test.area_targets(),
    );
    let f_area = fit_and_test(
        &hw_area_only(&train),
        &train.area_targets(),
        &hw_area_only(&test),
        &test.area_targets(),
    );
    println!("\nAblation 1: hardware-model input features (test fidelity)");
    println!("  area+power+delay : {:.1}%", f_full * 100.0);
    println!("  area only        : {:.1}%", f_area * 100.0);
    println!(
        "  delta            : {:+.1}% (paper: ~2% in favour of the full set)",
        (f_full - f_area) * 100.0
    );
    rows.push(vec![
        "hw_features_full_vs_area_only".into(),
        format!("{f_full:.4}"),
        format!("{f_area:.4}"),
    ]);

    // --- Ablation 2: QoR model feature sets ------------------------------
    let qor_wmed = |set: &EvaluatedSet| set.qor_matrix(&pre.space);
    let qor_extended = |set: &EvaluatedSet| {
        let rows: Vec<Vec<f64>> = set
            .configs
            .iter()
            .map(|c| {
                pre.space
                    .entries(&lib, c)
                    .iter()
                    .zip(pre.space.wmeds(c))
                    .flat_map(|(e, wmed)| [wmed, e.err.mae, e.err.var_ed.sqrt()])
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows)
    };
    let f_wmed = fit_and_test(
        &qor_wmed(&train),
        &train.qor_targets(),
        &qor_wmed(&test),
        &test.qor_targets(),
    );
    let f_ext = fit_and_test(
        &qor_extended(&train),
        &train.qor_targets(),
        &qor_extended(&test),
        &test.qor_targets(),
    );
    println!("\nAblation 2: QoR-model input features (test fidelity)");
    println!("  WMED only               : {:.1}%", f_wmed * 100.0);
    println!("  WMED + MAE + error std  : {:.1}%", f_ext * 100.0);
    println!(
        "  delta                   : {:+.1}% (paper: extra error metrics did not help)",
        (f_ext - f_wmed) * 100.0
    );
    rows.push(vec![
        "qor_features_wmed_vs_extended".into(),
        format!("{f_wmed:.4}"),
        format!("{f_ext:.4}"),
    ]);

    // --- Ablation 3: WMED (profiled) vs MAE (workload-blind) filtering ---
    // Re-run pre-processing with uniform PMFs (no profiling information):
    // the per-slot WMED then reduces to the plain MAE.
    let uniform_pmfs: Vec<autoax_accel::Pmf> = accel
        .slots()
        .iter()
        .map(|s| {
            let mut p = autoax_accel::Pmf::new();
            let mut st = 7u64;
            for _ in 0..4096 {
                let r = autoax_circuit::util::splitmix64(&mut st);
                let ma = (1u64 << s.signature.width_a) - 1;
                let mb = (1u64 << s.signature.width_b) - 1;
                p.add((r & ma) as u32, ((r >> 16) & mb) as u32);
            }
            p
        })
        .collect();
    use autoax_accel::Accelerator;
    let pre_blind = autoax::preprocess::preprocess_with_pmfs(
        &accel,
        &lib,
        uniform_pmfs,
        &PreprocessOptions::default(),
    )
    .expect("workload-blind preprocess");
    // Profiled WMED discounts errors the real operand distribution never
    // triggers, so the profiled reduced libraries reach *cheaper* circuits
    // at each error level than workload-blind MAE filtering. Probe both
    // spaces with equal random-sampling budgets and compare the area range
    // they expose.
    use rand::SeedableRng;
    let probe = |space: &autoax::ConfigSpace, seed: u64| -> (f64, f64) {
        let ev = Evaluator::new(&accel, &lib, space, &images);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let configs: Vec<autoax::Configuration> = (0..40).map(|_| space.random(&mut rng)).collect();
        let evals = ev.evaluate_batch(&configs);
        let mean_area = evals.iter().map(|r| r.hw.area).sum::<f64>() / evals.len() as f64;
        let min_area = evals
            .iter()
            .map(|r| r.hw.area)
            .fold(f64::INFINITY, f64::min);
        (mean_area, min_area)
    };
    let (mean_w, min_w) = probe(&pre.space, 3);
    let (mean_b, min_b) = probe(&pre_blind.space, 3);
    println!("\nAblation 3: profiled WMED vs workload-blind (MAE-like) filtering");
    println!(
        "  profiled : reduced space reaches area {:.0}..{:.0} um2 (min..mean of samples)",
        min_w, mean_w
    );
    println!(
        "  blind    : reduced space reaches area {:.0}..{:.0} um2",
        min_b, mean_b
    );
    println!(
        "  profiled filtering admits cheaper implementations: {}",
        min_w <= min_b
    );
    rows.push(vec![
        "preprocess_profiled_vs_blind_min_area".into(),
        format!("{min_w:.2}"),
        format!("{min_b:.2}"),
    ]);

    write_csv("ablation.csv", "study,variant_a,variant_b", &rows);
}
