//! Regenerates **Figure 3**: the operand probability mass functions of
//! the Sobel ED operations, profiled on benchmark data.
//!
//! The paper's plots show (i) operands concentrated near the diagonal
//! (neighbouring pixels are similar) and (ii) regular stripes in the
//! `add2` PMF caused by the shifted second operand. Both structures are
//! rendered as ASCII heat maps, quantified, and exported as CSV grids.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin fig3 -- --scale default
//! ```

use autoax_accel::profile::profile;
use autoax_accel::sobel::SobelEd;
use autoax_accel::Accelerator;
use autoax_bench::{ascii_heatmap, sobel_image_suite, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    let accel = SobelEd::new();
    let images = sobel_image_suite(scale);
    println!(
        "Figure 3: operand PMFs of the Sobel ED ({} images, scale {})",
        images.len(),
        scale.label()
    );
    let pmfs = profile(&accel, &images);
    let bins = 32;
    for (slot, pmf) in accel.slots().iter().zip(pmfs.iter()) {
        let max_a = (1u32 << slot.signature.width_a) - 1;
        let max_b = (1u32 << slot.signature.width_b) - 1;
        let grid = pmf.to_grid(bins, max_a, max_b);
        println!(
            "\n--- D_{} ({}; support {}, diagonal mass(|a-b|<=32): {:.2}) ---",
            slot.name,
            slot.signature,
            pmf.support_len(),
            pmf.diagonal_mass(32)
        );
        println!("{}", ascii_heatmap(&grid, bins));
        let rows: Vec<Vec<String>> = (0..bins)
            .map(|r| {
                (0..bins)
                    .map(|c| format!("{:.3e}", grid[r * bins + c]))
                    .collect()
            })
            .collect();
        write_csv(
            &format!("fig3_pmf_{}.csv", slot.name),
            &(0..bins)
                .map(|c| format!("b{c}"))
                .collect::<Vec<_>>()
                .join(","),
            &rows,
        );
    }

    // The quantitative claims behind the figure:
    // add1/add3 see raw pixels -> strong diagonal concentration.
    assert!(
        pmfs[0].diagonal_mass(32) > 0.5,
        "add1 operands should concentrate near the diagonal"
    );
    assert!(
        pmfs[2].diagonal_mass(32) > 0.5,
        "add3 operands should concentrate near the diagonal"
    );
    // add2's second operand is a shifted pixel -> even values only,
    // producing the paper's "regular white stripes".
    let odd_b_mass: f64 = pmfs[1]
        .iter()
        .filter(|((_, b), _)| b % 2 == 1)
        .map(|(_, p)| p)
        .sum();
    println!("\nadd2: probability mass on odd second operands = {odd_b_mass:.4} (stripes)");
    assert!(
        odd_b_mass < 1e-12,
        "shifted operand must produce even-only stripes"
    );
    // add1 and add3 have nearly identical PMFs (the paper: "add3 has
    // almost identical PMF with add1").
    let g1 = pmfs[0].to_grid(bins, 255, 255);
    let g3 = pmfs[2].to_grid(bins, 255, 255);
    let l1: f64 = g1.iter().zip(g3.iter()).map(|(a, b)| (a - b).abs()).sum();
    println!("L1 distance between D_add1 and D_add3 grids: {l1:.4}");
    assert!(l1 < 0.3, "add1/add3 PMFs should nearly coincide");
}
