//! Regenerates **Figure 4**: the correlation between model-estimated and
//! real (post-synthesis) area for selected learning engines on the Sobel
//! edge detector.
//!
//! The paper's observation: the naïve sum-of-component-areas model
//! over-estimates small accelerators, because a heavily approximated
//! final subtractor lets synthesis strip upstream logic; tree-based models
//! capture this, algebraic ones less so.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin fig4 -- --scale default
//! ```

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, hw_features, naive_models, EvaluatedSet};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax_accel::sobel::SobelEd;
use autoax_bench::{pearson, sobel_image_suite, spearman, write_csv, Scale};
use autoax_circuit::charlib::build_library;
use autoax_ml::EngineKind;

fn main() {
    let scale = Scale::from_args();
    let accel = SobelEd::new();
    println!("building library (scale {}) ...", scale.label());
    let lib = build_library(&scale.library_config());
    let images = sobel_image_suite(scale);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let (train_n, test_n) = scale.model_budget();
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, train_n, 1);
    let test = EvaluatedSet::generate(&evaluator, &pre.space, test_n, 2);
    let real: Vec<f64> = test.area_targets();

    let engines = [
        EngineKind::RandomForest,
        EngineKind::DecisionTree,
        EngineKind::KNeighbors,
        EngineKind::MlpNeuralNetwork,
    ];
    println!(
        "\nFigure 4: estimated vs real area (test set, n = {})",
        real.len()
    );
    println!("{:<24} {:>10} {:>10}", "model", "pearson", "spearman");
    let mut rows: Vec<Vec<String>> = (0..real.len())
        .map(|i| vec![format!("{:.2}", real[i])])
        .collect();
    let mut header = String::from("real_area");
    for kind in engines {
        let models = fit_models(kind, &pre.space, &lib, &train, 42).expect("fit");
        let est: Vec<f64> = test
            .configs
            .iter()
            .map(|c| models.hw.predict_row(&hw_features(&pre.space, &lib, c)))
            .collect();
        println!(
            "{:<24} {:>10.3} {:>10.3}",
            kind.name(),
            pearson(&est, &real),
            spearman(&est, &real)
        );
        header.push_str(&format!(",{}", kind.name().replace(' ', "_")));
        for (row, v) in rows.iter_mut().zip(est.iter()) {
            row.push(format!("{v:.2}"));
        }
    }
    // naive model
    let naive = naive_models(&pre.space);
    let est_naive: Vec<f64> = test
        .configs
        .iter()
        .map(|c| naive.hw.predict_row(&hw_features(&pre.space, &lib, c)))
        .collect();
    println!(
        "{:<24} {:>10.3} {:>10.3}",
        "Naive (sum of areas)",
        pearson(&est_naive, &real),
        spearman(&est_naive, &real)
    );
    header.push_str(",naive_sum");
    for (row, v) in rows.iter_mut().zip(est_naive.iter()) {
        row.push(format!("{v:.2}"));
    }
    write_csv("fig4_scatter.csv", &header, &rows);

    // The Fig.4 effect, quantified: among the smallest-quartile real
    // areas, the naive model's signed error is positive (over-estimate).
    let mut order: Vec<usize> = (0..real.len()).collect();
    order.sort_by(|&a, &b| real[a].partial_cmp(&real[b]).unwrap());
    let q = order.len() / 4;
    let small = &order[..q.max(1)];
    // calibrate naive scale on the whole test set (fidelity-preserving)
    let scale_fit = pearson(&est_naive, &real).signum()
        * (real.iter().sum::<f64>() / est_naive.iter().sum::<f64>());
    let bias: f64 = small
        .iter()
        .map(|&i| est_naive[i] * scale_fit - real[i])
        .sum::<f64>()
        / small.len() as f64;
    println!(
        "\nnaive model bias on the smallest-area quartile (calibrated): {bias:+.1} um2 \
         (positive = over-estimates, the paper's Fig. 4 effect)"
    );
}
