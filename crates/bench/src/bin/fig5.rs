//! Regenerates **Figure 5**: the Pareto fronts (SSIM vs area and SSIM vs
//! energy) obtained by the proposed method, NSGA-II, random-sampling
//! construction and the manual uniform-selection approach, for all three
//! accelerators.
//!
//! All four methods get the same *real-evaluation* budget; CSV series
//! are exported per accelerator and method, and a dominance summary
//! quantifies the paper's visual conclusion (proposed ⪰ RS ≫ uniform for
//! the complex accelerators).
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin fig5 -- --scale default
//! ```

use autoax::evaluate::{Evaluator, RealEval};
use autoax::model::{fit_models, EvaluatedSet, ModelEstimator};
use autoax::pareto::{hypervolume2, ParetoFront, TradeoffPoint};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{run_search, uniform_selection, SearchAlgo, SearchOptions};
use autoax::Configuration;
use autoax_accel::gaussian_fixed::FixedGaussian;
use autoax_accel::gaussian_generic::GenericGaussian;
use autoax_accel::sobel::SobelEd;
use autoax_accel::Accelerator;
use autoax_bench::{sobel_image_suite, write_csv, Scale};
use autoax_circuit::charlib::build_library;
use autoax_image::synthetic::benchmark_suite;
use autoax_ml::EngineKind;

/// Evaluates an even spread of up to `cap` configurations and returns the
/// real (SSIM, area) Pareto front members with their evaluations.
fn real_front<W: autoax_accel::Workload + ?Sized>(
    evaluator: &Evaluator<'_, W>,
    mut configs: Vec<Configuration>,
    cap: usize,
) -> Vec<(Configuration, RealEval)> {
    configs.dedup();
    if configs.len() > cap {
        let n = configs.len();
        configs = (0..cap)
            .map(|i| configs[i * (n - 1) / (cap - 1).max(1)].clone())
            .collect();
    }
    let evals = evaluator.evaluate_batch(&configs);
    let mut front: ParetoFront<(Configuration, RealEval)> = ParetoFront::new();
    for (c, r) in configs.into_iter().zip(evals) {
        front.try_insert(TradeoffPoint::new(r.qor, r.hw.area), (c, r));
    }
    front.into_sorted().into_iter().map(|(_, p)| p).collect()
}

/// 2-D hypervolume (maximize SSIM, minimize area) of really evaluated
/// members against the reference point (ssim = 0, area = `ref_area`) —
/// [`autoax::pareto::hypervolume2`] on the real objectives.
fn hypervolume(members: &[(Configuration, RealEval)], ref_area: f64) -> f64 {
    let pts: Vec<TradeoffPoint> = members
        .iter()
        .map(|(_, r)| TradeoffPoint::new(r.qor, r.hw.area))
        .collect();
    hypervolume2(&pts, TradeoffPoint::new(0.0, ref_area))
}

fn main() {
    let scale = Scale::from_args();
    println!("building library (scale {}) ...", scale.label());
    let lib = build_library(&scale.library_config());
    let (gf_imgs, gf_w, gf_h, sweep) = scale.generic_gf_setup();
    let (train_n, _) = scale.model_budget();
    let (search_evals, eval_cap, levels) = match scale {
        Scale::Quick => (4_000, 30, 12),
        Scale::Default => (50_000, 100, 25),
        Scale::Paper => (1_000_000, 1000, 40),
    };

    let runs: Vec<(Box<dyn Accelerator>, Vec<autoax_image::GrayImage>)> = vec![
        (Box::new(SobelEd::new()), sobel_image_suite(scale)),
        (Box::new(FixedGaussian::new()), sobel_image_suite(scale)),
        (
            Box::new(GenericGaussian::with_sweep(sweep)),
            benchmark_suite(gf_imgs, gf_w, gf_h, 2019),
        ),
    ];
    let mut summary = Vec::new();
    for (accel, images) in runs {
        println!("\n==== {} ====", accel.name());
        let pre = preprocess(accel.as_ref(), &lib, &images, &PreprocessOptions::default())
            .expect("preprocess");
        let evaluator = Evaluator::new(accel.as_ref(), &lib, &pre.space, &images);
        let budget = if accel.name() == "Generic GF" {
            (train_n / 2).max(30)
        } else {
            train_n
        };
        let train = EvaluatedSet::generate(&evaluator, &pre.space, budget, 1);
        let models =
            fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit models");
        let estimator = ModelEstimator::new(&models, &pre.space, &lib);
        let opts = SearchOptions {
            max_evals: search_evals,
            stagnation_limit: 50,
            seed: 11,
            ..SearchOptions::default()
        };
        // proposed: Algorithm 1 on models, then real evaluation
        let hill = run_search(&pre.space, &estimator, &opts);
        let proposed_configs: Vec<Configuration> =
            hill.into_sorted().into_iter().map(|(_, c)| c).collect();
        let proposed = real_front(&evaluator, proposed_configs, eval_cap);
        // NSGA-II at the same estimate budget, same real-eval budget
        let nsga = run_search(
            &pre.space,
            &estimator,
            &SearchOptions {
                strategy: SearchAlgo::Nsga2,
                ..opts
            },
        );
        let nsga_configs: Vec<Configuration> =
            nsga.into_sorted().into_iter().map(|(_, c)| c).collect();
        let nsga_front = real_front(&evaluator, nsga_configs, eval_cap);
        // RS: random configurations with the *same real-evaluation budget*
        // (the paper's blue points: a 3 h random generate-and-evaluate run)
        let rs_front = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(13);
            let configs: Vec<Configuration> =
                (0..eval_cap).map(|_| pre.space.random(&mut rng)).collect();
            real_front(&evaluator, configs, eval_cap)
        };
        // uniform selection (manual method)
        let uniform = real_front(&evaluator, uniform_selection(&pre.space, levels), eval_cap);

        for (name, members) in [
            ("proposed", &proposed),
            ("nsga2", &nsga_front),
            ("rs", &rs_front),
            ("uniform", &uniform),
        ] {
            let rows: Vec<Vec<String>> = members
                .iter()
                .map(|(_, r)| {
                    vec![
                        format!("{:.5}", r.qor),
                        format!("{:.2}", r.hw.area),
                        format!("{:.2}", r.hw.energy),
                        format!("{:.2}", r.hw.power),
                        format!("{:.4}", r.hw.delay),
                    ]
                })
                .collect();
            write_csv(
                &format!(
                    "fig5_{}_{}.csv",
                    accel.name().to_lowercase().replace(' ', "_"),
                    name
                ),
                "ssim,area_um2,energy_fj,power_uw,delay_ns",
                &rows,
            );
        }
        let ref_area = proposed
            .iter()
            .chain(nsga_front.iter())
            .chain(rs_front.iter())
            .chain(uniform.iter())
            .map(|(_, r)| r.hw.area)
            .fold(0.0f64, f64::max)
            * 1.05;
        let hv_p = hypervolume(&proposed, ref_area);
        let hv_n = hypervolume(&nsga_front, ref_area);
        let hv_r = hypervolume(&rs_front, ref_area);
        let hv_u = hypervolume(&uniform, ref_area);
        println!(
            "front sizes: proposed {}, nsga2 {}, rs {}, uniform {}",
            proposed.len(),
            nsga_front.len(),
            rs_front.len(),
            uniform.len()
        );
        println!(
            "hypervolume (ssim x area): proposed {hv_p:.1}, nsga2 {hv_n:.1}, rs {hv_r:.1}, \
             uniform {hv_u:.1}"
        );
        summary.push(vec![
            accel.name().to_string(),
            format!("{hv_p:.2}"),
            format!("{hv_n:.2}"),
            format!("{hv_r:.2}"),
            format!("{hv_u:.2}"),
            proposed.len().to_string(),
            nsga_front.len().to_string(),
            rs_front.len().to_string(),
            uniform.len().to_string(),
        ]);
    }
    write_csv(
        "fig5_summary.csv",
        "accelerator,hv_proposed,hv_nsga2,hv_rs,hv_uniform,n_proposed,n_nsga2,n_rs,n_uniform",
        &summary,
    );
    println!(
        "\nThe paper's visual conclusion corresponds to hv_proposed >= hv_rs and \
         hv_proposed >= hv_uniform on the multi-op accelerators."
    );
}
