//! Measures the fused forest-inference kernel against the matrix +
//! pointer-walk baseline on a paper-shaped Sobel study: random-forest QoR
//! and hardware models driven over a columnar candidate batch in the
//! search layer's 32-row slices, single-threaded, reporting candidate
//! evaluations per second for both paths (one evaluation = one genome
//! through *both* models).
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin forest_kernel -- --scale default
//! ```
//!
//! CI runs the quick scale with a floor on the fused/matrix ratio:
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin forest_kernel -- \
//!     --scale quick --assert-speedup 1.0
//! ```
//!
//! Both paths produce bitwise-identical points (asserted on every run),
//! so the ratio is pure throughput.

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, EvaluatedSet, ModelEstimator};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{ConfigBatch, Estimator};
use autoax::TradeoffPoint;
use autoax_accel::sobel::SobelEd;
use autoax_bench::{sobel_image_suite, write_bench_section, Json, Scale};
use autoax_circuit::charlib::build_library;
use autoax_ml::EngineKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Rows per `estimate_slice` call — the search layer's round granularity.
const SLICE: usize = 32;

/// Parses `--<name> <x>` / `--<name>=<x>` into a number.
fn num_arg<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    let eq = format!("--{name}=");
    let bare = format!("--{name}");
    for (i, a) in args.iter().enumerate() {
        let v = if let Some(rest) = a.strip_prefix(&eq) {
            Some(rest.to_string())
        } else if *a == bare {
            args.get(i + 1).cloned()
        } else {
            None
        };
        if let Some(v) = v {
            match v.parse() {
                Ok(n) => return Some(n),
                Err(_) => panic!("--{name} takes a number, got `{v}`"),
            }
        }
    }
    None
}

/// One timed pass structure: drives the estimator over the whole batch in
/// `SLICE`-row chunks until `min_time` elapses, returning evals/s and the
/// points of the final pass (for the parity check).
fn measure(
    est: &ModelEstimator<'_>,
    batch: &ConfigBatch,
    min_time: f64,
) -> (f64, Vec<TradeoffPoint>) {
    let n = batch.len();
    let mut out: Vec<TradeoffPoint> = Vec::with_capacity(n);
    let pass = |out: &mut Vec<TradeoffPoint>| {
        out.clear();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + SLICE).min(n);
            est.estimate_slice(batch.slice(lo..hi), out);
            lo = hi;
        }
    };
    pass(&mut out); // warm-up: fault pages, fill caches
    let start = Instant::now();
    let mut rows = 0u64;
    loop {
        pass(&mut out);
        black_box(&out);
        rows += n as u64;
        if start.elapsed().as_secs_f64() >= min_time {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (rows as f64 / secs, out)
}

fn main() {
    // Single-thread measurement: the kernel comparison is about work per
    // core, not the parallel schedule.
    std::env::set_var(autoax_exec::THREADS_ENV, "1");
    let scale = Scale::from_args();
    let assert_min: Option<f64> = num_arg("assert-speedup");
    let (batch_rows, min_time) = match scale {
        Scale::Quick => (2_048, 0.3),
        Scale::Default => (8_192, 1.5),
        Scale::Paper => (16_384, 4.0),
    };

    println!("building library (scale {}) ...", scale.label());
    let lib = build_library(&scale.library_config());
    let accel = SobelEd::new();
    let images = sobel_image_suite(scale);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    // `--train <n>` sizes the models independently of the image/library
    // scale (e.g. `--scale quick --train 1500` measures paper-sized
    // forests without the paper-scale evaluation cost).
    let train_n = num_arg("train").unwrap_or(scale.model_budget().0);
    println!("fitting random-forest models on {train_n} configurations ...");
    let train = EvaluatedSet::generate(&evaluator, &pre.space, train_n, 1);
    let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit");

    let members: Vec<usize> = pre.space.slots().iter().map(|s| s.members.len()).collect();
    println!("slots: {} (members per slot: {members:?})", members.len());

    let mut rng = StdRng::seed_from_u64(7);
    let mut batch = ConfigBatch::with_capacity(pre.space.slot_count(), batch_rows);
    for _ in 0..batch_rows {
        pre.space.random_into(batch.push_row(), &mut rng);
    }

    let fused = ModelEstimator::new(&models, &pre.space, &lib);
    let matrix = ModelEstimator::new_unfused(&models, &pre.space, &lib);
    assert_eq!(fused.fused(), (true, true), "forest models must fuse");
    assert_eq!(matrix.fused(), (false, false));

    println!(
        "timing {} candidate rows per pass, {}-row slices, single thread ...",
        batch_rows, SLICE
    );
    let (matrix_eps, matrix_pts) = measure(&matrix, &batch, min_time);
    let (fused_eps, fused_pts) = measure(&fused, &batch, min_time);

    // Both paths must agree bit for bit — the speedup is free of any
    // numeric drift by construction.
    assert_eq!(matrix_pts.len(), fused_pts.len());
    for (i, (m, f)) in matrix_pts.iter().zip(&fused_pts).enumerate() {
        assert_eq!(m.qor.to_bits(), f.qor.to_bits(), "row {i}: qor diverged");
        assert_eq!(m.cost.to_bits(), f.cost.to_bits(), "row {i}: cost diverged");
    }

    let speedup = fused_eps / matrix_eps;
    println!("\nforest_kernel ({} scale, single thread)", scale.label());
    println!("  matrix + pointer-walk: {matrix_eps:>12.0} evals/s");
    println!("  fused gather+traverse: {fused_eps:>12.0} evals/s");
    println!("  speedup:               {speedup:>12.2}x");

    write_bench_section(
        "forest_kernel",
        &Json::Obj(vec![
            ("scale".into(), Json::Str(scale.label().into())),
            ("train_configs".into(), Json::int(train_n as u64)),
            ("threads".into(), Json::int(1)),
            ("batch_rows".into(), Json::int(batch_rows as u64)),
            ("slice_rows".into(), Json::int(SLICE as u64)),
            ("matrix_evals_per_sec".into(), Json::Num(matrix_eps)),
            ("fused_evals_per_sec".into(), Json::Num(fused_eps)),
            ("speedup".into(), Json::Num(speedup)),
        ]),
    );

    if let Some(min) = assert_min {
        assert!(
            speedup >= min,
            "fused path regressed: {speedup:.2}x < required {min:.2}x"
        );
        println!("speedup floor {min:.2}x satisfied");
    }
}
