//! The NN-workload counterpart of Tables 4/5: runs the full three-step
//! pipeline on the quantized-MLP workload of `autoax-nn` under **every**
//! search strategy and reports the really-evaluated
//! **accuracy-vs-power** Pareto front per strategy, with the hypervolume
//! indicator on one shared normalization.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin nn_table -- --scale quick
//! cargo run --release -p autoax-bench --bin nn_table -- --cache-dir .axcache
//! ```
//!
//! With a cache directory, the (strategy-independent) Steps 1–2 are
//! computed once and warm-started for every following strategy — the
//! library/profile reuse pattern the paper argues for.

use autoax::pareto::{joint_hypervolumes, ParetoFront, TradeoffPoint};
use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax::search::SearchAlgo;
use autoax::Configuration;
use autoax_bench::{cache_args, pipeline_record, timings_line, write_bench_section, write_csv};
use autoax_bench::{Json, Scale};
use autoax_nn::NnScenario;
use autoax_store::load_or_build_library;

fn main() {
    let scale = Scale::from_args();
    let (cache_dir, cache_mode) = cache_args();
    println!("building library (scale {}) ...", scale.label());
    let lib_out = load_or_build_library(&scale.library_config(), cache_dir.as_deref(), cache_mode);
    if lib_out.cache_hit {
        println!(
            "library: warm-started from cache in {:.1?}",
            lib_out.load_time
        );
    }
    let lib = lib_out.lib;

    let scenario = match scale {
        Scale::Quick => NnScenario::tiny(),
        _ => NnScenario::default_scale(),
    };
    let (accel, samples) = scenario.build();
    let mlp = accel.mlp();
    println!(
        "network: {} -> {} -> {} quantized MLP, {} samples, exact-net label accuracy {:.3}",
        mlp.input_dim(),
        mlp.layers[0].out_dim,
        mlp.class_count(),
        samples.len(),
        accel.exact_label_accuracy(&samples)
    );

    let (train_n, test_n) = match scale {
        Scale::Quick => (60, 40),
        Scale::Default => (300, 150),
        Scale::Paper => (1500, 1000),
    };
    let base_opts = PipelineOptions {
        train_configs: train_n,
        test_configs: test_n,
        search: autoax::SearchOptions {
            max_evals: match scale {
                Scale::Quick => 5_000,
                Scale::Default => 50_000,
                Scale::Paper => 500_000,
            },
            ..autoax::SearchOptions::default()
        },
        final_eval_cap: match scale {
            Scale::Quick => 40,
            Scale::Default => 150,
            Scale::Paper => 1000,
        },
        cache_dir: cache_dir.clone(),
        cache_mode,
        ..PipelineOptions::paper_sobel()
    };

    // Accuracy-vs-power fronts per strategy (really evaluated members).
    type StrategyRun = (SearchAlgo, Vec<(f64, f64)>, Vec<(String, Json)>);
    let mut fronts: Vec<StrategyRun> = Vec::new();
    for algo in SearchAlgo::ALL {
        let opts = base_opts.clone().with_strategy(algo);
        println!("\n[{algo}]");
        let res = match run_pipeline(&accel, &lib, &samples, &opts) {
            Ok(res) => res,
            Err(e) => {
                println!("    skipped ({e})");
                continue;
            }
        };
        // 2-D accuracy/power front over the real evaluations
        let mut front: ParetoFront<Configuration> = ParetoFront::new();
        for (c, r) in &res.evaluated {
            front.try_insert(TradeoffPoint::new(r.qor, r.hw.power), c.clone());
        }
        let points: Vec<(f64, f64)> = front
            .into_sorted()
            .into_iter()
            .map(|(p, _)| (p.qor, p.cost))
            .collect();
        println!("    timings: {}", timings_line(&res.timings));
        let record = vec![
            (
                "pseudo_front".to_string(),
                Json::int(res.pseudo_front.len() as u64),
            ),
            (
                "acc_power_front".to_string(),
                Json::int(points.len() as u64),
            ),
            (
                "best_accuracy".to_string(),
                Json::Num(points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max)),
            ),
            (
                "qor_fidelity_test".to_string(),
                Json::Num(res.fidelity.qor_test),
            ),
            (
                "hw_fidelity_test".to_string(),
                Json::Num(res.fidelity.hw_test),
            ),
            ("timings".to_string(), pipeline_record(&res.timings)),
        ];
        fronts.push((algo, points, record));
    }

    // Hypervolumes on one shared normalization across every strategy.
    let point_sets: Vec<Vec<TradeoffPoint>> = fronts
        .iter()
        .map(|(_, pts, _)| pts.iter().map(|&(q, p)| TradeoffPoint::new(q, p)).collect())
        .collect();
    let refs: Vec<&[TradeoffPoint]> = point_sets.iter().map(|v| v.as_slice()).collect();
    let hv = joint_hypervolumes(&refs);

    println!(
        "\nNN DSE: accuracy-vs-power Pareto front per search strategy\n\
         {:<11} {:>7} {:>10} {:>12} {:>9}",
        "Algorithm", "#front", "best-acc", "min-pwr(uW)", "hv"
    );
    let mut rows = Vec::new();
    let mut sections = Vec::new();
    for ((algo, points, record), &front_hv) in fronts.iter().zip(hv.iter()) {
        let best_acc = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let min_power = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        println!(
            "{:<11} {:>7} {:>10.4} {:>12.2} {:>9.5}",
            algo.name(),
            points.len(),
            best_acc,
            min_power,
            front_hv
        );
        assert!(!points.is_empty(), "{algo}: empty accuracy/power front");
        assert!(
            (0.0..=1.0).contains(&best_acc),
            "{algo}: accuracy out of range"
        );
        rows.push(vec![
            algo.name().to_string(),
            points.len().to_string(),
            format!("{best_acc:.4}"),
            format!("{min_power:.2}"),
            format!("{front_hv:.5}"),
        ]);
        let mut obj = record.clone();
        obj.push(("hypervolume".to_string(), Json::Num(front_hv)));
        sections.push((algo.name().to_string(), Json::Obj(obj)));
    }
    write_csv(
        "nn_table.csv",
        "algorithm,front,best_accuracy,min_power,hypervolume",
        &rows,
    );
    write_bench_section("nn_table", &Json::Obj(sections));
}
