//! The NN-workload counterpart of Tables 4/5: runs the full three-step
//! pipeline on the quantized-MLP workload of `autoax-nn` under **every**
//! search strategy and reports the really-evaluated
//! **accuracy-vs-power** Pareto front per strategy, with the hypervolume
//! indicator on one shared normalization.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin nn_table -- --scale quick
//! cargo run --release -p autoax-bench --bin nn_table -- --cache-dir .axcache
//! ```
//!
//! With a cache directory, the (strategy-independent) Steps 1–2 are
//! computed once and warm-started for every following strategy — the
//! library/profile reuse pattern the paper argues for.

use autoax::pareto::{joint_hypervolumes, ParetoFront, TradeoffPoint};
use autoax::pipeline::{run_pipeline, PipelineOptions, PipelineResult};
use autoax::search::SearchAlgo;
use autoax::{Configuration, RefinementSchedule};
use autoax_bench::{cache_args, pipeline_record, timings_line, write_bench_section, write_csv};
use autoax_bench::{Json, Scale};
use autoax_nn::NnScenario;
use autoax_store::load_or_build_library;

fn main() {
    let scale = Scale::from_args();
    let (cache_dir, cache_mode) = cache_args();
    println!("building library (scale {}) ...", scale.label());
    let lib_out = load_or_build_library(&scale.library_config(), cache_dir.as_deref(), cache_mode);
    if lib_out.cache_hit {
        println!(
            "library: warm-started from cache in {:.1?}",
            lib_out.load_time
        );
    }
    let lib = lib_out.lib;

    let scenario = match scale {
        Scale::Quick => NnScenario::tiny(),
        _ => NnScenario::default_scale(),
    };
    let (accel, samples) = scenario.build();
    let mlp = accel.mlp();
    println!(
        "network: {} -> {} -> {} quantized MLP, {} samples, exact-net label accuracy {:.3}",
        mlp.input_dim(),
        mlp.layers[0].out_dim,
        mlp.class_count(),
        samples.len(),
        accel.exact_label_accuracy(&samples)
    );

    let (train_n, test_n) = match scale {
        Scale::Quick => (60, 40),
        Scale::Default => (300, 150),
        Scale::Paper => (1500, 1000),
    };
    let base_opts = PipelineOptions {
        train_configs: train_n,
        test_configs: test_n,
        search: autoax::SearchOptions {
            max_evals: match scale {
                Scale::Quick => 5_000,
                Scale::Default => 50_000,
                Scale::Paper => 500_000,
            },
            ..autoax::SearchOptions::default()
        },
        final_eval_cap: match scale {
            Scale::Quick => 40,
            Scale::Default => 150,
            Scale::Paper => 1000,
        },
        cache_dir: cache_dir.clone(),
        cache_mode,
        ..PipelineOptions::paper_sobel()
    };

    // 2-D accuracy/power front over a run's real evaluations.
    let acc_power_front = |res: &PipelineResult| -> Vec<(f64, f64)> {
        let mut front: ParetoFront<Configuration> = ParetoFront::new();
        for (c, r) in &res.evaluated {
            front.try_insert(TradeoffPoint::new(r.qor, r.hw.power), c.clone());
        }
        front
            .into_sorted()
            .into_iter()
            .map(|(p, _)| (p.qor, p.cost))
            .collect()
    };

    // Accuracy-vs-power fronts per strategy (really evaluated members).
    type StrategyRun = (
        SearchAlgo,
        Vec<(f64, f64)>,
        Vec<(String, Json)>,
        Option<[f64; 4]>,
    );
    let mut fronts: Vec<StrategyRun> = Vec::new();
    for algo in SearchAlgo::ALL {
        let opts = base_opts.clone().with_strategy(algo);
        println!("\n[{algo}]");
        let res = match run_pipeline(&accel, &lib, &samples, &opts) {
            Ok(res) => res,
            Err(e) => {
                println!("    skipped ({e})");
                continue;
            }
        };
        let points = acc_power_front(&res);
        println!("    timings: {}", timings_line(&res.timings));
        let mut record = vec![
            (
                "pseudo_front".to_string(),
                Json::int(res.pseudo_front.len() as u64),
            ),
            (
                "acc_power_front".to_string(),
                Json::int(points.len() as u64),
            ),
            (
                "best_accuracy".to_string(),
                Json::Num(points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max)),
            ),
            (
                "qor_fidelity_test".to_string(),
                Json::Num(res.fidelity.qor_test),
            ),
            (
                "hw_fidelity_test".to_string(),
                Json::Num(res.fidelity.hw_test),
            ),
            ("timings".to_string(), pipeline_record(&res.timings)),
        ];

        // Step 2/3 closure under the strategies that warm-start between
        // epochs: refined run vs an unrefined baseline spending the same
        // extra real evals on a bigger initial training set.
        let refine = if matches!(algo, SearchAlgo::Hill | SearchAlgo::Nsga2) {
            let sched = RefinementSchedule::quick();
            let budget = sched.epochs * sched.per_epoch;
            let refined_opts = PipelineOptions {
                search: autoax::SearchOptions {
                    refine: sched,
                    ..opts.search
                },
                ..opts.clone()
            };
            let baseline_opts = PipelineOptions {
                train_configs: opts.train_configs + budget,
                ..opts.clone()
            };
            let refined =
                run_pipeline(&accel, &lib, &samples, &refined_opts).expect("refined pipeline");
            let baseline =
                run_pipeline(&accel, &lib, &samples, &baseline_opts).expect("baseline pipeline");
            let report = refined.refinement.expect("refined run must carry a report");
            let (rp, bp) = (acc_power_front(&refined), acc_power_front(&baseline));
            let to_pts = |pts: &[(f64, f64)]| -> Vec<TradeoffPoint> {
                pts.iter().map(|&(q, p)| TradeoffPoint::new(q, p)).collect()
            };
            let (rt, bt) = (to_pts(&rp), to_pts(&bp));
            let hv = joint_hypervolumes(&[rt.as_slice(), bt.as_slice()]);
            println!(
                "    refine: fidelity qor {:.3} -> {:.3}, hw {:.3} -> {:.3} ({} real evals); \
                 hv {:.4} vs equal-eval baseline {:.4}",
                report.before.qor_test,
                report.after.qor_test,
                report.before.hw_test,
                report.after.hw_test,
                report.real_evals,
                hv[0],
                hv[1]
            );
            record.push((
                "refine".to_string(),
                Json::Obj(vec![
                    ("fid_qor_before".into(), Json::Num(report.before.qor_test)),
                    ("fid_qor_after".into(), Json::Num(report.after.qor_test)),
                    ("fid_hw_before".into(), Json::Num(report.before.hw_test)),
                    ("fid_hw_after".into(), Json::Num(report.after.hw_test)),
                    (
                        "fid_qor_equal_budget_baseline".into(),
                        Json::Num(baseline.fidelity.qor_test),
                    ),
                    (
                        "fid_hw_equal_budget_baseline".into(),
                        Json::Num(baseline.fidelity.hw_test),
                    ),
                    ("real_evals".into(), Json::int(report.real_evals as u64)),
                    ("epochs_run".into(), Json::int(report.epochs_run as u64)),
                    ("hv_refined".into(), Json::Num(hv[0])),
                    ("hv_equal_eval_baseline".into(), Json::Num(hv[1])),
                ]),
            ));
            Some([report.before.qor_test, report.after.qor_test, hv[0], hv[1]])
        } else {
            None
        };
        fronts.push((algo, points, record, refine));
    }

    // Hypervolumes on one shared normalization across every strategy.
    let point_sets: Vec<Vec<TradeoffPoint>> = fronts
        .iter()
        .map(|(_, pts, _, _)| pts.iter().map(|&(q, p)| TradeoffPoint::new(q, p)).collect())
        .collect();
    let refs: Vec<&[TradeoffPoint]> = point_sets.iter().map(|v| v.as_slice()).collect();
    let hv = joint_hypervolumes(&refs);

    println!(
        "\nNN DSE: accuracy-vs-power Pareto front per search strategy\n\
         {:<11} {:>7} {:>10} {:>12} {:>9} {:>19} {:>17}",
        "Algorithm", "#front", "best-acc", "min-pwr(uW)", "hv", "refine-fid", "refine-hv"
    );
    let mut rows = Vec::new();
    let mut sections = Vec::new();
    for ((algo, points, record, refine), &front_hv) in fronts.iter().zip(hv.iter()) {
        let best_acc = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let min_power = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let (fid_col, hv_col) = match refine {
            Some([fb, fa, hr, hb]) => (format!("{fb:.3} -> {fa:.3}"), format!("{hr:.4} / {hb:.4}")),
            None => ("-".to_string(), "-".to_string()),
        };
        println!(
            "{:<11} {:>7} {:>10.4} {:>12.2} {:>9.5} {:>19} {:>17}",
            algo.name(),
            points.len(),
            best_acc,
            min_power,
            front_hv,
            fid_col,
            hv_col
        );
        assert!(!points.is_empty(), "{algo}: empty accuracy/power front");
        assert!(
            (0.0..=1.0).contains(&best_acc),
            "{algo}: accuracy out of range"
        );
        let refine_cols = match refine {
            Some([fb, fa, hr, hb]) => [
                format!("{fb:.4}"),
                format!("{fa:.4}"),
                format!("{hr:.5}"),
                format!("{hb:.5}"),
            ],
            None => std::array::from_fn(|_| "-".to_string()),
        };
        rows.push(vec![
            algo.name().to_string(),
            points.len().to_string(),
            format!("{best_acc:.4}"),
            format!("{min_power:.2}"),
            format!("{front_hv:.5}"),
            refine_cols[0].clone(),
            refine_cols[1].clone(),
            refine_cols[2].clone(),
            refine_cols[3].clone(),
        ]);
        let mut obj = record.clone();
        obj.push(("hypervolume".to_string(), Json::Num(front_hv)));
        sections.push((algo.name().to_string(), Json::Obj(obj)));
    }
    write_csv(
        "nn_table.csv",
        "algorithm,front,best_accuracy,min_power,hypervolume,\
         fid_qor_before,fid_qor_after,hv_refined,hv_equal_eval_baseline",
        &rows,
    );
    write_bench_section("nn_table", &Json::Obj(sections));
}
