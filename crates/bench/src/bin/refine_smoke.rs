//! CI's refine-smoke companion: the quickstart configuration with the
//! active-learning refinement loop on, under both warm-starting
//! strategies (`hill`, `nsga2`). Asserts in-process that the loop never
//! *hurts* the surrogates — fidelity-after ≥ fidelity-before for the
//! QoR and hardware models — and that the final front is non-empty,
//! then records the before/after pair per strategy in
//! `bench_out/BENCH_pipeline.json` (section `refine_smoke`).
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin refine_smoke
//! ```

use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax::search::SearchAlgo;
use autoax::RefinementSchedule;
use autoax_accel::sobel::SobelEd;
use autoax_bench::{write_bench_section, Json};
use autoax_circuit::charlib::{build_library, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;

fn main() {
    let accel = SobelEd::new();
    let lib = build_library(&LibraryConfig::tiny());
    let images = benchmark_suite(4, 96, 64, 7);

    let mut sections: Vec<(String, Json)> = Vec::new();
    for algo in [SearchAlgo::Hill, SearchAlgo::Nsga2] {
        let mut opts = PipelineOptions::quick().with_strategy(algo);
        opts.search.refine = RefinementSchedule::quick();
        let res = run_pipeline(&accel, &lib, &images, &opts).expect("pipeline");
        let r = res.refinement.expect("refined run must carry a report");
        println!(
            "[{algo}] fidelity qor {:.4} -> {:.4}, hw {:.4} -> {:.4} \
             ({} real evals, {} epochs), final front {}",
            r.before.qor_test,
            r.after.qor_test,
            r.before.hw_test,
            r.after.hw_test,
            r.real_evals,
            r.epochs_run,
            res.final_front.len()
        );
        assert!(
            !res.final_front.is_empty(),
            "{algo}: refined run produced an empty final front"
        );
        assert!(
            r.after.qor_test >= r.before.qor_test,
            "{algo}: QoR fidelity dropped {} -> {}",
            r.before.qor_test,
            r.after.qor_test
        );
        assert!(
            r.after.hw_test >= r.before.hw_test,
            "{algo}: hardware fidelity dropped {} -> {}",
            r.before.hw_test,
            r.after.hw_test
        );
        sections.push((
            algo.name().to_string(),
            Json::Obj(vec![
                ("fid_qor_before".into(), Json::Num(r.before.qor_test)),
                ("fid_qor_after".into(), Json::Num(r.after.qor_test)),
                ("fid_hw_before".into(), Json::Num(r.before.hw_test)),
                ("fid_hw_after".into(), Json::Num(r.after.hw_test)),
                ("real_evals".into(), Json::int(r.real_evals as u64)),
                ("epochs_run".into(), Json::int(r.epochs_run as u64)),
                (
                    "final_front".into(),
                    Json::int(res.final_front.len() as u64),
                ),
            ]),
        ));
    }
    write_bench_section("refine_smoke", &Json::Obj(sections));
    println!("refine smoke: fidelity never dropped under hill or nsga2");
}
