//! Search-layer throughput: end-to-end candidate evaluations per second
//! for the hill climb and NSGA-II driving fitted random-forest models
//! over the paper-shaped Sobel study — the full propose → estimate →
//! insert cycle, not just the inference kernel (that is
//! `forest_kernel`'s job).
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin search_speed -- --scale default
//! ```
//!
//! CI runs the quick scale with two floors:
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin search_speed -- \
//!     --scale quick --assert-evals 200000 --assert-ratio 0.8
//! ```
//!
//! * `--assert-evals <n>` — minimum hill-climb evals/s (absolute floor;
//!   calibrate per box, CI uses a conservative value);
//! * `--assert-ratio <r>` — minimum NSGA-II/hill throughput ratio. Both
//!   strategies share the same estimation kernel, so this guards the
//!   strategy-side overhead (variation + rank/crowd selection) staying a
//!   small fraction of the round.
//!
//! The run also sweeps `SearchOptions::threads` over 1/2/4/8 and asserts
//! the hill front is **bit-identical** at every width (the determinism
//! contract: the thread count is a pure throughput knob). Per-phase
//! wall-clock (propose / estimate / insert) and the thread sweep land in
//! `bench_out/BENCH_pipeline.json` under `search_throughput`.

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, EvaluatedSet, ModelEstimator};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{run_search, SearchTimings};
use autoax::{Configuration, ParetoFront, SearchAlgo, SearchOptions};
use autoax_accel::sobel::SobelEd;
use autoax_bench::{sobel_image_suite, write_bench_section, Json, Scale};
use autoax_circuit::charlib::build_library;
use autoax_ml::EngineKind;
use std::time::Instant;

/// Parses `--<name> <x>` / `--<name>=<x>` into a number.
fn num_arg<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    let eq = format!("--{name}=");
    let bare = format!("--{name}");
    for (i, a) in args.iter().enumerate() {
        let v = if let Some(rest) = a.strip_prefix(&eq) {
            Some(rest.to_string())
        } else if *a == bare {
            args.get(i + 1).cloned()
        } else {
            None
        };
        if let Some(v) = v {
            match v.parse() {
                Ok(n) => return Some(n),
                Err(_) => panic!("--{name} takes a number, got `{v}`"),
            }
        }
    }
    None
}

/// FNV-1a over the front's sorted points and genomes — two fronts hash
/// equal iff they are bit-identical (same points, same payloads, same
/// order after the canonical sort).
fn front_digest(front: &ParetoFront<Configuration>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    let mut rows: Vec<(u64, u64, &Configuration)> = front
        .iter()
        .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c))
        .collect();
    rows.sort_by_key(|&(q, c, _)| (q, c));
    for (q, c, cfg) in rows {
        eat(q);
        eat(c);
        for &g in cfg.genes() {
            eat(g as u64);
        }
    }
    h
}

/// One timed search: wall clock plus the per-phase counter delta. The
/// evals/s denominator is the phase layer's estimate counter — the rows
/// actually pushed through the models.
struct Run {
    evals_per_sec: f64,
    phases: SearchTimings,
    wall_s: f64,
    front_len: usize,
    digest: u64,
}

fn measure(space: &autoax::ConfigSpace, est: &ModelEstimator<'_>, opts: &SearchOptions) -> Run {
    let before = SearchTimings::snapshot();
    let t0 = Instant::now();
    let front = run_search(space, est, opts);
    let wall_s = t0.elapsed().as_secs_f64();
    let phases = SearchTimings::snapshot().since(&before);
    Run {
        evals_per_sec: phases.estimates as f64 / wall_s,
        phases,
        wall_s,
        front_len: front.len(),
        digest: front_digest(&front),
    }
}

fn strategy_json(label: &str, r: &Run) -> (String, Json) {
    (
        label.into(),
        Json::Obj(vec![
            ("evals_per_sec".into(), Json::Num(r.evals_per_sec)),
            ("estimates".into(), Json::int(r.phases.estimates)),
            ("wall_s".into(), Json::Num(r.wall_s)),
            ("propose_s".into(), Json::Num(r.phases.propose_s())),
            ("estimate_s".into(), Json::Num(r.phases.estimate_s())),
            ("insert_s".into(), Json::Num(r.phases.insert_s())),
            ("front".into(), Json::int(r.front_len as u64)),
            (
                "front_digest".into(),
                Json::Str(format!("{:016x}", r.digest)),
            ),
        ]),
    )
}

fn main() {
    // The throughput floors must hold *with the metrics registry
    // subscribed* — a hot loop that only meets its floor when telemetry
    // is compiled out would make the no-op-by-default claim vacuous.
    autoax_telemetry::set_metrics(true);
    let scale = Scale::from_args();
    let min_evals: Option<f64> = num_arg("assert-evals");
    let min_ratio: Option<f64> = num_arg("assert-ratio");
    let max_evals = match scale {
        Scale::Quick => 20_000,
        Scale::Default => 100_000,
        Scale::Paper => 400_000,
    };

    println!("building library (scale {}) ...", scale.label());
    let lib = build_library(&scale.library_config());
    let accel = SobelEd::new();
    let images = sobel_image_suite(scale);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train_n = num_arg("train").unwrap_or(scale.model_budget().0);
    println!("fitting random-forest models on {train_n} configurations ...");
    let train = EvaluatedSet::generate(&evaluator, &pre.space, train_n, 1);
    let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit");
    let est = ModelEstimator::new(&models, &pre.space, &lib);
    let engines = est.engines();
    println!(
        "search budget: {max_evals} estimates per strategy (engines: qor={}, hw={})",
        engines.0, engines.1
    );

    let base = SearchOptions {
        max_evals,
        seed: 3,
        threads: 1,
        ..SearchOptions::default()
    };

    // Warm-up pass faults pages and compiles the forests' working set
    // into cache before anything is timed.
    let _ = measure(&pre.space, &est, &base);

    let hill = measure(&pre.space, &est, &base);
    let nsga2 = measure(
        &pre.space,
        &est,
        &SearchOptions {
            strategy: SearchAlgo::Nsga2,
            ..base
        },
    );
    let ratio = nsga2.evals_per_sec / hill.evals_per_sec;

    println!("\nsearch_speed ({} scale, threads=1)", scale.label());
    for (label, r) in [("hill", &hill), ("nsga2", &nsga2)] {
        println!(
            "  {label:<6} {:>9.0} evals/s  (propose {:.2}ms + estimate {:.2}ms + insert {:.2}ms, front {})",
            r.evals_per_sec,
            r.phases.propose_s() * 1e3,
            r.phases.estimate_s() * 1e3,
            r.phases.insert_s() * 1e3,
            r.front_len,
        );
    }
    println!("  nsga2/hill ratio: {ratio:.2}");

    // Thread-scaling sweep. The front must not move by a single bit —
    // islands are deterministic in isolation and merge in island order.
    let mut sweep = Vec::new();
    println!("\n  hill thread scaling:");
    for threads in [1usize, 2, 4, 8] {
        let r = measure(&pre.space, &est, &SearchOptions { threads, ..base });
        assert_eq!(
            r.digest, hill.digest,
            "threads={threads} changed the hill front (digest {:016x} != {:016x})",
            r.digest, hill.digest
        );
        println!(
            "    threads={threads}: {:>9.0} evals/s (front bit-identical)",
            r.evals_per_sec
        );
        sweep.push(Json::Obj(vec![
            ("threads".into(), Json::int(threads as u64)),
            ("evals_per_sec".into(), Json::Num(r.evals_per_sec)),
        ]));
    }

    write_bench_section(
        "search_throughput",
        &Json::Obj(vec![
            ("scale".into(), Json::Str(scale.label().into())),
            ("max_evals".into(), Json::int(max_evals as u64)),
            ("train_configs".into(), Json::int(train_n as u64)),
            (
                "engines".into(),
                Json::Arr(vec![
                    Json::Str(engines.0.into()),
                    Json::Str(engines.1.into()),
                ]),
            ),
            strategy_json("hill", &hill),
            strategy_json("nsga2", &nsga2),
            ("nsga2_hill_ratio".into(), Json::Num(ratio)),
            ("threads_scaling".into(), Json::Arr(sweep)),
        ]),
    );

    if let Some(min) = min_evals {
        assert!(
            hill.evals_per_sec >= min,
            "hill throughput regressed: {:.0} evals/s < required {min:.0}",
            hill.evals_per_sec
        );
        println!("hill evals/s floor {min:.0} satisfied");
    }
    if let Some(min) = min_ratio {
        assert!(
            ratio >= min,
            "nsga2/hill ratio regressed: {ratio:.2} < required {min:.2}"
        );
        println!("nsga2/hill ratio floor {min:.2} satisfied");
    }
}
