//! Regenerates **Table 1**: the number of operations in the target
//! accelerators, by operation class.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin table1
//! ```

use autoax_accel::gaussian_fixed::FixedGaussian;
use autoax_accel::gaussian_generic::GenericGaussian;
use autoax_accel::sobel::SobelEd;
use autoax_accel::Accelerator;
use autoax_bench::write_csv;
use autoax_circuit::OpSignature;

fn main() {
    let accels: Vec<Box<dyn Accelerator>> = vec![
        Box::new(SobelEd::new()),
        Box::new(FixedGaussian::new()),
        Box::new(GenericGaussian::with_sweep(2)),
    ];
    let classes = OpSignature::PAPER_CLASSES;
    println!("Table 1: The number of operations in target accelerators");
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Problem", "add8", "add9", "add16", "sub10", "sub16", "mul8", "total"
    );
    let mut rows = Vec::new();
    // (problem, counts per class) expected from the paper
    let expected = [
        ("Sobel ED", [2, 2, 0, 1, 0, 0], 5),
        ("Fixed GF", [4, 2, 4, 0, 1, 0], 11),
        ("Generic GF", [0, 0, 8, 0, 0, 9], 17),
    ];
    for (accel, (name, exp_counts, exp_total)) in accels.iter().zip(expected.iter()) {
        let counts: Vec<usize> = classes
            .iter()
            .map(|&sig| accel.slots().iter().filter(|s| s.signature == sig).count())
            .collect();
        let total = accel.slots().len();
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            accel.name(),
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            counts[5],
            total
        );
        assert_eq!(accel.name(), *name);
        assert_eq!(
            &counts[..],
            &exp_counts[..],
            "{name}: class counts diverge from paper"
        );
        assert_eq!(
            total, *exp_total,
            "{name}: total op count diverges from paper"
        );
        rows.push(
            std::iter::once(name.to_string())
                .chain(counts.iter().map(|c| c.to_string()))
                .chain(std::iter::once(total.to_string()))
                .collect(),
        );
    }
    write_csv(
        "table1.csv",
        "problem,add8,add9,add16,sub10,sub16,mul8,total",
        &rows,
    );
    println!("\nAll inventories match the paper exactly.");
}
