//! Regenerates **Table 2**: the number of approximate circuits per
//! operation class in the generated library.
//!
//! At `--scale paper` the generator targets the paper's exact counts
//! (6979 / 332 / 884 / 365 / 460 / 29911); smaller scales keep the
//! relative proportions.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin table2 -- --scale default
//! ```

use autoax_bench::{write_csv, Scale};
use autoax_circuit::charlib::build_library;
use autoax_circuit::OpSignature;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let cfg = scale.library_config();
    println!(
        "Table 2: Approximate circuits included in the library (scale: {})",
        scale.label()
    );
    let t0 = Instant::now();
    let lib = build_library(&cfg);
    let dt = t0.elapsed();
    println!("{:<10} {:>10} {:>10}", "instance", "target", "generated");
    let mut rows = Vec::new();
    for sig in OpSignature::PAPER_CLASSES {
        let target = cfg.counts.for_signature(sig);
        let got = lib.class_size(sig);
        println!("{:<10} {:>10} {:>10}", sig.to_string(), target, got);
        assert!(
            got >= target * 95 / 100,
            "{sig}: generated {got} < 95% of target {target}"
        );
        rows.push(vec![sig.to_string(), target.to_string(), got.to_string()]);
    }
    println!(
        "total: {} circuits, generated + characterized in {:.1?}",
        lib.total_size(),
        dt
    );
    // characterization sanity: every entry priced and error-profiled
    for sig in OpSignature::PAPER_CLASSES {
        for e in lib.class(sig) {
            assert!(e.hw.area > 0.0);
            assert!(e.err.samples > 0);
        }
        assert!(lib.class(sig)[0].is_exact());
    }
    write_csv("table2.csv", "class,target,generated", &rows);
}
