//! Regenerates **Table 3**: fidelity of the SSIM and area models for the
//! Sobel edge detector across all fourteen learning engines (thirteen
//! scikit-learn-style regressors plus the naïve models).
//!
//! The reproduction target is the *shape*: tree ensembles on top, linear
//! models around the naïve baseline, the Gaussian process overfitting
//! (train ≫ test), and SGD at the bottom.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin table3 -- --scale default
//! ```

use autoax::evaluate::Evaluator;
use autoax::model::{fidelity_report, fit_models, naive_models, EvaluatedSet};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax_accel::sobel::SobelEd;
use autoax_bench::{sobel_image_suite, write_csv, Scale};
use autoax_circuit::charlib::build_library;
use autoax_ml::EngineKind;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let accel = SobelEd::new();
    println!("building library (scale {}) ...", scale.label());
    let lib = build_library(&scale.library_config());
    let images = sobel_image_suite(scale);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let (train_n, test_n) = scale.model_budget();
    println!(
        "generating {train_n} training + {test_n} testing configurations (real evaluations) ..."
    );
    let t0 = Instant::now();
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, train_n, 1);
    let test = EvaluatedSet::generate(&evaluator, &pre.space, test_n, 2);
    println!("  data ready in {:.1?}", t0.elapsed());

    println!(
        "\nTable 3: fidelity of models for Sobel ED\n{:<28} {:>9} {:>9} {:>9} {:>9}",
        "Learning algorithm", "SSIM-trn", "SSIM-tst", "Area-trn", "Area-tst"
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let t = Instant::now();
        let models = match fit_models(kind, &pre.space, &lib, &train, 42) {
            Ok(m) => m,
            Err(e) => {
                println!("{:<28} failed: {e}", kind.name());
                continue;
            }
        };
        let rep = fidelity_report(&models, &pre.space, &lib, &train, &test).expect("fidelity");
        println!(
            "{:<28} {:>8.0}% {:>8.0}% {:>8.0}% {:>8.0}%   ({:.1?})",
            kind.name(),
            rep.qor_train * 100.0,
            rep.qor_test * 100.0,
            rep.hw_train * 100.0,
            rep.hw_test * 100.0,
            t.elapsed()
        );
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.3}", rep.qor_train),
            format!("{:.3}", rep.qor_test),
            format!("{:.3}", rep.hw_train),
            format!("{:.3}", rep.hw_test),
        ]);
        results.push((kind, rep));
    }
    // naive models
    let naive = naive_models(&pre.space);
    let nrep = fidelity_report(&naive, &pre.space, &lib, &train, &test).expect("fidelity");
    println!(
        "{:<28} {:>9} {:>8.0}% {:>9} {:>8.0}%",
        "Naive model",
        "—",
        nrep.qor_test * 100.0,
        "—",
        nrep.hw_test * 100.0
    );
    rows.push(vec![
        "Naive model".to_string(),
        String::new(),
        format!("{:.3}", nrep.qor_test),
        String::new(),
        format!("{:.3}", nrep.hw_test),
    ]);
    write_csv(
        "table3.csv",
        "engine,ssim_train,ssim_test,area_train,area_test",
        &rows,
    );

    // The paper's qualitative claims:
    let get = |k: EngineKind| results.iter().find(|(kk, _)| *kk == k).map(|(_, r)| *r);
    if let (Some(rf), Some(gp), Some(sgd)) = (
        get(EngineKind::RandomForest),
        get(EngineKind::GaussianProcess),
        get(EngineKind::StochasticGradientDescent),
    ) {
        println!("\nshape checks:");
        let best_test = results
            .iter()
            .map(|(_, r)| r.qor_test)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  random forest within 3% of best test SSIM fidelity: {}",
            rf.qor_test >= best_test - 0.03
        );
        println!(
            "  gaussian process overfits (train - test > 10%): {}",
            gp.qor_train - gp.qor_test > 0.10
        );
        println!(
            "  SGD worst family (test SSIM fidelity {:.0}%): {}",
            sgd.qor_test * 100.0,
            sgd.qor_test <= nrep.qor_test
        );
        println!(
            "  learned area model beats naive sum-of-areas: {}",
            rf.hw_test > nrep.hw_test
        );
    }
}
