//! Regenerates **Table 4**: distances of the fronts found by the proposed
//! algorithm and by random sampling from the optimal Pareto front of the
//! reduced Sobel space, at budgets of 10³/10⁴/10⁵ model evaluations.
//!
//! As in the paper, the "optimal" front is computed by exhaustively
//! enumerating the reduced configuration space *under the estimation
//! models*, and all distances are measured on estimated objectives
//! normalized to `[0, 1]`. The reduced space is capped per slot so that
//! exhaustive enumeration stays tractable at every scale (the paper
//! enumerates 4.92·10⁷ configurations on a cluster; see DESIGN.md).
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin table4 -- --scale default
//! ```

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, EvaluatedSet};
use autoax::pareto::{front_distances, TradeoffPoint};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{exhaustive_front, heuristic_pareto, random_sampling, SearchOptions};
use autoax::Configuration;
use autoax_accel::sobel::SobelEd;
use autoax_bench::{sobel_image_suite, write_csv, Scale};
use autoax_circuit::charlib::build_library;
use autoax_ml::EngineKind;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let accel = SobelEd::new();
    println!("building library (scale {}) ...", scale.label());
    let lib = build_library(&scale.library_config());
    let images = sobel_image_suite(scale);
    // Cap the reduced libraries so the exhaustive "optimal" front stays
    // computable: 12^5 ≈ 2.5e5 (quick/default) or 16^5 ≈ 1.0e6 (paper).
    let slot_cap = match scale {
        Scale::Paper => 16,
        _ => 12,
    };
    let pre = preprocess(
        &accel,
        &lib,
        &images,
        &PreprocessOptions {
            slot_cap: Some(slot_cap),
            ..Default::default()
        },
    );
    println!(
        "reduced space: {:?} => {:.3e} configurations",
        pre.space.sizes(),
        pre.space.size()
    );
    let (train_n, test_n) = scale.model_budget();
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, train_n, 1);
    let _test = test_n; // test set not needed here
    let models =
        fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit models");
    let estimator = |c: &Configuration| {
        let (q, hw) = models.estimate(&pre.space, &lib, c);
        TradeoffPoint::new(q, hw)
    };

    println!("computing the optimal front by exhaustive enumeration ...");
    let t0 = Instant::now();
    let optimal = exhaustive_front(&pre.space, &estimator);
    println!(
        "  optimal Pareto: {} members in {:.1?} ({} evaluations)",
        optimal.len(),
        t0.elapsed(),
        pre.space.size()
    );

    println!(
        "\nTable 4: distance to/from the optimal front (lower is better)\n\
         {:<10} {:>7} {:>8} | {:>9} {:>9} | {:>9} {:>9}",
        "Algorithm", "#eval", "#Pareto", "to-avg", "to-max", "from-avg", "from-max"
    );
    let mut rows = vec![vec![
        "optimal".to_string(),
        format!("{:.0}", pre.space.size()),
        optimal.len().to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]];
    let budgets = [1_000usize, 10_000, 100_000];
    let mut last: Option<(f64, f64)> = None; // (proposed avg, rs avg) at max budget
    for &budget in &budgets {
        for (name, is_hill) in [("Proposed", true), ("Random", false)] {
            let opts = SearchOptions {
                max_evals: budget,
                stagnation_limit: 50,
                seed: 7,
                ..SearchOptions::default()
            };
            let front = if is_hill {
                heuristic_pareto(&pre.space, &estimator, &opts)
            } else {
                random_sampling(&pre.space, &estimator, &opts)
            };
            let d = front_distances(&front.points(), &optimal.points());
            println!(
                "{:<10} {:>7} {:>8} | {:>9.5} {:>9.5} | {:>9.5} {:>9.5}",
                name,
                budget,
                front.len(),
                d.to_optimal.0,
                d.to_optimal.1,
                d.from_optimal.0,
                d.from_optimal.1
            );
            rows.push(vec![
                name.to_string(),
                budget.to_string(),
                front.len().to_string(),
                format!("{:.5}", d.to_optimal.0),
                format!("{:.5}", d.to_optimal.1),
                format!("{:.5}", d.from_optimal.0),
                format!("{:.5}", d.from_optimal.1),
            ]);
            if budget == *budgets.last().unwrap() {
                if is_hill {
                    last = Some((d.from_optimal.0, f64::NAN));
                } else if let Some((h, _)) = last {
                    last = Some((h, d.from_optimal.0));
                }
            }
        }
    }
    write_csv(
        "table4.csv",
        "algorithm,evals,pareto,to_avg,to_max,from_avg,from_max",
        &rows,
    );
    if let Some((hill, rs)) = last {
        println!(
            "\nshape check: at 10^5 evaluations the proposed algorithm covers the optimal \
             front better than RS ({hill:.5} < {rs:.5}): {}",
            hill < rs
        );
    }
}
