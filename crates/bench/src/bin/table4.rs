//! Regenerates **Table 4**: distances of the fronts found by every
//! budgeted search strategy (the proposed island hill climb, NSGA-II and
//! random sampling, plus the manual uniform selection) from the optimal
//! Pareto front of the reduced Sobel space, at budgets of 10³/10⁴/10⁵
//! model evaluations — extended with the hypervolume indicator so the
//! strategies are comparable on one scalar as well.
//!
//! As in the paper, the "optimal" front is computed by exhaustively
//! enumerating the reduced configuration space *under the estimation
//! models*, and all distances are measured on estimated objectives
//! normalized to `[0, 1]`. The reduced space is capped per slot so that
//! exhaustive enumeration stays tractable at every scale (the paper
//! enumerates 4.92·10⁷ configurations on a cluster; see DESIGN.md).
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin table4 -- --scale default
//! ```

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, EvaluatedSet, ModelEstimator};
use autoax::pareto::{front_distances, joint_hypervolumes, TradeoffPoint};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{exhaustive_front, run_search, uniform_selection, SearchAlgo, SearchOptions};
use autoax_accel::sobel::SobelEd;
use autoax_bench::{sobel_image_suite, write_bench_section, write_csv, Json, Scale};
use autoax_circuit::charlib::build_library;
use autoax_ml::EngineKind;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let accel = SobelEd::new();
    println!("building library (scale {}) ...", scale.label());
    let lib = build_library(&scale.library_config());
    let images = sobel_image_suite(scale);
    // Cap the reduced libraries so the exhaustive "optimal" front stays
    // computable: 12^5 ≈ 2.5e5 (quick/default) or 16^5 ≈ 1.0e6 (paper).
    let slot_cap = match scale {
        Scale::Paper => 16,
        _ => 12,
    };
    let pre = preprocess(
        &accel,
        &lib,
        &images,
        &PreprocessOptions {
            slot_cap: Some(slot_cap),
            ..Default::default()
        },
    )
    .expect("preprocess");
    println!(
        "reduced space: {:?} => {:.3e} configurations",
        pre.space.sizes(),
        pre.space.size()
    );
    let (train_n, test_n) = scale.model_budget();
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, train_n, 1);
    let _test = test_n; // test set not needed here
    let models =
        fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit models");
    let estimator = ModelEstimator::new(&models, &pre.space, &lib);

    println!("computing the optimal front by exhaustive enumeration ...");
    let t0 = Instant::now();
    let optimal = exhaustive_front(&pre.space, &estimator);
    println!(
        "  optimal Pareto: {} members in {:.1?} ({} evaluations)",
        optimal.len(),
        t0.elapsed(),
        pre.space.size()
    );

    // Every budgeted strategy at every budget, plus the manual uniform
    // selection once (its size is set by its level grid, not the budget).
    let budgets = [1_000usize, 10_000, 100_000];
    let strategies = [SearchAlgo::Hill, SearchAlgo::Nsga2, SearchAlgo::Random];
    // (name, budget, front, model-estimate throughput of this run)
    type StrategyRun = (
        String,
        usize,
        autoax::ParetoFront<autoax::Configuration>,
        f64,
    );
    let mut fronts: Vec<StrategyRun> = Vec::new();
    for &budget in &budgets {
        for algo in strategies {
            let opts = SearchOptions {
                strategy: algo,
                max_evals: budget,
                stagnation_limit: 50,
                seed: 7,
                ..SearchOptions::default()
            };
            let t = Instant::now();
            let front = run_search(&pre.space, &estimator, &opts);
            let dt = t.elapsed().as_secs_f64().max(1e-12);
            fronts.push((algo.name().to_string(), budget, front, budget as f64 / dt));
        }
    }
    let uniform_opts = SearchOptions {
        strategy: SearchAlgo::Uniform,
        uniform_levels: 40,
        seed: 7,
        ..SearchOptions::default()
    };
    let uniform = run_search(&pre.space, &estimator, &uniform_opts);
    // The uniform baseline's real cost is the deduplicated level-grid
    // size, not the nominal level count.
    let uniform_evals = uniform_selection(&pre.space, uniform_opts.uniform_levels).len();
    // budget-derived throughput is not meaningful for the level-grid-sized
    // uniform baseline (same convention as the pipeline: report 0)
    fronts.push(("uniform".to_string(), uniform_evals, uniform, 0.0));

    // Hypervolumes on one shared normalization (all fronts + optimal).
    let point_sets: Vec<Vec<TradeoffPoint>> = fronts
        .iter()
        .map(|(_, _, f, _)| f.points())
        .chain(std::iter::once(optimal.points()))
        .collect();
    let refs: Vec<&[TradeoffPoint]> = point_sets.iter().map(|v| v.as_slice()).collect();
    let hv = joint_hypervolumes(&refs);
    let hv_optimal = *hv.last().unwrap();

    println!(
        "\nTable 4: distance to/from the optimal front (lower is better), \
         hypervolume (higher is better)\n\
         {:<10} {:>7} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>8}",
        "Algorithm", "#eval", "#Pareto", "to-avg", "to-max", "from-avg", "from-max", "hv"
    );
    println!(
        "{:<10} {:>7} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>8.5}",
        "optimal",
        format!("{:.0}", pre.space.size()),
        optimal.len(),
        "",
        "",
        "",
        "",
        hv_optimal
    );
    let mut rows = vec![vec![
        "optimal".to_string(),
        format!("{:.0}", pre.space.size()),
        optimal.len().to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{hv_optimal:.5}"),
    ]];
    let mut last: Option<(f64, f64)> = None; // (hill avg, rs avg) at max budget
    for ((name, budget, front, _), &front_hv) in fronts.iter().zip(hv.iter()) {
        let d = front_distances(&front.points(), &optimal.points());
        println!(
            "{:<10} {:>7} {:>8} | {:>9.5} {:>9.5} | {:>9.5} {:>9.5} | {:>8.5}",
            name,
            budget,
            front.len(),
            d.to_optimal.0,
            d.to_optimal.1,
            d.from_optimal.0,
            d.from_optimal.1,
            front_hv
        );
        rows.push(vec![
            name.clone(),
            budget.to_string(),
            front.len().to_string(),
            format!("{:.5}", d.to_optimal.0),
            format!("{:.5}", d.to_optimal.1),
            format!("{:.5}", d.from_optimal.0),
            format!("{:.5}", d.from_optimal.1),
            format!("{front_hv:.5}"),
        ]);
        if *budget == *budgets.last().unwrap() {
            if name == "hill" {
                last = Some((d.from_optimal.0, f64::NAN));
            } else if name == "random" {
                if let Some((h, _)) = last {
                    last = Some((h, d.from_optimal.0));
                }
            }
        }
    }
    write_csv(
        "table4.csv",
        "algorithm,evals,pareto,to_avg,to_max,from_avg,from_max,hypervolume",
        &rows,
    );
    // machine-readable perf record: per strategy@budget, the front size,
    // hypervolume and model-estimate throughput of this run
    let mut sections: Vec<(String, Json)> = vec![(
        "optimal".into(),
        Json::Obj(vec![
            ("evals".into(), Json::Num(pre.space.size())),
            ("pareto".into(), Json::int(optimal.len() as u64)),
            ("hypervolume".into(), Json::Num(hv_optimal)),
        ]),
    )];
    for ((name, budget, front, eps), &front_hv) in fronts.iter().zip(hv.iter()) {
        sections.push((
            format!("{name}@{budget}"),
            Json::Obj(vec![
                ("pareto".into(), Json::int(front.len() as u64)),
                ("hypervolume".into(), Json::Num(front_hv)),
                ("evals_per_sec".into(), Json::Num(*eps)),
            ]),
        ));
    }
    write_bench_section("table4", &Json::Obj(sections));
    if let Some((hill, rs)) = last {
        println!(
            "\nshape check: at 10^5 evaluations the proposed algorithm covers the optimal \
             front better than RS ({hill:.5} < {rs:.5}): {}",
            hill < rs
        );
    }
}
