//! Regenerates **Table 5**: the size of the design space after each step
//! of the methodology (all possible → library pre-processing →
//! pseudo-Pareto → final Pareto), for all three accelerators, plus the
//! timing summary of Section 4.2.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin table5 -- --scale default
//! ```
//!
//! Repeat runs warm-start from the persistent store — library
//! characterization and the Steps-1/2 artifacts are loaded instead of
//! recomputed:
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin table5 -- --scale default --cache-dir .axcache
//! ```

use autoax::pareto::{joint_hypervolumes, TradeoffPoint};
use autoax::pipeline::{run_pipeline, PipelineOptions, PipelineResult};
use autoax::RefinementSchedule;
use autoax_accel::gaussian_fixed::FixedGaussian;
use autoax_accel::gaussian_generic::GenericGaussian;
use autoax_accel::sobel::SobelEd;
use autoax_accel::Accelerator;
use autoax_bench::{
    cache_args, pipeline_record, sobel_image_suite, timings_line, write_bench_section, write_csv,
    Json, Scale,
};
use autoax_image::synthetic::benchmark_suite;
use autoax_store::load_or_build_library;

fn main() {
    let scale = Scale::from_args();
    let (cache_dir, cache_mode) = cache_args();
    println!("building library (scale {}) ...", scale.label());
    let lib_out = load_or_build_library(&scale.library_config(), cache_dir.as_deref(), cache_mode);
    if lib_out.cache_hit {
        println!(
            "library: warm-started from cache in {:.1?}",
            lib_out.load_time
        );
    }
    let lib = lib_out.lib;
    let (gf_imgs, gf_w, gf_h, sweep) = scale.generic_gf_setup();
    let (train_n, test_n) = scale.model_budget();
    let opts_sobel = PipelineOptions {
        cache_dir: cache_dir.clone(),
        cache_mode,
        train_configs: train_n,
        test_configs: test_n,
        search: autoax::SearchOptions {
            max_evals: match scale {
                Scale::Quick => 5_000,
                Scale::Default => 50_000,
                Scale::Paper => 100_000,
            },
            ..autoax::SearchOptions::default()
        },
        final_eval_cap: match scale {
            Scale::Quick => 40,
            Scale::Default => 200,
            Scale::Paper => 1000,
        },
        ..PipelineOptions::paper_sobel()
    };
    // the GF studies use bigger search budgets but the same model sizes
    let opts_gf = PipelineOptions {
        search: autoax::SearchOptions {
            max_evals: opts_sobel.search.max_evals * 2,
            ..opts_sobel.search
        },
        train_configs: (train_n / 2).max(30),
        test_configs: (test_n / 2).max(20),
        final_eval_cap: opts_sobel.final_eval_cap / 2,
        ..opts_sobel.clone()
    };

    println!(
        "\nTable 5: design-space size after each methodology step\n\
         {:<12} {:>14} {:>18} {:>14} {:>13}",
        "Application", "all possible", "lib. pre-process", "pseudo Pareto", "final Pareto"
    );
    let mut rows = Vec::new();
    let runs: Vec<(
        Box<dyn Accelerator>,
        Vec<autoax_image::GrayImage>,
        PipelineOptions,
    )> = vec![
        (
            Box::new(SobelEd::new()),
            sobel_image_suite(scale),
            opts_sobel.clone(),
        ),
        (
            Box::new(FixedGaussian::new()),
            sobel_image_suite(scale),
            opts_gf.clone(),
        ),
        (
            Box::new(GenericGaussian::with_sweep(sweep)),
            benchmark_suite(gf_imgs, gf_w, gf_h, 2019),
            opts_gf,
        ),
    ];
    let mut sections: Vec<(String, Json)> = Vec::new();
    for (accel, images, opts) in runs {
        let res = run_pipeline(accel.as_ref(), &lib, &images, &opts).expect("pipeline");
        let (full, reduced, pseudo, final_n) = res.space_sizes_log10();
        println!(
            "{:<12} {:>13.2e} {:>17.2e} {:>14} {:>13}",
            accel.name(),
            10f64.powf(full),
            10f64.powf(reduced),
            pseudo,
            final_n
        );
        // paper shape: each step shrinks the candidate set by orders of
        // magnitude
        assert!(
            full > reduced,
            "{}: pre-processing must reduce",
            accel.name()
        );
        assert!(
            (pseudo as f64) < 10f64.powf(reduced),
            "{}: pseudo front must be far smaller than the reduced space",
            accel.name()
        );
        assert!(final_n <= pseudo);
        rows.push(vec![
            accel.name().to_string(),
            format!("{:.3e}", 10f64.powf(full)),
            format!("{:.3e}", 10f64.powf(reduced)),
            pseudo.to_string(),
            final_n.to_string(),
        ]);
        println!("    timings: {}", timings_line(&res.timings));

        // Step 2/3 closure: refined run vs an unrefined baseline that
        // spends the same extra real evals on a bigger initial training
        // set — fidelity before/after and hypervolume at equal evals.
        let sched = RefinementSchedule::quick();
        let budget = sched.epochs * sched.per_epoch;
        let refined_opts = PipelineOptions {
            search: autoax::SearchOptions {
                refine: sched,
                ..opts.search
            },
            ..opts.clone()
        };
        let baseline_opts = PipelineOptions {
            train_configs: opts.train_configs + budget,
            ..opts.clone()
        };
        let refined =
            run_pipeline(accel.as_ref(), &lib, &images, &refined_opts).expect("refined pipeline");
        let baseline =
            run_pipeline(accel.as_ref(), &lib, &images, &baseline_opts).expect("baseline pipeline");
        let report = refined.refinement.expect("refined run must carry a report");
        let front_pts = |r: &PipelineResult| -> Vec<TradeoffPoint> {
            r.final_front
                .iter()
                .map(|m| TradeoffPoint::new(m.qor, m.area))
                .collect()
        };
        let rf = front_pts(&refined);
        let bf = front_pts(&baseline);
        let hv = joint_hypervolumes(&[rf.as_slice(), bf.as_slice()]);
        println!(
            "    refine: fidelity qor {:.3} -> {:.3}, hw {:.3} -> {:.3} ({} real evals); \
             hv {:.4} vs equal-eval baseline {:.4}",
            report.before.qor_test,
            report.after.qor_test,
            report.before.hw_test,
            report.after.hw_test,
            report.real_evals,
            hv[0],
            hv[1]
        );
        rows.last_mut().expect("row just pushed").extend([
            format!("{:.4}", report.before.qor_test),
            format!("{:.4}", report.after.qor_test),
            format!("{:.5}", hv[0]),
            format!("{:.5}", hv[1]),
        ]);
        sections.push((
            accel.name().to_string(),
            Json::Obj(vec![
                ("all_possible_log10".into(), Json::Num(full)),
                ("after_preprocess_log10".into(), Json::Num(reduced)),
                ("pseudo_pareto".into(), Json::int(pseudo as u64)),
                ("final_pareto".into(), Json::int(final_n as u64)),
                ("timings".into(), pipeline_record(&res.timings)),
                (
                    "refine".into(),
                    Json::Obj(vec![
                        ("fid_qor_before".into(), Json::Num(report.before.qor_test)),
                        ("fid_qor_after".into(), Json::Num(report.after.qor_test)),
                        ("fid_hw_before".into(), Json::Num(report.before.hw_test)),
                        ("fid_hw_after".into(), Json::Num(report.after.hw_test)),
                        (
                            "fid_qor_equal_budget_baseline".into(),
                            Json::Num(baseline.fidelity.qor_test),
                        ),
                        (
                            "fid_hw_equal_budget_baseline".into(),
                            Json::Num(baseline.fidelity.hw_test),
                        ),
                        ("real_evals".into(), Json::int(report.real_evals as u64)),
                        ("epochs_run".into(), Json::int(report.epochs_run as u64)),
                        ("hv_refined".into(), Json::Num(hv[0])),
                        ("hv_equal_eval_baseline".into(), Json::Num(hv[1])),
                    ]),
                ),
            ]),
        ));
    }
    write_csv(
        "table5.csv",
        "application,all_possible,after_preprocessing,pseudo_pareto,final_pareto,\
         fid_qor_before,fid_qor_after,hv_refined,hv_baseline",
        &rows,
    );
    write_bench_section("table5", &Json::Obj(sections));
}
