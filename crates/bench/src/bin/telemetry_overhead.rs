//! Telemetry overhead on the search hot loop: the same hill-climb
//! measurement as `search_speed`, run three times under different
//! subscription states:
//!
//! * `off` — telemetry disabled; every instrumentation site pays one
//!   relaxed atomic load and nothing else (the default for library
//!   users who never call [`autoax_telemetry::init_from_env`]);
//! * `metrics` — the metrics registry subscribed: phase histograms and
//!   the estimate counter record on every search round;
//! * `traced` — metrics plus span collection (what `AUTOAX_TRACE` turns
//!   on): strategy/pipeline spans are allocated and retained.
//!
//! The run asserts the front digest is identical across all three
//! states — observing a search must never change its result — and
//! records evals/s plus overhead percentages under the
//! `telemetry_overhead` section of `bench_out/BENCH_pipeline.json`.
//!
//! ```sh
//! cargo run --release -p autoax-bench --bin telemetry_overhead -- --scale quick
//! ```
//!
//! `--assert-overhead <pct>` turns the subscribed-state overhead into a
//! CI floor: the run fails if `metrics` costs more than `pct` percent
//! of the `off` throughput.

use autoax::evaluate::Evaluator;
use autoax::model::{fit_models, EvaluatedSet, ModelEstimator};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{run_search, SearchTimings};
use autoax::{Configuration, ParetoFront, SearchOptions};
use autoax_accel::sobel::SobelEd;
use autoax_bench::{sobel_image_suite, write_bench_section, Json, Scale};
use autoax_circuit::charlib::build_library;
use autoax_ml::EngineKind;
use autoax_telemetry as telemetry;
use std::time::Instant;

/// Parses `--<name> <x>` / `--<name>=<x>` into a number.
fn num_arg<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    let eq = format!("--{name}=");
    let bare = format!("--{name}");
    for (i, a) in args.iter().enumerate() {
        let v = if let Some(rest) = a.strip_prefix(&eq) {
            Some(rest.to_string())
        } else if *a == bare {
            args.get(i + 1).cloned()
        } else {
            None
        };
        if let Some(v) = v {
            match v.parse() {
                Ok(n) => return Some(n),
                Err(_) => panic!("--{name} takes a number, got `{v}`"),
            }
        }
    }
    None
}

/// FNV-1a over the front's sorted points and genomes (as in
/// `search_speed`): equal digests iff bit-identical fronts.
fn front_digest(front: &ParetoFront<Configuration>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    let mut rows: Vec<(u64, u64, &Configuration)> = front
        .iter()
        .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c))
        .collect();
    rows.sort_by_key(|&(q, c, _)| (q, c));
    for (q, c, cfg) in rows {
        eat(q);
        eat(c);
        for &g in cfg.genes() {
            eat(g as u64);
        }
    }
    h
}

struct Run {
    evals_per_sec: f64,
    digest: u64,
}

fn measure(space: &autoax::ConfigSpace, est: &ModelEstimator<'_>, opts: &SearchOptions) -> Run {
    let before = SearchTimings::snapshot();
    let t0 = Instant::now();
    let front = run_search(space, est, opts);
    let wall_s = t0.elapsed().as_secs_f64();
    let phases = SearchTimings::snapshot().since(&before);
    Run {
        evals_per_sec: phases.estimates as f64 / wall_s,
        digest: front_digest(&front),
    }
}

fn main() {
    let scale = Scale::from_args();
    let max_overhead_pct: Option<f64> = num_arg("assert-overhead");
    let max_evals = match scale {
        Scale::Quick => 20_000,
        Scale::Default => 100_000,
        Scale::Paper => 400_000,
    };

    println!("building library (scale {}) ...", scale.label());
    let lib = build_library(&scale.library_config());
    let accel = SobelEd::new();
    let images = sobel_image_suite(scale);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train_n = scale.model_budget().0;
    println!("fitting random-forest models on {train_n} configurations ...");
    let train = EvaluatedSet::generate(&evaluator, &pre.space, train_n, 1);
    let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).expect("fit");
    let est = ModelEstimator::new(&models, &pre.space, &lib);

    let opts = SearchOptions {
        max_evals,
        seed: 3,
        threads: 1,
        ..SearchOptions::default()
    };

    // Warm-up, then best-of-3 per state so allocator/cache noise at the
    // quick scale doesn't masquerade as telemetry cost.
    let best = |space, est: &ModelEstimator<'_>, opts: &SearchOptions| {
        let mut best: Option<Run> = None;
        for _ in 0..3 {
            let r = measure(space, est, opts);
            if best
                .as_ref()
                .is_none_or(|b| r.evals_per_sec > b.evals_per_sec)
            {
                best = Some(r);
            }
        }
        best.expect("three runs")
    };

    telemetry::set_metrics(false);
    telemetry::set_tracing(false);
    let _ = measure(&pre.space, &est, &opts); // warm-up
    let off = best(&pre.space, &est, &opts);

    telemetry::set_metrics(true);
    let metrics = best(&pre.space, &est, &opts);

    telemetry::set_tracing(true);
    let traced = best(&pre.space, &est, &opts);
    telemetry::set_tracing(false);
    telemetry::set_metrics(false);
    let _ = telemetry::take_spans(); // this process has no trace consumer

    assert_eq!(
        off.digest, metrics.digest,
        "subscribing the metrics registry changed the search result"
    );
    assert_eq!(
        off.digest, traced.digest,
        "enabling span collection changed the search result"
    );

    let pct = |state: &Run| (1.0 - state.evals_per_sec / off.evals_per_sec) * 100.0;
    let metrics_pct = pct(&metrics);
    let traced_pct = pct(&traced);

    println!(
        "\ntelemetry_overhead ({} scale, hill, threads=1)",
        scale.label()
    );
    println!("  off      {:>9.0} evals/s", off.evals_per_sec);
    println!(
        "  metrics  {:>9.0} evals/s  ({:+.1}% vs off)",
        metrics.evals_per_sec, -metrics_pct
    );
    println!(
        "  traced   {:>9.0} evals/s  ({:+.1}% vs off)",
        traced.evals_per_sec, -traced_pct
    );
    println!(
        "  front digest identical across states: {:016x}",
        off.digest
    );

    write_bench_section(
        "telemetry_overhead",
        &Json::Obj(vec![
            ("scale".into(), Json::Str(scale.label().into())),
            ("max_evals".into(), Json::int(max_evals as u64)),
            ("evals_per_sec_off".into(), Json::Num(off.evals_per_sec)),
            (
                "evals_per_sec_metrics".into(),
                Json::Num(metrics.evals_per_sec),
            ),
            (
                "evals_per_sec_traced".into(),
                Json::Num(traced.evals_per_sec),
            ),
            ("metrics_overhead_pct".into(), Json::Num(metrics_pct)),
            ("traced_overhead_pct".into(), Json::Num(traced_pct)),
            (
                "front_digest".into(),
                Json::Str(format!("{:016x}", off.digest)),
            ),
        ]),
    );

    if let Some(max) = max_overhead_pct {
        assert!(
            metrics_pct <= max,
            "metrics overhead {metrics_pct:.1}% exceeds the {max:.1}% budget"
        );
        println!("metrics overhead budget {max:.1}% satisfied");
    }
}
