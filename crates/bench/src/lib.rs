//! Shared infrastructure for the table/figure regeneration binaries.
//!
//! Every binary accepts `--scale quick|default|paper`:
//!
//! * `quick` — seconds; tiny library, small images (CI smoke runs);
//! * `default` — minutes on a laptop; preserves every qualitative claim;
//! * `paper` — the paper's library sizes (Table 2) and budgets; hours.
//!
//! Binaries that run the pipeline additionally accept the warm-start
//! flags `--cache-dir <path>` and `--cache off|read|rw` (parsed by
//! [`cache_args`]); see `docs/ARCHITECTURE.md` for the cache design.
//!
//! Results are printed and also written as CSV under `bench_out/`; the
//! pipeline-driving binaries (table4, table5, nn_table) additionally
//! maintain their sections of the machine-readable
//! `bench_out/BENCH_pipeline.json` ([`bench_json`]) so evals/s,
//! hypervolume, cache hit/miss counts and per-step timings are trackable
//! across PRs.
//!
//! # Example
//!
//! The correlation helpers used by the fidelity tables:
//!
//! ```
//! use autoax_bench::{pearson, spearman};
//!
//! let a = [1.0, 2.0, 3.0, 4.0];
//! let b = [10.0, 20.0, 30.0, 40.0];
//! assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
//! assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
//! ```

pub mod bench_json;

pub use bench_json::{pipeline_record, upsert_section, write_bench_section, Json};

use autoax::pipeline::PipelineTimings;
use autoax_circuit::charlib::{ClassCounts, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_image::GrayImage;
use autoax_store::cache::CacheMode;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Run scale of a regeneration binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds; smoke-test sizes.
    Quick,
    /// Minutes; laptop sizes (the default).
    Default,
    /// The paper's sizes and budgets.
    Paper,
}

impl Scale {
    /// Parses `--scale <s>` / `--scale=<s>` from `std::env::args`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            let v = if let Some(rest) = a.strip_prefix("--scale=") {
                Some(rest.to_string())
            } else if a == "--scale" {
                args.get(i + 1).cloned()
            } else {
                None
            };
            if let Some(v) = v {
                return match v.as_str() {
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    "default" => Scale::Default,
                    other => {
                        autoax_telemetry::ax_warn!("unknown scale `{other}`, using default");
                        Scale::Default
                    }
                };
            }
        }
        Scale::Default
    }

    /// The library configuration for this scale.
    pub fn library_config(self) -> LibraryConfig {
        match self {
            Scale::Quick => LibraryConfig::tiny(),
            Scale::Default => LibraryConfig {
                counts: ClassCounts::default_scale(),
                ..LibraryConfig::default()
            },
            Scale::Paper => LibraryConfig::paper(),
        }
    }

    /// Benchmark image geometry `(count, width, height)` for QoR analysis
    /// of the Sobel / fixed-GF studies (paper: 24 images of 384×256).
    pub fn sobel_images(self) -> (usize, usize, usize) {
        match self {
            Scale::Quick => (2, 96, 64),
            Scale::Default => (6, 192, 128),
            Scale::Paper => (24, 384, 256),
        }
    }

    /// Image set and kernel sweep for the generic GF (paper: 4 images,
    /// 50 kernels).
    pub fn generic_gf_setup(self) -> (usize, usize, usize, usize) {
        // (images, width, height, kernels)
        match self {
            Scale::Quick => (2, 64, 48, 2),
            Scale::Default => (2, 128, 96, 8),
            Scale::Paper => (4, 384, 256, 50),
        }
    }

    /// Training/testing configuration counts for model construction
    /// (paper: 1500/1500 Sobel, 4000/1000 GF).
    pub fn model_budget(self) -> (usize, usize) {
        match self {
            Scale::Quick => (60, 40),
            Scale::Default => (400, 200),
            Scale::Paper => (1500, 1500),
        }
    }

    /// Scale label for file names.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

/// The standard benchmark image suite for a scale.
pub fn sobel_image_suite(scale: Scale) -> Vec<GrayImage> {
    let (n, w, h) = scale.sobel_images();
    benchmark_suite(n, w, h, 2019)
}

/// Parses the warm-start flags `--cache-dir <path>` (or `--cache-dir=`)
/// and `--cache off|read|rw` from `std::env::args`.
///
/// Thin wrapper over [`autoax_store::parse_cache_flags`] — the one flag
/// parser shared with the examples, so every entry point accepts the
/// same syntax and handles bad input identically (an unknown mode warns
/// and disables caching).
pub fn cache_args() -> (Option<PathBuf>, CacheMode) {
    let args: Vec<String> = std::env::args().collect();
    autoax_store::parse_cache_flags(&args)
}

/// One-line stage/cache timing summary of a pipeline run, making the
/// Steps-1–2 breakdown and warm-start savings visible in bench output.
pub fn timings_line(t: &PipelineTimings) -> String {
    let mut s = String::new();
    if t.cache_hits > 0 {
        write!(
            s,
            "cache warm ({} hit, load {:.1?} vs compute-equivalent skipped)",
            t.cache_hits, t.cache_load
        )
        .unwrap();
    } else {
        write!(
            s,
            "step1 profile {:.1?} + wmed/pareto {:.1?}, step2 data {:.1?} + fit {:.1?}",
            t.profiling,
            t.preprocess.saturating_sub(t.profiling),
            t.training_data,
            t.model_fit
        )
        .unwrap();
        if t.cache_misses > 0 {
            write!(s, " [cache miss]").unwrap();
        }
    }
    write!(
        s,
        "; search {:.1?} ({:.2e} evals/s), final {:.1?}",
        t.search, t.search_evals_per_sec, t.final_eval
    )
    .unwrap();
    s
}

/// Output directory for CSV artifacts (`bench_out/`), created on demand.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("bench_out");
    std::fs::create_dir_all(&dir).expect("create bench_out/");
    dir
}

/// Writes a CSV file under `bench_out/` and reports its path.
pub fn write_csv(name: &str, header: &str, rows: &[Vec<String>]) {
    let mut body = String::new();
    writeln!(body, "{header}").unwrap();
    for row in rows {
        writeln!(body, "{}", row.join(",")).unwrap();
    }
    let path = out_dir().join(name);
    std::fs::write(&path, body).expect("write csv");
    println!("[csv] wrote {}", path.display());
}

/// Renders a normalized row-major grid as a coarse ASCII heat map
/// (darkest = highest probability), for terminal-friendly Fig. 3 output.
pub fn ascii_heatmap(grid: &[f64], bins: usize) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = grid.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let mut s = String::new();
    // print with row 0 at the bottom (operand-1 axis upward)
    for r in (0..bins).rev() {
        for c in 0..bins {
            let v = grid[r * bins + c];
            // log-ish scaling mirrors the paper's log color scale
            let t = ((v / max).powf(0.25) * (SHADES.len() - 1) as f64).round() as usize;
            s.push(SHADES[t.min(SHADES.len() - 1)]);
            s.push(SHADES[t.min(SHADES.len() - 1)]);
        }
        s.push('\n');
    }
    s
}

/// Pearson correlation coefficient of two equal-length samples.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-300)
}

/// Spearman rank correlation.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap_or(std::cmp::Ordering::Equal));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    pearson(&rank(a), &rank(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_anticorrelation_is_minus_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_based() {
        // monotone but nonlinear: spearman 1, pearson < 1
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 10.0, 100.0, 1000.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert!(pearson(&a, &b) < 0.99);
    }

    #[test]
    fn heatmap_shape() {
        let grid = vec![0.1; 16];
        let m = ascii_heatmap(&grid, 4);
        assert_eq!(m.lines().count(), 4);
        assert!(m.lines().all(|l| l.chars().count() == 8));
    }

    #[test]
    fn scale_configs_are_ordered() {
        assert!(
            Scale::Quick.library_config().counts.add8 < Scale::Paper.library_config().counts.add8
        );
        assert_eq!(Scale::Paper.library_config().counts.mul8, 29911);
    }
}
