//! Approximate adder families: truncation, LOA, ETA-I (XOR lower part),
//! ACA, GeAr, QuAd-style segmentation and per-bit approximate-cell ripple
//! adders.
//!
//! All variants take two `w`-bit operands and produce a `w+1`-bit result
//! (matching the exact adder interface), so they are drop-in replacements
//! inside an accelerator.

use super::cells::FaCell;
use crate::arith;
use crate::netlist::{Bus, Netlist};
use crate::util::mask;
use std::sync::Arc;

/// The adder variants of the generated library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdderKind {
    /// Exact ripple-carry adder.
    Exact,
    /// Exact flat carry-lookahead adder (same function as [`Self::Exact`],
    /// more area, shorter critical path — architecture diversity for the
    /// hardware cost models).
    ExactCla,
    /// Lower `k` result bits forced to 0; the upper part adds `a>>k` and
    /// `b>>k` exactly.
    TruncZero {
        /// Number of truncated low bits (`1..w`).
        k: u32,
    },
    /// Lower `k` result bits pass operand `a` through unchanged.
    TruncPass {
        /// Number of passed-through low bits (`1..w`).
        k: u32,
    },
    /// Lower-part OR adder: low `k` bits are `a | b`; the upper adder gets
    /// a speculated carry `a[k-1] & b[k-1]`.
    Loa {
        /// Width of the OR-ed lower part (`1..w`).
        k: u32,
    },
    /// ETA-I style: low `k` bits are `a ^ b` with no carry generated.
    XorLower {
        /// Width of the XOR-ed lower part (`1..w`).
        k: u32,
    },
    /// Almost-correct adder: the carry into each bit is computed from a
    /// window of the previous `r` bit positions only.
    Aca {
        /// Carry speculation window (`1..w`).
        r: u32,
    },
    /// GeAr-style generic accuracy-configurable adder: overlapping
    /// sub-adders of `r + p` bits, each producing `r` new result bits with
    /// `p` bits of carry prediction.
    Gear {
        /// Result bits produced per sub-adder.
        r: u32,
        /// Prediction (overlap) bits per sub-adder.
        p: u32,
    },
    /// QuAd-style segmented adder: the operands are split into independent
    /// segments (LSB-first widths in `segs`); carries do not cross segment
    /// boundaries. With `speculate`, each segment's carry-in is the AND of
    /// the operand MSBs of the previous segment.
    Seg {
        /// Segment widths, LSB first; must sum to `w`.
        segs: Vec<u8>,
        /// Enable 1-bit carry speculation between segments.
        speculate: bool,
    },
    /// Ripple adder with a per-bit choice of (possibly approximate) cells.
    CellRipple {
        /// One cell per bit position, LSB first; length must equal `w`.
        cells: Arc<[FaCell]>,
    },
}

impl AdderKind {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            AdderKind::Exact => "add_exact".into(),
            AdderKind::ExactCla => "add_exact_cla".into(),
            AdderKind::TruncZero { k } => format!("add_trunc0_k{k}"),
            AdderKind::TruncPass { k } => format!("add_truncp_k{k}"),
            AdderKind::Loa { k } => format!("add_loa_k{k}"),
            AdderKind::XorLower { k } => format!("add_eta_k{k}"),
            AdderKind::Aca { r } => format!("add_aca_r{r}"),
            AdderKind::Gear { r, p } => format!("add_gear_r{r}p{p}"),
            AdderKind::Seg { segs, speculate } => {
                let s: Vec<String> = segs.iter().map(|x| x.to_string()).collect();
                format!(
                    "add_seg_{}{}",
                    s.join("_"),
                    if *speculate { "_spec" } else { "" }
                )
            }
            AdderKind::CellRipple { .. } => "add_cells".into(),
        }
    }
}

/// Functional model: computes the `w+1`-bit result.
pub fn eval(w: u32, kind: &AdderKind, a: u64, b: u64) -> u64 {
    debug_assert!(a <= mask(w) && b <= mask(w));
    match kind {
        AdderKind::Exact | AdderKind::ExactCla => a + b,
        AdderKind::TruncZero { k } => ((a >> k) + (b >> k)) << k,
        AdderKind::TruncPass { k } => (((a >> k) + (b >> k)) << k) | (a & mask(*k)),
        AdderKind::Loa { k } => {
            let low = (a | b) & mask(*k);
            let cin = (a >> (k - 1)) & (b >> (k - 1)) & 1;
            (((a >> k) + (b >> k) + cin) << k) | low
        }
        AdderKind::XorLower { k } => {
            let low = (a ^ b) & mask(*k);
            (((a >> k) + (b >> k)) << k) | low
        }
        AdderKind::Aca { r } => {
            let mut res = 0u64;
            for i in 0..=w {
                let lo = i.saturating_sub(*r);
                let win = i - lo;
                let cin = if win == 0 {
                    0
                } else {
                    (((a >> lo) & mask(win)) + ((b >> lo) & mask(win))) >> win
                };
                let bit = if i < w {
                    ((a >> i) ^ (b >> i) ^ cin) & 1
                } else {
                    cin & 1
                };
                res |= bit << i;
            }
            res
        }
        AdderKind::Gear { r, p } => {
            let first = r + p;
            if first >= w {
                return a + b;
            }
            let s0 = (a & mask(first)) + (b & mask(first));
            let mut res = s0 & mask(first);
            let mut carry_out = 0;
            let mut m = first;
            while m < w {
                let lo = m - p;
                let r_eff = (*r).min(w - m);
                let wa = (a >> lo) & mask(p + r_eff);
                let wb = (b >> lo) & mask(p + r_eff);
                let s = wa + wb;
                res |= ((s >> p) & mask(r_eff)) << m;
                carry_out = (s >> (p + r_eff)) & 1;
                m += r_eff;
            }
            res | (carry_out << w)
        }
        AdderKind::Seg { segs, speculate } => {
            debug_assert_eq!(segs.iter().map(|&s| s as u32).sum::<u32>(), w);
            let mut res = 0u64;
            let mut off = 0u32;
            for (j, &s) in segs.iter().enumerate() {
                let s = s as u32;
                let sa = (a >> off) & mask(s);
                let sb = (b >> off) & mask(s);
                let cin = if *speculate && j > 0 {
                    (a >> (off - 1)) & (b >> (off - 1)) & 1
                } else {
                    0
                };
                let sum = sa + sb + cin;
                let keep = if j + 1 == segs.len() { s + 1 } else { s };
                res |= (sum & mask(keep)) << off;
                off += s;
            }
            res
        }
        AdderKind::CellRipple { cells } => {
            debug_assert_eq!(cells.len() as u32, w);
            let mut res = 0u64;
            let mut c = 0u64;
            for (i, cell) in cells.iter().enumerate() {
                let (s, co) = cell.eval(a >> i, b >> i, c);
                res |= s << i;
                c = co;
            }
            res | (c << w)
        }
    }
}

/// Builds the gate-level netlist of an adder variant.
pub fn build_netlist(w: u32, kind: &AdderKind) -> Netlist {
    let mut n = Netlist::new(format!("add{w}_{}", kind.label()));
    let a = n.input_bus(w as usize);
    let b = n.input_bus(w as usize);
    let out = match kind {
        AdderKind::Exact => arith::ripple_add_into(&mut n, &a, &b, None),
        AdderKind::ExactCla => crate::arch::cla_add_into(&mut n, &a, &b),
        AdderKind::TruncZero { k } => {
            let k = *k as usize;
            let zero = n.const0();
            let hi = arith::ripple_add_into(
                &mut n,
                &a.slice(k..w as usize),
                &b.slice(k..w as usize),
                None,
            );
            Bus(std::iter::repeat_n(zero, k).chain(hi.0).collect())
        }
        AdderKind::TruncPass { k } => {
            let k = *k as usize;
            let hi = arith::ripple_add_into(
                &mut n,
                &a.slice(k..w as usize),
                &b.slice(k..w as usize),
                None,
            );
            Bus(a.0[..k].iter().copied().chain(hi.0).collect())
        }
        AdderKind::Loa { k } => {
            let k = *k as usize;
            let low: Vec<_> = (0..k).map(|i| n.or2(a.bit(i), b.bit(i))).collect();
            let cin = n.and2(a.bit(k - 1), b.bit(k - 1));
            let hi = arith::ripple_add_into(
                &mut n,
                &a.slice(k..w as usize),
                &b.slice(k..w as usize),
                Some(cin),
            );
            Bus(low.into_iter().chain(hi.0).collect())
        }
        AdderKind::XorLower { k } => {
            let k = *k as usize;
            let low: Vec<_> = (0..k).map(|i| n.xor2(a.bit(i), b.bit(i))).collect();
            let hi = arith::ripple_add_into(
                &mut n,
                &a.slice(k..w as usize),
                &b.slice(k..w as usize),
                None,
            );
            Bus(low.into_iter().chain(hi.0).collect())
        }
        AdderKind::Aca { r } => {
            let r = *r as usize;
            let mut bits = Vec::with_capacity(w as usize + 1);
            for i in 0..=(w as usize) {
                let lo = i.saturating_sub(r);
                // ripple the window [lo, i) to get the speculated carry-in
                let mut carry = None;
                for j in lo..i {
                    carry = Some(match carry {
                        None => n.and2(a.bit(j), b.bit(j)),
                        Some(c) => n.maj3(a.bit(j), b.bit(j), c),
                    });
                }
                if i < w as usize {
                    let p = n.xor2(a.bit(i), b.bit(i));
                    let s = match carry {
                        None => p,
                        Some(c) => n.xor2(p, c),
                    };
                    bits.push(s);
                } else {
                    let c = carry.unwrap_or_else(|| n.const0());
                    bits.push(c);
                }
            }
            Bus(bits)
        }
        AdderKind::Gear { r, p } => {
            let (r, p) = (*r as usize, *p as usize);
            let first = r + p;
            if first >= w as usize {
                arith::ripple_add_into(&mut n, &a, &b, None)
            } else {
                let s0 =
                    arith::ripple_add_into(&mut n, &a.slice(0..first), &b.slice(0..first), None);
                let mut bits: Vec<_> = s0.0[..first].to_vec();
                let mut top = None;
                let mut m = first;
                while m < w as usize {
                    let lo = m - p;
                    let r_eff = r.min(w as usize - m);
                    let hi = lo + p + r_eff;
                    let s =
                        arith::ripple_add_into(&mut n, &a.slice(lo..hi), &b.slice(lo..hi), None);
                    bits.extend_from_slice(&s.0[p..p + r_eff]);
                    top = Some(s.0[p + r_eff]);
                    m += r_eff;
                }
                bits.push(top.expect("at least one sub-adder"));
                Bus(bits)
            }
        }
        AdderKind::Seg { segs, speculate } => {
            let mut bits = Vec::with_capacity(w as usize + 1);
            let mut off = 0usize;
            for (j, &s) in segs.iter().enumerate() {
                let s = s as usize;
                let cin = if *speculate && j > 0 {
                    Some(n.and2(a.bit(off - 1), b.bit(off - 1)))
                } else {
                    None
                };
                let sum = arith::ripple_add_into(
                    &mut n,
                    &a.slice(off..off + s),
                    &b.slice(off..off + s),
                    cin,
                );
                if j + 1 == segs.len() {
                    bits.extend_from_slice(&sum.0[..s + 1]);
                } else {
                    bits.extend_from_slice(&sum.0[..s]);
                }
                off += s;
            }
            Bus(bits)
        }
        AdderKind::CellRipple { cells } => {
            let mut bits = Vec::with_capacity(w as usize + 1);
            let mut carry = n.const0();
            for (i, cell) in cells.iter().enumerate() {
                let s = n.three_input_tt(cell.sum, a.bit(i), b.bit(i), carry);
                let c = n.three_input_tt(cell.carry, a.bit(i), b.bit(i), carry);
                bits.push(s);
                carry = c;
            }
            bits.push(carry);
            Bus(bits)
        }
    };
    n.push_output_bus(&out);
    n
}

/// Enumerates all compositions of `w` into at least two segments (QuAd-style
/// configurations). For `w = 8` this yields 127 segmentations.
pub fn segment_compositions(w: u32) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    // Each of the w-1 internal boundaries is either cut or not; skip the
    // no-cut case (that is the exact adder).
    for cuts in 1u64..(1 << (w - 1)) {
        let mut segs = Vec::new();
        let mut len = 1u8;
        for pos in 0..w - 1 {
            if (cuts >> pos) & 1 != 0 {
                segs.push(len);
                len = 1;
            } else {
                len += 1;
            }
        }
        segs.push(len);
        out.push(segs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_binop;

    fn check_netlist_matches_functional(w: u32, kind: &AdderKind) {
        let net = build_netlist(w, kind);
        assert_eq!(net.input_count() as u32, 2 * w);
        assert_eq!(net.outputs().len() as u32, w + 1);
        let n_samples = if w <= 6 { 1 << (2 * w) } else { 600 };
        let pairs: Vec<(u64, u64)> = if w <= 6 {
            (0..n_samples as u64)
                .map(|v| (v & mask(w), v >> w))
                .collect()
        } else {
            crate::util::stimulus_pairs(w, w, n_samples, 77)
        };
        for (a, b) in pairs {
            let f = eval(w, kind, a, b);
            let g = eval_binop(&net, w, w, a, b);
            assert_eq!(f, g, "{} w={w} a={a} b={b}", kind.label());
        }
    }

    #[test]
    fn trunc_zero_matches() {
        for k in 1..8 {
            check_netlist_matches_functional(8, &AdderKind::TruncZero { k });
        }
    }

    #[test]
    fn trunc_pass_matches() {
        for k in [1, 3, 5, 7] {
            check_netlist_matches_functional(8, &AdderKind::TruncPass { k });
        }
    }

    #[test]
    fn loa_matches() {
        for k in 1..8 {
            check_netlist_matches_functional(8, &AdderKind::Loa { k });
        }
        check_netlist_matches_functional(16, &AdderKind::Loa { k: 6 });
    }

    #[test]
    fn xor_lower_matches() {
        for k in [1, 2, 4, 6] {
            check_netlist_matches_functional(8, &AdderKind::XorLower { k });
        }
    }

    #[test]
    fn aca_matches() {
        for r in 1..8 {
            check_netlist_matches_functional(8, &AdderKind::Aca { r });
        }
        check_netlist_matches_functional(9, &AdderKind::Aca { r: 3 });
    }

    #[test]
    fn gear_matches() {
        for (r, p) in [(1, 1), (2, 1), (2, 2), (4, 2), (3, 3), (2, 4)] {
            check_netlist_matches_functional(8, &AdderKind::Gear { r, p });
            check_netlist_matches_functional(16, &AdderKind::Gear { r, p });
        }
    }

    #[test]
    fn seg_matches() {
        for segs in [vec![4u8, 4], vec![2, 3, 3], vec![1, 7], vec![2, 2, 2, 2]] {
            for speculate in [false, true] {
                check_netlist_matches_functional(
                    8,
                    &AdderKind::Seg {
                        segs: segs.clone(),
                        speculate,
                    },
                );
            }
        }
    }

    #[test]
    fn cell_ripple_exact_cells_is_exact() {
        let cells: Arc<[FaCell]> = vec![FaCell::EXACT_FA; 8].into();
        let kind = AdderKind::CellRipple { cells };
        for (a, b) in crate::util::stimulus_pairs(8, 8, 500, 3) {
            assert_eq!(eval(8, &kind, a, b), a + b);
        }
        check_netlist_matches_functional(8, &kind);
    }

    #[test]
    fn cell_ripple_random_cells_match() {
        let mut st = 2024u64;
        for _ in 0..10 {
            let cells: Arc<[FaCell]> = (0..8)
                .map(|i| {
                    if i < 4 {
                        FaCell::random(&mut st)
                    } else {
                        FaCell::EXACT_FA
                    }
                })
                .collect::<Vec<_>>()
                .into();
            check_netlist_matches_functional(8, &AdderKind::CellRipple { cells });
        }
    }

    #[test]
    fn approx_adders_are_bounded_error_when_upper_exact() {
        // Families that only touch the lower k bits have WCE < 2^(k+1).
        for k in 1..6 {
            for kind in [
                AdderKind::TruncZero { k },
                AdderKind::TruncPass { k },
                AdderKind::Loa { k },
                AdderKind::XorLower { k },
            ] {
                let bound = 1i64 << (k + 1);
                for (a, b) in crate::util::stimulus_pairs(8, 8, 400, 9) {
                    let err = (eval(8, &kind, a, b) as i64) - (a + b) as i64;
                    assert!(
                        err.abs() < bound,
                        "{} k={k}: err {err} out of bound",
                        kind.label()
                    );
                }
            }
        }
    }

    #[test]
    fn aca_exact_when_window_full() {
        // With r >= w the ACA degenerates to the exact adder.
        let kind = AdderKind::Aca { r: 8 };
        for (a, b) in crate::util::stimulus_pairs(8, 8, 400, 1) {
            assert_eq!(eval(8, &kind, a, b), a + b);
        }
    }

    #[test]
    fn segment_compositions_count() {
        assert_eq!(segment_compositions(8).len(), 127);
        assert_eq!(segment_compositions(4).len(), 7);
        for segs in segment_compositions(8) {
            assert_eq!(segs.iter().map(|&s| s as u32).sum::<u32>(), 8);
            assert!(segs.len() >= 2);
        }
    }

    #[test]
    fn labels_are_distinct_per_parameter() {
        assert_ne!(
            AdderKind::TruncZero { k: 1 }.label(),
            AdderKind::TruncZero { k: 2 }.label()
        );
        assert_ne!(
            AdderKind::Gear { r: 2, p: 1 }.label(),
            AdderKind::Gear { r: 1, p: 2 }.label()
        );
    }
}
