//! Approximate full-adder / full-subtractor cells as 3-input truth tables.
//!
//! A [`FaCell`] describes an arbitrary 1-bit cell with two outputs (sum and
//! carry — or difference and borrow) as 8-entry truth tables indexed by
//! `cin<<2 | b<<1 | a`. This uniform representation covers the exact cell,
//! the published approximate-mirror-adder style designs, and arbitrary
//! randomly sampled cells used to give the generated library EvoApprox-like
//! diversity.

/// One 1-bit arithmetic cell: `sum`/`carry` truth tables indexed by
/// `cin<<2 | b<<1 | a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaCell {
    /// Truth table of the sum (or difference) output.
    pub sum: u8,
    /// Truth table of the carry (or borrow) output.
    pub carry: u8,
}

impl FaCell {
    /// The exact full adder: `sum = a ^ b ^ cin`, `carry = maj(a, b, cin)`.
    pub const EXACT_FA: FaCell = FaCell {
        sum: 0b1001_0110,
        carry: 0b1110_1000,
    };

    /// The exact full subtractor: `diff = a ^ b ^ bin`,
    /// `borrow = !a&b | !a&bin | b&bin`.
    pub const EXACT_FS: FaCell = FaCell {
        sum: 0b1001_0110,
        carry: 0b1101_0100,
    };

    /// Evaluates the cell; inputs and outputs are single bits.
    #[inline]
    pub fn eval(&self, a: u64, b: u64, cin: u64) -> (u64, u64) {
        let idx = (a & 1) | ((b & 1) << 1) | ((cin & 1) << 2);
        ((self.sum >> idx) as u64 & 1, (self.carry >> idx) as u64 & 1)
    }

    /// Named approximate full-adder variants, in increasing "aggressiveness".
    ///
    /// These are inspired by the approximate mirror adder (AMA) and
    /// approximate XOR adder (AXA) lines of work; the exact published
    /// transistor-level designs differ, but each variant here has the same
    /// flavor: a simplified sum and/or carry function.
    pub fn approx_fa_catalog() -> Vec<FaCell> {
        vec![
            // sum = !carry_exact (AMA1-like single-gate sum)
            FaCell {
                sum: !Self::EXACT_FA.carry,
                carry: Self::EXACT_FA.carry,
            },
            // sum = b, carry exact (AMA2-like)
            FaCell {
                sum: 0b1100_1100,
                carry: Self::EXACT_FA.carry,
            },
            // sum = b, carry = a (AMA3-like)
            FaCell {
                sum: 0b1100_1100,
                carry: 0b1010_1010,
            },
            // sum = a, carry = cin (AMA4-like)
            FaCell {
                sum: 0b1010_1010,
                carry: 0b1111_0000,
            },
            // sum = a | b, carry = a & b (OR-based, LOA cell)
            FaCell {
                sum: 0b1110_1110,
                carry: 0b1000_1000,
            },
            // sum = a ^ b, carry = 0 (carry-cut XOR cell)
            FaCell {
                sum: 0b0110_0110,
                carry: 0b0000_0000,
            },
            // sum = a ^ b ^ cin, carry = a (AXA-like: cheap carry)
            FaCell {
                sum: Self::EXACT_FA.sum,
                carry: 0b1010_1010,
            },
            // sum = !(a ^ b), carry = a & b (inverted-sum XNOR cell)
            FaCell {
                sum: 0b1001_1001,
                carry: 0b1000_1000,
            },
        ]
    }

    /// Named approximate full-subtractor variants (mirroring the adder
    /// catalog for the borrow chain).
    pub fn approx_fs_catalog() -> Vec<FaCell> {
        vec![
            // diff = !borrow_exact
            FaCell {
                sum: !Self::EXACT_FS.carry,
                carry: Self::EXACT_FS.carry,
            },
            // diff = a ^ b, borrow = 0 (borrow-cut)
            FaCell {
                sum: 0b0110_0110,
                carry: 0b0000_0000,
            },
            // diff = a, borrow = b (pass-through)
            FaCell {
                sum: 0b1010_1010,
                carry: 0b1100_1100,
            },
            // diff = a ^ b ^ bin, borrow = b (cheap borrow)
            FaCell {
                sum: Self::EXACT_FS.sum,
                carry: 0b1100_1100,
            },
            // diff = a | !b restricted: use a & !b as diff, borrow = !a & b
            FaCell {
                sum: 0b0010_0010,
                carry: 0b0100_0100,
            },
        ]
    }

    /// A deterministic pseudo-random cell drawn from `state` (used to fill
    /// large library classes with diverse behaviours).
    pub fn random(state: &mut u64) -> FaCell {
        let r = crate::util::splitmix64(state);
        FaCell {
            sum: (r & 0xFF) as u8,
            carry: ((r >> 8) & 0xFF) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fa_truth_table() {
        for a in 0u64..2 {
            for b in 0u64..2 {
                for c in 0u64..2 {
                    let (s, co) = FaCell::EXACT_FA.eval(a, b, c);
                    let total = a + b + c;
                    assert_eq!(s, total & 1);
                    assert_eq!(co, total >> 1);
                }
            }
        }
    }

    #[test]
    fn exact_fs_truth_table() {
        for a in 0i64..2 {
            for b in 0i64..2 {
                for bin in 0i64..2 {
                    let (d, bo) = FaCell::EXACT_FS.eval(a as u64, b as u64, bin as u64);
                    let diff = a - b - bin;
                    assert_eq!(d as i64, diff.rem_euclid(2), "a={a} b={b} bin={bin}");
                    assert_eq!(bo as i64, i64::from(diff < 0), "a={a} b={b} bin={bin}");
                }
            }
        }
    }

    #[test]
    fn catalogs_are_nonempty_and_differ_from_exact() {
        for c in FaCell::approx_fa_catalog() {
            assert_ne!(c, FaCell::EXACT_FA);
        }
        for c in FaCell::approx_fs_catalog() {
            assert_ne!(c, FaCell::EXACT_FS);
        }
    }

    #[test]
    fn random_cells_deterministic() {
        let mut s1 = 10u64;
        let mut s2 = 10u64;
        assert_eq!(FaCell::random(&mut s1), FaCell::random(&mut s2));
    }
}
