//! Approximate circuit families.
//!
//! Each family is defined twice: as a fast *functional model* (plain
//! integer arithmetic, used for software simulation and characterization)
//! and as a *netlist builder* (used for hardware cost analysis). The two
//! are kept equivalent by construction and verified by tests — the same
//! contract the EvoApprox library gives its users (C model + Verilog
//! netlist per circuit).
//!
//! Families implemented (paper Section 1 cites the originating lines of
//! work):
//!
//! | Family | Inspired by | Parameters |
//! |--------|-------------|------------|
//! | truncation (zero / operand-pass) | classic truncation | cut width `k` |
//! | [`adders::AdderKind::Loa`] | Lower-part OR Adder (Mahdiani et al.) | `k` |
//! | [`adders::AdderKind::XorLower`] | ETA-I | `k` |
//! | [`adders::AdderKind::Aca`] | Almost Correct Adder | window `r` |
//! | [`adders::AdderKind::Gear`] | GeAr (Shafique et al., DAC'15) | `(r, p)` |
//! | [`adders::AdderKind::Seg`] | QuAd (Hanif et al., DAC'17) | segmentation |
//! | [`adders::AdderKind::CellRipple`] | approximate mirror adders (AMA/AXA) | per-bit cells |
//! | [`muls::MulKind::Bam`] | Broken-Array Multiplier | `(vbl, hbl)` |
//! | [`muls::MulKind::PerfRows`] | partial-product perforation | row mask |
//! | [`muls::MulKind::Udm`] | Kulkarni 2×2 underdesigned multiplier | leaf mask |
//! | [`muls::MulKind::CellGrid`] | array multiplier with approximate cells | cell grid |
//! | [`mutate`] | CGP-evolved circuits (EvoApprox itself) | seed, #mutations |

pub mod adders;
pub mod cells;
pub mod muls;
pub mod mutate;
pub mod subs;

use crate::netlist::Netlist;
use crate::{OpKind, OpSignature};
use std::sync::Arc;

pub use cells::FaCell;

/// The complete description of one library circuit's behaviour: enough to
/// evaluate it functionally *and* to rebuild its netlist deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Behavior {
    /// An adder variant over `w`-bit operands.
    Adder { w: u32, kind: adders::AdderKind },
    /// A subtractor variant over `w`-bit operands (two's-complement
    /// `w+1`-bit result).
    Subtractor { w: u32, kind: subs::SubKind },
    /// A multiplier variant over `wa × wb`-bit operands.
    Multiplier {
        wa: u32,
        wb: u32,
        kind: muls::MulKind,
    },
    /// An arbitrary netlist (produced by structural mutation); the netlist
    /// *is* the behaviour.
    Raw {
        sig: OpSignature,
        netlist: Arc<Netlist>,
    },
}

impl Behavior {
    /// The operation signature this behaviour implements.
    pub fn signature(&self) -> OpSignature {
        match self {
            Behavior::Adder { w, .. } => OpSignature::new(OpKind::Add, *w as u8, *w as u8),
            Behavior::Subtractor { w, .. } => OpSignature::new(OpKind::Sub, *w as u8, *w as u8),
            Behavior::Multiplier { wa, wb, .. } => {
                OpSignature::new(OpKind::Mul, *wa as u8, *wb as u8)
            }
            Behavior::Raw { sig, .. } => *sig,
        }
    }

    /// Evaluates the circuit on one operand pair. Out-of-range operand bits
    /// are masked off.
    pub fn eval(&self, a: u64, b: u64) -> u64 {
        let sig = self.signature();
        let a = a & crate::util::mask(sig.width_a as u32);
        let b = b & crate::util::mask(sig.width_b as u32);
        match self {
            Behavior::Adder { w, kind } => adders::eval(*w, kind, a, b),
            Behavior::Subtractor { w, kind } => subs::eval(*w, kind, a, b),
            Behavior::Multiplier { wa, wb, kind } => muls::eval(*wa, *wb, kind, a, b),
            Behavior::Raw { sig, netlist } => {
                crate::sim::eval_binop(netlist, sig.width_a as u32, sig.width_b as u32, a, b)
            }
        }
    }

    /// Evaluates a batch of operand pairs. For [`Behavior::Raw`] this uses
    /// 64-way bit-parallel simulation; for parameterized families it calls
    /// the functional model in a loop.
    pub fn eval_batch(&self, pairs: &[(u64, u64)]) -> Vec<u64> {
        match self {
            Behavior::Raw { sig, netlist } => {
                crate::sim::eval_binop_batch(netlist, sig.width_a as u32, sig.width_b as u32, pairs)
            }
            _ => pairs.iter().map(|&(a, b)| self.eval(a, b)).collect(),
        }
    }

    /// Builds (or clones) the gate-level netlist realizing this behaviour.
    pub fn build_netlist(&self) -> Netlist {
        match self {
            Behavior::Adder { w, kind } => adders::build_netlist(*w, kind),
            Behavior::Subtractor { w, kind } => subs::build_netlist(*w, kind),
            Behavior::Multiplier { wa, wb, kind } => muls::build_netlist(*wa, *wb, kind),
            Behavior::Raw { netlist, .. } => (**netlist).clone(),
        }
    }

    /// A short human-readable family/parameter label (used in reports).
    pub fn label(&self) -> String {
        match self {
            Behavior::Adder { kind, .. } => kind.label(),
            Behavior::Subtractor { kind, .. } => kind.label(),
            Behavior::Multiplier { kind, .. } => kind.label(),
            Behavior::Raw { .. } => "mutant".to_string(),
        }
    }

    /// The exact behaviour for a signature (entry 0 of every library class).
    pub fn exact_for(sig: OpSignature) -> Behavior {
        match sig.kind {
            OpKind::Add => Behavior::Adder {
                w: sig.width_a as u32,
                kind: adders::AdderKind::Exact,
            },
            OpKind::Sub => Behavior::Subtractor {
                w: sig.width_a as u32,
                kind: subs::SubKind::Exact,
            },
            OpKind::Mul => Behavior::Multiplier {
                wa: sig.width_a as u32,
                wb: sig.width_b as u32,
                kind: muls::MulKind::Exact,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_behaviors_match_signature_exact() {
        for sig in OpSignature::PAPER_CLASSES {
            let b = Behavior::exact_for(sig);
            assert_eq!(b.signature(), sig);
            for (x, y) in
                crate::util::stimulus_pairs(sig.width_a as u32, sig.width_b as u32, 300, 42)
            {
                assert_eq!(b.eval(x, y), sig.exact(x, y), "{sig} a={x} b={y}");
            }
        }
    }

    #[test]
    fn exact_netlists_match_functional() {
        for sig in OpSignature::PAPER_CLASSES {
            let b = Behavior::exact_for(sig);
            let n = b.build_netlist();
            for (x, y) in
                crate::util::stimulus_pairs(sig.width_a as u32, sig.width_b as u32, 100, 7)
            {
                let f = b.eval(x, y);
                let g = crate::sim::eval_binop(&n, sig.width_a as u32, sig.width_b as u32, x, y);
                assert_eq!(f, g, "{sig} a={x} b={y}");
            }
        }
    }

    #[test]
    fn eval_batch_matches_eval() {
        let b = Behavior::Adder {
            w: 8,
            kind: adders::AdderKind::Loa { k: 3 },
        };
        let pairs = crate::util::stimulus_pairs(8, 8, 500, 5);
        let batch = b.eval_batch(&pairs);
        for (i, &(x, y)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], b.eval(x, y));
        }
    }

    #[test]
    fn eval_masks_out_of_range_operands() {
        let b = Behavior::exact_for(OpSignature::ADD8);
        assert_eq!(b.eval(0x1FF, 0), 0xFF); // high bit masked
    }
}
