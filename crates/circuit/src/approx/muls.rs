//! Approximate multiplier families: broken-array (BAM), truncation with
//! optional constant compensation, partial-product row perforation, the
//! Kulkarni-style recursive 2×2 underdesigned multiplier (UDM), and array
//! multipliers with per-cell approximate full adders.
//!
//! All variants take `wa`- and `wb`-bit operands and produce a
//! `wa + wb`-bit product.

use super::cells::FaCell;
use crate::arith;
use crate::netlist::{Bus, NetId, Netlist};
use crate::util::mask;
use std::sync::Arc;

/// The multiplier variants of the generated library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MulKind {
    /// Exact carry-propagate array multiplier.
    Exact,
    /// Exact Wallace-tree multiplier (same function, shorter critical
    /// path, more cells — architecture diversity for the cost models).
    ExactWallace,
    /// Broken-array multiplier: partial products in columns below `vbl`
    /// are removed; additionally the cells of the `hbl` lowest rows that
    /// fall into the lower half of the array (columns `< wa`) are removed.
    Bam {
        /// Vertical break level: dropped LSB columns (`0..wa+wb-1`).
        vbl: u32,
        /// Horizontal break level: rows whose lower-half cells are dropped
        /// (`0..wb`).
        hbl: u32,
    },
    /// Truncated multiplier: columns below `k` dropped, optionally with a
    /// constant compensation term `2^(k-1)`.
    Trunc {
        /// Dropped LSB columns (`1..wa`).
        k: u32,
        /// Add the expected-value compensation constant.
        comp: bool,
    },
    /// Partial-product perforation: partial-product rows whose bit is set
    /// in `row_mask` are skipped entirely.
    PerfRows {
        /// Bit `i` set ⇒ row `i` (operand-b bit `i`) is dropped.
        row_mask: u16,
    },
    /// Recursive 2×2 underdesigned multiplier: the recursion tree has
    /// `(wa/2) * (wb/2)` 2×2 leaves; leaf `ℓ` is approximate (3×3 → 7) iff
    /// bit `ℓ` of `leaf_mask` is set. Requires `wa == wb` and power of two.
    Udm {
        /// Approximation mask over the 2×2 leaves (row-major recursion
        /// order LL, LH, HL, HH at every level).
        leaf_mask: u16,
    },
    /// Array multiplier whose accumulation cells are individually chosen
    /// (possibly approximate) full adders.
    CellGrid {
        /// `(wb-1) * wa` cells, row-major from row 1; defaults anywhere to
        /// exact are expressed by [`FaCell::EXACT_FA`] entries.
        cells: Arc<[FaCell]>,
    },
}

impl MulKind {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            MulKind::Exact => "mul_exact".into(),
            MulKind::ExactWallace => "mul_exact_wallace".into(),
            MulKind::Bam { vbl, hbl } => format!("mul_bam_v{vbl}h{hbl}"),
            MulKind::Trunc { k, comp } => {
                format!("mul_trunc_k{k}{}", if *comp { "c" } else { "" })
            }
            MulKind::PerfRows { row_mask } => format!("mul_perf_{row_mask:02x}"),
            MulKind::Udm { leaf_mask } => format!("mul_udm_{leaf_mask:04x}"),
            MulKind::CellGrid { .. } => "mul_cells".into(),
        }
    }
}

/// Functional model: computes the `wa + wb`-bit product.
pub fn eval(wa: u32, wb: u32, kind: &MulKind, a: u64, b: u64) -> u64 {
    debug_assert!(a <= mask(wa) && b <= mask(wb));
    match kind {
        MulKind::Exact | MulKind::ExactWallace => a * b,
        MulKind::Bam { vbl, hbl } => {
            let mut sum = 0u64;
            for i in 0..wb {
                if (b >> i) & 1 == 0 {
                    continue;
                }
                let mut j_lo = vbl.saturating_sub(i);
                if i < *hbl {
                    j_lo = j_lo.max(wa.saturating_sub(i));
                }
                if j_lo >= wa {
                    continue;
                }
                sum += ((a >> j_lo) << j_lo) << i;
            }
            sum & mask(wa + wb)
        }
        MulKind::Trunc { k, comp } => {
            let base = eval(wa, wb, &MulKind::Bam { vbl: *k, hbl: 0 }, a, b);
            if *comp && *k >= 1 {
                (base + (1 << (k - 1))) & mask(wa + wb)
            } else {
                base
            }
        }
        MulKind::PerfRows { row_mask } => {
            let mut sum = 0u64;
            for i in 0..wb {
                if (row_mask >> i) & 1 != 0 {
                    continue;
                }
                if (b >> i) & 1 != 0 {
                    sum += a << i;
                }
            }
            sum & mask(wa + wb)
        }
        MulKind::Udm { leaf_mask } => {
            debug_assert!(wa == wb && wa.is_power_of_two() && wa >= 2);
            let mut leaf_idx = 0usize;
            udm_eval(wa, a, b, *leaf_mask, &mut leaf_idx)
        }
        MulKind::CellGrid { cells } => {
            debug_assert_eq!(cells.len() as u32, (wb - 1) * wa);
            let wout = (wa + wb) as usize;
            let mut acc = vec![0u64; wout];
            for (j, slot) in acc.iter_mut().enumerate().take(wa as usize) {
                *slot = ((a >> j) & 1) & (b & 1);
            }
            for i in 1..wb as usize {
                let bi = (b >> i) & 1;
                let mut carry = 0u64;
                for j in 0..wa as usize {
                    let pp = ((a >> j) & 1) & bi;
                    let cell = cells[(i - 1) * wa as usize + j];
                    let (s, c) = cell.eval(acc[i + j], pp, carry);
                    acc[i + j] = s;
                    carry = c;
                }
                acc[i + wa as usize] = carry;
            }
            acc.iter()
                .enumerate()
                .fold(0u64, |r, (i, &bit)| r | (bit << i))
        }
    }
}

/// Recursive UDM evaluation; `leaf_idx` tracks the leaf numbering in
/// LL, LH, HL, HH order so it matches the netlist builder exactly.
fn udm_eval(w: u32, a: u64, b: u64, leaf_mask: u16, leaf_idx: &mut usize) -> u64 {
    if w == 2 {
        let approx = (leaf_mask >> *leaf_idx) & 1 != 0;
        *leaf_idx += 1;
        return if approx && a == 3 && b == 3 { 7 } else { a * b };
    }
    let h = w / 2;
    let (al, ah) = (a & mask(h), a >> h);
    let (bl, bh) = (b & mask(h), b >> h);
    let ll = udm_eval(h, al, bl, leaf_mask, leaf_idx);
    let lh = udm_eval(h, al, bh, leaf_mask, leaf_idx);
    let hl = udm_eval(h, ah, bl, leaf_mask, leaf_idx);
    let hh = udm_eval(h, ah, bh, leaf_mask, leaf_idx);
    ll + ((lh + hl) << h) + (hh << (2 * h))
}

/// Builds the gate-level netlist of a multiplier variant.
pub fn build_netlist(wa: u32, wb: u32, kind: &MulKind) -> Netlist {
    let mut n = Netlist::new(format!("mul{wa}x{wb}_{}", kind.label()));
    let a = n.input_bus(wa as usize);
    let b = n.input_bus(wb as usize);
    let out = match kind {
        MulKind::Exact => arith::array_multiply_into(&mut n, &a, &b),
        MulKind::ExactWallace => {
            // wallace_multiplier builds its own IO; rebuild inline instead
            let sub = crate::arch::wallace_multiplier(wa, wb);
            let args: Vec<_> = a.iter().chain(b.iter()).copied().collect();
            Bus(n.instantiate(&sub, &args))
        }
        MulKind::Bam { vbl, hbl } => {
            let keep = |i: u32, j: u32| {
                if i + j < *vbl {
                    return false;
                }
                !(i < *hbl && i + j < wa)
            };
            masked_array(&mut n, &a, &b, keep, None)
        }
        MulKind::Trunc { k, comp } => {
            let kk = *k;
            let keep = move |i: u32, j: u32| i + j >= kk;
            let comp_const = if *comp && *k >= 1 {
                Some(1u64 << (k - 1))
            } else {
                None
            };
            masked_array(&mut n, &a, &b, keep, comp_const)
        }
        MulKind::PerfRows { row_mask } => {
            let m = *row_mask;
            let keep = move |i: u32, _j: u32| (m >> i) & 1 == 0;
            masked_array(&mut n, &a, &b, keep, None)
        }
        MulKind::Udm { leaf_mask } => {
            debug_assert!(wa == wb && wa.is_power_of_two() && wa >= 2);
            let mut leaf_idx = 0usize;
            udm_build(&mut n, &a, &b, *leaf_mask, &mut leaf_idx)
        }
        MulKind::CellGrid { cells } => {
            let wout = (wa + wb) as usize;
            let zero = n.const0();
            let mut acc = vec![zero; wout];
            for (j, slot) in acc.iter_mut().enumerate().take(wa as usize) {
                *slot = n.and2(a.bit(j), b.bit(0));
            }
            for i in 1..wb as usize {
                let bi = b.bit(i);
                let mut carry = zero;
                for j in 0..wa as usize {
                    let pp = n.and2(a.bit(j), bi);
                    let cell = cells[(i - 1) * wa as usize + j];
                    let s = n.three_input_tt(cell.sum, acc[i + j], pp, carry);
                    let c = n.three_input_tt(cell.carry, acc[i + j], pp, carry);
                    acc[i + j] = s;
                    carry = c;
                }
                acc[i + wa as usize] = carry;
            }
            Bus(acc)
        }
    };
    n.push_output_bus(&out);
    n
}

/// Array multiplier with a per-cell keep predicate and an optional additive
/// compensation constant. Removed cells contribute nothing — neither a
/// partial product nor an adder cell, exactly as in broken-array designs.
fn masked_array(
    n: &mut Netlist,
    a: &Bus,
    b: &Bus,
    keep: impl Fn(u32, u32) -> bool,
    comp: Option<u64>,
) -> Bus {
    let wa = a.width() as u32;
    let wb = b.width() as u32;
    let zero = n.const0();
    let mut acc: Vec<NetId> = vec![zero; (wa + wb) as usize];
    // Row 0.
    for j in 0..wa {
        if keep(0, j) {
            acc[j as usize] = n.and2(a.bit(j as usize), b.bit(0));
        }
    }
    // Compensation constant merged into otherwise-zero accumulator slots
    // where possible; remaining bits added afterwards.
    let mut comp_rest = 0u64;
    if let Some(c) = comp {
        for bit in 0..(wa + wb) {
            if (c >> bit) & 1 != 0 {
                if acc[bit as usize] == zero {
                    acc[bit as usize] = n.const1();
                } else {
                    comp_rest |= 1 << bit;
                }
            }
        }
    }
    for i in 1..wb {
        let bi = b.bit(i as usize);
        let mut carry: Option<NetId> = None;
        for j in 0..wa {
            if !keep(i, j) {
                continue;
            }
            let pp = n.and2(a.bit(j as usize), bi);
            let pos = (i + j) as usize;
            let (s, c) = match carry {
                None => {
                    if acc[pos] == zero {
                        (pp, None)
                    } else {
                        let (s, c) = n.half_adder(acc[pos], pp);
                        (s, Some(c))
                    }
                }
                Some(ci) => {
                    if acc[pos] == zero {
                        let (s, c) = n.half_adder(pp, ci);
                        (s, Some(c))
                    } else {
                        let (s, c) = n.full_adder(acc[pos], pp, ci);
                        (s, Some(c))
                    }
                }
            };
            acc[pos] = s;
            carry = c;
        }
        // Propagate the final carry up through the accumulator.
        if let Some(mut c) = carry {
            let mut pos = (i + wa) as usize;
            while pos < acc.len() {
                if acc[pos] == zero {
                    acc[pos] = c;
                    break;
                }
                let (s, nc) = n.half_adder(acc[pos], c);
                acc[pos] = s;
                c = nc;
                pos += 1;
            }
        }
    }
    if comp_rest != 0 {
        // Ripple-add the remaining compensation bits.
        let one = n.const1();
        for bit in 0..(wa + wb) as usize {
            if (comp_rest >> bit) & 1 == 0 {
                continue;
            }
            let mut c = one;
            let mut pos = bit;
            while pos < acc.len() {
                if acc[pos] == zero {
                    acc[pos] = c;
                    break;
                }
                let (s, nc) = n.half_adder(acc[pos], c);
                acc[pos] = s;
                c = nc;
                pos += 1;
            }
        }
    }
    Bus(acc)
}

/// Recursive UDM netlist; leaf numbering matches [`udm_eval`].
fn udm_build(n: &mut Netlist, a: &Bus, b: &Bus, leaf_mask: u16, leaf_idx: &mut usize) -> Bus {
    let w = a.width();
    if w == 2 {
        let approx = (leaf_mask >> *leaf_idx) & 1 != 0;
        *leaf_idx += 1;
        if approx {
            // Kulkarni 2x2 block: p0 = a0 b0, p1 = a1 b0 | a0 b1,
            // p2 = a1 b1, p3 = 0. Exact except 3*3 = 7.
            let p0 = n.and2(a.bit(0), b.bit(0));
            let t0 = n.and2(a.bit(1), b.bit(0));
            let t1 = n.and2(a.bit(0), b.bit(1));
            let p1 = n.or2(t0, t1);
            let p2 = n.and2(a.bit(1), b.bit(1));
            let z = n.const0();
            return Bus(vec![p0, p1, p2, z]);
        }
        return arith::array_multiply_into(n, a, b);
    }
    let h = w / 2;
    let al = a.slice(0..h);
    let ah = a.slice(h..w);
    let bl = b.slice(0..h);
    let bh = b.slice(h..w);
    let ll = udm_build(n, &al, &bl, leaf_mask, leaf_idx);
    let lh = udm_build(n, &al, &bh, leaf_mask, leaf_idx);
    let hl = udm_build(n, &ah, &bl, leaf_mask, leaf_idx);
    let hh = udm_build(n, &ah, &bh, leaf_mask, leaf_idx);
    // result = ll + ((lh + hl) << h) + (hh << 2h), all exact adds
    let zero = n.const0();
    let mid = arith::ripple_add_into(n, &lh, &hl, None);
    let s1 = arith::ripple_add_into(n, &ll, &mid.shifted_left(h, zero), None);
    let s2 = arith::ripple_add_into(n, &s1, &hh.shifted_left(2 * h, zero), None);
    // The exact product fits in 2w bits; drop provably-zero top bits.
    Bus(s2.0[..2 * w].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_binop;

    fn check_netlist_matches_functional(wa: u32, wb: u32, kind: &MulKind) {
        let net = build_netlist(wa, wb, kind);
        assert_eq!(net.input_count() as u32, wa + wb);
        assert_eq!(net.outputs().len() as u32, wa + wb);
        let pairs: Vec<(u64, u64)> = if wa + wb <= 12 {
            (0..(1u64 << (wa + wb)))
                .map(|v| (v & mask(wa), v >> wa))
                .collect()
        } else {
            let mut p = crate::util::stimulus_pairs(wa, wb, 600, 55);
            p.push((mask(wa), mask(wb)));
            p.push((0, 0));
            p
        };
        for (a, b) in pairs {
            let f = eval(wa, wb, kind, a, b);
            let g = eval_binop(&net, wa, wb, a, b);
            assert_eq!(f, g, "{} a={a} b={b}", kind.label());
        }
    }

    #[test]
    fn exact_matches() {
        check_netlist_matches_functional(8, 8, &MulKind::Exact);
    }

    #[test]
    fn bam_matches() {
        for (vbl, hbl) in [(0, 0), (4, 0), (0, 3), (6, 2), (10, 4), (14, 7)] {
            check_netlist_matches_functional(8, 8, &MulKind::Bam { vbl, hbl });
        }
    }

    #[test]
    fn bam_zero_break_is_exact() {
        let kind = MulKind::Bam { vbl: 0, hbl: 0 };
        for (a, b) in crate::util::stimulus_pairs(8, 8, 400, 5) {
            assert_eq!(eval(8, 8, &kind, a, b), a * b);
        }
    }

    #[test]
    fn bam_underestimates() {
        // Removing partial products can only reduce the product.
        for (vbl, hbl) in [(5, 0), (0, 4), (8, 3)] {
            let kind = MulKind::Bam { vbl, hbl };
            for (a, b) in crate::util::stimulus_pairs(8, 8, 400, 6) {
                assert!(eval(8, 8, &kind, a, b) <= a * b, "vbl={vbl} hbl={hbl}");
            }
        }
    }

    #[test]
    fn trunc_matches() {
        for k in [1, 3, 5, 8] {
            for comp in [false, true] {
                check_netlist_matches_functional(8, 8, &MulKind::Trunc { k, comp });
            }
        }
    }

    #[test]
    fn perf_rows_matches() {
        for row_mask in [0b0000_0001u16, 0b0000_1010, 0b0111_0000, 0b0000_0000] {
            check_netlist_matches_functional(8, 8, &MulKind::PerfRows { row_mask });
        }
    }

    #[test]
    fn udm_exact_mask_is_exact() {
        let kind = MulKind::Udm { leaf_mask: 0 };
        for (a, b) in crate::util::stimulus_pairs(8, 8, 400, 7) {
            assert_eq!(eval(8, 8, &kind, a, b), a * b);
        }
    }

    #[test]
    fn udm_full_mask_underestimates() {
        let kind = MulKind::Udm { leaf_mask: 0xFFFF };
        let mut any_error = false;
        for (a, b) in crate::util::stimulus_pairs(8, 8, 2000, 8) {
            let v = eval(8, 8, &kind, a, b);
            assert!(v <= a * b);
            any_error |= v != a * b;
        }
        assert!(any_error, "full UDM mask must introduce errors");
    }

    #[test]
    fn udm_netlists_match() {
        for leaf_mask in [0u16, 1, 0x00F0, 0x1234, 0xFFFF] {
            check_netlist_matches_functional(8, 8, &MulKind::Udm { leaf_mask });
        }
        // 4x4 has 4 leaves
        check_netlist_matches_functional(4, 4, &MulKind::Udm { leaf_mask: 0b1010 });
    }

    #[test]
    fn udm_2x2_exhaustive() {
        // The approximate 2x2 block must differ from exact only at (3,3).
        let kind = MulKind::Udm { leaf_mask: 1 };
        for a in 0u64..4 {
            for b in 0u64..4 {
                let v = eval(2, 2, &kind, a, b);
                if a == 3 && b == 3 {
                    assert_eq!(v, 7);
                } else {
                    assert_eq!(v, a * b);
                }
            }
        }
        check_netlist_matches_functional(2, 2, &MulKind::Udm { leaf_mask: 1 });
    }

    #[test]
    fn cell_grid_exact_cells_is_exact() {
        let cells: Arc<[FaCell]> = vec![FaCell::EXACT_FA; 7 * 8].into();
        let kind = MulKind::CellGrid { cells };
        for (a, b) in crate::util::stimulus_pairs(8, 8, 400, 9) {
            assert_eq!(eval(8, 8, &kind, a, b), a * b, "a={a} b={b}");
        }
        check_netlist_matches_functional(8, 8, &kind);
    }

    #[test]
    fn cell_grid_random_matches() {
        let mut st = 1234u64;
        for _ in 0..5 {
            let cells: Arc<[FaCell]> = (0..7 * 8)
                .map(|i| {
                    if i % 11 == 0 {
                        FaCell::random(&mut st)
                    } else {
                        FaCell::EXACT_FA
                    }
                })
                .collect::<Vec<_>>()
                .into();
            check_netlist_matches_functional(8, 8, &MulKind::CellGrid { cells });
        }
    }

    #[test]
    fn trunc_smaller_than_exact_area() {
        use crate::synth::synthesize;
        let (_, exact) = synthesize(&build_netlist(8, 8, &MulKind::Exact));
        let (_, trunc) = synthesize(&build_netlist(8, 8, &MulKind::Trunc { k: 6, comp: false }));
        assert!(trunc.area < exact.area);
    }
}
