//! Seeded structural mutation of netlists — the mechanism that gives the
//! generated library EvoApprox-like diversity.
//!
//! EvoApprox8b was produced by Cartesian Genetic Programming: random
//! structural mutations of working circuits, filtered by error and cost.
//! This module reproduces the *generator* side of that process: starting
//! from an exact netlist, apply `n_mutations` random edits (gate kind
//! change, input rewire to an earlier net, stuck-at constant), keeping the
//! interface intact. The caller is expected to characterize the result and
//! discard garbage (the autoAx library pre-processing step does exactly
//! that).

use crate::cell::CellKind;
use crate::netlist::{NetId, Netlist};
use crate::util::splitmix64;

/// Kinds of cells a mutation may substitute in (constants excluded here;
/// stuck-at mutations are a separate move).
const MUTABLE_KINDS: [CellKind; 10] = [
    CellKind::Buf,
    CellKind::Inv,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Maj3,
];

/// Applies `n_mutations` random structural edits to a copy of `base`.
///
/// Moves, chosen uniformly:
/// 1. **kind change** — replace a gate's cell with a random other kind
///    (inputs are reused; arity differences are safe because extra input
///    slots are ignored);
/// 2. **rewire** — redirect one input of a gate to a random earlier net;
/// 3. **stuck-at** — replace a gate with a constant 0 or 1.
///
/// The primary input/output interface of the netlist is unchanged, so the
/// mutant remains a drop-in replacement for the base circuit.
pub fn mutate_netlist(base: &Netlist, n_mutations: u32, seed: u64) -> Netlist {
    let mut st = seed ^ 0xDEAD_BEEF_CAFE_F00D;
    let mut out = base.clone();
    let n_in = out.input_count() as u32;
    let n_gates = out.gate_count();
    if n_gates == 0 {
        return out;
    }
    // We rebuild by editing the gate list in place via a Vec copy.
    let mut gates = out.gates().to_vec();
    for _ in 0..n_mutations {
        let gi = (splitmix64(&mut st) % n_gates as u64) as usize;
        match splitmix64(&mut st) % 3 {
            0 => {
                let k = MUTABLE_KINDS[(splitmix64(&mut st) % MUTABLE_KINDS.len() as u64) as usize];
                gates[gi].kind = k;
            }
            1 => {
                let slot = (splitmix64(&mut st) % 3) as usize;
                // any net strictly before this gate's output net
                let limit = n_in as u64 + gi as u64;
                if limit > 0 {
                    let target = NetId((splitmix64(&mut st) % limit) as u32);
                    gates[gi].ins[slot] = target;
                }
            }
            _ => {
                gates[gi].kind = if splitmix64(&mut st) & 1 == 0 {
                    CellKind::Const0
                } else {
                    CellKind::Const1
                };
            }
        }
    }
    // Reassemble a netlist with the mutated gates; ins of constants are
    // normalized to NetId(0) padding semantics automatically by eval.
    let mut rebuilt = Netlist::new(format!("{}_mut{seed:x}", base.name()));
    for _ in 0..n_in {
        rebuilt.input();
    }
    for g in &gates {
        rebuilt.push(g.kind, g.ins);
    }
    rebuilt.set_outputs(out.outputs().to_vec());
    out = rebuilt;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::ripple_carry_adder;
    use crate::sim::eval_binop;

    #[test]
    fn mutation_preserves_interface() {
        let base = ripple_carry_adder(8);
        let m = mutate_netlist(&base, 5, 42);
        assert_eq!(m.input_count(), base.input_count());
        assert_eq!(m.outputs().len(), base.outputs().len());
        assert_eq!(m.gate_count(), base.gate_count());
    }

    #[test]
    fn mutation_is_deterministic() {
        let base = ripple_carry_adder(8);
        let m1 = mutate_netlist(&base, 5, 42);
        let m2 = mutate_netlist(&base, 5, 42);
        assert_eq!(m1, m2);
        let m3 = mutate_netlist(&base, 5, 43);
        assert_ne!(m1, m3);
    }

    #[test]
    fn zero_mutations_is_identity_function() {
        let base = ripple_carry_adder(6);
        let m = mutate_netlist(&base, 0, 1);
        for (a, b) in crate::util::stimulus_pairs(6, 6, 200, 2) {
            assert_eq!(eval_binop(&m, 6, 6, a, b), a + b);
        }
    }

    #[test]
    fn mutants_remain_simulable() {
        let base = ripple_carry_adder(8);
        for seed in 0..20 {
            let m = mutate_netlist(&base, 8, seed);
            // Must not panic and must produce in-range outputs.
            let v = eval_binop(&m, 8, 8, 200, 100);
            assert!(v <= 0x1FF);
        }
    }

    #[test]
    fn some_mutants_differ_from_exact() {
        let base = ripple_carry_adder(8);
        let mut differing = 0;
        for seed in 0..20 {
            let m = mutate_netlist(&base, 4, seed);
            let differs = crate::util::stimulus_pairs(8, 8, 100, seed)
                .iter()
                .any(|&(a, b)| eval_binop(&m, 8, 8, a, b) != a + b);
            if differs {
                differing += 1;
            }
        }
        assert!(differing >= 10, "only {differing}/20 mutants differ");
    }
}
