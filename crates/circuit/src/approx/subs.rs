//! Approximate subtractor families, mirroring the adder families on the
//! borrow chain. All variants take two `w`-bit unsigned operands and
//! produce a `w+1`-bit two's-complement difference (MSB = sign), matching
//! the exact subtractor interface.

use super::cells::FaCell;
use crate::arith;
use crate::netlist::{Bus, Netlist};
use crate::util::mask;
use std::sync::Arc;

/// The subtractor variants of the generated library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubKind {
    /// Exact ripple-borrow subtractor.
    Exact,
    /// Lower `k` difference bits forced to 0; the upper part subtracts
    /// `a>>k` and `b>>k` exactly with no incoming borrow.
    TruncZero {
        /// Number of truncated low bits (`1..w`).
        k: u32,
    },
    /// Lower `k` difference bits pass operand `a` through.
    TruncPass {
        /// Number of passed-through low bits (`1..w`).
        k: u32,
    },
    /// Lower `k` bits are `a ^ b`; no borrow is generated out of the lower
    /// part (ETA-I analogue for subtraction).
    XorLower {
        /// Width of the XOR-ed lower part (`1..w`).
        k: u32,
    },
    /// Segmented subtractor: borrows do not cross segment boundaries; the
    /// sign comes from the top segment alone.
    Seg {
        /// Segment widths, LSB first; must sum to `w`.
        segs: Vec<u8>,
    },
    /// Ripple subtractor with per-bit (possibly approximate) cells.
    CellRipple {
        /// One cell per bit position, LSB first; length must equal `w`.
        cells: Arc<[FaCell]>,
    },
}

impl SubKind {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            SubKind::Exact => "sub_exact".into(),
            SubKind::TruncZero { k } => format!("sub_trunc0_k{k}"),
            SubKind::TruncPass { k } => format!("sub_truncp_k{k}"),
            SubKind::XorLower { k } => format!("sub_eta_k{k}"),
            SubKind::Seg { segs } => {
                let s: Vec<String> = segs.iter().map(|x| x.to_string()).collect();
                format!("sub_seg_{}", s.join("_"))
            }
            SubKind::CellRipple { .. } => "sub_cells".into(),
        }
    }
}

/// Functional model: computes the raw `w+1`-bit two's-complement result.
pub fn eval(w: u32, kind: &SubKind, a: u64, b: u64) -> u64 {
    debug_assert!(a <= mask(w) && b <= mask(w));
    match kind {
        SubKind::Exact => a.wrapping_sub(b) & mask(w + 1),
        SubKind::TruncZero { k } => {
            let hi = (a >> k).wrapping_sub(b >> k) & mask(w + 1 - k);
            hi << k
        }
        SubKind::TruncPass { k } => {
            let hi = (a >> k).wrapping_sub(b >> k) & mask(w + 1 - k);
            (hi << k) | (a & mask(*k))
        }
        SubKind::XorLower { k } => {
            let low = (a ^ b) & mask(*k);
            let hi = (a >> k).wrapping_sub(b >> k) & mask(w + 1 - k);
            (hi << k) | low
        }
        SubKind::Seg { segs } => {
            debug_assert_eq!(segs.iter().map(|&s| s as u32).sum::<u32>(), w);
            let mut res = 0u64;
            let mut off = 0u32;
            for (j, &s) in segs.iter().enumerate() {
                let s = s as u32;
                let sa = (a >> off) & mask(s);
                let sb = (b >> off) & mask(s);
                if j + 1 == segs.len() {
                    // top segment keeps its sign bit
                    let d = sa.wrapping_sub(sb) & mask(s + 1);
                    res |= d << off;
                } else {
                    let d = sa.wrapping_sub(sb) & mask(s);
                    res |= d << off;
                }
                off += s;
            }
            res
        }
        SubKind::CellRipple { cells } => {
            debug_assert_eq!(cells.len() as u32, w);
            let mut res = 0u64;
            let mut borrow = 0u64;
            for (i, cell) in cells.iter().enumerate() {
                let (d, bo) = cell.eval(a >> i, b >> i, borrow);
                res |= d << i;
                borrow = bo;
            }
            // sign bit = final borrow
            res | (borrow << w)
        }
    }
}

/// Builds the gate-level netlist of a subtractor variant.
pub fn build_netlist(w: u32, kind: &SubKind) -> Netlist {
    let mut n = Netlist::new(format!("sub{w}_{}", kind.label()));
    let a = n.input_bus(w as usize);
    let b = n.input_bus(w as usize);
    let out = match kind {
        SubKind::Exact => arith::ripple_sub_into(&mut n, &a, &b),
        SubKind::TruncZero { k } => {
            let k = *k as usize;
            let zero = n.const0();
            let hi =
                arith::ripple_sub_into(&mut n, &a.slice(k..w as usize), &b.slice(k..w as usize));
            Bus(std::iter::repeat_n(zero, k).chain(hi.0).collect())
        }
        SubKind::TruncPass { k } => {
            let k = *k as usize;
            let hi =
                arith::ripple_sub_into(&mut n, &a.slice(k..w as usize), &b.slice(k..w as usize));
            Bus(a.0[..k].iter().copied().chain(hi.0).collect())
        }
        SubKind::XorLower { k } => {
            let k = *k as usize;
            let low: Vec<_> = (0..k).map(|i| n.xor2(a.bit(i), b.bit(i))).collect();
            let hi =
                arith::ripple_sub_into(&mut n, &a.slice(k..w as usize), &b.slice(k..w as usize));
            Bus(low.into_iter().chain(hi.0).collect())
        }
        SubKind::Seg { segs } => {
            let mut bits = Vec::with_capacity(w as usize + 1);
            let mut off = 0usize;
            for (j, &s) in segs.iter().enumerate() {
                let s = s as usize;
                let d =
                    arith::ripple_sub_into(&mut n, &a.slice(off..off + s), &b.slice(off..off + s));
                if j + 1 == segs.len() {
                    bits.extend_from_slice(&d.0[..s + 1]);
                } else {
                    bits.extend_from_slice(&d.0[..s]);
                }
                off += s;
            }
            Bus(bits)
        }
        SubKind::CellRipple { cells } => {
            let mut bits = Vec::with_capacity(w as usize + 1);
            let mut borrow = n.const0();
            for (i, cell) in cells.iter().enumerate() {
                let d = n.three_input_tt(cell.sum, a.bit(i), b.bit(i), borrow);
                let bo = n.three_input_tt(cell.carry, a.bit(i), b.bit(i), borrow);
                bits.push(d);
                borrow = bo;
            }
            bits.push(borrow);
            Bus(bits)
        }
    };
    n.push_output_bus(&out);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_binop;
    use crate::{OpKind, OpSignature};

    fn check_netlist_matches_functional(w: u32, kind: &SubKind) {
        let net = build_netlist(w, kind);
        assert_eq!(net.input_count() as u32, 2 * w);
        assert_eq!(net.outputs().len() as u32, w + 1);
        let pairs: Vec<(u64, u64)> = if w <= 6 {
            (0..(1u64 << (2 * w)))
                .map(|v| (v & mask(w), v >> w))
                .collect()
        } else {
            crate::util::stimulus_pairs(w, w, 600, 21)
        };
        for (a, b) in pairs {
            let f = eval(w, kind, a, b);
            let g = eval_binop(&net, w, w, a, b);
            assert_eq!(f, g, "{} w={w} a={a} b={b}", kind.label());
        }
    }

    #[test]
    fn exact_sub_signed_semantics() {
        let sig = OpSignature::new(OpKind::Sub, 8, 8);
        for (a, b) in crate::util::stimulus_pairs(8, 8, 500, 4) {
            let raw = eval(8, &SubKind::Exact, a, b);
            assert_eq!(sig.to_signed(raw), a as i64 - b as i64);
        }
    }

    #[test]
    fn trunc_zero_matches() {
        for k in 1..8 {
            check_netlist_matches_functional(8, &SubKind::TruncZero { k });
        }
        check_netlist_matches_functional(10, &SubKind::TruncZero { k: 4 });
    }

    #[test]
    fn trunc_pass_matches() {
        for k in [1, 3, 6] {
            check_netlist_matches_functional(8, &SubKind::TruncPass { k });
        }
    }

    #[test]
    fn xor_lower_matches() {
        for k in [1, 2, 5] {
            check_netlist_matches_functional(8, &SubKind::XorLower { k });
            check_netlist_matches_functional(16, &SubKind::XorLower { k });
        }
    }

    #[test]
    fn seg_matches() {
        for segs in [vec![5u8, 5], vec![3, 3, 4], vec![2, 8]] {
            check_netlist_matches_functional(10, &SubKind::Seg { segs });
        }
    }

    #[test]
    fn cell_ripple_exact_is_exact() {
        let cells: Arc<[FaCell]> = vec![FaCell::EXACT_FS; 10].into();
        let kind = SubKind::CellRipple { cells };
        let sig = OpSignature::SUB10;
        for (a, b) in crate::util::stimulus_pairs(10, 10, 500, 8) {
            let raw = eval(10, &kind, a, b);
            assert_eq!(sig.to_signed(raw), a as i64 - b as i64, "a={a} b={b}");
        }
        check_netlist_matches_functional(10, &kind);
    }

    #[test]
    fn cell_ripple_random_matches() {
        let mut st = 31u64;
        for _ in 0..8 {
            let cells: Arc<[FaCell]> = (0..10)
                .map(|i| {
                    if i < 5 {
                        FaCell::random(&mut st)
                    } else {
                        FaCell::EXACT_FS
                    }
                })
                .collect::<Vec<_>>()
                .into();
            check_netlist_matches_functional(10, &SubKind::CellRipple { cells });
        }
    }

    #[test]
    fn lower_part_families_have_bounded_error() {
        let sig = OpSignature::new(OpKind::Sub, 10, 10);
        for k in 1..5 {
            for kind in [
                SubKind::TruncZero { k },
                SubKind::TruncPass { k },
                SubKind::XorLower { k },
            ] {
                let bound = 1i64 << (k + 1);
                for (a, b) in crate::util::stimulus_pairs(10, 10, 400, 17) {
                    let raw = eval(10, &kind, a, b);
                    let err = sig.to_signed(raw) - (a as i64 - b as i64);
                    assert!(
                        err.abs() < bound,
                        "{} k={k} a={a} b={b}: err {err}",
                        kind.label()
                    );
                }
            }
        }
    }
}
