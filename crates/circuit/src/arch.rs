//! Alternative *exact* arithmetic architectures: carry-lookahead adders
//! and Wallace-tree multipliers.
//!
//! Real component libraries (and EvoApprox in particular) contain several
//! accurate implementations per operation with different area/delay
//! trade-offs — a fast wide adder costs more area than a ripple chain.
//! These architectures enrich the hardware dimension of the generated
//! library and give the delay-aware cost models something to learn.

use crate::netlist::{Bus, NetId, Netlist};

/// Builds a `w`-bit flat carry-lookahead adder: every carry is computed
/// as two-level logic over the generate/propagate signals, with balanced
/// AND/OR trees. Inputs `a[w] ++ b[w]`, output `sum[w+1]`.
///
/// Compared to the ripple-carry adder this trades area for delay
/// aggressively: the carry into bit `i` costs `O(i)` product terms, but
/// the critical path grows only logarithmically in `w`.
pub fn carry_lookahead_adder(w: u32) -> Netlist {
    let mut n = Netlist::new(format!("add{w}_cla"));
    let a = n.input_bus(w as usize);
    let b = n.input_bus(w as usize);
    let sum = cla_add_into(&mut n, &a, &b);
    n.push_output_bus(&sum);
    n
}

/// Balanced binary reduction of a net list with a 2-input combiner.
fn reduce_tree(
    n: &mut Netlist,
    mut nets: Vec<NetId>,
    combine: fn(&mut Netlist, NetId, NetId) -> NetId,
) -> NetId {
    assert!(!nets.is_empty());
    while nets.len() > 1 {
        let mut next = Vec::with_capacity(nets.len().div_ceil(2));
        for pair in nets.chunks(2) {
            next.push(if pair.len() == 2 {
                combine(n, pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        nets = next;
    }
    nets[0]
}

/// Flat CLA addition of two equal-width buses inside an existing netlist.
pub fn cla_add_into(n: &mut Netlist, a: &Bus, b: &Bus) -> Bus {
    assert_eq!(a.width(), b.width());
    let w = a.width();
    // generate / propagate per bit
    let g: Vec<NetId> = (0..w).map(|i| n.and2(a.bit(i), b.bit(i))).collect();
    let p: Vec<NetId> = (0..w).map(|i| n.xor2(a.bit(i), b.bit(i))).collect();
    // c_{i} = OR_{j < i} ( g_j AND p_{j+1} AND ... AND p_{i-1} )
    let mut carries: Vec<NetId> = Vec::with_capacity(w + 1);
    carries.push(n.const0());
    for i in 1..=w {
        let mut terms = Vec::with_capacity(i);
        for j in 0..i {
            let mut literals = vec![g[j]];
            literals.extend_from_slice(&p[j + 1..i]);
            terms.push(reduce_tree(n, literals, Netlist::and2));
        }
        carries.push(reduce_tree(n, terms, Netlist::or2));
    }
    let mut bits: Vec<NetId> = (0..w).map(|i| n.xor2(p[i], carries[i])).collect();
    bits.push(carries[w]);
    Bus(bits)
}

/// Builds a `wa × wb` Wallace-tree multiplier: partial products are
/// reduced with carry-save 3:2 compressors, then summed by a final CLA.
/// Same function as [`crate::arith::array_multiplier`], shorter critical
/// path, more cells.
pub fn wallace_multiplier(wa: u32, wb: u32) -> Netlist {
    let mut n = Netlist::new(format!("mul{wa}x{wb}_wallace"));
    let a = n.input_bus(wa as usize);
    let b = n.input_bus(wb as usize);
    // column-wise partial-product collection
    let wout = (wa + wb) as usize;
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); wout];
    for i in 0..wb as usize {
        for j in 0..wa as usize {
            let pp = n.and2(a.bit(j), b.bit(i));
            columns[i + j].push(pp);
        }
    }
    // carry-save reduction to depth <= 2
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); wout];
        for (col, nets) in columns.iter().enumerate() {
            let mut idx = 0;
            while nets.len() - idx >= 3 {
                let (s, c) = n.full_adder(nets[idx], nets[idx + 1], nets[idx + 2]);
                next[col].push(s);
                if col + 1 < wout {
                    next[col + 1].push(c);
                }
                idx += 3;
            }
            if nets.len() - idx == 2 && nets.len() > 2 {
                let (s, c) = n.half_adder(nets[idx], nets[idx + 1]);
                next[col].push(s);
                if col + 1 < wout {
                    next[col + 1].push(c);
                }
                idx += 2;
            }
            for &rest in &nets[idx..] {
                next[col].push(rest);
            }
        }
        columns = next;
    }
    // final two rows summed with a CLA
    let zero = n.const0();
    let row0: Vec<NetId> = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row1: Vec<NetId> = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let total = cla_add_into(&mut n, &Bus(row0), &Bus(row1));
    n.push_output_bus(&Bus(total.0[..wout].to_vec()));
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{array_multiplier, ripple_carry_adder};
    use crate::sim::{check_equivalence, eval_binop, exhaustive_outputs};
    use crate::synth::{critical_path, synthesize};

    #[test]
    fn cla_is_functionally_exact() {
        for w in [4u32, 7, 8, 16] {
            let cla = carry_lookahead_adder(w);
            if w <= 8 {
                let outs = exhaustive_outputs(&cla);
                for v in 0..(1u64 << (2 * w)) {
                    let a = v & crate::util::mask(w);
                    let b = v >> w;
                    assert_eq!(outs[v as usize], a + b, "w={w} a={a} b={b}");
                }
            } else {
                for (a, b) in crate::util::stimulus_pairs(w, w, 400, 5) {
                    assert_eq!(eval_binop(&cla, w, w, a, b), a + b);
                }
            }
        }
    }

    #[test]
    fn cla_trades_area_for_delay_on_wide_adders() {
        let (_, rca) = synthesize(&ripple_carry_adder(16));
        let (_, cla) = synthesize(&carry_lookahead_adder(16));
        assert!(
            cla.delay < rca.delay,
            "CLA {} !< RCA {}",
            cla.delay,
            rca.delay
        );
        assert!(cla.area > rca.area, "CLA should pay area for speed");
    }

    #[test]
    fn wallace_matches_array_multiplier() {
        let wal = wallace_multiplier(8, 8);
        let arr = array_multiplier(8, 8);
        assert!(check_equivalence(&wal, &arr, 0, 0).is_none());
    }

    #[test]
    fn wallace_small_widths_exhaustive() {
        for (wa, wb) in [(4u32, 4u32), (5, 3), (3, 5)] {
            let wal = wallace_multiplier(wa, wb);
            let outs = exhaustive_outputs(&wal);
            for v in 0..(1u64 << (wa + wb)) {
                let a = v & crate::util::mask(wa);
                let b = v >> wa;
                assert_eq!(outs[v as usize], a * b, "{wa}x{wb} a={a} b={b}");
            }
        }
    }

    #[test]
    fn wallace_is_faster_than_array() {
        let arr = array_multiplier(8, 8);
        let wal = wallace_multiplier(8, 8);
        assert!(
            critical_path(&wal) < critical_path(&arr),
            "wallace {} !< array {}",
            critical_path(&wal),
            critical_path(&arr)
        );
    }
}
