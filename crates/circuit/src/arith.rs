//! Exact arithmetic circuit builders: ripple-carry adders, two's-complement
//! subtractors and array multipliers. These are both the accurate baselines
//! of every library class and the structural skeletons that the approximate
//! families in [`crate::approx`] modify.

use crate::netlist::{Bus, NetId, Netlist};

/// Builds a `w`-bit ripple-carry adder: inputs `a[w] ++ b[w]`, output
/// `sum[w+1]` (the MSB is the carry out).
///
/// ```
/// use autoax_circuit::arith::ripple_carry_adder;
/// use autoax_circuit::sim::eval_binop;
/// let add = ripple_carry_adder(8);
/// assert_eq!(eval_binop(&add, 8, 8, 255, 255), 510);
/// ```
pub fn ripple_carry_adder(w: u32) -> Netlist {
    let mut n = Netlist::new(format!("add{w}_exact"));
    let a = n.input_bus(w as usize);
    let b = n.input_bus(w as usize);
    let sum = ripple_add_into(&mut n, &a, &b, None);
    n.push_output_bus(&sum);
    n
}

/// Adds buses `a` and `b` inside an existing netlist with optional carry-in;
/// returns the `max(wa, wb) + 1`-bit sum bus. Buses of different widths are
/// allowed (the shorter one is zero-extended without cost).
pub fn ripple_add_into(n: &mut Netlist, a: &Bus, b: &Bus, cin: Option<NetId>) -> Bus {
    let w = a.width().max(b.width());
    let mut bits = Vec::with_capacity(w + 1);
    let mut carry = cin;
    for i in 0..w {
        match (a.0.get(i).copied(), b.0.get(i).copied()) {
            (Some(x), Some(y)) => {
                let (s, c) = match carry {
                    None => n.half_adder(x, y),
                    Some(ci) => n.full_adder(x, y, ci),
                };
                bits.push(s);
                carry = Some(c);
            }
            (Some(x), None) | (None, Some(x)) => match carry {
                None => bits.push(x),
                Some(ci) => {
                    let (s, c) = n.half_adder(x, ci);
                    bits.push(s);
                    carry = Some(c);
                }
            },
            (None, None) => unreachable!(),
        }
    }
    let top = match carry {
        Some(c) => c,
        None => n.const0(),
    };
    bits.push(top);
    Bus(bits)
}

/// Builds a `w`-bit subtractor: inputs `a[w] ++ b[w]`, output
/// `diff[w+1]` in two's complement (MSB is the sign).
///
/// Implemented as `a + !b + 1`; the sign bit of the `(w+1)`-bit result is
/// correct for all unsigned operands because `|a - b| < 2^w`.
pub fn ripple_subtractor(w: u32) -> Netlist {
    let mut n = Netlist::new(format!("sub{w}_exact"));
    let a = n.input_bus(w as usize);
    let b = n.input_bus(w as usize);
    let diff = ripple_sub_into(&mut n, &a, &b);
    n.push_output_bus(&diff);
    n
}

/// Subtracts bus `b` from bus `a` inside an existing netlist, returning the
/// `(w+1)`-bit two's-complement difference.
pub fn ripple_sub_into(n: &mut Netlist, a: &Bus, b: &Bus) -> Bus {
    let w = a.width().max(b.width());
    let zero = n.const0();
    let ext = |bus: &Bus, i: usize| bus.0.get(i).copied().unwrap_or(zero);
    let mut bits = Vec::with_capacity(w + 1);
    // carry-in 1 and inverted b implements a - b
    let mut carry = n.const1();
    let mut carry_w = carry;
    for i in 0..w {
        let x = ext(a, i);
        let nb = {
            let y = ext(b, i);
            n.inv(y)
        };
        let (s, c) = n.full_adder(x, nb, carry);
        bits.push(s);
        carry = c;
        carry_w = c;
    }
    // Sign bit: carry-out of (a + !b + 1) over w bits is 1 iff a >= b, so
    // the two's-complement sign of the (w+1)-bit result is !carry.
    let sign = n.inv(carry_w);
    bits.push(sign);
    Bus(bits)
}

/// Builds a `wa × wb` unsigned array multiplier: inputs `a[wa] ++ b[wb]`,
/// output `p[wa+wb]`.
///
/// The structure is the classic carry-propagate array: partial-product row
/// `i` (`a & b_i`) is accumulated into the running sum with a ripple chain.
/// Approximate multiplier families reuse this skeleton with cells removed
/// (BAM, truncation) or substituted (see `crate::approx::cells`).
pub fn array_multiplier(wa: u32, wb: u32) -> Netlist {
    let mut n = Netlist::new(format!("mul{wa}x{wb}_exact"));
    let a = n.input_bus(wa as usize);
    let b = n.input_bus(wb as usize);
    let p = array_multiply_into(&mut n, &a, &b);
    n.push_output_bus(&p);
    n
}

/// Multiplies buses `a` and `b` inside an existing netlist, returning the
/// `wa + wb`-bit product bus.
pub fn array_multiply_into(n: &mut Netlist, a: &Bus, b: &Bus) -> Bus {
    let wa = a.width();
    let wb = b.width();
    let zero = n.const0();
    // Row 0: p = a & b0
    let mut acc: Vec<NetId> = (0..wa + wb).map(|_| zero).collect();
    for (j, &aj) in a.iter().enumerate() {
        acc[j] = n.and2(aj, b.bit(0));
    }
    // Rows 1..wb: acc[i..] += (a & b_i) << i
    for i in 1..wb {
        let bi = b.bit(i);
        let mut carry = zero;
        for j in 0..wa {
            let pp = n.and2(a.bit(j), bi);
            let (s, c) = n.full_adder(acc[i + j], pp, carry);
            acc[i + j] = s;
            carry = c;
        }
        // propagate final carry into the next column
        if i + wa < wa + wb {
            acc[i + wa] = carry;
        }
    }
    Bus(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{eval_binop, exhaustive_outputs};
    use crate::OpSignature;

    #[test]
    fn adder_exhaustive_8bit() {
        let add = ripple_carry_adder(8);
        let outs = exhaustive_outputs(&add);
        for v in 0u64..65536 {
            let a = v & 0xFF;
            let b = v >> 8;
            assert_eq!(outs[v as usize], a + b, "a={a} b={b}");
        }
    }

    #[test]
    fn adder_mixed_width_buses() {
        let mut n = Netlist::new("mixed");
        let a = n.input_bus(6);
        let b = n.input_bus(3);
        let s = ripple_add_into(&mut n, &a, &b, None);
        n.push_output_bus(&s);
        for (a, b) in [(63u64, 7u64), (0, 0), (32, 5), (63, 0)] {
            let packed = eval_binop(&n, 6, 3, a, b);
            assert_eq!(packed, a + b);
        }
    }

    #[test]
    fn subtractor_exhaustive_6bit() {
        let sub = ripple_subtractor(6);
        let sig = OpSignature::new(crate::OpKind::Sub, 6, 6);
        let outs = exhaustive_outputs(&sub);
        for v in 0u64..(1 << 12) {
            let a = v & 0x3F;
            let b = v >> 6;
            let exp = sig.exact(a, b);
            assert_eq!(outs[v as usize], exp, "a={a} b={b}");
        }
    }

    #[test]
    fn subtractor_sign_bit() {
        let sub = ripple_subtractor(10);
        let sig = OpSignature::SUB10;
        for (a, b) in [(0u64, 1u64), (1023, 0), (500, 500), (12, 900)] {
            let raw = eval_binop(&sub, 10, 10, a, b);
            assert_eq!(sig.to_signed(raw), a as i64 - b as i64);
        }
    }

    #[test]
    fn multiplier_exhaustive_5x5() {
        let mul = array_multiplier(5, 5);
        let outs = exhaustive_outputs(&mul);
        for v in 0u64..(1 << 10) {
            let a = v & 0x1F;
            let b = v >> 5;
            assert_eq!(outs[v as usize], a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn multiplier_8x8_samples() {
        let mul = array_multiplier(8, 8);
        for (a, b) in crate::util::stimulus_pairs(8, 8, 500, 11) {
            assert_eq!(eval_binop(&mul, 8, 8, a, b), a * b);
        }
        assert_eq!(eval_binop(&mul, 8, 8, 255, 255), 65025);
    }

    #[test]
    fn multiplier_rectangular() {
        let mul = array_multiplier(8, 4);
        for (a, b) in crate::util::stimulus_pairs(8, 4, 300, 13) {
            assert_eq!(eval_binop(&mul, 8, 4, a, b), a * b);
        }
    }
}
