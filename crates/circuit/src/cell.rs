//! Standard-cell library: the gate kinds a [`crate::Netlist`] may contain,
//! with per-cell area, delay, leakage and switching-energy characterization.
//!
//! The numbers are modelled on a 45 nm open cell library (areas in µm²,
//! delays in ns, leakage in nW, switching energy in fJ per output toggle).
//! They are *synthetic but proportionally realistic*: XOR-class cells are
//! roughly 2–3× an inverter in every dimension, exactly the proportions
//! that make approximate-arithmetic area/power trade-offs meaningful. The
//! absolute scale differs from the paper's Synopsys/45 nm flow; DESIGN.md
//! explains why only relative costs matter for the methodology.

/// The kinds of cells available to netlists.
///
/// All cells have at most three inputs. Unused input slots are ignored
/// (see [`CellKind::arity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Constant logic 0 (zero inputs, free).
    Const0,
    /// Constant logic 1 (zero inputs, free).
    Const1,
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer: `y = s ? d1 : d0` with inputs `[s, d0, d1]`.
    Mux2,
    /// 3-input majority (the carry function): `y = ab | ac | bc`.
    Maj3,
}

impl CellKind {
    /// All cell kinds (useful for exhaustive tests and mutation).
    pub const ALL: [CellKind; 12] = [
        CellKind::Const0,
        CellKind::Const1,
        CellKind::Buf,
        CellKind::Inv,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Maj3,
    ];

    /// Number of inputs the cell reads.
    pub const fn arity(self) -> usize {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0,
            CellKind::Buf | CellKind::Inv => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Mux2 | CellKind::Maj3 => 3,
        }
    }

    /// Cell area in µm².
    pub const fn area(self) -> f64 {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Buf => 0.798,
            CellKind::Inv => 0.532,
            CellKind::And2 | CellKind::Or2 => 1.064,
            CellKind::Nand2 | CellKind::Nor2 => 0.798,
            CellKind::Xor2 | CellKind::Xnor2 => 1.596,
            CellKind::Mux2 => 1.862,
            CellKind::Maj3 => 2.128,
        }
    }

    /// Propagation delay in ns (typical corner, unit load).
    pub const fn delay(self) -> f64 {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Buf => 0.012,
            CellKind::Inv => 0.008,
            CellKind::And2 | CellKind::Or2 => 0.020,
            CellKind::Nand2 | CellKind::Nor2 => 0.014,
            CellKind::Xor2 | CellKind::Xnor2 => 0.032,
            CellKind::Mux2 => 0.030,
            CellKind::Maj3 => 0.028,
        }
    }

    /// Static leakage power in nW.
    pub const fn leakage(self) -> f64 {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Buf => 1.8,
            CellKind::Inv => 1.2,
            CellKind::And2 | CellKind::Or2 => 2.4,
            CellKind::Nand2 | CellKind::Nor2 => 1.9,
            CellKind::Xor2 | CellKind::Xnor2 => 3.8,
            CellKind::Mux2 => 4.2,
            CellKind::Maj3 => 4.6,
        }
    }

    /// Dynamic switching energy in fJ per output toggle.
    pub const fn switch_energy(self) -> f64 {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Buf => 1.1,
            CellKind::Inv => 0.7,
            CellKind::And2 | CellKind::Or2 => 1.6,
            CellKind::Nand2 | CellKind::Nor2 => 1.2,
            CellKind::Xor2 | CellKind::Xnor2 => 2.6,
            CellKind::Mux2 => 2.9,
            CellKind::Maj3 => 3.1,
        }
    }

    /// Evaluates the cell on bit-parallel words (each bit lane is an
    /// independent evaluation).
    ///
    /// Unused inputs are ignored. Constants return all-zero / all-one
    /// words.
    #[inline]
    pub fn eval(self, a: u64, b: u64, c: u64) -> u64 {
        match self {
            CellKind::Const0 => 0,
            CellKind::Const1 => u64::MAX,
            CellKind::Buf => a,
            CellKind::Inv => !a,
            CellKind::And2 => a & b,
            CellKind::Or2 => a | b,
            CellKind::Nand2 => !(a & b),
            CellKind::Nor2 => !(a | b),
            CellKind::Xor2 => a ^ b,
            CellKind::Xnor2 => !(a ^ b),
            // a = select, b = d0, c = d1
            CellKind::Mux2 => (a & c) | (!a & b),
            CellKind::Maj3 => (a & b) | (a & c) | (b & c),
        }
    }

    /// True for two-input cells whose function is symmetric in its inputs
    /// (used by structural hashing to canonicalize operand order).
    pub const fn is_commutative2(self) -> bool {
        matches!(
            self,
            CellKind::And2
                | CellKind::Or2
                | CellKind::Nand2
                | CellKind::Nor2
                | CellKind::Xor2
                | CellKind::Xnor2
        )
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CellKind::Const0 => "const0",
            CellKind::Const1 => "const1",
            CellKind::Buf => "buf",
            CellKind::Inv => "inv",
            CellKind::And2 => "and2",
            CellKind::Or2 => "or2",
            CellKind::Nand2 => "nand2",
            CellKind::Nor2 => "nor2",
            CellKind::Xor2 => "xor2",
            CellKind::Xnor2 => "xnor2",
            CellKind::Mux2 => "mux2",
            CellKind::Maj3 => "maj3",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_consistency() {
        for k in CellKind::ALL {
            assert!(k.arity() <= 3);
        }
        assert_eq!(CellKind::Const0.arity(), 0);
        assert_eq!(CellKind::Inv.arity(), 1);
        assert_eq!(CellKind::Xor2.arity(), 2);
        assert_eq!(CellKind::Maj3.arity(), 3);
    }

    #[test]
    fn eval_truth_tables() {
        // Single-lane checks using all-zeros/all-ones words.
        let t = u64::MAX;
        let f = 0u64;
        assert_eq!(CellKind::And2.eval(t, f, 0), 0);
        assert_eq!(CellKind::Or2.eval(t, f, 0), t);
        assert_eq!(CellKind::Xor2.eval(t, t, 0), 0);
        assert_eq!(CellKind::Nand2.eval(t, t, 0), 0);
        assert_eq!(CellKind::Nor2.eval(f, f, 0), t);
        assert_eq!(CellKind::Xnor2.eval(t, f, 0), 0);
        assert_eq!(CellKind::Inv.eval(t, 0, 0), 0);
        // Mux: select=1 picks d1.
        assert_eq!(CellKind::Mux2.eval(t, f, t), t);
        assert_eq!(CellKind::Mux2.eval(f, f, t), f);
        // Majority.
        assert_eq!(CellKind::Maj3.eval(t, t, f), t);
        assert_eq!(CellKind::Maj3.eval(t, f, f), f);
    }

    #[test]
    fn maj3_matches_carry_function() {
        for a in [0u64, 1] {
            for b in [0u64, 1] {
                for c in [0u64, 1] {
                    let exp = (a + b + c) >= 2;
                    let got = CellKind::Maj3.eval(
                        if a == 1 { u64::MAX } else { 0 },
                        if b == 1 { u64::MAX } else { 0 },
                        if c == 1 { u64::MAX } else { 0 },
                    );
                    assert_eq!(got == u64::MAX, exp);
                }
            }
        }
    }

    #[test]
    fn costs_are_positive_for_real_cells() {
        for k in CellKind::ALL {
            if matches!(k, CellKind::Const0 | CellKind::Const1) {
                assert_eq!(k.area(), 0.0);
            } else {
                assert!(k.area() > 0.0);
                assert!(k.delay() > 0.0);
                assert!(k.leakage() > 0.0);
                assert!(k.switch_energy() > 0.0);
            }
        }
    }

    #[test]
    fn xor_costs_more_than_nand() {
        assert!(CellKind::Xor2.area() > CellKind::Nand2.area());
        assert!(CellKind::Xor2.delay() > CellKind::Nand2.delay());
    }

    #[test]
    fn commutativity_flags() {
        assert!(CellKind::And2.is_commutative2());
        assert!(!CellKind::Mux2.is_commutative2());
        assert!(!CellKind::Inv.is_commutative2());
    }
}
