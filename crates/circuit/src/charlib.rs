//! Generation and characterization of approximate-component libraries.
//!
//! This module replaces the paper's downloaded libraries (EvoApprox8b,
//! QuAd adders, BAM multipliers). [`build_library`] generates a
//! configurable number of circuits per operation class from the
//! parameterized families in [`crate::approx`], characterizes every
//! circuit exhaustively (operand spaces up to 2^20) or with a large
//! deterministic sample, deduplicates functionally identical candidates
//! and filters out garbage — producing exactly the artifact the autoAx
//! methodology consumes: a set of *fully characterized* black-box circuits
//! per operation.
//!
//! [`ClassCounts::paper`] reproduces the library sizes of Table 2.

use crate::approx::adders::{self, AdderKind};
use crate::approx::cells::FaCell;
use crate::approx::muls::MulKind;
use crate::approx::mutate::mutate_netlist;
use crate::approx::subs::SubKind;
use crate::approx::Behavior;
use crate::error::{ErrorMetrics, ErrorStats};
use crate::netlist::Netlist;
use crate::sim;
use crate::synth::{self, HwReport};
use crate::util::{mask, splitmix64, stimulus_pairs};
use crate::{OpKind, OpSignature};
use autoax_exec::par_map;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Index of a circuit inside its operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CircuitId(pub u32);

/// One fully characterized library circuit.
#[derive(Debug, Clone)]
pub struct CircuitEntry {
    /// Index within the class (0 is always the exact circuit).
    pub id: CircuitId,
    /// The functional/structural description.
    pub behavior: Behavior,
    /// Human-readable family label.
    pub label: String,
    /// Hardware cost after synthesis-lite (isolated circuit).
    pub hw: HwReport,
    /// Error metrics versus the exact function.
    pub err: ErrorMetrics,
}

impl CircuitEntry {
    /// Evaluates the circuit on one operand pair.
    pub fn eval(&self, a: u64, b: u64) -> u64 {
        self.behavior.eval(a, b)
    }

    /// The operation signature of this circuit.
    pub fn signature(&self) -> OpSignature {
        self.behavior.signature()
    }

    /// Rebuilds the circuit netlist (deterministic).
    pub fn build_netlist(&self) -> Netlist {
        self.behavior.build_netlist()
    }

    /// True when this is the accurate implementation.
    pub fn is_exact(&self) -> bool {
        self.err.is_exact()
    }
}

/// Target number of circuits per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassCounts {
    /// 8-bit adders.
    pub add8: usize,
    /// 9-bit adders.
    pub add9: usize,
    /// 16-bit adders.
    pub add16: usize,
    /// 10-bit subtractors.
    pub sub10: usize,
    /// 16-bit subtractors.
    pub sub16: usize,
    /// 8-bit multipliers.
    pub mul8: usize,
}

impl ClassCounts {
    /// The library sizes of the paper's Table 2.
    pub fn paper() -> Self {
        ClassCounts {
            add8: 6979,
            add9: 332,
            add16: 884,
            sub10: 365,
            sub16: 460,
            mul8: 29911,
        }
    }

    /// A laptop-friendly default (~10% of paper scale for the two huge
    /// classes); preserves the relative class sizes.
    pub fn default_scale() -> Self {
        ClassCounts {
            add8: 700,
            add9: 150,
            add16: 250,
            sub10: 150,
            sub16: 180,
            mul8: 1200,
        }
    }

    /// Tiny library for fast unit/integration tests.
    pub fn tiny() -> Self {
        ClassCounts {
            add8: 60,
            add9: 40,
            add16: 50,
            sub10: 40,
            sub16: 40,
            mul8: 70,
        }
    }

    /// Target count for a signature (0 for unknown classes).
    pub fn for_signature(&self, sig: OpSignature) -> usize {
        match sig {
            OpSignature::ADD8 => self.add8,
            OpSignature::ADD9 => self.add9,
            OpSignature::ADD16 => self.add16,
            OpSignature::SUB10 => self.sub10,
            OpSignature::SUB16 => self.sub16,
            OpSignature::MUL8 => self.mul8,
            _ => 0,
        }
    }
}

/// Configuration of the library generator.
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// Target class sizes.
    pub counts: ClassCounts,
    /// Master RNG seed; the whole library is a deterministic function of
    /// the configuration.
    pub seed: u64,
    /// Number of sampled operand pairs for classes whose input space is
    /// too large for exhaustive characterization.
    pub char_samples: usize,
    /// Classes with at most this many input bits are characterized
    /// exhaustively.
    pub max_exhaustive_bits: u32,
    /// Candidates whose worst-case error exceeds this fraction of the
    /// class output range are discarded as garbage.
    pub max_wce_frac: f64,
    /// Fraction of the "fill" candidates generated as netlist mutants
    /// (the rest are cell-substitution and segmentation draws).
    pub mutant_frac: f64,
}

impl Default for LibraryConfig {
    fn default() -> Self {
        LibraryConfig {
            counts: ClassCounts::default_scale(),
            seed: 42,
            char_samples: 16384,
            max_exhaustive_bits: 18,
            max_wce_frac: 0.75,
            mutant_frac: 0.15,
        }
    }
}

impl LibraryConfig {
    /// Paper-scale configuration (Table 2 counts).
    pub fn paper() -> Self {
        LibraryConfig {
            counts: ClassCounts::paper(),
            ..Default::default()
        }
    }

    /// Tiny test configuration.
    pub fn tiny() -> Self {
        LibraryConfig {
            counts: ClassCounts::tiny(),
            char_samples: 2048,
            ..Default::default()
        }
    }
}

/// A library of characterized circuits grouped by operation class.
#[derive(Debug, Clone, Default)]
pub struct ComponentLibrary {
    classes: BTreeMap<OpSignature, Vec<CircuitEntry>>,
}

impl ComponentLibrary {
    /// The circuits of one class (empty slice if the class is absent).
    pub fn class(&self, sig: OpSignature) -> &[CircuitEntry] {
        self.classes.get(&sig).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Signatures present in the library.
    pub fn signatures(&self) -> impl Iterator<Item = OpSignature> + '_ {
        self.classes.keys().copied()
    }

    /// Number of circuits in a class.
    pub fn class_size(&self, sig: OpSignature) -> usize {
        self.class(sig).len()
    }

    /// Total number of circuits across all classes.
    pub fn total_size(&self) -> usize {
        self.classes.values().map(Vec::len).sum()
    }

    /// Inserts (replacing) a class.
    pub fn insert_class(&mut self, sig: OpSignature, entries: Vec<CircuitEntry>) {
        self.classes.insert(sig, entries);
    }
}

/// Builds the full six-class library of the paper.
pub fn build_library(cfg: &LibraryConfig) -> ComponentLibrary {
    let mut lib = ComponentLibrary::default();
    for (i, sig) in OpSignature::PAPER_CLASSES.into_iter().enumerate() {
        let count = cfg.counts.for_signature(sig);
        if count == 0 {
            continue;
        }
        let entries = build_class(sig, count, cfg, cfg.seed.wrapping_add(i as u64 * 0x9E37));
        lib.insert_class(sig, entries);
    }
    lib
}

/// Builds and characterizes one class to (up to) `target` circuits.
///
/// The exact circuit is always entry 0. If the family generators plus the
/// seeded fill cannot produce `target` distinct, non-garbage behaviours in
/// eight rounds, the class is returned smaller (never happens at the
/// paper's scales).
pub fn build_class(
    sig: OpSignature,
    target: usize,
    cfg: &LibraryConfig,
    seed: u64,
) -> Vec<CircuitEntry> {
    let mut entries: Vec<CircuitEntry> = Vec::with_capacity(target);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut round_seed = seed;

    // Round 0 uses the structured families; later rounds only random fill.
    for round in 0..8 {
        if entries.len() >= target {
            break;
        }
        let need = target - entries.len();
        let candidates = if round == 0 {
            let mut c = structured_candidates(sig);
            let fill_n = need.saturating_sub(c.len()) + need / 4;
            c.extend(fill_candidates(sig, fill_n, cfg, round_seed));
            c
        } else {
            fill_candidates(sig, need + need / 3 + 8, cfg, round_seed)
        };
        round_seed = round_seed.wrapping_add(0xABCD_EF01);

        let characterized = par_map(&candidates, |b| characterize(sig, b, cfg));
        for (behavior, (err, hw, fingerprint)) in candidates.into_iter().zip(characterized) {
            if entries.len() >= target {
                break;
            }
            if !seen.insert(fingerprint) {
                continue; // functional duplicate
            }
            let is_exact_slot = entries.is_empty();
            if !is_exact_slot && err.wce as f64 > cfg.max_wce_frac * sig.output_range() {
                continue; // garbage
            }
            let label = behavior.label();
            entries.push(CircuitEntry {
                id: CircuitId(entries.len() as u32),
                behavior,
                label,
                hw,
                err,
            });
        }
    }
    debug_assert!(entries[0].is_exact(), "entry 0 must be the exact circuit");
    entries
}

/// Characterizes one behaviour: error metrics, hardware report and a
/// fingerprint for deduplication. The fingerprint combines the functional
/// signature with the rounded area/delay so that functionally identical
/// circuits with different *architectures* (e.g. ripple vs lookahead
/// adders) both survive, as they do in real component libraries.
///
/// Everything goes through the circuit's netlist and the bit-parallel
/// simulator, so characterization also exercises the same structure that
/// hardware analysis sees.
fn characterize(
    sig: OpSignature,
    behavior: &Behavior,
    cfg: &LibraryConfig,
) -> (ErrorMetrics, HwReport, u64) {
    let netlist = behavior.build_netlist();
    let (_, hw) = synth::synthesize(&netlist);
    let wa = sig.width_a as u32;
    let mut stats = ErrorStats::new();
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    let mut push_fp = |v: u64| {
        fp ^= v;
        fp = fp.wrapping_mul(0x100_0000_01b3);
    };
    if sig.input_bits() <= cfg.max_exhaustive_bits {
        let outs = sim::exhaustive_outputs(&netlist);
        for (v, &raw) in outs.iter().enumerate() {
            let a = v as u64 & mask(wa);
            let b = v as u64 >> wa;
            stats.push(sig.error(a, b, raw), sig.exact(a, b));
            push_fp(raw);
        }
    } else {
        let pairs = stimulus_pairs(
            wa,
            sig.width_b as u32,
            cfg.char_samples,
            0x5EED ^ sig.input_bits() as u64,
        );
        let outs = sim::eval_binop_batch(&netlist, wa, sig.width_b as u32, &pairs);
        for (&(a, b), &raw) in pairs.iter().zip(outs.iter()) {
            stats.push(sig.error(a, b, raw), sig.exact(a, b));
            push_fp(raw);
        }
    }
    push_fp((hw.area * 16.0).round() as u64);
    push_fp((hw.delay * 1024.0).round() as u64);
    (stats.finish(), hw, fp)
}

/// All "named" structured variants of a class, exact first.
fn structured_candidates(sig: OpSignature) -> Vec<Behavior> {
    match sig.kind {
        OpKind::Add => structured_adders(sig.width_a as u32),
        OpKind::Sub => structured_subs(sig.width_a as u32),
        OpKind::Mul => structured_muls(sig.width_a as u32, sig.width_b as u32),
    }
}

fn structured_adders(w: u32) -> Vec<Behavior> {
    let mut out = vec![Behavior::Adder {
        w,
        kind: AdderKind::Exact,
    }];
    let mut push = |kind: AdderKind| {
        out.push(Behavior::Adder { w, kind });
    };
    push(AdderKind::ExactCla);
    for k in 1..w {
        push(AdderKind::TruncZero { k });
        push(AdderKind::TruncPass { k });
        push(AdderKind::Loa { k });
        push(AdderKind::XorLower { k });
    }
    for r in 1..w {
        push(AdderKind::Aca { r });
    }
    for r in 1..=w / 2 {
        for p in 1..=w / 2 {
            if r + p < w {
                push(AdderKind::Gear { r, p });
            }
        }
    }
    // QuAd-style segmentations: enumerate fully up to 9 bits, else defer to
    // the random fill.
    if w <= 9 {
        for segs in adders::segment_compositions(w) {
            for speculate in [false, true] {
                push(AdderKind::Seg {
                    segs: segs.clone(),
                    speculate,
                });
            }
        }
    }
    // Low-k catalog-cell substitutions.
    for k in 1..w {
        for cell in FaCell::approx_fa_catalog() {
            let cells: Arc<[FaCell]> = (0..w)
                .map(|i| if i < k { cell } else { FaCell::EXACT_FA })
                .collect::<Vec<_>>()
                .into();
            push(AdderKind::CellRipple { cells });
        }
    }
    out
}

fn structured_subs(w: u32) -> Vec<Behavior> {
    let mut out = vec![Behavior::Subtractor {
        w,
        kind: SubKind::Exact,
    }];
    let mut push = |kind: SubKind| {
        out.push(Behavior::Subtractor { w, kind });
    };
    for k in 1..w {
        push(SubKind::TruncZero { k });
        push(SubKind::TruncPass { k });
        push(SubKind::XorLower { k });
    }
    if w <= 9 {
        for segs in adders::segment_compositions(w) {
            push(SubKind::Seg { segs });
        }
    }
    for k in 1..w {
        for cell in FaCell::approx_fs_catalog() {
            let cells: Arc<[FaCell]> = (0..w)
                .map(|i| if i < k { cell } else { FaCell::EXACT_FS })
                .collect::<Vec<_>>()
                .into();
            push(SubKind::CellRipple { cells });
        }
    }
    out
}

fn structured_muls(wa: u32, wb: u32) -> Vec<Behavior> {
    let mut out = vec![Behavior::Multiplier {
        wa,
        wb,
        kind: MulKind::Exact,
    }];
    let mut push = |kind: MulKind| {
        out.push(Behavior::Multiplier { wa, wb, kind });
    };
    push(MulKind::ExactWallace);
    for vbl in 0..(wa + wb - 1) {
        for hbl in 0..wb {
            if vbl == 0 && hbl == 0 {
                continue;
            }
            push(MulKind::Bam { vbl, hbl });
        }
    }
    for k in 1..wa {
        push(MulKind::Trunc { k, comp: true });
        // comp: false duplicates Bam { vbl: k, hbl: 0 }; skipped.
    }
    for row_mask in 1..(1u16 << wb.min(8)) {
        if row_mask.count_ones() <= 3 {
            push(MulKind::PerfRows { row_mask });
        }
    }
    if wa == wb && wa.is_power_of_two() && wa >= 4 {
        let n_leaves = (wa / 2) * (wb / 2);
        for l in 0..n_leaves.min(16) {
            push(MulKind::Udm { leaf_mask: 1 << l });
        }
        for k in 2..=n_leaves.min(16) {
            push(MulKind::Udm {
                leaf_mask: (mask(k) & 0xFFFF) as u16,
            });
        }
    }
    // Column-wise catalog-cell substitution.
    for k_cols in 1..(wa + wb - 2) {
        for cell in FaCell::approx_fa_catalog() {
            let cells: Arc<[FaCell]> = (1..wb)
                .flat_map(|i| {
                    (0..wa).map(move |j| {
                        if i + j < k_cols {
                            cell
                        } else {
                            FaCell::EXACT_FA
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into();
            push(MulKind::CellGrid { cells });
        }
    }
    out
}

/// Seeded random candidates used to fill a class up to its target size.
fn fill_candidates(sig: OpSignature, n: usize, cfg: &LibraryConfig, seed: u64) -> Vec<Behavior> {
    let mut st = seed ^ 0x0BAD_5EED;
    let w = sig.width_a as u32;
    // Netlist mutants are only generated for classes whose operand space
    // can be turned into a lookup table (≤ 20 input bits); wider classes
    // would force slow scalar netlist simulation into the software QoR
    // model, and their functional families provide ample diversity.
    let n_mutants = if sig.input_bits() <= 20 {
        (n as f64 * cfg.mutant_frac) as usize
    } else {
        0
    };
    let mut out = Vec::with_capacity(n);
    // Mutants of the exact netlist.
    let base = Behavior::exact_for(sig).build_netlist();
    for _ in 0..n_mutants {
        let n_muts = 1 + (splitmix64(&mut st) % 6) as u32;
        let mutated = mutate_netlist(&base, n_muts, splitmix64(&mut st));
        out.push(Behavior::Raw {
            sig,
            netlist: Arc::new(mutated),
        });
    }
    // Random structured draws for the rest.
    while out.len() < n {
        match sig.kind {
            OpKind::Add => {
                if splitmix64(&mut st) & 1 == 0 {
                    // random cell mix on the low bits
                    let k = 1 + (splitmix64(&mut st) % (w as u64 - 1)) as u32;
                    let catalog = FaCell::approx_fa_catalog();
                    let cells: Arc<[FaCell]> = (0..w)
                        .map(|i| {
                            if i < k {
                                match splitmix64(&mut st) % 3 {
                                    0 => FaCell::random(&mut st),
                                    _ => {
                                        catalog
                                            [(splitmix64(&mut st) % catalog.len() as u64) as usize]
                                    }
                                }
                            } else {
                                FaCell::EXACT_FA
                            }
                        })
                        .collect::<Vec<_>>()
                        .into();
                    out.push(Behavior::Adder {
                        w,
                        kind: AdderKind::CellRipple { cells },
                    });
                } else {
                    // random segmentation
                    let cuts = 1 + splitmix64(&mut st) % (mask(w - 1).max(1));
                    let mut segs = Vec::new();
                    let mut len = 1u8;
                    for pos in 0..w - 1 {
                        if (cuts >> pos) & 1 != 0 {
                            segs.push(len);
                            len = 1;
                        } else {
                            len += 1;
                        }
                    }
                    segs.push(len);
                    out.push(Behavior::Adder {
                        w,
                        kind: AdderKind::Seg {
                            segs,
                            speculate: splitmix64(&mut st) & 1 == 0,
                        },
                    });
                }
            }
            OpKind::Sub => {
                let k = 1 + (splitmix64(&mut st) % (w as u64 - 1)) as u32;
                let catalog = FaCell::approx_fs_catalog();
                let cells: Arc<[FaCell]> = (0..w)
                    .map(|i| {
                        if i < k {
                            match splitmix64(&mut st) % 3 {
                                0 => FaCell::random(&mut st),
                                _ => catalog[(splitmix64(&mut st) % catalog.len() as u64) as usize],
                            }
                        } else {
                            FaCell::EXACT_FS
                        }
                    })
                    .collect::<Vec<_>>()
                    .into();
                out.push(Behavior::Subtractor {
                    w,
                    kind: SubKind::CellRipple { cells },
                });
            }
            OpKind::Mul => {
                let wa = sig.width_a as u32;
                let wb = sig.width_b as u32;
                match splitmix64(&mut st) % 3 {
                    0 if wa == wb && wa.is_power_of_two() => {
                        out.push(Behavior::Multiplier {
                            wa,
                            wb,
                            kind: MulKind::Udm {
                                leaf_mask: (splitmix64(&mut st) & 0xFFFF) as u16,
                            },
                        });
                    }
                    1 => {
                        // random low-column cell substitutions
                        let k_cols = 1 + (splitmix64(&mut st) % (wa + wb - 3) as u64) as u32;
                        let catalog = FaCell::approx_fa_catalog();
                        let cells: Arc<[FaCell]> = (1..wb)
                            .flat_map(|i| {
                                (0..wa)
                                    .map(|j| {
                                        if i + j < k_cols {
                                            match splitmix64(&mut st) % 3 {
                                                0 => FaCell::random(&mut st),
                                                _ => {
                                                    catalog[(splitmix64(&mut st)
                                                        % catalog.len() as u64)
                                                        as usize]
                                                }
                                            }
                                        } else {
                                            FaCell::EXACT_FA
                                        }
                                    })
                                    .collect::<Vec<_>>()
                            })
                            .collect::<Vec<_>>()
                            .into();
                        out.push(Behavior::Multiplier {
                            wa,
                            wb,
                            kind: MulKind::CellGrid { cells },
                        });
                    }
                    _ => {
                        out.push(Behavior::Multiplier {
                            wa,
                            wb,
                            kind: MulKind::PerfRows {
                                row_mask: (1 + splitmix64(&mut st) % mask(wb)) as u16,
                            },
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> LibraryConfig {
        LibraryConfig::tiny()
    }

    #[test]
    fn build_class_add8_tiny() {
        let cfg = tiny_cfg();
        let entries = build_class(OpSignature::ADD8, 60, &cfg, 1);
        assert_eq!(entries.len(), 60);
        assert!(entries[0].is_exact());
        assert_eq!(entries[0].id, CircuitId(0));
        // ids are consecutive
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.id.0 as usize, i);
            assert_eq!(e.signature(), OpSignature::ADD8);
            assert!(e.hw.area > 0.0);
        }
    }

    #[test]
    fn entries_are_distinct_in_function_or_cost() {
        let cfg = tiny_cfg();
        let entries = build_class(OpSignature::ADD8, 40, &cfg, 2);
        // The dedup fingerprint covers the exhaustive functional signature
        // plus the hardware cost, so no two entries may agree on both
        // (functionally identical architecture variants like ripple vs
        // lookahead are legitimately distinct entries).
        let all_pairs: Vec<(u64, u64)> = (0..65536u64).map(|v| (v & 0xFF, v >> 8)).collect();
        let mut sigs = HashSet::new();
        for e in &entries {
            let mut v = e.behavior.eval_batch(&all_pairs);
            v.push((e.hw.area * 16.0).round() as u64);
            v.push((e.hw.delay * 1024.0).round() as u64);
            assert!(sigs.insert(v), "duplicate entry in class: {}", e.label);
        }
    }

    #[test]
    fn architecture_variants_survive_dedup() {
        let cfg = tiny_cfg();
        let entries = build_class(OpSignature::ADD8, 40, &cfg, 2);
        let rca = entries.iter().find(|e| e.label == "add_exact").unwrap();
        let cla = entries.iter().find(|e| e.label == "add_exact_cla").unwrap();
        assert!(cla.is_exact());
        assert!(cla.hw.delay < rca.hw.delay, "CLA must be faster");
        assert!(cla.hw.area > rca.hw.area, "CLA must pay area");
    }

    #[test]
    fn exact_entry_has_highest_area_tendency() {
        // Not strictly maximal, but the exact adder must cost more than the
        // heavily truncated variants.
        let cfg = tiny_cfg();
        let entries = build_class(OpSignature::ADD8, 40, &cfg, 3);
        let exact_area = entries[0].hw.area;
        let trunc = entries
            .iter()
            .find(|e| e.label.contains("trunc0_k7"))
            .expect("trunc k=7 present");
        assert!(trunc.hw.area < exact_area);
        assert!(trunc.err.mae > 0.0);
    }

    #[test]
    fn garbage_filter_respects_wce_bound() {
        let cfg = tiny_cfg();
        for sig in [OpSignature::ADD8, OpSignature::SUB10] {
            let entries = build_class(sig, 40, &cfg, 4);
            for e in &entries[1..] {
                assert!(
                    (e.err.wce as f64) <= cfg.max_wce_frac * sig.output_range(),
                    "{}: wce {} beyond bound",
                    e.label,
                    e.err.wce
                );
            }
        }
    }

    #[test]
    fn build_library_tiny_has_all_classes() {
        let cfg = tiny_cfg();
        let lib = build_library(&cfg);
        for sig in OpSignature::PAPER_CLASSES {
            assert_eq!(
                lib.class_size(sig),
                cfg.counts.for_signature(sig),
                "class {sig}"
            );
            assert!(lib.class(sig)[0].is_exact());
        }
        assert_eq!(lib.total_size(), 60 + 40 + 50 + 40 + 40 + 70);
    }

    #[test]
    fn library_is_deterministic() {
        let cfg = tiny_cfg();
        let l1 = build_class(OpSignature::SUB10, 30, &cfg, 9);
        let l2 = build_class(OpSignature::SUB10, 30, &cfg, 9);
        for (a, b) in l1.iter().zip(l2.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.err.mae, b.err.mae);
            assert_eq!(a.hw.area, b.hw.area);
        }
    }

    #[test]
    fn mul_class_contains_multiple_families() {
        let cfg = tiny_cfg();
        let entries = build_class(OpSignature::MUL8, 70, &cfg, 5);
        let has = |p: &str| entries.iter().any(|e| e.label.contains(p));
        assert!(has("bam"), "expected BAM variants");
        assert!(has("trunc"), "expected truncated variants");
        assert!(entries.len() == 70);
    }

    #[test]
    fn paper_counts_match_table2() {
        let c = ClassCounts::paper();
        assert_eq!(c.add8, 6979);
        assert_eq!(c.add9, 332);
        assert_eq!(c.add16, 884);
        assert_eq!(c.sub10, 365);
        assert_eq!(c.sub16, 460);
        assert_eq!(c.mul8, 29911);
    }

    #[test]
    fn sixteen_bit_classes_use_sampled_characterization() {
        let cfg = tiny_cfg();
        let entries = build_class(OpSignature::ADD16, 20, &cfg, 6);
        for e in &entries {
            assert_eq!(e.err.samples as usize, cfg.char_samples);
        }
    }

    #[test]
    fn eight_bit_class_characterized_exhaustively() {
        let cfg = tiny_cfg();
        let entries = build_class(OpSignature::ADD8, 10, &cfg, 7);
        for e in &entries {
            assert_eq!(e.err.samples, 65536);
        }
    }
}
