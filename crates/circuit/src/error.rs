//! Error characterization of approximate circuits.
//!
//! Every library circuit is "fully characterized" (paper Section 1) with
//! the standard error metrics of the approximate-computing literature:
//! mean absolute error (MAE / MED), worst-case error (WCE), error rate
//! (ER), mean squared error (MSE), error-distance variance, and mean
//! relative error (MRE). The application-specific weighted mean error
//! distance (WMED, paper Section 2.2) is computed later against a profiled
//! probability mass function by `autoax::wmed`.

/// Aggregate error metrics of one approximate circuit relative to the
/// exact function of its class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorMetrics {
    /// Mean absolute error distance (MED).
    pub mae: f64,
    /// Worst-case absolute error observed.
    pub wce: u64,
    /// Fraction of inputs with a non-zero error.
    pub er: f64,
    /// Mean squared error distance.
    pub mse: f64,
    /// Variance of the signed error distance.
    pub var_ed: f64,
    /// Mean relative error (|err| / max(1, exact)).
    pub mre: f64,
    /// Number of samples the metrics were computed from.
    pub samples: u64,
}

impl ErrorMetrics {
    /// True when the circuit made no error on any characterized input.
    pub fn is_exact(&self) -> bool {
        self.wce == 0
    }
}

/// Streaming accumulator for [`ErrorMetrics`].
///
/// ```
/// use autoax_circuit::error::ErrorStats;
/// let mut s = ErrorStats::new();
/// s.push(0, 10);
/// s.push(-2, 10);
/// let m = s.finish();
/// assert_eq!(m.wce, 2);
/// assert_eq!(m.er, 0.5);
/// assert_eq!(m.mae, 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ErrorStats {
    n: u64,
    n_err: u64,
    sum_abs: f64,
    sum_signed: f64,
    sum_sq: f64,
    sum_rel: f64,
    max_abs: u64,
}

impl ErrorStats {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample: the signed error and the exact result magnitude
    /// (used for the relative-error metric).
    #[inline]
    pub fn push(&mut self, err: i64, exact_magnitude: u64) {
        let abs = err.unsigned_abs();
        self.n += 1;
        if abs != 0 {
            self.n_err += 1;
        }
        self.sum_abs += abs as f64;
        self.sum_signed += err as f64;
        self.sum_sq += (err as f64) * (err as f64);
        self.sum_rel += abs as f64 / (exact_magnitude.max(1) as f64);
        self.max_abs = self.max_abs.max(abs);
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Finalizes the metrics.
    ///
    /// Returns all-zero metrics when no samples were recorded.
    pub fn finish(self) -> ErrorMetrics {
        if self.n == 0 {
            return ErrorMetrics::default();
        }
        let n = self.n as f64;
        let mean_signed = self.sum_signed / n;
        ErrorMetrics {
            mae: self.sum_abs / n,
            wce: self.max_abs,
            er: self.n_err as f64 / n,
            mse: self.sum_sq / n,
            var_ed: (self.sum_sq / n - mean_signed * mean_signed).max(0.0),
            mre: self.sum_rel / n,
            samples: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let m = ErrorStats::new().finish();
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.wce, 0);
        assert_eq!(m.samples, 0);
        assert!(m.is_exact());
    }

    #[test]
    fn exact_circuit_metrics() {
        let mut s = ErrorStats::new();
        for _ in 0..100 {
            s.push(0, 5);
        }
        let m = s.finish();
        assert!(m.is_exact());
        assert_eq!(m.er, 0.0);
        assert_eq!(m.mse, 0.0);
        assert_eq!(m.var_ed, 0.0);
    }

    #[test]
    fn mixed_errors() {
        let mut s = ErrorStats::new();
        s.push(3, 10);
        s.push(-3, 10);
        s.push(0, 10);
        s.push(0, 10);
        let m = s.finish();
        assert_eq!(m.mae, 1.5);
        assert_eq!(m.wce, 3);
        assert_eq!(m.er, 0.5);
        assert_eq!(m.mse, 4.5);
        // signed mean is 0 so variance == mse
        assert_eq!(m.var_ed, 4.5);
        assert!((m.mre - 0.15).abs() < 1e-12);
    }

    #[test]
    fn wce_dominates_mae() {
        let mut s = ErrorStats::new();
        for e in [1i64, -2, 5, 0, 3] {
            s.push(e, 100);
        }
        let m = s.finish();
        assert!(m.wce as f64 >= m.mae);
    }

    #[test]
    fn relative_error_guard_against_zero_exact() {
        let mut s = ErrorStats::new();
        s.push(4, 0); // exact result is zero; MRE uses max(1, exact)
        let m = s.finish();
        assert_eq!(m.mre, 4.0);
    }
}
