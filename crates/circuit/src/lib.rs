//! # autoax-circuit
//!
//! Gate-level substrate for the [autoAx (DAC 2019)](https://doi.org/10.1145/3316781.3317781)
//! reproduction: a netlist intermediate representation, a 45 nm-like standard
//! cell library, 64-way bit-parallel logic simulation, a "synthesis-lite"
//! optimizer with area/delay/power/energy reporting, and generators for
//! libraries of exact and approximate arithmetic circuits (adders,
//! subtractors and multipliers) in the spirit of EvoApprox8b, QuAd and BAM.
//!
//! The crate replaces three proprietary or external dependencies of the
//! paper:
//!
//! * the downloadable **EvoApprox8b library** is replaced by
//!   [`charlib::build_library`], which generates a configurable number of
//!   fully characterized approximate circuits per operation class from ten
//!   parameterized families plus a seeded structural-mutation engine;
//! * **Synopsys Design Compiler** is replaced by [`synth`], which performs
//!   constant propagation, structural hashing and dead-cell elimination on
//!   the composed accelerator netlist and reports area, critical-path delay
//!   and switching-activity-based power/energy;
//! * **Verilog simulation** is replaced by [`sim`], a 64-way bit-parallel
//!   logic simulator.
//!
//! # Example
//!
//! ```
//! use autoax_circuit::arith::ripple_carry_adder;
//! use autoax_circuit::sim::eval_binop;
//!
//! let adder = ripple_carry_adder(8);
//! assert_eq!(eval_binop(&adder, 8, 8, 100, 55), 155);
//! ```

pub mod approx;
pub mod arch;
pub mod arith;
pub mod cell;
pub mod charlib;
pub mod error;
pub mod netlist;
pub mod sim;
pub mod synth;
pub mod util;
pub mod verilog;

pub use cell::CellKind;
pub use charlib::{CircuitEntry, CircuitId, ClassCounts, ComponentLibrary, LibraryConfig};
pub use error::ErrorMetrics;
pub use netlist::{Bus, Gate, NetId, Netlist};
pub use synth::HwReport;

/// Identifies an operation class: the operation kind and its operand widths.
///
/// The six classes used by the paper's accelerators (Table 1/2) are provided
/// as associated constants.
///
/// ```
/// use autoax_circuit::OpSignature;
/// assert_eq!(OpSignature::ADD8.output_width(), 9);
/// assert_eq!(OpSignature::MUL8.output_width(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpSignature {
    /// The arithmetic operation implemented by circuits of this class.
    pub kind: OpKind,
    /// Width in bits of the first operand.
    pub width_a: u8,
    /// Width in bits of the second operand.
    pub width_b: u8,
}

/// The arithmetic operation kinds that appear in the paper's accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Unsigned addition.
    Add,
    /// Subtraction producing a two's-complement result one bit wider than
    /// the operands (sign bit included).
    Sub,
    /// Unsigned multiplication.
    Mul,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpKind::Add => write!(f, "add"),
            OpKind::Sub => write!(f, "sub"),
            OpKind::Mul => write!(f, "mul"),
        }
    }
}

impl OpSignature {
    /// 8-bit adder class (Sobel ED, fixed GF).
    pub const ADD8: OpSignature = OpSignature::new(OpKind::Add, 8, 8);
    /// 9-bit adder class (Sobel ED, fixed GF).
    pub const ADD9: OpSignature = OpSignature::new(OpKind::Add, 9, 9);
    /// 16-bit adder class (fixed GF, generic GF).
    pub const ADD16: OpSignature = OpSignature::new(OpKind::Add, 16, 16);
    /// 10-bit subtractor class (Sobel ED).
    pub const SUB10: OpSignature = OpSignature::new(OpKind::Sub, 10, 10);
    /// 16-bit subtractor class (fixed GF).
    pub const SUB16: OpSignature = OpSignature::new(OpKind::Sub, 16, 16);
    /// 8-bit multiplier class (generic GF).
    pub const MUL8: OpSignature = OpSignature::new(OpKind::Mul, 8, 8);

    /// All six classes of Table 2, in the paper's column order.
    pub const PAPER_CLASSES: [OpSignature; 6] = [
        Self::ADD8,
        Self::ADD9,
        Self::ADD16,
        Self::SUB10,
        Self::SUB16,
        Self::MUL8,
    ];

    /// Creates a new signature.
    pub const fn new(kind: OpKind, width_a: u8, width_b: u8) -> Self {
        OpSignature {
            kind,
            width_a,
            width_b,
        }
    }

    /// Width in bits of the (exact) result.
    ///
    /// Additions produce `max(wa, wb) + 1` bits, subtractions a
    /// two's-complement result of `max(wa, wb) + 1` bits, multiplications
    /// `wa + wb` bits.
    pub const fn output_width(&self) -> u8 {
        let w = if self.width_a > self.width_b {
            self.width_a
        } else {
            self.width_b
        };
        match self.kind {
            OpKind::Add | OpKind::Sub => w + 1,
            OpKind::Mul => self.width_a + self.width_b,
        }
    }

    /// Total number of input bits (`wa + wb`).
    pub const fn input_bits(&self) -> u32 {
        self.width_a as u32 + self.width_b as u32
    }

    /// The exact (golden) function of this class.
    ///
    /// Operands wider than the class width are masked. Subtraction returns
    /// the two's-complement difference truncated to `output_width` bits.
    pub fn exact(&self, a: u64, b: u64) -> u64 {
        let a = a & crate::util::mask(self.width_a as u32);
        let b = b & crate::util::mask(self.width_b as u32);
        match self.kind {
            OpKind::Add => a + b,
            OpKind::Sub => a.wrapping_sub(b) & crate::util::mask(self.output_width() as u32),
            OpKind::Mul => a * b,
        }
    }

    /// Interprets a raw `output_width`-bit result of this class as a signed
    /// integer (only meaningful for [`OpKind::Sub`]; other kinds are
    /// returned unchanged).
    pub fn to_signed(&self, raw: u64) -> i64 {
        match self.kind {
            OpKind::Sub => {
                let w = self.output_width() as u32;
                let sign = 1u64 << (w - 1);
                if raw & sign != 0 {
                    (raw | !crate::util::mask(w)) as i64
                } else {
                    raw as i64
                }
            }
            _ => raw as i64,
        }
    }

    /// Numeric error between an approximate raw output and the exact result
    /// for the operand pair `(a, b)`, taking the signedness of subtraction
    /// into account.
    pub fn error(&self, a: u64, b: u64, approx_raw: u64) -> i64 {
        let exact = self.exact(a, b);
        self.to_signed(approx_raw) - self.to_signed(exact)
    }

    /// The full numeric output range (used to normalize error metrics).
    pub fn output_range(&self) -> f64 {
        match self.kind {
            OpKind::Add => {
                (crate::util::mask(self.width_a as u32) + crate::util::mask(self.width_b as u32))
                    as f64
            }
            OpKind::Sub => (2 * crate::util::mask(self.width_a.max(self.width_b) as u32)) as f64,
            OpKind::Mul => {
                (crate::util::mask(self.width_a as u32) * crate::util::mask(self.width_b as u32))
                    as f64
            }
        }
    }
}

impl std::fmt::Display for OpSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.width_a == self.width_b {
            write!(f, "{}{}", self.kind, self.width_a)
        } else {
            write!(f, "{}{}x{}", self.kind, self.width_a, self.width_b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_output_widths_match_table1() {
        assert_eq!(OpSignature::ADD8.output_width(), 9);
        assert_eq!(OpSignature::ADD9.output_width(), 10);
        assert_eq!(OpSignature::ADD16.output_width(), 17);
        assert_eq!(OpSignature::SUB10.output_width(), 11);
        assert_eq!(OpSignature::SUB16.output_width(), 17);
        assert_eq!(OpSignature::MUL8.output_width(), 16);
    }

    #[test]
    fn exact_add_and_mul() {
        assert_eq!(OpSignature::ADD8.exact(255, 255), 510);
        assert_eq!(OpSignature::MUL8.exact(255, 255), 65025);
    }

    #[test]
    fn exact_sub_wraps_to_twos_complement() {
        let s = OpSignature::SUB10;
        let raw = s.exact(0, 1);
        assert_eq!(s.to_signed(raw), -1);
        let raw = s.exact(1000, 20);
        assert_eq!(s.to_signed(raw), 980);
    }

    #[test]
    fn signed_error_of_sub() {
        let s = OpSignature::SUB10;
        let exact_raw = s.exact(0, 4);
        assert_eq!(s.to_signed(exact_raw), -4);
        assert_eq!(s.error(0, 4, 0), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(OpSignature::ADD8.to_string(), "add8");
        assert_eq!(OpSignature::SUB10.to_string(), "sub10");
        assert_eq!(OpSignature::MUL8.to_string(), "mul8");
    }

    #[test]
    fn output_ranges() {
        assert_eq!(OpSignature::ADD8.output_range(), 510.0);
        assert_eq!(OpSignature::MUL8.output_range(), 255.0 * 255.0);
        assert_eq!(OpSignature::SUB10.output_range(), 2046.0);
    }

    #[test]
    fn mixed_width_display() {
        let s = OpSignature::new(OpKind::Mul, 8, 4);
        assert_eq!(s.to_string(), "mul8x4");
        assert_eq!(s.output_width(), 12);
    }
}
