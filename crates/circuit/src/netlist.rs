//! Gate-level netlist intermediate representation.
//!
//! A [`Netlist`] is a topologically ordered sequence of gates over a set of
//! nets. Nets are identified by [`NetId`]: ids `0..n_inputs` are the primary
//! inputs, and the output net of gate `i` is net `n_inputs + i`. Because a
//! gate can only reference nets that already exist when it is pushed, every
//! netlist is a DAG in topological order by construction — simulators and
//! analyzers never need to sort it.

use crate::cell::CellKind;

/// Identifier of a net (a wire) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single cell instance. `ins` slots beyond the cell's arity are ignored
/// and conventionally set to `NetId(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate {
    /// The cell implementing this gate.
    pub kind: CellKind,
    /// Input nets `[a, b, c]`; for [`CellKind::Mux2`] the order is
    /// `[select, d0, d1]`.
    pub ins: [NetId; 3],
}

/// A little-endian bundle of nets representing a multi-bit value
/// (`bit(0)` is the LSB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus(pub Vec<NetId>);

impl Bus {
    /// Bus width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Net carrying bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= width()`.
    pub fn bit(&self, i: usize) -> NetId {
        self.0[i]
    }

    /// Iterates over the nets from LSB to MSB.
    pub fn iter(&self) -> std::slice::Iter<'_, NetId> {
        self.0.iter()
    }

    /// A new bus containing bits `range` of `self` (a "slice" of the bus).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bus {
        Bus(self.0[range].to_vec())
    }

    /// Bus shifted left by `k` bits: `k` constant-zero nets are prepended.
    /// Requires the zero net to be supplied by the caller (see
    /// [`Netlist::const0`]).
    pub fn shifted_left(&self, k: usize, zero: NetId) -> Bus {
        let mut v = vec![zero; k];
        v.extend_from_slice(&self.0);
        Bus(v)
    }
}

impl FromIterator<NetId> for Bus {
    fn from_iter<T: IntoIterator<Item = NetId>>(iter: T) -> Self {
        Bus(iter.into_iter().collect())
    }
}

/// A combinational gate-level netlist in topological order.
///
/// # Example
///
/// ```
/// use autoax_circuit::netlist::Netlist;
/// use autoax_circuit::sim::eval_binop;
///
/// let mut n = Netlist::new("xor1");
/// let a = n.input();
/// let b = n.input();
/// let y = n.xor2(a, b);
/// n.push_output(y);
/// assert_eq!(eval_binop(&n, 1, 1, 1, 0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    n_inputs: u32,
    gates: Vec<Gate>,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            n_inputs: 0,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The netlist name (for reports and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the netlist.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of primary input nets.
    pub fn input_count(&self) -> usize {
        self.n_inputs as usize
    }

    /// Total number of nets (inputs plus one per gate).
    pub fn net_count(&self) -> usize {
        self.n_inputs as usize + self.gates.len()
    }

    /// The gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates, counting constants.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of gates excluding zero-area constants — the "cell count"
    /// a synthesis report would show.
    pub fn cell_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, CellKind::Const0 | CellKind::Const1))
            .count()
    }

    /// The primary output nets, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Adds one primary input net.
    ///
    /// # Panics
    /// Panics if gates have already been added (inputs must come first so
    /// net ids stay stable).
    pub fn input(&mut self) -> NetId {
        assert!(
            self.gates.is_empty(),
            "all primary inputs must be declared before the first gate"
        );
        let id = NetId(self.n_inputs);
        self.n_inputs += 1;
        id
    }

    /// Adds `width` primary inputs and returns them as a bus (LSB first).
    pub fn input_bus(&mut self, width: usize) -> Bus {
        (0..width).map(|_| self.input()).collect()
    }

    /// Appends a gate and returns its output net.
    ///
    /// # Panics
    /// Panics if any used input refers to a net that does not exist yet.
    pub fn push(&mut self, kind: CellKind, ins: [NetId; 3]) -> NetId {
        let next = self.net_count() as u32;
        for slot in ins.iter().take(kind.arity()) {
            assert!(
                slot.0 < next,
                "gate input {:?} references a net that does not exist yet",
                slot
            );
        }
        self.gates.push(Gate { kind, ins });
        NetId(next)
    }

    /// Declares `net` as the next primary output.
    pub fn push_output(&mut self, net: NetId) {
        assert!((net.0 as usize) < self.net_count());
        self.outputs.push(net);
    }

    /// Declares a whole bus as outputs (LSB first).
    pub fn push_output_bus(&mut self, bus: &Bus) {
        for &n in bus.iter() {
            self.push_output(n);
        }
    }

    /// Replaces all outputs.
    pub fn set_outputs(&mut self, outs: Vec<NetId>) {
        for n in &outs {
            assert!((n.0 as usize) < self.net_count());
        }
        self.outputs = outs;
    }

    // ----- convenience constructors for common gates -----

    /// Constant-0 net.
    pub fn const0(&mut self) -> NetId {
        self.push(CellKind::Const0, [NetId(0); 3])
    }
    /// Constant-1 net.
    pub fn const1(&mut self) -> NetId {
        self.push(CellKind::Const1, [NetId(0); 3])
    }
    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push(CellKind::Buf, [a, a, a])
    }
    /// Inverter.
    pub fn inv(&mut self, a: NetId) -> NetId {
        self.push(CellKind::Inv, [a, a, a])
    }
    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::And2, [a, b, a])
    }
    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Or2, [a, b, a])
    }
    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Nand2, [a, b, a])
    }
    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Nor2, [a, b, a])
    }
    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Xor2, [a, b, a])
    }
    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Xnor2, [a, b, a])
    }
    /// 2:1 mux (`sel ? d1 : d0`).
    pub fn mux2(&mut self, sel: NetId, d0: NetId, d1: NetId) -> NetId {
        self.push(CellKind::Mux2, [sel, d0, d1])
    }
    /// 3-input majority.
    pub fn maj3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(CellKind::Maj3, [a, b, c])
    }

    /// Full adder composed of two XORs and a majority gate; returns
    /// `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let p = self.xor2(a, b);
        let sum = self.xor2(p, cin);
        let carry = self.maj3(a, b, cin);
        (sum, carry)
    }

    /// Half adder; returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        let sum = self.xor2(a, b);
        let carry = self.and2(a, b);
        (sum, carry)
    }

    /// Instantiates another netlist as a sub-circuit: `args` provides the
    /// nets feeding the sub-circuit's primary inputs; the return value maps
    /// the sub-circuit's outputs to nets of `self`.
    ///
    /// This is how accelerators compose component circuits into one flat
    /// netlist for synthesis.
    ///
    /// # Panics
    /// Panics if `args.len()` differs from the sub-circuit's input count.
    pub fn instantiate(&mut self, sub: &Netlist, args: &[NetId]) -> Vec<NetId> {
        assert_eq!(
            args.len(),
            sub.input_count(),
            "instantiating `{}`: argument count mismatch",
            sub.name()
        );
        // Map from sub-circuit net id to self net id.
        let mut map: Vec<NetId> = Vec::with_capacity(sub.net_count());
        map.extend_from_slice(args);
        for gate in &sub.gates {
            let ins = [
                map[gate.ins[0].index()],
                map[gate.ins[1].index()],
                map[gate.ins[2].index()],
            ];
            let out = self.push(gate.kind, ins);
            map.push(out);
        }
        sub.outputs.iter().map(|o| map[o.index()]).collect()
    }

    /// Builds a two-input gate from an arbitrary 2-variable truth table.
    ///
    /// `tt` bit `i` (for `i = b<<1 | a`) gives the output for inputs
    /// `(a, b)`. Only the low 4 bits are used. The construction maps each
    /// of the 16 functions to at most one cell plus inverters.
    pub fn two_input_tt(&mut self, tt: u8, a: NetId, b: NetId) -> NetId {
        match tt & 0xF {
            0b0000 => self.const0(),
            0b1111 => self.const1(),
            0b1010 => self.buf(a),
            0b0101 => self.inv(a),
            0b1100 => self.buf(b),
            0b0011 => self.inv(b),
            0b1000 => self.and2(a, b),
            0b0111 => self.nand2(a, b),
            0b1110 => self.or2(a, b),
            0b0001 => self.nor2(a, b),
            0b0110 => self.xor2(a, b),
            0b1001 => self.xnor2(a, b),
            0b0010 => {
                // a & !b
                let nb = self.inv(b);
                self.and2(a, nb)
            }
            0b0100 => {
                // !a & b
                let na = self.inv(a);
                self.and2(na, b)
            }
            0b1011 => {
                // a | !b
                let nb = self.inv(b);
                self.or2(a, nb)
            }
            0b1101 => {
                // !a | b
                let na = self.inv(a);
                self.or2(na, b)
            }
            _ => unreachable!(),
        }
    }

    /// Builds a three-input function from an 8-entry truth table using a
    /// Shannon expansion on the third input: `y = c ? f1(a,b) : f0(a,b)`.
    ///
    /// `tt` bit `i` (for `i = c<<2 | b<<1 | a`) gives the output.
    pub fn three_input_tt(&mut self, tt: u8, a: NetId, b: NetId, c: NetId) -> NetId {
        let f0 = tt & 0xF;
        let f1 = (tt >> 4) & 0xF;
        if f0 == f1 {
            return self.two_input_tt(f0, a, b);
        }
        // Special-case the common exact functions for cheaper mappings.
        if tt == 0b1001_0110 {
            // XOR3 (full-adder sum)
            let p = self.xor2(a, b);
            return self.xor2(p, c);
        }
        if tt == 0b1110_1000 {
            // Majority (full-adder carry)
            return self.maj3(a, b, c);
        }
        let d0 = self.two_input_tt(f0, a, b);
        let d1 = self.two_input_tt(f1, a, b);
        self.mux2(c, d0, d1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{eval_binop, sim_lanes};

    #[test]
    fn inputs_then_gates_invariant() {
        let mut n = Netlist::new("t");
        let a = n.input();
        let b = n.input();
        let y = n.and2(a, b);
        n.push_output(y);
        assert_eq!(n.input_count(), 2);
        assert_eq!(n.gate_count(), 1);
        assert_eq!(n.net_count(), 3);
    }

    #[test]
    #[should_panic(expected = "declared before the first gate")]
    fn input_after_gate_panics() {
        let mut n = Netlist::new("t");
        let a = n.input();
        let _ = n.inv(a);
        let _ = n.input();
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_panics() {
        let mut n = Netlist::new("t");
        let _ = n.input();
        n.push(CellKind::Inv, [NetId(5), NetId(5), NetId(5)]);
    }

    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new("fa");
        let a = n.input();
        let b = n.input();
        let c = n.input();
        let (s, co) = n.full_adder(a, b, c);
        n.push_output(s);
        n.push_output(co);
        for input in 0u64..8 {
            let lanes = [
                if input & 1 != 0 { u64::MAX } else { 0 },
                if input & 2 != 0 { u64::MAX } else { 0 },
                if input & 4 != 0 { u64::MAX } else { 0 },
            ];
            let outs = sim_lanes(&n, &lanes);
            let total = (input & 1) + ((input >> 1) & 1) + ((input >> 2) & 1);
            assert_eq!(outs[0] & 1, total & 1, "sum for {input}");
            assert_eq!(outs[1] & 1, (total >> 1) & 1, "carry for {input}");
        }
    }

    #[test]
    fn all_two_input_tts_are_correct() {
        for tt in 0u8..16 {
            let mut n = Netlist::new("tt2");
            let a = n.input();
            let b = n.input();
            let y = n.two_input_tt(tt, a, b);
            n.push_output(y);
            for ab in 0u64..4 {
                let got = eval_binop(&n, 1, 1, ab & 1, (ab >> 1) & 1);
                let exp = (tt >> ab) as u64 & 1;
                assert_eq!(got, exp, "tt={tt:04b} ab={ab:02b}");
            }
        }
    }

    #[test]
    fn all_three_input_tts_are_correct() {
        // Exhaustive over all 256 functions of 3 variables.
        for tt in 0u16..256 {
            let tt = tt as u8;
            let mut n = Netlist::new("tt3");
            let a = n.input();
            let b = n.input();
            let c = n.input();
            let y = n.three_input_tt(tt, a, b, c);
            n.push_output(y);
            for abc in 0u64..8 {
                let lanes = [
                    if abc & 1 != 0 { 1u64 } else { 0 },
                    if abc & 2 != 0 { 1 } else { 0 },
                    if abc & 4 != 0 { 1 } else { 0 },
                ];
                let outs = sim_lanes(&n, &lanes);
                let exp = (tt >> abc) as u64 & 1;
                assert_eq!(outs[0] & 1, exp, "tt={tt:08b} abc={abc:03b}");
            }
        }
    }

    #[test]
    fn instantiate_composes() {
        // Build a 1-bit half adder as a sub-circuit and instantiate twice.
        let mut ha = Netlist::new("ha");
        let a = ha.input();
        let b = ha.input();
        let (s, c) = ha.half_adder(a, b);
        ha.push_output(s);
        ha.push_output(c);

        let mut top = Netlist::new("top");
        let x = top.input();
        let y = top.input();
        let z = top.input();
        let o1 = top.instantiate(&ha, &[x, y]);
        let o2 = top.instantiate(&ha, &[o1[0], z]);
        top.push_output(o2[0]);
        // sum of three bits without carries: x ^ y ^ z
        for v in 0u64..8 {
            let lanes = [v & 1, (v >> 1) & 1, (v >> 2) & 1];
            let outs = sim_lanes(&top, &lanes);
            assert_eq!(outs[0] & 1, (v ^ (v >> 1) ^ (v >> 2)) & 1);
        }
    }

    #[test]
    fn bus_helpers() {
        let mut n = Netlist::new("bus");
        let b = n.input_bus(4);
        assert_eq!(b.width(), 4);
        let z = n.const0();
        let sh = b.shifted_left(2, z);
        assert_eq!(sh.width(), 6);
        assert_eq!(sh.bit(0), z);
        assert_eq!(sh.bit(2), b.bit(0));
        let sl = b.slice(1..3);
        assert_eq!(sl.width(), 2);
        assert_eq!(sl.bit(0), b.bit(1));
    }

    #[test]
    fn cell_count_ignores_constants() {
        let mut n = Netlist::new("c");
        let a = n.input();
        let z = n.const0();
        let y = n.or2(a, z);
        n.push_output(y);
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.cell_count(), 1);
    }
}
