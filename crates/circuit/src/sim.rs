//! 64-way bit-parallel logic simulation.
//!
//! Each net carries one `u64` word per simulation call; bit lane `i` of every
//! word belongs to the `i`-th of 64 independent input assignments. This is
//! the classic EDA trick that makes exhaustive characterization of 16-bit
//! operand spaces (65 536 assignments = 1024 words) cheap.

use crate::netlist::Netlist;
use crate::util::mask;

/// Simulates all 64 lanes at once. `inputs[i]` is the word driving primary
/// input net `i`; the result contains one word per primary output.
///
/// # Panics
/// Panics if `inputs.len()` differs from the netlist's input count.
pub fn sim_lanes(netlist: &Netlist, inputs: &[u64]) -> Vec<u64> {
    let mut values = sim_all_nets(netlist, inputs);
    let outs: Vec<u64> = netlist
        .outputs()
        .iter()
        .map(|o| values[o.index()])
        .collect();
    values.clear();
    outs
}

/// Like [`sim_lanes`] but returns the word of *every* net (used by power
/// estimation, which needs internal toggle counts).
pub fn sim_all_nets(netlist: &Netlist, inputs: &[u64]) -> Vec<u64> {
    assert_eq!(
        inputs.len(),
        netlist.input_count(),
        "input word count mismatch for `{}`",
        netlist.name()
    );
    let mut values: Vec<u64> = Vec::with_capacity(netlist.net_count());
    values.extend_from_slice(inputs);
    for gate in netlist.gates() {
        let a = values[gate.ins[0].index()];
        let b = values[gate.ins[1].index()];
        let c = values[gate.ins[2].index()];
        values.push(gate.kind.eval(a, b, c));
    }
    values
}

/// Evaluates a netlist as a two-operand arithmetic circuit on a single
/// operand pair.
///
/// The first `wa` primary inputs receive the bits of `a` (LSB first), the
/// next `wb` inputs the bits of `b`. The outputs are assembled LSB-first
/// into the returned integer.
///
/// # Panics
/// Panics if the netlist does not have exactly `wa + wb` inputs.
pub fn eval_binop(netlist: &Netlist, wa: u32, wb: u32, a: u64, b: u64) -> u64 {
    assert_eq!(netlist.input_count() as u32, wa + wb);
    let mut words = Vec::with_capacity((wa + wb) as usize);
    for i in 0..wa {
        words.push(if (a >> i) & 1 != 0 { u64::MAX } else { 0 });
    }
    for i in 0..wb {
        words.push(if (b >> i) & 1 != 0 { u64::MAX } else { 0 });
    }
    let outs = sim_lanes(netlist, &words);
    let mut r = 0u64;
    for (i, w) in outs.iter().enumerate() {
        r |= (w & 1) << i;
    }
    r
}

/// Evaluates a netlist as a two-operand arithmetic circuit on a batch of
/// operand pairs, 64 pairs per simulation pass.
pub fn eval_binop_batch(netlist: &Netlist, wa: u32, wb: u32, pairs: &[(u64, u64)]) -> Vec<u64> {
    assert_eq!(netlist.input_count() as u32, wa + wb);
    let n_in = (wa + wb) as usize;
    let mut results = Vec::with_capacity(pairs.len());
    let mut words = vec![0u64; n_in];
    for chunk in pairs.chunks(64) {
        words.iter_mut().for_each(|w| *w = 0);
        for (lane, &(a, b)) in chunk.iter().enumerate() {
            for (i, w) in words.iter_mut().enumerate().take(wa as usize) {
                *w |= ((a >> i) & 1) << lane;
            }
            for i in 0..wb as usize {
                words[wa as usize + i] |= ((b >> i) & 1) << lane;
            }
        }
        let outs = sim_lanes(netlist, &words);
        for lane in 0..chunk.len() {
            let mut r = 0u64;
            for (i, w) in outs.iter().enumerate() {
                r |= ((w >> lane) & 1) << i;
            }
            results.push(r);
        }
    }
    results
}

/// The canonical word patterns that enumerate all assignments of the lowest
/// six input variables within one 64-lane word.
const LOW_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Exhaustively evaluates a netlist with `k = input_count() ≤ 26` inputs,
/// returning one integer result per input assignment, ordered by the
/// assignment value (input 0 = LSB of the assignment index).
///
/// For a 16-input circuit this performs only 1024 bit-parallel passes.
///
/// # Panics
/// Panics if the netlist has more than 26 inputs (the result vector would
/// exceed 64 M entries).
pub fn exhaustive_outputs(netlist: &Netlist) -> Vec<u64> {
    let k = netlist.input_count();
    assert!(k <= 26, "exhaustive evaluation limited to 26 inputs");
    let total = 1usize << k;
    let blocks = total.div_ceil(64);
    let mut results = vec![0u64; total];
    let mut words = vec![0u64; k];
    for block in 0..blocks {
        for (i, w) in words.iter_mut().enumerate() {
            *w = if i < 6 {
                LOW_PATTERNS[i]
            } else if (block >> (i - 6)) & 1 != 0 {
                u64::MAX
            } else {
                0
            };
        }
        let outs = sim_lanes(netlist, &words);
        let lanes = (total - block * 64).min(64);
        for lane in 0..lanes {
            let mut r = 0u64;
            for (oi, w) in outs.iter().enumerate() {
                r |= ((w >> lane) & 1) << oi;
            }
            results[block * 64 + lane] = r;
        }
    }
    results
}

/// Checks functional equivalence of two netlists with identical interfaces
/// on `n_samples` deterministic stimuli (exhaustively when the input space
/// is at most 2^20).
///
/// Returns the first differing assignment as a counterexample, or `None`
/// when equivalent on all tested stimuli.
pub fn check_equivalence(a: &Netlist, b: &Netlist, n_samples: usize, seed: u64) -> Option<u64> {
    assert_eq!(a.input_count(), b.input_count());
    assert_eq!(a.outputs().len(), b.outputs().len());
    let k = a.input_count() as u32;
    if k <= 20 {
        let oa = exhaustive_outputs(a);
        let ob = exhaustive_outputs(b);
        return oa
            .iter()
            .zip(ob.iter())
            .position(|(x, y)| x != y)
            .map(|p| p as u64);
    }
    let mut st = seed;
    for _ in 0..n_samples {
        let v = crate::util::splitmix64(&mut st) & mask(k);
        let words: Vec<u64> = (0..k)
            .map(|i| if (v >> i) & 1 != 0 { u64::MAX } else { 0 })
            .collect();
        if sim_lanes(a, &words)
            .iter()
            .zip(sim_lanes(b, &words).iter())
            .any(|(x, y)| (x & 1) != (y & 1))
        {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn xor_netlist() -> Netlist {
        let mut n = Netlist::new("xor");
        let a = n.input();
        let b = n.input();
        let y = n.xor2(a, b);
        n.push_output(y);
        n
    }

    #[test]
    fn lanes_are_independent() {
        let n = xor_netlist();
        // lane 0: 0^0, lane 1: 1^0, lane 2: 0^1, lane 3: 1^1
        let outs = sim_lanes(&n, &[0b1010, 0b1100]);
        assert_eq!(outs[0] & 0xF, 0b0110);
    }

    #[test]
    fn eval_binop_single() {
        let n = xor_netlist();
        assert_eq!(eval_binop(&n, 1, 1, 1, 1), 0);
        assert_eq!(eval_binop(&n, 1, 1, 0, 1), 1);
    }

    #[test]
    fn batch_matches_single() {
        let n = xor_netlist();
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i & 1, (i >> 1) & 1)).collect();
        let batch = eval_binop_batch(&n, 1, 1, &pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], eval_binop(&n, 1, 1, a, b));
        }
    }

    #[test]
    fn exhaustive_matches_eval() {
        // 3-input majority gate netlist
        let mut n = Netlist::new("maj");
        let a = n.input();
        let b = n.input();
        let c = n.input();
        let y = n.maj3(a, b, c);
        n.push_output(y);
        let all = exhaustive_outputs(&n);
        assert_eq!(all.len(), 8);
        for v in 0u64..8 {
            let bits = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
            assert_eq!(all[v as usize], u64::from(bits >= 2), "v={v}");
        }
    }

    #[test]
    fn exhaustive_large_block_boundary() {
        // 7 inputs exercises the block loop (two 64-lane blocks).
        let mut n = Netlist::new("parity7");
        let ins: Vec<_> = (0..7).map(|_| n.input()).collect();
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = n.xor2(acc, i);
        }
        n.push_output(acc);
        let all = exhaustive_outputs(&n);
        assert_eq!(all.len(), 128);
        for v in 0u64..128 {
            assert_eq!(all[v as usize], (v.count_ones() as u64) & 1);
        }
    }

    #[test]
    fn equivalence_check_finds_difference() {
        let a = xor_netlist();
        let mut b = Netlist::new("xnor");
        let x = b.input();
        let y = b.input();
        let o = b.xnor2(x, y);
        b.push_output(o);
        assert!(check_equivalence(&a, &a.clone(), 100, 1).is_none());
        assert!(check_equivalence(&a, &b, 100, 1).is_some());
    }
}
