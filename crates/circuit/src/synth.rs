//! "Synthesis-lite": logic optimization and hardware cost reporting.
//!
//! This module stands in for the paper's Synopsys Design Compiler flow. It
//! performs the optimizations that matter for the autoAx methodology:
//!
//! * **constant propagation** — approximate components frequently tie
//!   output bits to constants (truncation) which then simplifies downstream
//!   logic;
//! * **identity folding** — `x & x`, `x ^ x`, double inversion, muxes with
//!   equal branches, …;
//! * **structural hashing** — duplicate gates are merged;
//! * **dead-cell elimination** — logic whose output no longer reaches a
//!   primary output is removed. This is the effect the paper observed when
//!   a heavily approximated final subtractor caused the synthesis tool to
//!   strip large parts of upstream adders, defeating the naïve
//!   sum-of-component-areas model (Section 4.1.2, Fig. 4).
//!
//! Cost reporting covers area (µm²), critical-path delay (ns), power (µW;
//! leakage plus switching-activity-based dynamic power) and energy per
//! operation (fJ).

use crate::cell::CellKind;
use crate::netlist::{NetId, Netlist};
use crate::sim::sim_all_nets;
use std::collections::HashMap;

/// Hardware cost report of a synthesized netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwReport {
    /// Total cell area in µm².
    pub area: f64,
    /// Critical-path delay in ns.
    pub delay: f64,
    /// Total power in µW (leakage + dynamic at the reference activity).
    pub power: f64,
    /// Energy per operation in fJ (dynamic switching energy of one average
    /// input transition plus leakage integrated over one critical path).
    pub energy: f64,
    /// Number of cells after optimization (constants excluded).
    pub cells: usize,
}

impl HwReport {
    /// A zero report (used for empty netlists).
    pub const ZERO: HwReport = HwReport {
        area: 0.0,
        delay: 0.0,
        power: 0.0,
        energy: 0.0,
        cells: 0,
    };
}

impl std::fmt::Display for HwReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "area={:.2}um2 delay={:.3}ns power={:.2}uW energy={:.1}fJ cells={}",
            self.area, self.delay, self.power, self.energy, self.cells
        )
    }
}

/// What a net is known to be during optimization.
#[derive(Clone, Copy, PartialEq, Eq)]
enum NetVal {
    /// Constant logic value.
    Const(bool),
    /// Alias of an existing net in the *new* netlist.
    Net(NetId),
    /// Complement of an existing net in the new netlist (tracked so that
    /// `inv(inv(x))` folds without materializing gates).
    NotNet(NetId),
}

/// Optimizes a netlist: constant propagation, identity folding, structural
/// hashing, then dead-cell elimination. The primary input/output interface
/// is preserved; output *functions* are unchanged (verified by tests).
pub fn optimize(netlist: &Netlist) -> Netlist {
    let forward = forward_simplify(netlist);
    dead_cell_elimination(&forward)
}

/// One forward pass of constant propagation + identity folding +
/// structural hashing. Because gates are in topological order, constants
/// cascade through the whole netlist in a single pass.
fn forward_simplify(netlist: &Netlist) -> Netlist {
    let mut out = Netlist::new(netlist.name().to_string());
    for _ in 0..netlist.input_count() {
        out.input();
    }
    // value of each original net, expressed in terms of the new netlist
    let mut vals: Vec<NetVal> = (0..netlist.input_count() as u32)
        .map(|i| NetVal::Net(NetId(i)))
        .collect();
    // structural hash: (kind, resolved inputs) -> new net
    let mut cse: HashMap<(CellKind, [u32; 3]), NetId> = HashMap::new();
    // cached constant nets in the new netlist
    let mut const_nets: [Option<NetId>; 2] = [None, None];
    // cached inverters: new net -> net of its complement
    let mut inv_cache: HashMap<u32, NetId> = HashMap::new();

    // Materializes a NetVal as an actual net in `out`.
    // (Closures can't borrow `out` mutably twice, so plain fns + macros.)
    macro_rules! materialize {
        ($v:expr) => {{
            match $v {
                NetVal::Net(n) => n,
                NetVal::Const(c) => {
                    let slot = usize::from(c);
                    if let Some(n) = const_nets[slot] {
                        n
                    } else {
                        let n = if c { out.const1() } else { out.const0() };
                        const_nets[slot] = Some(n);
                        n
                    }
                }
                NetVal::NotNet(n) => {
                    if let Some(&inv) = inv_cache.get(&n.0) {
                        inv
                    } else {
                        let key = (CellKind::Inv, [n.0, n.0, n.0]);
                        let invn = *cse.entry(key).or_insert_with(|| out.inv(n));
                        inv_cache.insert(n.0, invn);
                        inv_cache.insert(invn.0, n);
                        invn
                    }
                }
            }
        }};
    }

    for gate in netlist.gates() {
        let raw: [NetVal; 3] = [
            vals[gate.ins[0].index()],
            vals[gate.ins[1].index()],
            vals[gate.ins[2].index()],
        ];
        let v = simplify_gate(gate.kind, raw);
        let v = match v {
            SimplifyResult::Val(v) => v,
            SimplifyResult::Gate(kind, ins) => {
                let mut nets = [NetId(0); 3];
                for (slot, net) in nets.iter_mut().enumerate().take(kind.arity()) {
                    *net = materialize!(ins[slot]);
                }
                // pad unused gate slots with the first used input
                for slot in kind.arity()..3 {
                    nets[slot] = nets[0];
                }
                // canonicalize commutative operand order
                if kind.is_commutative2() && nets[0].0 > nets[1].0 {
                    nets.swap(0, 1);
                }
                // hash key covers only the used arity slots
                let mut key_ins = [u32::MAX; 3];
                for slot in 0..kind.arity() {
                    key_ins[slot] = nets[slot].0;
                }
                let key = (kind, key_ins);
                if let Some(&existing) = cse.get(&key) {
                    NetVal::Net(existing)
                } else {
                    let n = out.push(kind, nets);
                    cse.insert(key, n);
                    if kind == CellKind::Inv {
                        inv_cache.insert(nets[0].0, n);
                        inv_cache.insert(n.0, nets[0]);
                    }
                    NetVal::Net(n)
                }
            }
        };
        vals.push(v);
    }

    let outs: Vec<NetId> = netlist
        .outputs()
        .iter()
        .map(|o| {
            let v = vals[o.index()];
            materialize!(v)
        })
        .collect();
    out.set_outputs(outs);
    out
}

enum SimplifyResult {
    Val(NetVal),
    Gate(CellKind, [NetVal; 3]),
}

/// Rewrites one gate given the knowledge about its inputs. Returns either a
/// final value (constant/alias/complement) or a — possibly different —
/// gate to emit.
fn simplify_gate(kind: CellKind, ins: [NetVal; 3]) -> SimplifyResult {
    use CellKind::*;
    use NetVal::*;
    use SimplifyResult::*;

    let same = |x: NetVal, y: NetVal| match (x, y) {
        (Net(a), Net(b)) | (NotNet(a), NotNet(b)) => a == b,
        (Const(a), Const(b)) => a == b,
        _ => false,
    };
    let complement = |x: NetVal, y: NetVal| match (x, y) {
        (Net(a), NotNet(b)) | (NotNet(a), Net(b)) => a == b,
        (Const(a), Const(b)) => a != b,
        _ => false,
    };

    match kind {
        Const0 => Val(Const(false)),
        Const1 => Val(Const(true)),
        Buf => Val(ins[0]),
        Inv => Val(match ins[0] {
            Const(c) => Const(!c),
            Net(n) => NotNet(n),
            NotNet(n) => Net(n),
        }),
        And2 | Or2 | Nand2 | Nor2 => {
            let (a, b) = (ins[0], ins[1]);
            // Normalize to AND/OR with an optional output inversion.
            let (base_or, invert_out) = match kind {
                And2 => (false, false),
                Nand2 => (false, true),
                Or2 => (true, false),
                Nor2 => (true, true),
                _ => unreachable!(),
            };
            let invert = |v: NetVal| match v {
                Const(c) => Const(!c),
                Net(n) => NotNet(n),
                NotNet(n) => Net(n),
            };
            // absorbing / identity constants
            let absorbing = base_or; // OR absorbs 1, AND absorbs 0
            for (x, other) in [(a, b), (b, a)] {
                if let Const(c) = x {
                    if c == absorbing {
                        let r = Const(absorbing);
                        return Val(if invert_out { invert(r) } else { r });
                    }
                    // identity element: result = other
                    return Val(if invert_out { invert(other) } else { other });
                }
            }
            if same(a, b) {
                return Val(if invert_out { invert(a) } else { a });
            }
            if complement(a, b) {
                let r = Const(base_or);
                return Val(if invert_out { invert(r) } else { r });
            }
            Gate(kind, ins)
        }
        Xor2 | Xnor2 => {
            let invert_out = kind == Xnor2;
            let (a, b) = (ins[0], ins[1]);
            let invert = |v: NetVal| match v {
                Const(c) => Const(!c),
                Net(n) => NotNet(n),
                NotNet(n) => Net(n),
            };
            for (x, other) in [(a, b), (b, a)] {
                if let Const(c) = x {
                    let r = if c { invert(other) } else { other };
                    return Val(if invert_out { invert(r) } else { r });
                }
            }
            if same(a, b) {
                return Val(Const(invert_out));
            }
            if complement(a, b) {
                return Val(Const(!invert_out));
            }
            // Fold operand complements into the output phase:
            // (!a ^ b) == !(a ^ b)
            let mut phase = invert_out;
            let norm = |v: NetVal, phase: &mut bool| match v {
                NotNet(n) => {
                    *phase = !*phase;
                    Net(n)
                }
                other => other,
            };
            let na = norm(a, &mut phase);
            let nb = norm(b, &mut phase);
            Gate(if phase { Xnor2 } else { Xor2 }, [na, nb, na])
        }
        Mux2 => {
            let (s, d0, d1) = (ins[0], ins[1], ins[2]);
            if let Const(c) = s {
                return Val(if c { d1 } else { d0 });
            }
            if same(d0, d1) {
                return Val(d0);
            }
            match (d0, d1) {
                (Const(false), Const(true)) => return Val(s),
                (Const(true), Const(false)) => {
                    return Val(match s {
                        Net(n) => NotNet(n),
                        NotNet(n) => Net(n),
                        Const(c) => Const(!c),
                    })
                }
                // s ? d1 : 0  ==  s & d1 ; s ? 1 : d0 == s | d0, etc.
                (Const(false), _) => return simplify_gate(And2, [s, d1, s]),
                (_, Const(false)) => {
                    let ns = match s {
                        Net(n) => NotNet(n),
                        NotNet(n) => Net(n),
                        Const(c) => Const(!c),
                    };
                    return simplify_gate(And2, [ns, d0, ns]);
                }
                (Const(true), _) => {
                    let ns = match s {
                        Net(n) => NotNet(n),
                        NotNet(n) => Net(n),
                        Const(c) => Const(!c),
                    };
                    return simplify_gate(Or2, [ns, d1, ns]);
                }
                (_, Const(true)) => return simplify_gate(Or2, [s, d0, s]),
                _ => {}
            }
            Gate(Mux2, ins)
        }
        Maj3 => {
            let (a, b, c) = (ins[0], ins[1], ins[2]);
            for (x, y, z) in [(a, b, c), (a, c, b), (b, c, a)] {
                if let Const(cv) = z {
                    // maj(x, y, 1) = x | y ; maj(x, y, 0) = x & y
                    return simplify_gate(if cv { Or2 } else { And2 }, [x, y, x]);
                }
                if same(x, y) {
                    return Val(x);
                }
                if complement(x, y) {
                    return Val(z);
                }
            }
            Gate(Maj3, ins)
        }
    }
}

/// Removes gates whose output cannot reach any primary output.
fn dead_cell_elimination(netlist: &Netlist) -> Netlist {
    let n_in = netlist.input_count();
    let mut live = vec![false; netlist.net_count()];
    for o in netlist.outputs() {
        live[o.index()] = true;
    }
    for (gi, gate) in netlist.gates().iter().enumerate().rev() {
        if live[n_in + gi] {
            for slot in gate.ins.iter().take(gate.kind.arity()) {
                live[slot.index()] = true;
            }
        }
    }
    let mut out = Netlist::new(netlist.name().to_string());
    for _ in 0..n_in {
        out.input();
    }
    let mut map: Vec<NetId> = (0..n_in as u32).map(NetId).collect();
    for (gi, gate) in netlist.gates().iter().enumerate() {
        if live[n_in + gi] {
            let ins = [
                map[gate.ins[0].index()],
                map[gate.ins[1].index()],
                map[gate.ins[2].index()],
            ];
            let new = out.push(gate.kind, ins);
            map.push(new);
        } else {
            // placeholder; never referenced by live gates
            map.push(NetId(0));
        }
    }
    let outs = netlist.outputs().iter().map(|o| map[o.index()]).collect();
    out.set_outputs(outs);
    out
}

/// Static timing analysis: length (in ns) of the longest combinational
/// path from any input to any output.
pub fn critical_path(netlist: &Netlist) -> f64 {
    let mut arrival = vec![0.0f64; netlist.net_count()];
    let n_in = netlist.input_count();
    for (gi, gate) in netlist.gates().iter().enumerate() {
        let mut t: f64 = 0.0;
        for slot in gate.ins.iter().take(gate.kind.arity()) {
            t = t.max(arrival[slot.index()]);
        }
        arrival[n_in + gi] = t + gate.kind.delay();
    }
    netlist
        .outputs()
        .iter()
        .map(|o| arrival[o.index()])
        .fold(0.0, f64::max)
}

/// Total cell area in µm².
pub fn total_area(netlist: &Netlist) -> f64 {
    netlist.gates().iter().map(|g| g.kind.area()).sum()
}

/// Estimates average switching energy per input transition (fJ) by
/// simulating `n_vectors` deterministic pseudo-random input vectors and
/// counting output toggles of every gate between consecutive vectors.
pub fn switching_energy(netlist: &Netlist, n_vectors: usize, seed: u64) -> f64 {
    if netlist.gate_count() == 0 || n_vectors < 2 {
        return 0.0;
    }
    let n_in = netlist.input_count();
    let mut st = seed ^ 0x1234_5678_9ABC_DEF0;
    let blocks = n_vectors.div_ceil(64).max(1);
    let mut total_fj = 0.0f64;
    let mut transitions = 0usize;
    let mut words = vec![0u64; n_in];
    for _ in 0..blocks {
        for w in words.iter_mut() {
            *w = crate::util::splitmix64(&mut st);
        }
        let values = sim_all_nets(netlist, &words);
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let w = values[n_in + gi];
            // Toggles between adjacent lanes within the word: lane i vs i+1.
            let toggles = (w ^ (w >> 1)) & (u64::MAX >> 1);
            total_fj += toggles.count_ones() as f64 * gate.kind.switch_energy();
        }
        transitions += 63;
    }
    total_fj / transitions as f64
}

/// Analysis options for [`analyze`].
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// Number of random vectors for activity estimation.
    pub activity_vectors: usize,
    /// Seed for the activity stimulus stream.
    pub seed: u64,
    /// Clock frequency in MHz used to convert energy/op to dynamic power.
    pub clock_mhz: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            activity_vectors: 512,
            seed: 0xC0FFEE,
            clock_mhz: 500.0,
        }
    }
}

/// Produces the hardware cost report of an (already optimized) netlist.
pub fn analyze(netlist: &Netlist, opts: &AnalyzeOptions) -> HwReport {
    if netlist.gate_count() == 0 {
        return HwReport::ZERO;
    }
    let area = total_area(netlist);
    let delay = critical_path(netlist);
    let sw_fj = switching_energy(netlist, opts.activity_vectors, opts.seed);
    let leakage_nw: f64 = netlist.gates().iter().map(|g| g.kind.leakage()).sum();
    // dynamic power (µW) = energy/op (fJ) * f (MHz) * 1e-3
    let dyn_uw = sw_fj * opts.clock_mhz * 1e-3;
    let leak_uw = leakage_nw * 1e-3;
    let power = dyn_uw + leak_uw;
    // energy per operation: switching energy + leakage over one cycle
    let cycle_ns = 1000.0 / opts.clock_mhz;
    let energy = sw_fj + leak_uw * cycle_ns; // µW * ns = fJ
    HwReport {
        area,
        delay,
        power,
        energy,
        cells: netlist.cell_count(),
    }
}

/// Optimizes and analyzes in one step — the equivalent of "running
/// synthesis" in the paper's flow.
pub fn synthesize(netlist: &Netlist) -> (Netlist, HwReport) {
    let opt = optimize(netlist);
    let report = analyze(&opt, &AnalyzeOptions::default());
    (opt, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::ripple_carry_adder;
    use crate::netlist::Netlist;
    use crate::sim::{check_equivalence, eval_binop};

    #[test]
    fn optimize_preserves_adder_function() {
        let add = ripple_carry_adder(6);
        let opt = optimize(&add);
        assert!(check_equivalence(&add, &opt, 0, 0).is_none());
    }

    #[test]
    fn constant_inputs_fold_away() {
        // y = (a & 0) | b  should fold to  y = b (one buffer at most).
        let mut n = Netlist::new("fold");
        let a = n.input();
        let b = n.input();
        let z = n.const0();
        let t = n.and2(a, z);
        let y = n.or2(t, b);
        n.push_output(y);
        let opt = optimize(&n);
        assert!(opt.cell_count() <= 1, "got {} cells", opt.cell_count());
        assert_eq!(eval_binop(&opt, 1, 1, 0, 1), 1);
        assert_eq!(eval_binop(&opt, 1, 1, 1, 0), 0);
    }

    #[test]
    fn double_inversion_folds() {
        let mut n = Netlist::new("dblinv");
        let a = n.input();
        let x = n.inv(a);
        let y = n.inv(x);
        n.push_output(y);
        let opt = optimize(&n);
        assert_eq!(opt.cell_count(), 0, "double inversion should vanish");
    }

    #[test]
    fn structural_hashing_merges_duplicates() {
        let mut n = Netlist::new("dup");
        let a = n.input();
        let b = n.input();
        let x = n.and2(a, b);
        let y = n.and2(b, a); // commutative duplicate
        let z = n.xor2(x, y); // x == y, so z == 0
        n.push_output(z);
        let opt = optimize(&n);
        // Everything folds to constant 0.
        assert_eq!(opt.cell_count(), 0);
        assert_eq!(eval_binop(&opt, 1, 1, 1, 1), 0);
    }

    #[test]
    fn dce_removes_unconnected_logic() {
        let mut n = Netlist::new("dead");
        let a = n.input();
        let b = n.input();
        let _dead = n.xor2(a, b);
        let live = n.and2(a, b);
        n.push_output(live);
        let opt = optimize(&n);
        assert_eq!(opt.cell_count(), 1);
    }

    #[test]
    fn truncated_outputs_shrink_upstream_area() {
        // The Fig.4 effect: dropping output bits lets synthesis strip logic.
        let add = ripple_carry_adder(8);
        let full = optimize(&add);
        let mut truncated = add.clone();
        // keep only the top output bit
        let top = *truncated.outputs().last().unwrap();
        truncated.set_outputs(vec![top]);
        let opt = optimize(&truncated);
        assert!(
            total_area(&opt) < total_area(&full),
            "truncating outputs must reduce area ({} !< {})",
            total_area(&opt),
            total_area(&full)
        );
    }

    #[test]
    fn critical_path_grows_with_width() {
        let d4 = critical_path(&ripple_carry_adder(4));
        let d16 = critical_path(&ripple_carry_adder(16));
        assert!(d16 > d4 * 2.0);
    }

    #[test]
    fn analyze_reports_positive_costs() {
        let add = ripple_carry_adder(8);
        let (_, r) = synthesize(&add);
        assert!(r.area > 0.0);
        assert!(r.delay > 0.0);
        assert!(r.power > 0.0);
        assert!(r.energy > 0.0);
        assert!(r.cells > 0);
    }

    #[test]
    fn smaller_adder_costs_less() {
        let (_, r4) = synthesize(&ripple_carry_adder(4));
        let (_, r16) = synthesize(&ripple_carry_adder(16));
        assert!(r4.area < r16.area);
        assert!(r4.power < r16.power);
        assert!(r4.energy < r16.energy);
    }

    #[test]
    fn mux_simplifications_preserve_function() {
        // mux(s, d, d) == d; mux with const select folds to branch.
        let mut n = Netlist::new("mux");
        let s = n.input();
        let d = n.input();
        let one = n.const1();
        let m1 = n.mux2(s, d, d);
        let m2 = n.mux2(one, d, s);
        let y = n.xor2(m1, m2); // = d ^ s
        n.push_output(y);
        let opt = optimize(&n);
        for v in 0u64..4 {
            let (sv, dv) = (v & 1, (v >> 1) & 1);
            assert_eq!(eval_binop(&opt, 1, 1, sv, dv), sv ^ dv);
        }
        assert!(opt.cell_count() <= 1);
    }

    #[test]
    fn maj_with_constant_folds_to_and_or() {
        let mut n = Netlist::new("majc");
        let a = n.input();
        let b = n.input();
        let one = n.const1();
        let zero = n.const0();
        let m1 = n.maj3(a, b, one); // a | b
        let m2 = n.maj3(a, b, zero); // a & b
        n.push_output(m1);
        n.push_output(m2);
        let opt = optimize(&n);
        assert_eq!(opt.cell_count(), 2);
        for v in 0u64..4 {
            let (av, bv) = (v & 1, (v >> 1) & 1);
            let outs = crate::sim::sim_lanes(
                &opt,
                &[
                    if av != 0 { u64::MAX } else { 0 },
                    if bv != 0 { u64::MAX } else { 0 },
                ],
            );
            assert_eq!(outs[0] & 1, av | bv);
            assert_eq!(outs[1] & 1, av & bv);
        }
    }

    #[test]
    fn optimize_random_netlists_preserves_function() {
        // Randomized netlists stress the rewrite rules.
        let mut st = 99u64;
        for case in 0..30 {
            let mut n = Netlist::new(format!("rand{case}"));
            let ins: Vec<_> = (0..6).map(|_| n.input()).collect();
            let mut nets = ins.clone();
            for _ in 0..40 {
                let k = CellKind::ALL
                    [(crate::util::splitmix64(&mut st) % CellKind::ALL.len() as u64) as usize];
                let pick = |st: &mut u64, nets: &Vec<NetId>| {
                    nets[(crate::util::splitmix64(st) % nets.len() as u64) as usize]
                };
                let a = pick(&mut st, &nets);
                let b = pick(&mut st, &nets);
                let c = pick(&mut st, &nets);
                let out = n.push(k, [a, b, c]);
                nets.push(out);
            }
            for _ in 0..4 {
                let o = nets[(crate::util::splitmix64(&mut st) % nets.len() as u64) as usize];
                n.push_output(o);
            }
            let opt = optimize(&n);
            assert!(
                check_equivalence(&n, &opt, 0, 0).is_none(),
                "case {case}: optimize changed function"
            );
            assert!(opt.cell_count() <= n.cell_count());
        }
    }

    #[test]
    fn switching_energy_is_deterministic() {
        let add = ripple_carry_adder(8);
        let e1 = switching_energy(&add, 256, 7);
        let e2 = switching_energy(&add, 256, 7);
        assert_eq!(e1, e2);
        assert!(e1 > 0.0);
    }
}
