//! Small shared helpers: bit masks, deterministic stimulus generation and a
//! std-only parallel map used by library characterization.

/// Returns a mask with the lowest `w` bits set (`w == 64` returns all ones).
///
/// ```
/// assert_eq!(autoax_circuit::util::mask(8), 0xFF);
/// assert_eq!(autoax_circuit::util::mask(0), 0);
/// ```
#[inline]
pub const fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// SplitMix64 step — a tiny, high-quality deterministic PRNG used for
/// reproducible stimulus streams without threading `rand` state everywhere.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic stream of operand pairs for an `(wa, wb)`-bit binary
/// operation, seeded by `seed`.
///
/// The stream mixes uniform pairs with "correlated" pairs (`b` near `a`),
/// because image workloads produce strongly correlated operands (paper
/// Fig. 3) and characterization should exercise that regime too.
pub fn stimulus_pairs(wa: u32, wb: u32, n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut st = seed ^ 0xA076_1D64_78BD_642F;
    let ma = mask(wa);
    let mb = mask(wb);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let r = splitmix64(&mut st);
        let a = r & ma;
        let b = if i % 4 == 3 {
            // Correlated pair: b = a + small signed delta.
            let delta = ((splitmix64(&mut st) & 0x1F) as i64) - 16;
            ((a as i64 + delta).rem_euclid((mb as i64) + 1)) as u64
        } else {
            (r >> 32) & mb
        };
        out.push((a, b & mb));
    }
    out
}

/// Maps `f` over `items` in parallel using scoped std threads.
///
/// Used for embarrassingly parallel characterization loops; results are in
/// input order. Falls back to sequential execution for small inputs.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if items.len() < 32 || threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<Vec<U>>> = Vec::new();
    results.resize_with(items.len().div_ceil(chunk), || None);
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::new();
        for (ci, part) in items.chunks(chunk).enumerate() {
            handles.push((
                ci,
                scope.spawn(move || part.iter().map(f).collect::<Vec<U>>()),
            ));
        }
        for (ci, h) in handles {
            results[ci] = Some(h.join().expect("par_map worker panicked"));
        }
    });
    results.into_iter().flatten().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_edges() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(16), 0xFFFF);
        assert_eq!(mask(63), u64::MAX >> 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn splitmix_deterministic() {
        let mut a = 7;
        let mut b = 7;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn stimulus_pairs_in_range_and_deterministic() {
        let p1 = stimulus_pairs(8, 8, 1000, 3);
        let p2 = stimulus_pairs(8, 8, 1000, 3);
        assert_eq!(p1, p2);
        for (a, b) in &p1 {
            assert!(*a <= 255 && *b <= 255);
        }
        let p3 = stimulus_pairs(8, 8, 1000, 4);
        assert_ne!(p1, p3);
    }

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let par = par_map(&items, |x| x * 3 + 1);
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_small_input() {
        let items = vec![1u32, 2, 3];
        assert_eq!(par_map(&items, |x| x + 1), vec![2, 3, 4]);
    }
}
