//! Small shared helpers: bit masks and deterministic stimulus generation.
//!
//! The parallel map that used to live here moved to the dedicated
//! execution-layer crate ([`autoax_exec::par_map`]) so every layer of the
//! stack (circuit, ml, core, accel) can share one thread-count knob.

/// Returns a mask with the lowest `w` bits set (`w == 64` returns all ones).
///
/// ```
/// assert_eq!(autoax_circuit::util::mask(8), 0xFF);
/// assert_eq!(autoax_circuit::util::mask(0), 0);
/// ```
#[inline]
pub const fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// SplitMix64 step — a tiny, high-quality deterministic PRNG used for
/// reproducible stimulus streams without threading `rand` state everywhere.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic stream of operand pairs for an `(wa, wb)`-bit binary
/// operation, seeded by `seed`.
///
/// The stream mixes uniform pairs with "correlated" pairs (`b` near `a`),
/// because image workloads produce strongly correlated operands (paper
/// Fig. 3) and characterization should exercise that regime too.
pub fn stimulus_pairs(wa: u32, wb: u32, n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut st = seed ^ 0xA076_1D64_78BD_642F;
    let ma = mask(wa);
    let mb = mask(wb);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let r = splitmix64(&mut st);
        let a = r & ma;
        let b = if i % 4 == 3 {
            // Correlated pair: b = a + small signed delta.
            let delta = ((splitmix64(&mut st) & 0x1F) as i64) - 16;
            ((a as i64 + delta).rem_euclid((mb as i64) + 1)) as u64
        } else {
            (r >> 32) & mb
        };
        out.push((a, b & mb));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_edges() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(16), 0xFFFF);
        assert_eq!(mask(63), u64::MAX >> 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn splitmix_deterministic() {
        let mut a = 7;
        let mut b = 7;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn stimulus_pairs_in_range_and_deterministic() {
        let p1 = stimulus_pairs(8, 8, 1000, 3);
        let p2 = stimulus_pairs(8, 8, 1000, 3);
        assert_eq!(p1, p2);
        for (a, b) in &p1 {
            assert!(*a <= 255 && *b <= 255);
        }
        let p3 = stimulus_pairs(8, 8, 1000, 4);
        assert_ne!(p1, p3);
    }
}
