//! Cache-aware warm start for the pipeline's Steps 1–2.
//!
//! Library pre-processing (Step 1) and model construction (Step 2) are
//! deterministic functions of the workload, the characterized library,
//! the benchmark samples and the pipeline options — and they dominate
//! wall-clock on repeat runs now that Step 3 is batched and parallel.
//! This module content-addresses their combined result (the reduced
//! configuration space with its PMFs, the fidelity report, and the two
//! fitted models) through `autoax-store`:
//!
//! * [`pipeline_cache_key`] digests every input that affects Steps 1–2 —
//!   including a *content* fingerprint of the library and the benchmark
//!   samples (image bytes, NN feature vectors, … via
//!   [`Workload::digest_samples`]), so a regenerated library or a changed
//!   benchmark suite can never alias a stale entry — plus the store
//!   format-version salt;
//! * [`encode_step12`] / [`decode_step12`] round-trip the artifacts with
//!   bitwise-exact floats, so a warm [`crate::pipeline::run_pipeline`]
//!   produces a byte-identical result to the cold run;
//! * corrupt or version-mismatched entries fail validation in the store
//!   layer and are transparently recomputed.
//!
//! Search-stage options (the embedded `SearchOptions`: strategy, budget,
//! islands, batch, threads — and the final-eval cap) are deliberately
//! *not* part of the key: Step 3 always runs live, so one warm-started
//! library/model pair serves any search strategy and budget — the reuse
//! pattern the paper itself argues for.

use crate::config::Configuration;
use crate::model::{FidelityReport, FittedModels};
use crate::pareto::ParetoFront;
use crate::pipeline::PipelineOptions;
use crate::preprocess::Preprocessed;
use crate::refine::RefinementReport;
use autoax_accel::{Pmf, Workload};
use autoax_circuit::charlib::{CircuitId, ComponentLibrary};
use autoax_store::cache::{CacheKey, KeyHasher};
use autoax_store::circuit_codec::{put_signature, take_signature};
use autoax_store::codec::{Decoder, Encoder};
use autoax_store::ml_codec::{put_regressor, take_regressor};
use autoax_store::StoreError;

/// Container tag of Step-1/2 warm-start blobs.
pub const STEP12_TAG: [u8; 4] = *b"AST2";

/// Cache entry kind (file-name prefix) of Step-1/2 blobs.
pub const STEP12_KIND: &str = "pipeline-step12";

/// Container tag of refined-model blobs (the refinement loop's output).
pub const REFINED_TAG: [u8; 4] = *b"AXRF";

/// Cache entry kind (file-name prefix) of refined-model blobs.
pub const REFINED_KIND: &str = "pipeline-refined";

/// True when every slot of a decoded space resolves inside the live
/// library — the invariant `ConfigSpace::entries` indexes by.
///
/// The cache key already fingerprints the library content, so a mismatch
/// here means a pathological collision or a hand-edited entry; callers
/// treat it as a miss rather than risking a wrong lookup or a panic.
pub fn step12_matches_library(pre: &Preprocessed, lib: &ComponentLibrary) -> bool {
    pre.space.slots().iter().all(|s| {
        let class_size = lib.class_size(s.signature) as u32;
        class_size > 0 && s.members.iter().all(|m| m.id.0 < class_size)
    })
}

/// Digest of everything that determines the outcome of Steps 1–2.
pub fn pipeline_cache_key<W: Workload + ?Sized>(
    work: &W,
    lib: &ComponentLibrary,
    samples: &[W::Sample],
    opts: &PipelineOptions,
) -> CacheKey {
    let mut h = KeyHasher::new("pipeline-step12");

    // workload identity: name, slot list, plus whatever extra identity
    // the domain declares (mode counts, network weights, …)
    h.write_str(work.name());
    h.write_u64(work.slots().len() as u64);
    for slot in work.slots() {
        h.write_str(&slot.name);
        h.write_str(&slot.signature.to_string());
    }
    {
        let mut sink = |bytes: &[u8]| h.write_bytes(bytes);
        work.digest_identity(&mut sink);
    }

    // library *content* fingerprint: per entry, the id (cached spaces
    // index circuits by it), the functional label and the full
    // characterization tables (bit-exact). Raw mutants share the
    // "mutant" label but are separated by their exhaustive/sampled error
    // statistics and hardware numbers.
    for sig in lib.signatures() {
        h.write_str(&sig.to_string());
        let class = lib.class(sig);
        h.write_u64(class.len() as u64);
        for e in class {
            h.write_u64(e.id.0 as u64);
            h.write_str(&e.label);
            h.write_f64(e.hw.area);
            h.write_f64(e.hw.delay);
            h.write_f64(e.hw.power);
            h.write_f64(e.hw.energy);
            h.write_u64(e.hw.cells as u64);
            h.write_f64(e.err.mae);
            h.write_u64(e.err.wce);
            h.write_f64(e.err.er);
            h.write_f64(e.err.mse);
            h.write_f64(e.err.var_ed);
            h.write_f64(e.err.mre);
            h.write_u64(e.err.samples);
        }
    }

    // benchmark sample content (domain-typed: image bytes, feature
    // vectors, … — whatever the workload declares as sample identity)
    h.write_u64(samples.len() as u64);
    {
        let mut sink = |bytes: &[u8]| h.write_bytes(bytes);
        work.digest_samples(samples, &mut sink);
    }

    // the options that flow into Steps 1–2
    h.write_f64(opts.preprocess.mass_frac);
    h.write_opt_u64(opts.preprocess.slot_cap.map(|c| c as u64));
    // the engine's stable display name, not its position in
    // EngineKind::ALL — reordering that list must not alias cache keys
    h.write_str(opts.engine.name());
    h.write_u64(opts.train_configs as u64);
    h.write_u64(opts.test_configs as u64);
    h.write_u64(opts.seed);

    h.finish()
}

/// Digest of everything that determines the refinement loop's output:
/// the full Step-1/2 key (workload, library, samples, engine, training
/// budget, master seed) **plus** the semantic Step-3 knobs the loop now
/// consumes — strategy, eval budget, stagnation limit, islands, uniform
/// levels — and every [`crate::refine::RefinementSchedule`] field.
///
/// Throughput knobs (`batch_size`, `threads`) stay excluded: the loop is
/// bit-identical under them, so including them would only fragment the
/// cache. Unlike Step 1–2 entries, a refined entry is bound to one
/// search configuration — refined models are a function of *where* the
/// search looked.
pub fn refined_cache_key<W: Workload + ?Sized>(
    work: &W,
    lib: &ComponentLibrary,
    samples: &[W::Sample],
    opts: &PipelineOptions,
) -> CacheKey {
    let step12 = pipeline_cache_key(work, lib, samples, opts);
    let mut h = KeyHasher::new(REFINED_KIND);
    h.write_u64(step12.hi);
    h.write_u64(step12.lo);
    let s = &opts.search;
    h.write_str(s.strategy.name());
    h.write_u64(s.max_evals as u64);
    h.write_u64(s.stagnation_limit as u64);
    h.write_u64(s.islands as u64);
    h.write_u64(s.uniform_levels as u64);
    h.write_u64(s.refine.epochs as u64);
    h.write_u64(s.refine.per_epoch as u64);
    h.write_f64(s.refine.novelty_weight);
    h.write_u64(s.refine.replace_trees as u64);
    h.finish()
}

fn put_pmf(e: &mut Encoder, pmf: &Pmf) {
    let counts = pmf.sorted_counts();
    e.put_len(counts.len());
    for ((a, b), c) in counts {
        e.put_u32(a);
        e.put_u32(b);
        e.put_u64(c);
    }
}

fn take_pmf(d: &mut Decoder<'_>) -> Result<Pmf, StoreError> {
    let n = d.take_len()?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        let a = d.take_u32()?;
        let b = d.take_u32()?;
        let c = d.take_u64()?;
        counts.push(((a, b), c));
    }
    Ok(Pmf::from_counts(counts))
}

fn put_preprocessed(e: &mut Encoder, pre: &Preprocessed) {
    let slots = pre.space.slots();
    e.put_len(slots.len());
    for s in slots {
        e.put_str(&s.name);
        put_signature(e, s.signature);
        e.put_len(s.members.len());
        for m in &s.members {
            e.put_u32(m.id.0);
            e.put_f64(m.wmed);
        }
    }
    e.put_len(pre.pmfs.len());
    for pmf in &pre.pmfs {
        put_pmf(e, pmf);
    }
    e.put_f64(pre.full_log10_size);
}

fn take_preprocessed(d: &mut Decoder<'_>) -> Result<Preprocessed, StoreError> {
    use crate::config::{ConfigSpace, SlotChoices, SlotMember};
    let n_slots = d.take_len()?;
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        let name = d.take_str()?;
        let signature = take_signature(d)?;
        let n_members = d.take_len()?;
        if n_members == 0 {
            return Err(StoreError::Invalid(format!("slot {name} has no members")));
        }
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(SlotMember {
                id: CircuitId(d.take_u32()?),
                wmed: d.take_f64()?,
            });
        }
        slots.push(SlotChoices {
            name,
            signature,
            members,
        });
    }
    let n_pmfs = d.take_len()?;
    let mut pmfs = Vec::with_capacity(n_pmfs);
    for _ in 0..n_pmfs {
        pmfs.push(take_pmf(d)?);
    }
    let full_log10_size = d.take_f64()?;
    Ok(Preprocessed {
        space: ConfigSpace::new(slots),
        pmfs,
        full_log10_size,
    })
}

fn put_fidelity(e: &mut Encoder, f: &FidelityReport) {
    e.put_f64(f.qor_train);
    e.put_f64(f.qor_test);
    e.put_f64(f.hw_train);
    e.put_f64(f.hw_test);
}

fn take_fidelity(d: &mut Decoder<'_>) -> Result<FidelityReport, StoreError> {
    Ok(FidelityReport {
        qor_train: d.take_f64()?,
        qor_test: d.take_f64()?,
        hw_train: d.take_f64()?,
        hw_test: d.take_f64()?,
    })
}

/// Encodes the refinement loop's output — the refined models, the
/// before/after [`RefinementReport`] and the pseudo-Pareto front in
/// insertion order — so a warm refined run replays byte-identically
/// without spending a single real evaluation.
///
/// # Errors
/// [`StoreError::Unsupported`] when the refined models have no
/// serialization support — the caller simply skips caching.
pub fn encode_refined(
    models: &FittedModels,
    report: &RefinementReport,
    front: &ParetoFront<Configuration>,
) -> Result<Vec<u8>, StoreError> {
    let mut e = Encoder::new();
    put_regressor(&mut e, models.qor.as_ref())?;
    put_regressor(&mut e, models.hw.as_ref())?;
    put_fidelity(&mut e, &report.before);
    put_fidelity(&mut e, &report.after);
    e.put_u64(report.real_evals as u64);
    e.put_u64(report.epochs_run as u64);
    e.put_len(front.len());
    for (p, c) in front.iter() {
        e.put_f64(p.qor);
        e.put_f64(p.cost);
        e.put_len(c.genes().len());
        for &g in c.genes() {
            e.put_u16(g);
        }
    }
    Ok(e.into_bytes())
}

/// Decodes a refined-model payload written by [`encode_refined`]. The
/// front is rebuilt by re-inserting members in their stored (insertion)
/// order, reproducing the exact [`ParetoFront`] the loop returned.
pub fn decode_refined(
    payload: &[u8],
) -> Result<(FittedModels, RefinementReport, ParetoFront<Configuration>), StoreError> {
    let mut d = Decoder::new(payload);
    let qor = take_regressor(&mut d)?;
    let hw = take_regressor(&mut d)?;
    let before = take_fidelity(&mut d)?;
    let after = take_fidelity(&mut d)?;
    let real_evals = d.take_u64()? as usize;
    let epochs_run = d.take_u64()? as usize;
    let n = d.take_len()?;
    let mut front = ParetoFront::new();
    for _ in 0..n {
        let qor_v = d.take_f64()?;
        let cost = d.take_f64()?;
        let n_genes = d.take_len()?;
        let mut genes = Vec::with_capacity(n_genes);
        for _ in 0..n_genes {
            genes.push(d.take_u16()?);
        }
        front.try_insert(
            crate::pareto::TradeoffPoint::new(qor_v, cost),
            Configuration::from_genes(genes),
        );
    }
    d.finish()?;
    Ok((
        FittedModels { qor, hw },
        RefinementReport {
            before,
            after,
            real_evals,
            epochs_run,
        },
        front,
    ))
}

/// Encodes the Step-1/2 artifacts into an unsealed payload.
///
/// # Errors
/// [`StoreError::Unsupported`] when the engine's fitted models have no
/// serialization support — the caller simply skips caching.
pub fn encode_step12(
    pre: &Preprocessed,
    fidelity: &FidelityReport,
    models: &FittedModels,
) -> Result<Vec<u8>, StoreError> {
    let mut e = Encoder::new();
    put_preprocessed(&mut e, pre);
    e.put_f64(fidelity.qor_train);
    e.put_f64(fidelity.qor_test);
    e.put_f64(fidelity.hw_train);
    e.put_f64(fidelity.hw_test);
    put_regressor(&mut e, models.qor.as_ref())?;
    put_regressor(&mut e, models.hw.as_ref())?;
    Ok(e.into_bytes())
}

/// Decodes a Step-1/2 payload written by [`encode_step12`].
pub fn decode_step12(
    payload: &[u8],
) -> Result<(Preprocessed, FidelityReport, FittedModels), StoreError> {
    let mut d = Decoder::new(payload);
    let pre = take_preprocessed(&mut d)?;
    let fidelity = FidelityReport {
        qor_train: d.take_f64()?,
        qor_test: d.take_f64()?,
        hw_train: d.take_f64()?,
        hw_test: d.take_f64()?,
    };
    let qor = take_regressor(&mut d)?;
    let hw = take_regressor(&mut d)?;
    d.finish()?;
    // The decoded space must also reference circuits the live library
    // actually has; the caller checks that with
    // [`step12_matches_library`] before trusting the warm start.
    Ok((pre, fidelity, FittedModels { qor, hw }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Evaluator;
    use crate::model::{fidelity_report, fit_models, EvaluatedSet};
    use crate::preprocess::{preprocess, PreprocessOptions};
    use autoax_accel::sobel::SobelEd;
    use autoax_circuit::charlib::{build_library, LibraryConfig};
    use autoax_image::synthetic::benchmark_suite;
    use autoax_ml::EngineKind;

    #[test]
    fn step12_bundle_round_trips_bitwise() {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(2, 48, 32, 5);
        let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).unwrap();
        let ev = Evaluator::new(&accel, &lib, &pre.space, &images);
        let train = EvaluatedSet::generate(&ev, &pre.space, 40, 1);
        let test = EvaluatedSet::generate(&ev, &pre.space, 20, 2);
        let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 7).unwrap();
        let fid = fidelity_report(&models, &pre.space, &lib, &train, &test).unwrap();

        let payload = encode_step12(&pre, &fid, &models).unwrap();
        let (pre2, fid2, models2) = decode_step12(&payload).unwrap();

        assert_eq!(fid2.qor_test.to_bits(), fid.qor_test.to_bits());
        assert_eq!(
            pre2.full_log10_size.to_bits(),
            pre.full_log10_size.to_bits()
        );
        assert_eq!(pre2.space.slot_count(), pre.space.slot_count());
        for (a, b) in pre.space.slots().iter().zip(pre2.space.slots()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.members.len(), b.members.len());
            for (ma, mb) in a.members.iter().zip(&b.members) {
                assert_eq!(ma.id, mb.id);
                assert_eq!(ma.wmed.to_bits(), mb.wmed.to_bits());
            }
        }
        for (pa, pb) in pre.pmfs.iter().zip(&pre2.pmfs) {
            assert_eq!(pa.sorted_counts(), pb.sorted_counts());
            assert_eq!(pa.total(), pb.total());
        }
        // model predictions bitwise identical on live features
        let c = pre.space.exact();
        let (q1, h1) = models.estimate(&pre.space, &lib, &c);
        let (q2, h2) = models2.estimate(&pre2.space, &lib, &c);
        assert_eq!(q1.to_bits(), q2.to_bits());
        assert_eq!(h1.to_bits(), h2.to_bits());
    }

    #[test]
    fn cache_key_tracks_every_step12_input() {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(2, 48, 32, 5);
        let opts = PipelineOptions::quick();
        let base = pipeline_cache_key(&accel, &lib, &images, &opts);

        // same inputs -> same key
        assert_eq!(base, pipeline_cache_key(&accel, &lib, &images, &opts));

        // seed change
        let k = pipeline_cache_key(
            &accel,
            &lib,
            &images,
            &PipelineOptions {
                seed: 43,
                ..opts.clone()
            },
        );
        assert_ne!(base, k);

        // engine change
        let k = pipeline_cache_key(
            &accel,
            &lib,
            &images,
            &PipelineOptions {
                engine: EngineKind::DecisionTree,
                ..opts.clone()
            },
        );
        assert_ne!(base, k);

        // image content change
        let other = benchmark_suite(2, 48, 32, 6);
        assert_ne!(base, pipeline_cache_key(&accel, &lib, &other, &opts));

        // library content change (note: the key is *content*-addressed —
        // a generator-seed change that produces the same circuits, as it
        // does at tiny scale where structured families fill every class,
        // legitimately keeps the key; shrinking a class changes content)
        let lib2 = build_library(&LibraryConfig {
            counts: autoax_circuit::charlib::ClassCounts {
                add8: 50,
                ..LibraryConfig::tiny().counts
            },
            ..LibraryConfig::tiny()
        });
        assert_ne!(base, pipeline_cache_key(&accel, &lib2, &images, &opts));

        // search-stage knobs must NOT change the key (Step 3 is live):
        // neither the budget/islands nor the strategy choice
        let k = pipeline_cache_key(
            &accel,
            &lib,
            &images,
            &PipelineOptions {
                search: crate::search::SearchOptions {
                    max_evals: opts.search.max_evals * 10,
                    islands: 2,
                    strategy: crate::search::SearchAlgo::Nsga2,
                    ..opts.search
                },
                final_eval_cap: 7,
                ..opts.clone()
            },
        );
        assert_eq!(base, k);
    }

    #[test]
    fn truncated_bundle_is_an_error() {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(1, 32, 32, 5);
        let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).unwrap();
        let ev = Evaluator::new(&accel, &lib, &pre.space, &images);
        let train = EvaluatedSet::generate(&ev, &pre.space, 30, 1);
        let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 7).unwrap();
        let fid = fidelity_report(&models, &pre.space, &lib, &train, &train).unwrap();
        let payload = encode_step12(&pre, &fid, &models).unwrap();
        assert!(decode_step12(&payload[..payload.len() / 2]).is_err());
    }
}
