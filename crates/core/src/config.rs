//! Configurations and the configuration space.
//!
//! A *configuration* (paper Section 2.1) assigns one approximate circuit
//! to each operation slot of the accelerator. The [`ConfigSpace`] is the
//! cartesian product of per-slot candidate lists — the full library before
//! pre-processing, the reduced libraries `RL_k` after.

use autoax_circuit::charlib::{CircuitEntry, CircuitId, ComponentLibrary};
use autoax_circuit::OpSignature;
use rand::Rng;

/// Largest space (in configurations) the exhaustive paths will enumerate
/// — shared by [`ConfigSpace::iter_all`], the exhaustive search strategy
/// and the pipeline's feasibility guard, so the limit cannot drift apart.
pub const MAX_ENUMERABLE_CONFIGS: f64 = 1e8;

/// One slot's candidate list with precomputed per-candidate WMED scores.
#[derive(Debug, Clone)]
pub struct SlotChoices {
    /// Slot name (from the accelerator).
    pub name: String,
    /// Operation class of the slot.
    pub signature: OpSignature,
    /// Candidate circuits (ids into the class library) with their
    /// slot-specific WMED scores.
    pub members: Vec<SlotMember>,
}

/// A candidate circuit for a slot.
#[derive(Debug, Clone, Copy)]
pub struct SlotMember {
    /// Id within the class library.
    pub id: CircuitId,
    /// WMED of the circuit under this slot's operand PMF.
    pub wmed: f64,
}

/// The (possibly reduced) configuration space of an accelerator.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    slots: Vec<SlotChoices>,
}

/// An assignment of one candidate index per slot (indices into
/// [`SlotChoices::members`], *not* raw circuit ids).
///
/// The genome is private: the search hot path works on the flat slab of a
/// [`crate::search::ConfigBatch`] and only materializes a `Configuration`
/// (via [`Configuration::from_genes`]) for Pareto-front members and final
/// results, so there is no field to poke that could bypass the columnar
/// plane.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Configuration(Vec<u16>);

impl Configuration {
    /// Builds a configuration from per-slot candidate indices.
    pub fn from_genes(genes: Vec<u16>) -> Self {
        Configuration(genes)
    }

    /// The per-slot candidate indices.
    pub fn genes(&self) -> &[u16] {
        &self.0
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the zero-slot configuration.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl ConfigSpace {
    /// Builds a space from per-slot candidate lists.
    ///
    /// # Panics
    /// Panics if any slot has no candidates.
    pub fn new(slots: Vec<SlotChoices>) -> Self {
        for s in &slots {
            assert!(!s.members.is_empty(), "slot {} has no candidates", s.name);
        }
        ConfigSpace { slots }
    }

    /// The per-slot candidate lists.
    pub fn slots(&self) -> &[SlotChoices] {
        &self.slots
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Per-slot candidate counts.
    pub fn sizes(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.members.len()).collect()
    }

    /// Total number of configurations as `f64` (spaces routinely exceed
    /// `u64`; the paper reports 7.15·10^63 for the generic GF).
    pub fn size(&self) -> f64 {
        self.slots.iter().map(|s| s.members.len() as f64).product()
    }

    /// `log10` of the space size.
    pub fn log10_size(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| (s.members.len() as f64).log10())
            .sum()
    }

    /// A uniformly random configuration.
    pub fn random(&self, rng: &mut impl Rng) -> Configuration {
        let mut genes = vec![0u16; self.slots.len()];
        self.random_into(&mut genes, rng);
        Configuration(genes)
    }

    /// Writes a uniformly random genome into `genes` (one slot per entry)
    /// without allocating — the columnar twin of [`ConfigSpace::random`],
    /// consuming the RNG identically.
    ///
    /// # Panics
    /// Panics if `genes.len()` does not match the slot count.
    pub fn random_into(&self, genes: &mut [u16], rng: &mut impl Rng) {
        assert_eq!(genes.len(), self.slots.len(), "genome shape mismatch");
        for (g, s) in genes.iter_mut().zip(self.slots.iter()) {
            *g = rng.gen_range(0..s.members.len()) as u16;
        }
    }

    /// The all-exact configuration, assuming candidate lists contain the
    /// exact circuit (id 0) — true after pre-processing, which always
    /// keeps it (WMED 0 is Pareto-optimal).
    pub fn exact(&self) -> Configuration {
        Configuration(
            self.slots
                .iter()
                .map(|s| {
                    s.members
                        .iter()
                        .position(|m| m.id == CircuitId(0))
                        .unwrap_or(0) as u16
                })
                .collect(),
        )
    }

    /// The neighbour move of Algorithm 1: re-pick one random slot's
    /// circuit (guaranteed different when the slot has > 1 candidate).
    pub fn neighbor(&self, c: &Configuration, rng: &mut impl Rng) -> Configuration {
        let mut out = c.clone();
        self.mutate_one_slot(&mut out.0, rng);
        out
    }

    /// Writes the neighbour of genome `src` into `dst` without allocating
    /// — the columnar twin of [`ConfigSpace::neighbor`], consuming the
    /// RNG identically.
    ///
    /// # Panics
    /// Panics if the genome lengths do not match the slot count.
    pub fn neighbor_into(&self, src: &[u16], dst: &mut [u16], rng: &mut impl Rng) {
        dst.copy_from_slice(src);
        self.mutate_one_slot(dst, rng);
    }

    /// Re-picks one random slot's candidate in place (the Algorithm-1
    /// neighbour move shared by [`ConfigSpace::neighbor`] and
    /// [`ConfigSpace::neighbor_into`]).
    fn mutate_one_slot(&self, genes: &mut [u16], rng: &mut impl Rng) {
        assert_eq!(genes.len(), self.slots.len(), "genome shape mismatch");
        let slot = rng.gen_range(0..self.slots.len());
        let n = self.slots[slot].members.len();
        if n > 1 {
            let mut pick = rng.gen_range(0..n - 1) as u16;
            if pick >= genes[slot] {
                pick += 1;
            }
            genes[slot] = pick;
        }
    }

    /// Resolves a configuration to library entries (one per slot).
    ///
    /// # Panics
    /// Panics if the configuration shape does not match the space or the
    /// library lacks a referenced circuit.
    pub fn entries<'l>(
        &self,
        lib: &'l ComponentLibrary,
        c: &Configuration,
    ) -> Vec<&'l CircuitEntry> {
        assert_eq!(c.0.len(), self.slots.len(), "configuration shape mismatch");
        self.slots
            .iter()
            .zip(c.0.iter())
            .map(|(s, &idx)| {
                let member = &s.members[idx as usize];
                &lib.class(s.signature)[member.id.0 as usize]
            })
            .collect()
    }

    /// The WMED scores of a configuration's circuits (QoR model features).
    pub fn wmeds(&self, c: &Configuration) -> Vec<f64> {
        self.slots
            .iter()
            .zip(c.0.iter())
            .map(|(s, &idx)| s.members[idx as usize].wmed)
            .collect()
    }

    /// Iterates over every configuration of the space in lexicographic
    /// order.
    ///
    /// # Panics
    /// Panics if the space exceeds [`MAX_ENUMERABLE_CONFIGS`] (use the
    /// heuristic search instead).
    pub fn iter_all(&self) -> ExhaustiveIter<'_> {
        assert!(
            self.size() <= MAX_ENUMERABLE_CONFIGS,
            "space too large for exhaustive iteration ({:.2e})",
            self.size()
        );
        ExhaustiveIter {
            space: self,
            next: Some(Configuration(vec![0; self.slots.len()])),
        }
    }
}

/// Iterator over all configurations (see [`ConfigSpace::iter_all`]).
#[derive(Debug)]
pub struct ExhaustiveIter<'a> {
    space: &'a ConfigSpace,
    next: Option<Configuration>,
}

impl Iterator for ExhaustiveIter<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        let current = self.next.clone()?;
        // advance odometer
        let mut n = current.clone();
        let mut i = 0;
        loop {
            if i == n.0.len() {
                self.next = None;
                break;
            }
            n.0[i] += 1;
            if (n.0[i] as usize) < self.space.slots[i].members.len() {
                self.next = Some(n);
                break;
            }
            n.0[i] = 0;
            i += 1;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space(sizes: &[usize]) -> ConfigSpace {
        ConfigSpace::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| SlotChoices {
                    name: format!("s{i}"),
                    signature: OpSignature::ADD8,
                    members: (0..n)
                        .map(|j| SlotMember {
                            id: CircuitId(j as u32),
                            wmed: j as f64,
                        })
                        .collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn size_and_log10() {
        let s = space(&[3, 4, 5]);
        assert_eq!(s.size(), 60.0);
        assert!((s.log10_size() - 60f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn random_configs_in_range() {
        let s = space(&[3, 4, 5]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = s.random(&mut rng);
            for (i, &v) in c.0.iter().enumerate() {
                assert!((v as usize) < s.sizes()[i]);
            }
        }
    }

    #[test]
    fn neighbor_changes_exactly_one_slot() {
        let s = space(&[3, 4, 5, 6]);
        let mut rng = StdRng::seed_from_u64(2);
        let c = s.random(&mut rng);
        for _ in 0..50 {
            let n = s.neighbor(&c, &mut rng);
            let diff = c.0.iter().zip(n.0.iter()).filter(|(a, b)| a != b).count();
            assert_eq!(diff, 1, "{c:?} -> {n:?}");
        }
    }

    #[test]
    fn neighbor_on_singleton_slot_is_identity_there() {
        let s = space(&[1, 5]);
        let mut rng = StdRng::seed_from_u64(3);
        let c = Configuration(vec![0, 2]);
        for _ in 0..20 {
            let n = s.neighbor(&c, &mut rng);
            assert_eq!(n.0[0], 0);
        }
    }

    #[test]
    fn exhaustive_iteration_covers_space() {
        let s = space(&[2, 3, 2]);
        let all: Vec<Configuration> = s.iter_all().collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn wmeds_reflect_members() {
        let s = space(&[3, 3]);
        let c = Configuration(vec![2, 1]);
        assert_eq!(s.wmeds(&c), vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_slot_panics() {
        let _ = space(&[3, 0]);
    }
}
