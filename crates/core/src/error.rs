//! Crate error type.

use autoax_ml::TrainError;

/// Error raised by the autoAx pipeline.
#[derive(Debug, Clone)]
pub enum AutoAxError {
    /// A model could not be trained.
    Train(TrainError),
    /// The inputs to a pipeline stage were inconsistent.
    Invalid(String),
    /// Step-1 profiling recorded no operands for a slot: the workload's
    /// software model never executed it on the benchmark samples, so its
    /// operand PMF — and therefore every WMED score of its class — would
    /// be meaningless. Trivially reachable from a misconfigured custom
    /// workload (a slot declared but never applied in the kernel).
    EmptyProfile {
        /// Name of the slot whose operand distribution is empty.
        slot: String,
    },
}

impl std::fmt::Display for AutoAxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoAxError::Train(e) => write!(f, "{e}"),
            AutoAxError::Invalid(m) => write!(f, "invalid pipeline input: {m}"),
            AutoAxError::EmptyProfile { slot } => write!(
                f,
                "step-1 profiling recorded no operands for slot `{slot}`; \
                 the workload's software model must apply every declared slot \
                 on the benchmark samples"
            ),
        }
    }
}

impl std::error::Error for AutoAxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutoAxError::Train(e) => Some(e),
            AutoAxError::Invalid(_) | AutoAxError::EmptyProfile { .. } => None,
        }
    }
}

impl From<TrainError> for AutoAxError {
    fn from(e: TrainError) -> Self {
        AutoAxError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = AutoAxError::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
        let t: AutoAxError = TrainError::new("x").into();
        assert!(t.to_string().contains("x"));
        let p = AutoAxError::EmptyProfile {
            slot: "add1".into(),
        };
        assert!(p.to_string().contains("add1"));
        assert!(p.to_string().contains("no operands"));
    }
}
