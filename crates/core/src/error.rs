//! Crate error type.

use autoax_ml::TrainError;

/// Error raised by the autoAx pipeline.
#[derive(Debug, Clone)]
pub enum AutoAxError {
    /// A model could not be trained.
    Train(TrainError),
    /// The inputs to a pipeline stage were inconsistent.
    Invalid(String),
}

impl std::fmt::Display for AutoAxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoAxError::Train(e) => write!(f, "{e}"),
            AutoAxError::Invalid(m) => write!(f, "invalid pipeline input: {m}"),
        }
    }
}

impl std::error::Error for AutoAxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutoAxError::Train(e) => Some(e),
            AutoAxError::Invalid(_) => None,
        }
    }
}

impl From<TrainError> for AutoAxError {
    fn from(e: TrainError) -> Self {
        AutoAxError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = AutoAxError::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
        let t: AutoAxError = TrainError::new("x").into();
        assert!(t.to_string().contains("x"));
    }
}
