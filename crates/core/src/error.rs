//! Crate error type.

use autoax_ml::{FidelityError, TrainError};

/// Error raised by the autoAx pipeline.
#[derive(Debug, Clone)]
pub enum AutoAxError {
    /// A model could not be trained.
    Train(TrainError),
    /// Fidelity could not be measured: the estimated and real value
    /// slices had different lengths ([`autoax_ml::FidelityError`]).
    Fidelity(FidelityError),
    /// The inputs to a pipeline stage were inconsistent.
    Invalid(String),
    /// Step-1 profiling recorded no operands for a slot: the workload's
    /// software model never executed it on the benchmark samples, so its
    /// operand PMF — and therefore every WMED score of its class — would
    /// be meaningless. Trivially reachable from a misconfigured custom
    /// workload (a slot declared but never applied in the kernel).
    EmptyProfile {
        /// Name of the slot whose operand distribution is empty.
        slot: String,
    },
    /// Random sampling hit its attempt cap before finding the requested
    /// number of distinct configurations
    /// ([`crate::model::EvaluatedSet::try_generate`]). Both the
    /// requested and the achieved count are carried so the caller can
    /// see how far sampling got instead of guessing.
    SamplingExhausted {
        /// Distinct configurations the caller asked for.
        requested: usize,
        /// Distinct configurations actually found before the cap.
        achieved: usize,
    },
    /// The job's [`crate::job::CancelToken`] fired: the pipeline stopped
    /// cooperatively at a stage or search-round boundary.
    Cancelled,
}

impl std::fmt::Display for AutoAxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoAxError::Train(e) => write!(f, "{e}"),
            AutoAxError::Fidelity(e) => write!(f, "{e}"),
            AutoAxError::Invalid(m) => write!(f, "invalid pipeline input: {m}"),
            AutoAxError::EmptyProfile { slot } => write!(
                f,
                "step-1 profiling recorded no operands for slot `{slot}`; \
                 the workload's software model must apply every declared slot \
                 on the benchmark samples"
            ),
            AutoAxError::SamplingExhausted {
                requested,
                achieved,
            } => write!(
                f,
                "random sampling exhausted its attempt cap: {achieved} of the \
                 {requested} requested distinct configurations found; the \
                 configuration space is too small for this training budget"
            ),
            AutoAxError::Cancelled => write!(f, "the job was cancelled"),
        }
    }
}

impl std::error::Error for AutoAxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutoAxError::Train(e) => Some(e),
            AutoAxError::Fidelity(e) => Some(e),
            AutoAxError::Invalid(_)
            | AutoAxError::EmptyProfile { .. }
            | AutoAxError::SamplingExhausted { .. }
            | AutoAxError::Cancelled => None,
        }
    }
}

impl From<TrainError> for AutoAxError {
    fn from(e: TrainError) -> Self {
        AutoAxError::Train(e)
    }
}

impl From<FidelityError> for AutoAxError {
    fn from(e: FidelityError) -> Self {
        AutoAxError::Fidelity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = AutoAxError::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
        let t: AutoAxError = TrainError::new("x").into();
        assert!(t.to_string().contains("x"));
        let p = AutoAxError::EmptyProfile {
            slot: "add1".into(),
        };
        assert!(p.to_string().contains("add1"));
        assert!(p.to_string().contains("no operands"));
    }

    #[test]
    fn sampling_exhausted_reports_requested_and_achieved() {
        // The regression this guards: the attempt-cap error used to drop
        // the requested-vs-achieved counts, leaving no way to tell how
        // close sampling got.
        let e = AutoAxError::SamplingExhausted {
            requested: 1500,
            achieved: 37,
        };
        let msg = e.to_string();
        assert!(msg.contains("1500"), "{msg}");
        assert!(msg.contains("37"), "{msg}");
        assert!(msg.contains("attempt cap"), "{msg}");
    }

    #[test]
    fn cancelled_formats() {
        assert!(AutoAxError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn fidelity_mismatch_converts_and_formats() {
        let e: AutoAxError = FidelityError {
            estimated: 3,
            real: 5,
        }
        .into();
        let msg = e.to_string();
        assert!(msg.contains("3 estimated vs 5 real"), "{msg}");
        assert!(
            std::error::Error::source(&e).is_some(),
            "inner error must be the source"
        );
    }
}
