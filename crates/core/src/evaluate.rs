//! Real (non-estimated) evaluation of configurations: full software
//! simulation for QoR and synthesis-lite for hardware cost — the "detailed
//! analysis" that takes ~10 s per configuration in the paper's flow and
//! that the estimation models exist to avoid.
//!
//! The evaluator is generic over the QoR domain: it drives any
//! [`Workload`] (image accelerators via the blanket impl, the quantized
//! NN workload, …) against its own sample type and golden results.

use crate::config::{ConfigSpace, Configuration};
use autoax_accel::{CompiledOp, OpSet, Workload};
use autoax_circuit::charlib::{CircuitId, ComponentLibrary};
use autoax_circuit::synth::{analyze, optimize, AnalyzeOptions};
use autoax_circuit::{HwReport, Netlist, OpSignature};
use std::collections::HashMap;
use std::sync::Mutex;

/// The outcome of fully analyzing one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealEval {
    /// Real QoR versus the exact run on the benchmark samples (mean SSIM
    /// for the image workloads, top-1 accuracy for the NN workload).
    pub qor: f64,
    /// Hardware report of the synthesized accelerator netlist.
    pub hw: HwReport,
}

/// Evaluator with cached golden results and compiled-op cache.
pub struct Evaluator<'a, W: Workload + ?Sized> {
    work: &'a W,
    lib: &'a ComponentLibrary,
    space: &'a ConfigSpace,
    samples: &'a [W::Sample],
    golden: Vec<W::Golden>,
    op_cache: Mutex<HashMap<(OpSignature, CircuitId), CompiledOp>>,
}

impl<'a, W: Workload + ?Sized> Evaluator<'a, W> {
    /// Creates an evaluator, precomputing the golden (exact) results.
    pub fn new(
        work: &'a W,
        lib: &'a ComponentLibrary,
        space: &'a ConfigSpace,
        samples: &'a [W::Sample],
    ) -> Self {
        Evaluator {
            work,
            lib,
            space,
            samples,
            golden: work.golden(samples),
            op_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The workload under evaluation.
    pub fn workload(&self) -> &W {
        self.work
    }

    /// Compiles (with caching) the op set of a configuration.
    pub fn opset(&self, c: &Configuration) -> OpSet {
        let entries = self.space.entries(self.lib, c);
        let mut cache = self.op_cache.lock().expect("op cache poisoned");
        let ops = entries
            .iter()
            .zip(self.space.slots().iter())
            .map(|(e, s)| {
                cache
                    .entry((s.signature, e.id))
                    .or_insert_with(|| CompiledOp::compile(e))
                    .clone()
            })
            .collect();
        OpSet::new(ops)
    }

    /// Composes the flat accelerator netlist of a configuration.
    pub fn netlist(&self, c: &Configuration) -> Netlist {
        let impls: Vec<Netlist> = self
            .space
            .entries(self.lib, c)
            .iter()
            .map(|e| e.build_netlist())
            .collect();
        self.work.build_netlist(&impls)
    }

    /// Full software QoR analysis against the golden results.
    pub fn evaluate_qor(&self, c: &Configuration) -> f64 {
        let ops = self.opset(c);
        self.work.qor(self.samples, &self.golden, &ops)
    }

    /// Full hardware analysis: compose, optimize, report.
    pub fn evaluate_hw(&self, c: &Configuration) -> HwReport {
        let net = self.netlist(c);
        let opt = optimize(&net);
        analyze(&opt, &AnalyzeOptions::default())
    }

    /// Full analysis (both objectives).
    pub fn evaluate(&self, c: &Configuration) -> RealEval {
        RealEval {
            qor: self.evaluate_qor(c),
            hw: self.evaluate_hw(c),
        }
    }

    /// Evaluates a batch of configurations in parallel (coarse-grained:
    /// each task is a full simulation + synthesis, so fan-out pays from
    /// two configurations up).
    pub fn evaluate_batch(&self, configs: &[Configuration]) -> Vec<RealEval> {
        autoax_exec::par_map_coarse(configs, |c| self.evaluate(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessOptions};
    use autoax_accel::sobel::SobelEd;
    use autoax_circuit::charlib::{build_library, LibraryConfig};
    use autoax_image::synthetic::benchmark_suite;
    use autoax_image::GrayImage;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        SobelEd,
        ComponentLibrary,
        Vec<GrayImage>,
        crate::preprocess::Preprocessed,
    ) {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(2, 48, 32, 5);
        let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).unwrap();
        (accel, lib, images, pre)
    }

    #[test]
    fn exact_configuration_scores_perfect_ssim() {
        let (accel, lib, images, pre) = setup();
        let ev = Evaluator::new(&accel, &lib, &pre.space, &images);
        let exact = pre.space.exact();
        let r = ev.evaluate(&exact);
        assert!((r.qor - 1.0).abs() < 1e-12, "ssim {}", r.qor);
        assert!(r.hw.area > 0.0);
    }

    #[test]
    fn approximate_configurations_trade_quality_for_area() {
        let (accel, lib, images, pre) = setup();
        let ev = Evaluator::new(&accel, &lib, &pre.space, &images);
        let exact = pre.space.exact();
        let r_exact = ev.evaluate(&exact);
        // most aggressive configuration: last member of every slot
        // (highest WMED after the sort in preprocess)
        let aggressive =
            Configuration::from_genes(pre.space.sizes().iter().map(|&n| (n - 1) as u16).collect());
        let r_aggr = ev.evaluate(&aggressive);
        assert!(r_aggr.qor < r_exact.qor, "approximation must hurt SSIM");
        assert!(
            r_aggr.hw.area < r_exact.hw.area,
            "approximation must save area ({} !< {})",
            r_aggr.hw.area,
            r_exact.hw.area
        );
    }

    #[test]
    fn batch_matches_single_evaluation() {
        let (accel, lib, images, pre) = setup();
        let ev = Evaluator::new(&accel, &lib, &pre.space, &images);
        let mut rng = StdRng::seed_from_u64(4);
        let configs: Vec<Configuration> = (0..4).map(|_| pre.space.random(&mut rng)).collect();
        let batch = ev.evaluate_batch(&configs);
        for (c, b) in configs.iter().zip(batch.iter()) {
            let single = ev.evaluate(c);
            assert_eq!(single.qor, b.qor);
            assert_eq!(single.hw.area, b.hw.area);
        }
    }

    #[test]
    fn netlist_composition_has_expected_interface() {
        let (accel, lib, images, pre) = setup();
        let ev = Evaluator::new(&accel, &lib, &pre.space, &images);
        let net = ev.netlist(&pre.space.exact());
        assert_eq!(net.input_count(), 72);
        assert_eq!(net.outputs().len(), 8);
        let _ = accel;
    }
}
