//! Job descriptors and cooperative cancellation — the vocabulary the
//! service tier (`autoax-serve`) speaks to the pipeline.
//!
//! A [`JobSpec`] is the serializable subset of [`PipelineOptions`] a
//! remote tenant is allowed to choose: search strategy, eval budget,
//! model-training sizes, final-eval cap and seed. Everything else
//! (cache wiring, thread counts, preprocessing) stays under the
//! server's control. [`JobSpec::to_options`] maps a descriptor onto a
//! base option set and [`JobSpec::from_options`] extracts one back, so
//! the mapping round-trips.
//!
//! A [`CancelToken`] is a shared flag the search strategies poll at
//! round/epoch boundaries (see
//! [`crate::search::SearchStrategy::search_cancellable`]) and
//! [`crate::pipeline::run_pipeline`] checks between stages — a server
//! shutting down stops multi-second jobs within one round instead of
//! after the full eval budget.

use crate::error::AutoAxError;
use crate::pipeline::PipelineOptions;
use crate::search::{SearchAlgo, SearchOptions};
use autoax_store::KeyHasher;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cooperative-cancellation flag (cheap to clone; all clones
/// observe one underlying bit).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Irrevocable; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The tenant-choosable subset of [`PipelineOptions`]: what one DSE job
/// request may specify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Step-3 search strategy.
    pub strategy: SearchAlgo,
    /// Step-3 model-estimate budget.
    pub max_evals: usize,
    /// Fully evaluated configurations for model training (Step 2).
    pub train_configs: usize,
    /// Held-out configurations for the fidelity report (Step 2).
    pub test_configs: usize,
    /// Cap on really-evaluated pseudo-Pareto members (Step 3b).
    pub final_eval_cap: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec::from_options(&PipelineOptions::quick())
    }
}

/// Hard per-job ceilings a server imposes on tenant-supplied specs.
#[derive(Debug, Clone, Copy)]
pub struct JobLimits {
    /// Maximum Step-3 eval budget.
    pub max_evals: usize,
    /// Maximum training + test configurations combined.
    pub max_model_configs: usize,
    /// Maximum final-eval cap.
    pub max_final_eval_cap: usize,
}

impl Default for JobLimits {
    fn default() -> Self {
        JobLimits {
            max_evals: 1_000_000,
            max_model_configs: 10_000,
            max_final_eval_cap: 2_000,
        }
    }
}

impl JobSpec {
    /// Extracts the tenant-choosable fields from a full option set.
    pub fn from_options(opts: &PipelineOptions) -> Self {
        JobSpec {
            strategy: opts.search.strategy,
            max_evals: opts.search.max_evals,
            train_configs: opts.train_configs,
            test_configs: opts.test_configs,
            final_eval_cap: opts.final_eval_cap,
            seed: opts.seed,
        }
    }

    /// Maps the descriptor onto `base` (the server's template — cache
    /// wiring, preprocessing and throughput knobs come from there; the
    /// job decides everything a [`JobSpec`] carries).
    pub fn to_options(&self, base: &PipelineOptions) -> PipelineOptions {
        PipelineOptions {
            train_configs: self.train_configs,
            test_configs: self.test_configs,
            final_eval_cap: self.final_eval_cap,
            seed: self.seed,
            search: SearchOptions {
                strategy: self.strategy,
                max_evals: self.max_evals,
                ..base.search
            },
            ..base.clone()
        }
    }

    /// Rejects inconsistent or over-limit specs with a typed error.
    ///
    /// # Errors
    /// [`AutoAxError::Invalid`] naming the offending field.
    pub fn validate(&self, limits: &JobLimits) -> Result<(), AutoAxError> {
        let fail = |m: String| Err(AutoAxError::Invalid(m));
        if self.max_evals == 0 {
            return fail("job budget: max_evals must be positive".into());
        }
        if self.max_evals > limits.max_evals {
            return fail(format!(
                "job budget: max_evals {} exceeds the server limit {}",
                self.max_evals, limits.max_evals
            ));
        }
        if self.train_configs < 2 || self.test_configs < 2 {
            return fail("job budget: train/test configs must each be at least 2".into());
        }
        if self.train_configs + self.test_configs > limits.max_model_configs {
            return fail(format!(
                "job budget: {} model configurations exceed the server limit {}",
                self.train_configs + self.test_configs,
                limits.max_model_configs
            ));
        }
        if self.final_eval_cap == 0 || self.final_eval_cap > limits.max_final_eval_cap {
            return fail(format!(
                "job budget: final_eval_cap {} outside 1..={}",
                self.final_eval_cap, limits.max_final_eval_cap
            ));
        }
        Ok(())
    }

    /// Feeds every field into a cache-key hasher — combined with the
    /// Step-1/2 content key this makes the *full job* content-address
    /// the single-flight table and the result cache dedupe on.
    pub fn digest(&self, h: &mut KeyHasher) {
        h.write_str(self.strategy.name());
        h.write_u64(self.max_evals as u64);
        h.write_u64(self.train_configs as u64);
        h.write_u64(self.test_configs as u64);
        h.write_u64(self.final_eval_cap as u64);
        h.write_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        u.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn spec_round_trips_through_options() {
        let spec = JobSpec {
            strategy: SearchAlgo::Nsga2,
            max_evals: 7_777,
            train_configs: 64,
            test_configs: 32,
            final_eval_cap: 25,
            seed: 99,
        };
        let opts = spec.to_options(&PipelineOptions::quick());
        assert_eq!(JobSpec::from_options(&opts), spec);
        // server-side template fields survive the mapping
        assert_eq!(opts.search.islands, PipelineOptions::quick().search.islands);
        assert_eq!(opts.engine, PipelineOptions::quick().engine);
    }

    #[test]
    fn validate_enforces_limits_with_named_fields() {
        let limits = JobLimits::default();
        assert!(JobSpec::default().validate(&limits).is_ok());
        let over = JobSpec {
            max_evals: limits.max_evals + 1,
            ..JobSpec::default()
        };
        let msg = over.validate(&limits).unwrap_err().to_string();
        assert!(msg.contains("max_evals"), "{msg}");
        let zero = JobSpec {
            max_evals: 0,
            ..JobSpec::default()
        };
        assert!(zero.validate(&limits).is_err());
        let fat_models = JobSpec {
            train_configs: 9_000,
            test_configs: 9_000,
            ..JobSpec::default()
        };
        assert!(fat_models.validate(&limits).is_err());
        let bad_cap = JobSpec {
            final_eval_cap: 0,
            ..JobSpec::default()
        };
        assert!(bad_cap.validate(&limits).is_err());
    }

    #[test]
    fn digest_separates_every_field() {
        let base = JobSpec::default();
        let digest = |s: &JobSpec| {
            let mut h = KeyHasher::new("job-test");
            s.digest(&mut h);
            h.finish()
        };
        let d0 = digest(&base);
        assert_eq!(d0, digest(&base.clone()), "digest must be deterministic");
        for variant in [
            JobSpec {
                strategy: SearchAlgo::Random,
                ..base.clone()
            },
            JobSpec {
                max_evals: base.max_evals + 1,
                ..base.clone()
            },
            JobSpec {
                train_configs: base.train_configs + 1,
                ..base.clone()
            },
            JobSpec {
                test_configs: base.test_configs + 1,
                ..base.clone()
            },
            JobSpec {
                final_eval_cap: base.final_eval_cap + 1,
                ..base.clone()
            },
            JobSpec {
                seed: base.seed + 1,
                ..base.clone()
            },
        ] {
            assert_ne!(d0, digest(&variant), "{variant:?}");
        }
    }
}
