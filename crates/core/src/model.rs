//! Step 2 of the methodology: construction of the QoR and hardware-cost
//! estimation models (paper Section 2.3).
//!
//! * QoR model input: the WMED of every employed circuit (one feature per
//!   slot).
//! * Hardware model input: the isolated area, power and delay of every
//!   employed circuit (three features per slot) — the paper found that
//!   omitting power and delay costs ~2 % fidelity.
//! * Targets: real QoR (SSIM, accuracy, … per the workload's domain) and
//!   real post-synthesis area of the composed accelerator.
//!
//! Model quality is measured by *fidelity*, not accuracy, because the DSE
//! only compares configurations. The paper's naïve baselines are exposed
//! as fixed-weight linear predictors: `M_a(C) = Σ area(c)` and
//! `M_SSIM(C) = −Σ WMED_k(c)`.

use crate::config::{ConfigSpace, Configuration};
use crate::error::AutoAxError;
use crate::evaluate::{Evaluator, RealEval};
use autoax_circuit::charlib::ComponentLibrary;
use autoax_ml::engine::{EngineKind, Regressor};
use autoax_ml::linalg::Matrix;
use autoax_ml::linear::LinearFixed;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// QoR model features of a configuration: per-slot WMED.
pub fn qor_features(space: &ConfigSpace, c: &Configuration) -> Vec<f64> {
    space.wmeds(c)
}

/// Hardware model features: per-slot `(area, power, delay)` of the
/// isolated circuits.
pub fn hw_features(space: &ConfigSpace, lib: &ComponentLibrary, c: &Configuration) -> Vec<f64> {
    space
        .entries(lib, c)
        .iter()
        .flat_map(|e| [e.hw.area, e.hw.power, e.hw.delay])
        .collect()
}

/// A labelled dataset of fully evaluated configurations.
#[derive(Debug, Clone)]
pub struct EvaluatedSet {
    /// The configurations.
    pub configs: Vec<Configuration>,
    /// Real evaluations, aligned with `configs`.
    pub evals: Vec<RealEval>,
}

impl EvaluatedSet {
    /// Generates `n` random configurations and fully evaluates them.
    ///
    /// Prefers distinct configurations; duplicates are accepted when the
    /// space is small relative to `n` (fewer than `2n` configurations) or
    /// after an attempt cap, so a run of unlucky rejections can never spin
    /// the sampling loop forever.
    pub fn generate<W: autoax_accel::Workload + ?Sized>(
        evaluator: &Evaluator<'_, W>,
        space: &ConfigSpace,
        n: usize,
        seed: u64,
    ) -> Self {
        Self::generate_impl(evaluator, space, n, seed, false)
            .expect("permissive generation is infallible")
    }

    /// [`EvaluatedSet::generate`], but the attempt cap is an error instead
    /// of a silent fall-back to duplicates: when the cap fires before `n`
    /// distinct configurations exist, the returned
    /// [`AutoAxError::SamplingExhausted`] carries both the requested and
    /// the achieved count. Genuinely small spaces (fewer than `2n`
    /// configurations) still accept duplicates without an error — only
    /// the pathological can't-find-uniques-in-a-big-space case fails.
    ///
    /// # Errors
    /// [`AutoAxError::SamplingExhausted`] as described above.
    pub fn try_generate<W: autoax_accel::Workload + ?Sized>(
        evaluator: &Evaluator<'_, W>,
        space: &ConfigSpace,
        n: usize,
        seed: u64,
    ) -> Result<Self, AutoAxError> {
        Self::generate_impl(evaluator, space, n, seed, true)
    }

    fn generate_impl<W: autoax_accel::Workload + ?Sized>(
        evaluator: &Evaluator<'_, W>,
        space: &ConfigSpace,
        n: usize,
        seed: u64,
        strict: bool,
    ) -> Result<Self, AutoAxError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut configs = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        let small_space = space.size() < (2 * n) as f64;
        let max_attempts = n.saturating_mul(64).saturating_add(1024);
        let mut attempts = 0usize;
        while configs.len() < n {
            let c = space.random(&mut rng);
            attempts += 1;
            if seen.insert(c.clone()) || small_space {
                configs.push(c);
            } else if attempts > max_attempts {
                if strict {
                    return Err(AutoAxError::SamplingExhausted {
                        requested: n,
                        achieved: configs.len(),
                    });
                }
                configs.push(c);
            }
        }
        let evals = evaluator.evaluate_batch(&configs);
        Ok(EvaluatedSet { configs, evals })
    }

    /// QoR targets (real SSIM / accuracy, per the workload's domain).
    pub fn qor_targets(&self) -> Vec<f64> {
        self.evals.iter().map(|e| e.qor).collect()
    }

    /// Area targets.
    pub fn area_targets(&self) -> Vec<f64> {
        self.evals.iter().map(|e| e.hw.area).collect()
    }

    /// QoR feature matrix.
    pub fn qor_matrix(&self, space: &ConfigSpace) -> Matrix {
        let rows: Vec<Vec<f64>> = self
            .configs
            .iter()
            .map(|c| qor_features(space, c))
            .collect();
        Matrix::from_rows(&rows)
    }

    /// Hardware feature matrix.
    pub fn hw_matrix(&self, space: &ConfigSpace, lib: &ComponentLibrary) -> Matrix {
        let rows: Vec<Vec<f64>> = self
            .configs
            .iter()
            .map(|c| hw_features(space, lib, c))
            .collect();
        Matrix::from_rows(&rows)
    }
}

/// The fitted estimation models of one engine.
pub struct FittedModels {
    /// QoR estimator.
    pub qor: Box<dyn Regressor>,
    /// Hardware-cost estimator.
    pub hw: Box<dyn Regressor>,
}

impl FittedModels {
    /// Estimates the trade-off point of a configuration.
    pub fn estimate(
        &self,
        space: &ConfigSpace,
        lib: &ComponentLibrary,
        c: &Configuration,
    ) -> (f64, f64) {
        (
            self.qor.predict_row(&qor_features(space, c)),
            self.hw.predict_row(&hw_features(space, lib, c)),
        )
    }

    /// Estimates a batch of configurations with one batched prediction
    /// per model: all features are encoded into a single [`Matrix`] and
    /// [`Regressor::predict`] runs once for QoR and once for hardware —
    /// amortizing feature construction and dynamic dispatch, and letting
    /// the ML layer parallelize across rows.
    ///
    /// Per-configuration results are bitwise identical to
    /// [`FittedModels::estimate`].
    pub fn estimate_batch(
        &self,
        space: &ConfigSpace,
        lib: &ComponentLibrary,
        configs: &[Configuration],
    ) -> Vec<(f64, f64)> {
        if configs.is_empty() {
            return Vec::new();
        }
        let qor_rows: Vec<Vec<f64>> = configs.iter().map(|c| qor_features(space, c)).collect();
        let hw_rows: Vec<Vec<f64>> = configs.iter().map(|c| hw_features(space, lib, c)).collect();
        let q = self.qor.predict(&Matrix::from_rows(&qor_rows));
        let h = self.hw.predict(&Matrix::from_rows(&hw_rows));
        q.into_iter().zip(h).collect()
    }
}

/// [`crate::search::Estimator`] adapter over fitted models: the glue
/// between Step 2 (model construction) and Step 3 (model-based DSE).
///
/// Construction precomputes per-slot feature tables (WMED per candidate
/// for the QoR model; `(area, power, delay)` per candidate for the
/// hardware model), so the columnar hot path —
/// [`crate::search::Estimator::estimate_slice`] — never builds features
/// per candidate on the heap.
///
/// For forest/tree models (detected through [`Regressor::as_any`]) the
/// adapter goes further: each model is compiled into a
/// structure-of-arrays [`autoax_ml::CompiledForest`] arena and the
/// per-slot feature tables are baked *into* the arena's feature indices
/// ([`autoax_ml::GatherForest`]), so `estimate_slice` runs one fused
/// gather+traverse kernel straight off the `u16` genome slab — the
/// feature [`Matrix`] is never materialized. Other engines keep the
/// matrix path: features are gathered into reused scratch and predicted
/// with one batched [`Regressor::predict_into`] per model. Both paths are
/// bitwise identical to the scalar [`qor_features`]/[`hw_features`]
/// estimation.
pub struct ModelEstimator<'a> {
    /// The fitted QoR and hardware models.
    pub models: &'a FittedModels,
    /// The (reduced) configuration space being searched.
    pub space: &'a ConfigSpace,
    /// The component library backing hardware features.
    pub lib: &'a ComponentLibrary,
    /// `qor_table[slot][member]` = WMED (the QoR feature).
    qor_table: Vec<Vec<f64>>,
    /// `hw_table[slot][member]` = `[area, power, delay]`.
    hw_table: Vec<Vec<[f64; 3]>>,
    /// Fused QoR kernel (compiled forest with baked WMED tables).
    qor_fused: Option<autoax_ml::GatherForest>,
    /// Fused hardware kernel (compiled forest with baked hw tables).
    hw_fused: Option<autoax_ml::GatherForest>,
}

impl<'a> ModelEstimator<'a> {
    /// Creates the adapter, precomputing the per-slot feature tables and
    /// compiling forest/tree models into their fused kernels.
    pub fn new(
        models: &'a FittedModels,
        space: &'a ConfigSpace,
        lib: &'a ComponentLibrary,
    ) -> Self {
        Self::with_fusion(models, space, lib, true)
    }

    /// The matrix-path-only adapter (no compiled-forest fusion) — the
    /// baseline the `forest_kernel` bench and the parity tests compare
    /// the fused kernel against.
    pub fn new_unfused(
        models: &'a FittedModels,
        space: &'a ConfigSpace,
        lib: &'a ComponentLibrary,
    ) -> Self {
        Self::with_fusion(models, space, lib, false)
    }

    fn with_fusion(
        models: &'a FittedModels,
        space: &'a ConfigSpace,
        lib: &'a ComponentLibrary,
        fuse: bool,
    ) -> Self {
        let qor_table: Vec<Vec<f64>> = space
            .slots()
            .iter()
            .map(|s| s.members.iter().map(|m| m.wmed).collect())
            .collect();
        let hw_table: Vec<Vec<[f64; 3]>> = space
            .slots()
            .iter()
            .map(|s| {
                s.members
                    .iter()
                    .map(|m| {
                        let e = &lib.class(s.signature)[m.id.0 as usize];
                        [e.hw.area, e.hw.power, e.hw.delay]
                    })
                    .collect()
            })
            .collect();
        let slots = space.slot_count();
        let (qor_fused, hw_fused) = if fuse {
            // Bake the gather tables into compiled arenas: QoR feature f
            // is slot f's WMED; hardware feature f is lane f%3 of slot
            // f/3 — exactly the columns qor_features/hw_features emit.
            let qor_layout = autoax_ml::GatherLayout {
                stride: slots,
                slot_of: (0..slots as u32).collect(),
                values: qor_table.clone(),
            };
            let hw_layout = autoax_ml::GatherLayout {
                stride: slots,
                slot_of: (0..3 * slots as u32).map(|f| f / 3).collect(),
                values: (0..3 * slots)
                    .map(|f| hw_table[f / 3].iter().map(|hw| hw[f % 3]).collect())
                    .collect(),
            };
            (
                compile_tree_model(models.qor.as_ref())
                    .and_then(|cf| cf.bake_gather(&qor_layout).ok()),
                compile_tree_model(models.hw.as_ref())
                    .and_then(|cf| cf.bake_gather(&hw_layout).ok()),
            )
        } else {
            (None, None)
        };
        ModelEstimator {
            models,
            space,
            lib,
            qor_table,
            hw_table,
            qor_fused,
            hw_fused,
        }
    }

    /// Whether the `(qor, hw)` models run on the fused compiled-forest
    /// kernel (forest/tree engines) instead of the matrix path.
    pub fn fused(&self) -> (bool, bool) {
        (self.qor_fused.is_some(), self.hw_fused.is_some())
    }

    /// Node encoding each fused kernel dispatches to (`"mask32"`,
    /// `"mask"`, `"quant"` or `"gather"`; `"matrix"` when the model is
    /// not fused) — hot-path observability for benches and the pipeline
    /// record.
    pub fn engines(&self) -> (&'static str, &'static str) {
        let name =
            |g: &Option<autoax_ml::GatherForest>| g.as_ref().map_or("matrix", |g| g.engine());
        (name(&self.qor_fused), name(&self.hw_fused))
    }

    /// Per-tree prediction variance of the QoR and hardware models over a
    /// genome slab — the refinement loop's epistemic-uncertainty signal.
    /// Runs the compiled arena's stats kernel when the model is fused;
    /// otherwise falls back to brute force over a downcast forest's
    /// trees (bitwise identical), and fills zeros for engines without an
    /// ensemble (a single tree has no spread either way).
    ///
    /// `qvar` and `hvar` are cleared and resized to the row count.
    pub fn variance_slice(
        &self,
        rows: crate::search::ConfigSlice<'_>,
        qvar: &mut Vec<f64>,
        hvar: &mut Vec<f64>,
    ) {
        let n = rows.len();
        let mut mean = Vec::new();
        let brute = |model: &dyn Regressor, which_qor: bool, out: &mut Vec<f64>| {
            out.clear();
            let forest = model
                .as_any()
                .and_then(|a| a.downcast_ref::<autoax_ml::forest::RandomForest>());
            match forest {
                Some(f) => {
                    let mut feats = Vec::new();
                    for genome in rows.rows() {
                        feats.clear();
                        for (slot, &g) in genome.iter().enumerate() {
                            if which_qor {
                                feats.push(self.qor_table[slot][g as usize]);
                            } else {
                                feats.extend_from_slice(&self.hw_table[slot][g as usize]);
                            }
                        }
                        out.push(f.predict_variance_row(&feats));
                    }
                }
                None => out.resize(n, 0.0),
            }
        };
        match &self.qor_fused {
            Some(g) => g.predict_genomes_stats_into(rows.genes(), &mut mean, qvar),
            None => brute(self.models.qor.as_ref(), true, qvar),
        }
        match &self.hw_fused {
            Some(g) => g.predict_genomes_stats_into(rows.genes(), &mut mean, hvar),
            None => brute(self.models.hw.as_ref(), false, hvar),
        }
    }
}

/// Compiles a regressor into a [`autoax_ml::CompiledForest`] when its
/// concrete type is a forest or a single CART tree (the only engines with
/// an arena representation); `None` sends the model down the matrix path.
fn compile_tree_model(r: &dyn Regressor) -> Option<autoax_ml::CompiledForest> {
    let any = r.as_any()?;
    if let Some(f) = any.downcast_ref::<autoax_ml::forest::RandomForest>() {
        autoax_ml::CompiledForest::from_forest(f).ok()
    } else if let Some(t) = any.downcast_ref::<autoax_ml::tree::DecisionTree>() {
        autoax_ml::CompiledForest::from_tree(t).ok()
    } else {
        None
    }
}

impl crate::search::Estimator for ModelEstimator<'_> {
    fn estimate(&self, c: &Configuration) -> crate::pareto::TradeoffPoint {
        let (q, hw) = self.models.estimate(self.space, self.lib, c);
        crate::pareto::TradeoffPoint::new(q, hw)
    }

    fn estimate_batch(&self, configs: &[Configuration]) -> Vec<crate::pareto::TradeoffPoint> {
        self.models
            .estimate_batch(self.space, self.lib, configs)
            .into_iter()
            .map(|(q, hw)| crate::pareto::TradeoffPoint::new(q, hw))
            .collect()
    }

    fn estimate_slice(
        &self,
        rows: crate::search::ConfigSlice<'_>,
        out: &mut Vec<crate::pareto::TradeoffPoint>,
    ) {
        let n = rows.len();
        if n == 0 {
            return;
        }
        let slots = rows.stride();
        debug_assert_eq!(slots, self.space.slot_count(), "genome shape mismatch");
        // Per-thread scratch reused across calls (a search makes tens of
        // thousands of slice calls; neither the feature gather nor the
        // prediction output may allocate per round): feature slabs for
        // the matrix path, prediction vectors for both paths.
        thread_local! {
            #[allow(clippy::type_complexity)]
            static SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new(), Vec::new())) };
        }
        SCRATCH.with(|scratch| {
            let (mut qdata, mut hdata, mut qpred, mut hpred) = scratch.take();
            match &self.qor_fused {
                // Fused path: gather+traverse in one kernel straight off
                // the u16 slab — no feature matrix exists.
                Some(g) => g.predict_genomes_into(rows.genes(), &mut qpred),
                // Matrix path: gather the same values qor_features would
                // produce, in the same order, into reused scratch.
                None => {
                    qdata.clear();
                    qdata.reserve(n * slots);
                    for genome in rows.rows() {
                        for (slot, &g) in genome.iter().enumerate() {
                            qdata.push(self.qor_table[slot][g as usize]);
                        }
                    }
                    let qm = Matrix::from_vec(n, slots, std::mem::take(&mut qdata));
                    self.models.qor.predict_into(&qm, &mut qpred);
                    qdata = qm.into_vec();
                }
            }
            match &self.hw_fused {
                Some(g) => g.predict_genomes_into(rows.genes(), &mut hpred),
                None => {
                    hdata.clear();
                    hdata.reserve(n * slots * 3);
                    for genome in rows.rows() {
                        for (slot, &g) in genome.iter().enumerate() {
                            hdata.extend_from_slice(&self.hw_table[slot][g as usize]);
                        }
                    }
                    let hm = Matrix::from_vec(n, slots * 3, std::mem::take(&mut hdata));
                    self.models.hw.predict_into(&hm, &mut hpred);
                    hdata = hm.into_vec();
                }
            }
            out.extend(
                qpred
                    .iter()
                    .zip(&hpred)
                    .map(|(&q, &hw)| crate::pareto::TradeoffPoint::new(q, hw)),
            );
            scratch.replace((qdata, hdata, qpred, hpred));
        });
    }
}

/// Train/test fidelities of a fitted model pair (one Table 3 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// QoR model fidelity on the training set.
    pub qor_train: f64,
    /// QoR model fidelity on the held-out set.
    pub qor_test: f64,
    /// Hardware model fidelity on the training set.
    pub hw_train: f64,
    /// Hardware model fidelity on the held-out set.
    pub hw_test: f64,
}

/// Fits the QoR and hardware models of `engine` on a training set.
///
/// # Errors
/// Propagates [`AutoAxError::Train`] when an engine cannot fit.
pub fn fit_models(
    engine: EngineKind,
    space: &ConfigSpace,
    lib: &ComponentLibrary,
    train: &EvaluatedSet,
    seed: u64,
) -> Result<FittedModels, AutoAxError> {
    let mut qor = engine.make(seed);
    qor.fit(&train.qor_matrix(space), &train.qor_targets())?;
    let mut hw = engine.make(seed.wrapping_add(1));
    hw.fit(&train.hw_matrix(space, lib), &train.area_targets())?;
    Ok(FittedModels { qor, hw })
}

/// The paper's naïve models: `M_SSIM = −Σ WMED`, `M_a = Σ area`.
///
/// No training is involved; fidelity is invariant to monotone transforms,
/// so the raw sums are directly comparable to learned models.
pub fn naive_models(space: &ConfigSpace) -> FittedModels {
    let n = space.slot_count();
    FittedModels {
        qor: Box::new(LinearFixed::new(vec![-1.0; n])),
        hw: Box::new(LinearFixed::new(
            (0..n).flat_map(|_| [1.0, 0.0, 0.0]).collect(),
        )),
    }
}

/// Measures the fidelity of fitted models on train and test sets.
///
/// # Errors
/// Propagates [`AutoAxError::Fidelity`] when a set's prediction and
/// target vectors disagree in length (a malformed [`EvaluatedSet`]).
pub fn fidelity_report(
    models: &FittedModels,
    space: &ConfigSpace,
    lib: &ComponentLibrary,
    train: &EvaluatedSet,
    test: &EvaluatedSet,
) -> Result<FidelityReport, AutoAxError> {
    let f = |set: &EvaluatedSet, which_qor: bool| -> Result<f64, AutoAxError> {
        let preds: Vec<f64> = set
            .configs
            .iter()
            .map(|c| {
                if which_qor {
                    models.qor.predict_row(&qor_features(space, c))
                } else {
                    models.hw.predict_row(&hw_features(space, lib, c))
                }
            })
            .collect();
        let real: Vec<f64> = if which_qor {
            set.qor_targets()
        } else {
            set.area_targets()
        };
        Ok(autoax_ml::fidelity(&preds, &real)?)
    };
    Ok(FidelityReport {
        qor_train: f(train, true)?,
        qor_test: f(test, true)?,
        hw_train: f(train, false)?,
        hw_test: f(test, false)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessOptions};
    use autoax_accel::sobel::SobelEd;
    use autoax_circuit::charlib::{build_library, LibraryConfig};
    use autoax_image::synthetic::benchmark_suite;

    struct Setup {
        lib: ComponentLibrary,
        images: Vec<autoax_image::GrayImage>,
        pre: crate::preprocess::Preprocessed,
        accel: SobelEd,
    }

    fn setup() -> Setup {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(2, 48, 32, 5);
        let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).unwrap();
        Setup {
            lib,
            images,
            pre,
            accel,
        }
    }

    #[test]
    fn feature_shapes() {
        let s = setup();
        let c = s.pre.space.exact();
        assert_eq!(qor_features(&s.pre.space, &c).len(), 5);
        assert_eq!(hw_features(&s.pre.space, &s.lib, &c).len(), 15);
    }

    #[test]
    fn random_forest_models_beat_naive_on_test_fidelity() {
        let s = setup();
        let ev = Evaluator::new(&s.accel, &s.lib, &s.pre.space, &s.images);
        let train = EvaluatedSet::generate(&ev, &s.pre.space, 60, 1);
        let test = EvaluatedSet::generate(&ev, &s.pre.space, 40, 2);
        let rf = fit_models(EngineKind::RandomForest, &s.pre.space, &s.lib, &train, 7).unwrap();
        let rf_rep = fidelity_report(&rf, &s.pre.space, &s.lib, &train, &test).unwrap();
        let naive = naive_models(&s.pre.space);
        let nv_rep = fidelity_report(&naive, &s.pre.space, &s.lib, &train, &test).unwrap();
        assert!(rf_rep.qor_test > 0.7, "rf qor fidelity {:?}", rf_rep);
        assert!(rf_rep.hw_test > 0.7, "rf hw fidelity {:?}", rf_rep);
        // Table 3 shape: learned hardware model beats the naive
        // sum-of-areas (synthesis removes logic the naive model counts).
        assert!(
            rf_rep.hw_test >= nv_rep.hw_test - 0.02,
            "rf {:?} vs naive {:?}",
            rf_rep,
            nv_rep
        );
    }

    #[test]
    fn naive_qor_model_is_negated_wmed_sum() {
        let s = setup();
        let naive = naive_models(&s.pre.space);
        let c = s.pre.space.exact();
        let expect: f64 = -qor_features(&s.pre.space, &c).iter().sum::<f64>();
        let (q, _) = naive.estimate(&s.pre.space, &s.lib, &c);
        assert_eq!(q, expect);
    }

    #[test]
    fn estimate_batch_is_bitwise_identical_for_every_engine() {
        // Property: batch estimation == per-row estimation, for every
        // learning engine of Table 3 and the naive models, over random
        // configurations.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = setup();
        let ev = Evaluator::new(&s.accel, &s.lib, &s.pre.space, &s.images);
        let train = EvaluatedSet::generate(&ev, &s.pre.space, 40, 1);
        let mut rng = StdRng::seed_from_u64(99);
        let configs: Vec<Configuration> = (0..33).map(|_| s.pre.space.random(&mut rng)).collect();
        let mut all_models: Vec<(String, FittedModels)> =
            vec![("Naive".into(), naive_models(&s.pre.space))];
        for kind in EngineKind::ALL {
            let models = fit_models(kind, &s.pre.space, &s.lib, &train, 7)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            all_models.push((kind.name().into(), models));
        }
        for (name, models) in &all_models {
            let batch = models.estimate_batch(&s.pre.space, &s.lib, &configs);
            assert_eq!(batch.len(), configs.len(), "{name}: wrong batch length");
            for (c, (bq, bh)) in configs.iter().zip(batch.iter()) {
                let (q, h) = models.estimate(&s.pre.space, &s.lib, c);
                assert_eq!(q.to_bits(), bq.to_bits(), "{name}: qor diverged on {c:?}");
                assert_eq!(h.to_bits(), bh.to_bits(), "{name}: hw diverged on {c:?}");
            }
        }
        // empty batch is a no-op, not a panic
        assert!(all_models[0]
            .1
            .estimate_batch(&s.pre.space, &s.lib, &[])
            .is_empty());
    }

    #[test]
    fn model_estimator_batch_matches_scalar_trait_path() {
        use crate::search::Estimator;
        let s = setup();
        let ev = Evaluator::new(&s.accel, &s.lib, &s.pre.space, &s.images);
        let train = EvaluatedSet::generate(&ev, &s.pre.space, 40, 2);
        let models = fit_models(EngineKind::RandomForest, &s.pre.space, &s.lib, &train, 3).unwrap();
        let est = ModelEstimator::new(&models, &s.pre.space, &s.lib);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let configs: Vec<Configuration> = (0..17).map(|_| s.pre.space.random(&mut rng)).collect();
        let batch = est.estimate_batch(&configs);
        for (c, b) in configs.iter().zip(batch.iter()) {
            let one = est.estimate(c);
            assert_eq!(one.qor.to_bits(), b.qor.to_bits());
            assert_eq!(one.cost.to_bits(), b.cost.to_bits());
        }
        // The columnar slab path (table gather) is bitwise identical too,
        // at any slice granularity.
        let slab = crate::search::ConfigBatch::from_configs(&configs);
        for chunk in [1, 5, 17] {
            let mut columnar = Vec::new();
            let mut start = 0;
            while start < slab.len() {
                let end = (start + chunk).min(slab.len());
                est.estimate_slice(slab.slice(start..end), &mut columnar);
                start = end;
            }
            assert_eq!(columnar.len(), batch.len());
            for (a, b) in columnar.iter().zip(batch.iter()) {
                assert_eq!(a.qor.to_bits(), b.qor.to_bits(), "chunk={chunk}");
                assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "chunk={chunk}");
            }
        }
    }

    #[test]
    fn fused_kernel_engages_for_tree_models_and_matches_matrix_path() {
        use crate::search::Estimator;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = setup();
        let ev = Evaluator::new(&s.accel, &s.lib, &s.pre.space, &s.images);
        let train = EvaluatedSet::generate(&ev, &s.pre.space, 50, 4);
        let mut rng = StdRng::seed_from_u64(21);
        let configs: Vec<Configuration> = (0..61).map(|_| s.pre.space.random(&mut rng)).collect();
        let slab = crate::search::ConfigBatch::from_configs(&configs);
        for kind in EngineKind::ALL {
            let models = fit_models(kind, &s.pre.space, &s.lib, &train, 9)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            let fused = ModelEstimator::new(&models, &s.pre.space, &s.lib);
            let unfused = ModelEstimator::new_unfused(&models, &s.pre.space, &s.lib);
            assert_eq!(unfused.fused(), (false, false), "{kind}");
            let tree_like = matches!(kind, EngineKind::RandomForest | EngineKind::DecisionTree);
            assert_eq!(
                fused.fused(),
                (tree_like, tree_like),
                "{kind}: fusion must engage exactly for forest/tree models"
            );
            // identical bits at search-realistic slice granularity
            for chunk in [1, 7, 32, 61] {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                let mut start = 0;
                while start < slab.len() {
                    let end = (start + chunk).min(slab.len());
                    fused.estimate_slice(slab.slice(start..end), &mut a);
                    unfused.estimate_slice(slab.slice(start..end), &mut b);
                    start = end;
                }
                assert_eq!(a.len(), configs.len());
                for (i, (fa, fb)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(fa.qor.to_bits(), fb.qor.to_bits(), "{kind} qor row {i}");
                    assert_eq!(fa.cost.to_bits(), fb.cost.to_bits(), "{kind} hw row {i}");
                }
                // and both equal the scalar estimate
                for (c, fa) in configs.iter().zip(&a) {
                    let one = fused.estimate(c);
                    assert_eq!(one.qor.to_bits(), fa.qor.to_bits(), "{kind} chunk {chunk}");
                    assert_eq!(
                        one.cost.to_bits(),
                        fa.cost.to_bits(),
                        "{kind} chunk {chunk}"
                    );
                }
            }
        }
        // naive fixed-weight models go down the matrix path untouched
        let naive = naive_models(&s.pre.space);
        let est = ModelEstimator::new(&naive, &s.pre.space, &s.lib);
        assert_eq!(est.fused(), (false, false));
    }

    #[test]
    fn generate_terminates_when_uniques_are_scarce() {
        // A space truncated to 2 members per slot has exactly 2^5 = 32
        // configurations; asking for n = 16 keeps the duplicate-rejection
        // path active (size >= 2n) while uniques are scarce. The attempt
        // cap guarantees termination regardless of sampling luck.
        let s = setup();
        let tiny = ConfigSpace::new(
            s.pre
                .space
                .slots()
                .iter()
                .map(|sl| crate::config::SlotChoices {
                    name: sl.name.clone(),
                    signature: sl.signature,
                    members: sl.members.iter().take(2).copied().collect(),
                })
                .collect(),
        );
        let ev = Evaluator::new(&s.accel, &s.lib, &tiny, &s.images);
        let n = (tiny.size() / 2.0) as usize;
        let set = EvaluatedSet::generate(&ev, &tiny, n, 11);
        assert_eq!(set.configs.len(), n);
        assert_eq!(set.evals.len(), n);
        // distinct configurations preferred while they last
        let mut dedup = set.configs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), n, "cap must not kick in on an easy space");
    }

    #[test]
    fn try_generate_matches_generate_when_feasible() {
        // On a feasible budget the strict variant must be byte-identical
        // to the permissive one, and the small-space carve-out (size <
        // 2n) must keep accepting duplicates without an error. The
        // infeasible path — cap fires in a large space — is a sampling
        // pathology that can't be provoked with the uniform sampler, so
        // the error payload itself is pinned in `error.rs`.
        let s = setup();
        let tiny = ConfigSpace::new(
            s.pre
                .space
                .slots()
                .iter()
                .map(|sl| crate::config::SlotChoices {
                    name: sl.name.clone(),
                    signature: sl.signature,
                    members: sl.members.iter().take(2).copied().collect(),
                })
                .collect(),
        );
        let ev = Evaluator::new(&s.accel, &s.lib, &tiny, &s.images);
        let n = (tiny.size() / 2.0) as usize;
        let strict = EvaluatedSet::try_generate(&ev, &tiny, n, 11).expect("feasible budget");
        let permissive = EvaluatedSet::generate(&ev, &tiny, n, 11);
        assert_eq!(strict.configs, permissive.configs);
        // Small-space carve-out: asking for more configs than the space
        // holds accepts duplicates without erroring in both variants.
        let over = tiny.size() as usize + 3;
        let strict_over = EvaluatedSet::try_generate(&ev, &tiny, over, 11).expect("small space");
        assert_eq!(strict_over.configs.len(), over);
    }

    #[test]
    fn generated_sets_are_deterministic() {
        let s = setup();
        let ev = Evaluator::new(&s.accel, &s.lib, &s.pre.space, &s.images);
        let a = EvaluatedSet::generate(&ev, &s.pre.space, 10, 3);
        let b = EvaluatedSet::generate(&ev, &s.pre.space, 10, 3);
        assert_eq!(a.configs, b.configs);
        assert_eq!(a.qor_targets(), b.qor_targets());
    }
}
