//! Pareto fronts over (QoR, hardware-cost) trade-offs, the `ParetoInsert`
//! operation of Algorithm 1, and the front-distance metrics of Table 4.

/// One point in the two-objective trade-off space: QoR is maximized,
/// cost is minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Quality of result (higher is better; e.g. SSIM).
    pub qor: f64,
    /// Hardware cost (lower is better; e.g. area).
    pub cost: f64,
}

impl TradeoffPoint {
    /// Creates a point.
    pub fn new(qor: f64, cost: f64) -> Self {
        TradeoffPoint { qor, cost }
    }

    /// True if `self` Pareto-dominates `other`: no worse in both
    /// objectives and strictly better in at least one.
    ///
    /// A point with a NaN coordinate is incomparable: it neither dominates
    /// nor is dominated (every comparison is false). Fronts therefore
    /// refuse non-finite points at insertion — see
    /// [`ParetoFront::try_insert`] — because an incomparable member would
    /// silently pollute the set.
    pub fn dominates(&self, other: &TradeoffPoint) -> bool {
        self.qor >= other.qor
            && self.cost <= other.cost
            && (self.qor > other.qor || self.cost < other.cost)
    }

    /// True when both coordinates are finite (no NaN, no infinities).
    pub fn is_finite(&self) -> bool {
        self.qor.is_finite() && self.cost.is_finite()
    }
}

/// A Pareto set of payloads keyed by their trade-off points.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront<T> {
    points: Vec<(TradeoffPoint, T)>,
}

impl<T> ParetoFront<T> {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront { points: Vec::new() }
    }

    /// The `ParetoInsert` of Algorithm 1: inserts the candidate iff it is
    /// neither dominated by nor identical to any member, removing every
    /// member it dominates. Returns `true` when the candidate was
    /// inserted.
    ///
    /// Point-identical candidates are rejected so that revisiting a
    /// configuration (or finding another with the same estimates) does not
    /// grow the set — matching the paper's insert-on-domination semantics.
    ///
    /// Non-finite candidates (a degenerate model can emit NaN) are
    /// rejected outright: NaN is incomparable under
    /// [`TradeoffPoint::dominates`] and would pollute the front. Debug
    /// builds assert; release builds skip silently.
    pub fn try_insert(&mut self, p: TradeoffPoint, payload: T) -> bool {
        self.try_insert_with(p, || payload)
    }

    /// [`ParetoFront::try_insert`] with a lazily built payload: `payload`
    /// is only called when the point is actually accepted. This is what
    /// keeps the columnar search loop allocation-free — a rejected
    /// candidate (the overwhelmingly common case at 10⁵–10⁶ evals) never
    /// materializes a [`crate::config::Configuration`].
    pub fn try_insert_with(&mut self, p: TradeoffPoint, payload: impl FnOnce() -> T) -> bool {
        if !p.is_finite() {
            debug_assert!(p.is_finite(), "non-finite trade-off point {p:?}");
            return false;
        }
        if self
            .points
            .iter()
            .any(|(q, _)| q.dominates(&p) || (q.qor == p.qor && q.cost == p.cost))
        {
            return false;
        }
        self.points.retain(|(q, _)| !p.dominates(q));
        self.points.push((p, payload()));
        true
    }

    /// Batched `ParetoInsert`: processes a whole slab of candidate points
    /// with one *branch-reduced* dominance scan per candidate over a flat
    /// SoA mirror of the front, deferring payload materialization to the
    /// end of the batch.
    ///
    /// Semantics are exactly those of calling
    /// [`ParetoFront::try_insert_with`] for each point of `pts` in order —
    /// same final members, same order, same acceptance count — but:
    ///
    /// * the per-candidate reject test (the overwhelmingly common
    ///   outcome) is one binary search instead of a front scan: the reject
    ///   predicate `q.dominates(p) || q == p` collapses to
    ///   `q.qor >= p.qor && q.cost <= p.cost`, so against a batch-start
    ///   snapshot of the front sorted by `qor` it reduces to "is the
    ///   minimal cost among members with `qor >= p.qor` at most
    ///   `p.cost`" — `partition_point` plus a suffix-min lookup, O(log m).
    ///   Members evicted mid-batch may legally stay in the snapshot: an
    ///   evicted member is weakly dominated by its (checked, later)
    ///   evictor, so it never changes a reject decision. Candidates
    ///   accepted earlier in the batch are scanned linearly (there are
    ///   few);
    /// * eviction (rare: only accepted candidates evict) runs a
    ///   branchless pass over dense `f64` columns instead of
    ///   short-circuiting `dominates` calls;
    /// * eviction only flips a liveness bit — the `Vec` of members is
    ///   compacted once per batch, not once per candidate;
    /// * `materialize(i)` runs only for batch indices that are still on
    ///   the front **after the whole batch**: a candidate accepted
    ///   mid-batch but evicted by a later batch member never builds its
    ///   payload at all (with [`ParetoFront::try_insert_with`] it would).
    ///
    /// Returns the number of accepted candidates — i.e. how many
    /// `try_insert_with` calls would have returned `true`, which can
    /// exceed the number of payloads materialized.
    pub fn insert_batch_with(
        &mut self,
        pts: &[TradeoffPoint],
        mut materialize: impl FnMut(usize) -> T,
    ) -> usize {
        use std::cell::RefCell;
        thread_local! {
            #[allow(clippy::type_complexity)]
            static SCRATCH: RefCell<(
                Vec<f64>,
                Vec<f64>,
                Vec<u8>,
                Vec<usize>,
                Vec<f64>,
                Vec<f64>,
                Vec<usize>,
            )> = const {
                RefCell::new((
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                ))
            };
        }
        SCRATCH.with(|s| {
            let (qs, cs, alive, origin, vq, vc, perm) = &mut *s.borrow_mut();
            qs.clear();
            cs.clear();
            alive.clear();
            origin.clear();
            let m0 = self.points.len();
            qs.extend(self.points.iter().map(|(q, _)| q.qor));
            cs.extend(self.points.iter().map(|(q, _)| q.cost));
            alive.resize(m0, 1);

            // Batch-start snapshot sorted by qor ascending (`vq`), with
            // `vc[k]` = minimal cost over `vq[k..]` (suffix min). Front
            // members are always finite, so `sort_unstable_by` over
            // `total_cmp` is a plain numeric sort.
            vq.clear();
            vc.clear();
            vq.extend_from_slice(qs);
            vc.extend_from_slice(cs);
            perm.clear();
            perm.extend(0..m0);
            perm.sort_unstable_by(|&a, &b| qs[a].total_cmp(&qs[b]));
            for (k, &src) in perm.iter().enumerate() {
                vq[k] = qs[src];
                vc[k] = cs[src];
            }
            for k in (0..m0.saturating_sub(1)).rev() {
                vc[k] = vc[k].min(vc[k + 1]);
            }

            let mut accepted = 0usize;
            for (i, p) in pts.iter().enumerate() {
                if !p.is_finite() {
                    debug_assert!(p.is_finite(), "non-finite trade-off point {p:?}");
                    continue;
                }
                // Reject: dominated by or identical to any entry. The
                // snapshot may contain members evicted earlier in this
                // batch — harmless, because an evicted member is weakly
                // dominated by its evictor, which is an accepted
                // candidate scanned below.
                let k = vq.partition_point(|&q| q < p.qor);
                let mut rej = (k < m0 && vc[k] <= p.cost) as u8;
                for k in m0..qs.len() {
                    rej |= ((qs[k] >= p.qor) as u8) & ((cs[k] <= p.cost) as u8);
                }
                if rej != 0 {
                    continue;
                }
                // Evict everything the candidate dominates.
                for k in 0..qs.len() {
                    alive[k] &= !(((p.qor >= qs[k]) as u8) & ((p.cost <= cs[k]) as u8));
                }
                qs.push(p.qor);
                cs.push(p.cost);
                alive.push(1);
                origin.push(i);
                accepted += 1;
            }

            // One compaction for the whole batch: drop dead originals in
            // place, then append surviving candidates in acceptance order
            // (matching the sequential append-at-end layout).
            let mut k = 0;
            self.points.retain(|_| {
                let keep = alive[k] != 0;
                k += 1;
                keep
            });
            for (j, &src) in origin.iter().enumerate() {
                if alive[m0 + j] != 0 {
                    let p = TradeoffPoint::new(qs[m0 + j], cs[m0 + j]);
                    self.points.push((p, materialize(src)));
                }
            }
            accepted
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(point, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = &(TradeoffPoint, T)> {
        self.points.iter()
    }

    /// The trade-off points alone.
    pub fn points(&self) -> Vec<TradeoffPoint> {
        self.points.iter().map(|(p, _)| *p).collect()
    }

    /// Consumes the front into its members, sorted by ascending cost.
    pub fn into_sorted(mut self) -> Vec<(TradeoffPoint, T)> {
        self.points.sort_by(|a, b| {
            a.0.cost
                .partial_cmp(&b.0.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.points
    }
}

impl<T> FromIterator<(TradeoffPoint, T)> for ParetoFront<T> {
    fn from_iter<I: IntoIterator<Item = (TradeoffPoint, T)>>(iter: I) -> Self {
        let mut f = ParetoFront::new();
        for (p, t) in iter {
            f.try_insert(p, t);
        }
        f
    }
}

/// `(qor, cost)` coordinates normalized into the unit square.
pub type NormalizedPoints = Vec<(f64, f64)>;

/// Normalizes two point sets into `[0, 1]²` over their joint bounding box
/// (the paper: "the distance is calculated from estimated QoR and HW
/// parameters normalized to range <0,1>").
pub fn normalize_joint(
    a: &[TradeoffPoint],
    b: &[TradeoffPoint],
) -> (NormalizedPoints, NormalizedPoints) {
    let mut qmin = f64::INFINITY;
    let mut qmax = f64::NEG_INFINITY;
    let mut cmin = f64::INFINITY;
    let mut cmax = f64::NEG_INFINITY;
    for p in a.iter().chain(b.iter()) {
        qmin = qmin.min(p.qor);
        qmax = qmax.max(p.qor);
        cmin = cmin.min(p.cost);
        cmax = cmax.max(p.cost);
    }
    let qs = (qmax - qmin).max(1e-12);
    let cs = (cmax - cmin).max(1e-12);
    let map = |pts: &[TradeoffPoint]| {
        pts.iter()
            .map(|p| ((p.qor - qmin) / qs, (p.cost - cmin) / cs))
            .collect()
    };
    (map(a), map(b))
}

/// Average and maximum directed Euclidean distance from each point of
/// `from` to its nearest point of `to` (inputs already normalized).
///
/// Returns `(avg, max)`; `(0, 0)` when `from` is empty.
///
/// # Panics
/// Panics if `to` is empty while `from` is not.
pub fn directed_distance(from: &[(f64, f64)], to: &[(f64, f64)]) -> (f64, f64) {
    if from.is_empty() {
        return (0.0, 0.0);
    }
    assert!(!to.is_empty(), "reference front must not be empty");
    let mut sum = 0.0;
    let mut max = 0.0f64;
    for &(x, y) in from {
        let d = to
            .iter()
            .map(|&(u, v)| ((x - u).powi(2) + (y - v).powi(2)).sqrt())
            .fold(f64::INFINITY, f64::min);
        sum += d;
        max = max.max(d);
    }
    (sum / from.len() as f64, max)
}

/// The Table 4 distance report between an obtained front `s` and the
/// optimal front `p`: `to_optimal` = distances from members of `s` to the
/// nearest optimal point, `from_optimal` = distances from optimal points
/// to the nearest obtained point. Both as `(avg, max)` on jointly
/// normalized coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontDistances {
    /// `(avg, max)` of min-distances from obtained to optimal.
    pub to_optimal: (f64, f64),
    /// `(avg, max)` of min-distances from optimal to obtained.
    pub from_optimal: (f64, f64),
}

/// Computes [`FrontDistances`] between an obtained and an optimal front.
pub fn front_distances(obtained: &[TradeoffPoint], optimal: &[TradeoffPoint]) -> FrontDistances {
    let (s, p) = normalize_joint(obtained, optimal);
    FrontDistances {
        to_optimal: directed_distance(&s, &p),
        from_optimal: directed_distance(&p, &s),
    }
}

/// Two-objective hypervolume indicator: the area of the region dominated
/// by `points` inside the reference box — QoR maximized, cost minimized,
/// `reference` the *worst* corner `(qor_lo, cost_hi)`. Larger is better;
/// this is the quantitative lens under which [`crate::search`] strategies
/// are compared (Zitzler's S-metric).
///
/// Points outside the reference box (QoR at or below `reference.qor`, or
/// cost at or above `reference.cost`) contribute nothing. Dominated or
/// duplicate members of `points` are harmless — the union of their boxes
/// is what is measured.
pub fn hypervolume2(points: &[TradeoffPoint], reference: TradeoffPoint) -> f64 {
    let mut pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.is_finite() && p.qor > reference.qor && p.cost < reference.cost)
        .map(|p| (p.qor, p.cost))
        .collect();
    pts.sort_by(|a, b| a.1.total_cmp(&b.1));
    // Sweep cost upward: in the slab between consecutive costs the
    // attainable QoR is the best among all points at or below the slab's
    // lower edge.
    let mut hv = 0.0;
    let mut best = f64::NEG_INFINITY;
    for (i, &(qor, cost)) in pts.iter().enumerate() {
        best = best.max(qor);
        let upper = pts.get(i + 1).map(|p| p.1).unwrap_or(reference.cost);
        hv += (best - reference.qor) * (upper - cost);
    }
    hv
}

/// Three-objective hypervolume (QoR maximized, both costs minimized)
/// against the worst-corner reference `[qor_lo, cost_a_hi, cost_b_hi]` —
/// the volume counterpart of [`hypervolume2`] for the final
/// (SSIM, area, energy) selection of [`ParetoFront3`].
///
/// Computed by slicing along the QoR axis: each slab between consecutive
/// QoR levels contributes `height × area` where the area is the union of
/// the cost rectangles of every point at or above the slab's top level
/// (O(n² log n); front sizes here are tens, not thousands).
pub fn hypervolume3(points: &[[f64; 3]], reference: [f64; 3]) -> f64 {
    let boxed: Vec<[f64; 3]> = points
        .iter()
        .filter(|p| {
            p.iter().all(|v| v.is_finite())
                && p[0] > reference[0]
                && p[1] < reference[1]
                && p[2] < reference[2]
        })
        .copied()
        .collect();
    if boxed.is_empty() {
        return 0.0;
    }
    // Distinct QoR levels, descending.
    let mut levels: Vec<f64> = boxed.iter().map(|p| p[0]).collect();
    levels.sort_by(|a, b| b.total_cmp(a));
    levels.dedup();
    let mut hv = 0.0;
    for (k, &level) in levels.iter().enumerate() {
        let floor = levels.get(k + 1).copied().unwrap_or(reference[0]);
        let height = level - floor;
        // 2-D union area of the cost rectangles [a, ref_a] × [b, ref_b]
        // over points with qor >= level: keep the (a, b)-minimal set,
        // sort by cost_a ascending (cost_b then strictly descends).
        let mut rect: Vec<(f64, f64)> = boxed
            .iter()
            .filter(|p| p[0] >= level)
            .map(|p| (p[1], p[2]))
            .collect();
        rect.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));
        let mut area = 0.0;
        let mut prev_b = reference[2];
        for &(a, b) in &rect {
            if b < prev_b {
                area += (prev_b - b) * (reference[1] - a);
                prev_b = b;
            }
        }
        hv += height * area;
    }
    hv
}

/// Hypervolumes of several fronts on a *shared* normalization: all points
/// of all fronts are jointly scaled into the unit square (as in
/// [`normalize_joint`]) and each front's [`hypervolume2`] is measured
/// against the worst corner `(0, 1)`. This makes the returned values
/// directly comparable across fronts — the number the strategy-comparison
/// benches and tables report.
pub fn joint_hypervolumes(fronts: &[&[TradeoffPoint]]) -> Vec<f64> {
    let mut qmin = f64::INFINITY;
    let mut qmax = f64::NEG_INFINITY;
    let mut cmin = f64::INFINITY;
    let mut cmax = f64::NEG_INFINITY;
    for p in fronts.iter().flat_map(|f| f.iter()) {
        qmin = qmin.min(p.qor);
        qmax = qmax.max(p.qor);
        cmin = cmin.min(p.cost);
        cmax = cmax.max(p.cost);
    }
    let qs = (qmax - qmin).max(1e-12);
    let cs = (cmax - cmin).max(1e-12);
    // Nudge the reference just outside the box so boundary points (the
    // joint extremes) still contribute a sliver instead of vanishing.
    let reference = TradeoffPoint::new(-1e-9, 1.0 + 1e-9);
    fronts
        .iter()
        .map(|f| {
            let scaled: Vec<TradeoffPoint> = f
                .iter()
                .map(|p| TradeoffPoint::new((p.qor - qmin) / qs, (p.cost - cmin) / cs))
                .collect();
            hypervolume2(&scaled, reference)
        })
        .collect()
}

/// A three-objective Pareto set used for the final selection ("Pareto
/// optimal in terms of area, SSIM and energy", paper Section 4.2):
/// QoR maximized, both costs minimized.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront3<T> {
    points: Vec<([f64; 3], T)>, // [qor, cost_a, cost_b]
}

impl<T> ParetoFront3<T> {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront3 { points: Vec::new() }
    }

    /// Inserts iff non-dominated; removes newly dominated members.
    ///
    /// Like [`ParetoFront::try_insert`], non-finite coordinates are
    /// rejected (debug assertion, release skip).
    pub fn try_insert(&mut self, qor: f64, cost_a: f64, cost_b: f64, payload: T) -> bool {
        let finite = qor.is_finite() && cost_a.is_finite() && cost_b.is_finite();
        if !finite {
            debug_assert!(finite, "non-finite objectives ({qor}, {cost_a}, {cost_b})");
            return false;
        }
        let p = [qor, cost_a, cost_b];
        let dom = |a: &[f64; 3], b: &[f64; 3]| {
            a[0] >= b[0]
                && a[1] <= b[1]
                && a[2] <= b[2]
                && (a[0] > b[0] || a[1] < b[1] || a[2] < b[2])
        };
        if self.points.iter().any(|(q, _)| dom(q, &p)) {
            return false;
        }
        self.points.retain(|(q, _)| !dom(&p, q));
        self.points.push((p, payload));
        true
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `([qor, cost_a, cost_b], payload)`.
    pub fn iter(&self) -> impl Iterator<Item = &([f64; 3], T)> {
        self.points.iter()
    }

    /// Consumes into members sorted by ascending `cost_a`.
    pub fn into_sorted(mut self) -> Vec<([f64; 3], T)> {
        self.points.sort_by(|a, b| {
            a.0[1]
                .partial_cmp(&b.0[1])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_definition() {
        let a = TradeoffPoint::new(0.9, 10.0);
        let b = TradeoffPoint::new(0.8, 12.0);
        let c = TradeoffPoint::new(0.9, 10.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c), "equal points do not dominate");
    }

    #[test]
    fn nan_points_are_incomparable() {
        let nan = TradeoffPoint::new(f64::NAN, 1.0);
        let ok = TradeoffPoint::new(0.5, 1.0);
        assert!(!nan.dominates(&ok));
        assert!(!ok.dominates(&nan));
        assert!(!nan.is_finite());
        assert!(!TradeoffPoint::new(0.5, f64::INFINITY).is_finite());
        assert!(ok.is_finite());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite trade-off point")]
    fn nan_insert_asserts_in_debug() {
        let mut f = ParetoFront::new();
        f.try_insert(TradeoffPoint::new(f64::NAN, 1.0), ());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn nan_insert_is_skipped_in_release() {
        let mut f = ParetoFront::new();
        assert!(!f.try_insert(TradeoffPoint::new(f64::NAN, 1.0), "nan"));
        assert!(!f.try_insert(TradeoffPoint::new(1.0, f64::NAN), "nan"));
        assert!(!f.try_insert(TradeoffPoint::new(f64::INFINITY, 1.0), "inf"));
        assert!(f.is_empty());
        // the front still works for finite points afterwards
        assert!(f.try_insert(TradeoffPoint::new(0.9, 10.0), "ok"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite objectives")]
    fn nan_insert3_asserts_in_debug() {
        let mut f = ParetoFront3::new();
        f.try_insert(0.9, f64::NAN, 1.0, ());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn nan_insert3_is_skipped_in_release() {
        let mut f = ParetoFront3::new();
        assert!(!f.try_insert(0.9, f64::NAN, 1.0, ()));
        assert!(!f.try_insert(f64::NEG_INFINITY, 1.0, 1.0, ()));
        assert!(f.is_empty());
        assert!(f.try_insert(0.9, 1.0, 1.0, ()));
    }

    #[test]
    fn insert_keeps_front_minimal() {
        let mut f = ParetoFront::new();
        assert!(f.try_insert(TradeoffPoint::new(0.5, 50.0), "a"));
        assert!(f.try_insert(TradeoffPoint::new(0.9, 100.0), "b"));
        assert!(f.try_insert(TradeoffPoint::new(0.7, 70.0), "c"));
        assert_eq!(f.len(), 3);
        // dominated candidate rejected
        assert!(!f.try_insert(TradeoffPoint::new(0.4, 60.0), "d"));
        assert_eq!(f.len(), 3);
        // dominating candidate evicts two members
        assert!(f.try_insert(TradeoffPoint::new(0.95, 45.0), "e"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn front_invariant_no_mutual_domination() {
        let mut f = ParetoFront::new();
        let mut st = 77u64;
        for _ in 0..500 {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            let q = (st >> 40) as f64 / (1u64 << 24) as f64;
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = (st >> 40) as f64 / (1u64 << 24) as f64;
            f.try_insert(TradeoffPoint::new(q, c), ());
        }
        let pts = f.points();
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "{a:?} dominates {b:?}");
                }
            }
        }
    }

    /// Deterministic pseudo-random stream on a coarse grid so the stream
    /// contains duplicates, dominated points and ties in one objective.
    fn grid_stream(seed: u64, n: usize) -> Vec<TradeoffPoint> {
        let mut st = seed;
        (0..n)
            .map(|_| {
                st = st
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let q = ((st >> 33) % 13) as f64 / 12.0;
                st = st
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let c = ((st >> 33) % 11) as f64 / 10.0;
                TradeoffPoint::new(q, c)
            })
            .collect()
    }

    #[test]
    fn every_dominated_input_is_excluded_from_the_front() {
        let inputs = grid_stream(2019, 600);
        let mut front = ParetoFront::new();
        for (i, p) in inputs.iter().enumerate() {
            front.try_insert(*p, i);
        }
        let pts = front.points();
        for inp in &inputs {
            let on_front = pts.iter().any(|p| p.qor == inp.qor && p.cost == inp.cost);
            let dominated = pts.iter().any(|p| p.dominates(inp));
            // Completeness: an input is either kept (by value) or beaten.
            assert!(
                on_front || dominated,
                "{inp:?} neither on front nor dominated"
            );
            // Minimality: nothing on the front is dominated by the front.
            assert!(!(on_front && dominated), "{inp:?} kept while dominated");
        }
    }

    #[test]
    fn no_front_point_dominates_another_regardless_of_insertion_order() {
        let mut inputs = grid_stream(7, 300);
        for pass in 0..3 {
            // different insertion orders must all yield a minimal front
            inputs.rotate_left(97 * pass + 1);
            let mut front = ParetoFront::new();
            for p in &inputs {
                front.try_insert(*p, ());
            }
            let pts = front.points();
            assert!(!pts.is_empty());
            for (i, a) in pts.iter().enumerate() {
                for (j, b) in pts.iter().enumerate() {
                    if i != j {
                        assert!(!a.dominates(b), "pass {pass}: {a:?} dominates {b:?}");
                        assert!(
                            !(a.qor == b.qor && a.cost == b.cost),
                            "pass {pass}: duplicate {a:?} kept"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pareto3_front_is_minimal_and_complete() {
        let mut st = 99u64;
        let mut next = || {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 33) % 7) as f64 / 6.0
        };
        let inputs: Vec<[f64; 3]> = (0..400).map(|_| [next(), next(), next()]).collect();
        let mut front = ParetoFront3::new();
        for (i, p) in inputs.iter().enumerate() {
            front.try_insert(p[0], p[1], p[2], i);
        }
        let dom = |a: &[f64; 3], b: &[f64; 3]| {
            a[0] >= b[0]
                && a[1] <= b[1]
                && a[2] <= b[2]
                && (a[0] > b[0] || a[1] < b[1] || a[2] < b[2])
        };
        let members: Vec<[f64; 3]> = front.iter().map(|(p, _)| *p).collect();
        for (i, a) in members.iter().enumerate() {
            for (j, b) in members.iter().enumerate() {
                assert!(i == j || !dom(a, b), "{a:?} dominates {b:?}");
            }
        }
        for inp in &inputs {
            assert!(
                members.iter().any(|m| m == inp) || members.iter().any(|m| dom(m, inp)),
                "{inp:?} lost without being dominated"
            );
        }
    }

    #[test]
    fn distances_zero_for_identical_fronts() {
        let pts = vec![
            TradeoffPoint::new(0.9, 10.0),
            TradeoffPoint::new(0.8, 5.0),
            TradeoffPoint::new(0.99, 30.0),
        ];
        let d = front_distances(&pts, &pts);
        assert_eq!(d.to_optimal, (0.0, 0.0));
        assert_eq!(d.from_optimal, (0.0, 0.0));
    }

    #[test]
    fn missing_region_increases_from_optimal() {
        let optimal = vec![
            TradeoffPoint::new(0.1, 1.0),
            TradeoffPoint::new(0.5, 5.0),
            TradeoffPoint::new(0.9, 9.0),
        ];
        // obtained covers only the cheap end
        let obtained = vec![TradeoffPoint::new(0.1, 1.0)];
        let d = front_distances(&obtained, &optimal);
        assert_eq!(d.to_optimal.0, 0.0);
        assert!(d.from_optimal.0 > 0.3);
        assert!(d.from_optimal.1 > 0.9);
    }

    #[test]
    fn normalization_uses_joint_bounds() {
        let a = vec![TradeoffPoint::new(0.0, 0.0)];
        let b = vec![TradeoffPoint::new(1.0, 100.0)];
        let (na, nb) = normalize_joint(&a, &b);
        assert_eq!(na[0], (0.0, 0.0));
        assert_eq!(nb[0], (1.0, 1.0));
    }

    #[test]
    fn pareto3_dominance() {
        let mut f = ParetoFront3::new();
        assert!(f.try_insert(0.9, 10.0, 5.0, "a"));
        // better qor, worse energy: non-dominated
        assert!(f.try_insert(0.95, 10.0, 6.0, "b"));
        // dominated in all three
        assert!(!f.try_insert(0.89, 11.0, 6.0, "c"));
        // dominates "a"
        assert!(f.try_insert(0.91, 9.0, 4.0, "d"));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn hypervolume2_single_point_is_its_box() {
        // one point (qor 0.8, cost 2.0) against worst corner (0, 10):
        // dominated region is [0, 0.8] x [2, 10] = 0.8 * 8 = 6.4
        let hv = hypervolume2(
            &[TradeoffPoint::new(0.8, 2.0)],
            TradeoffPoint::new(0.0, 10.0),
        );
        assert!((hv - 6.4).abs() < 1e-12, "{hv}");
    }

    #[test]
    fn hypervolume2_two_point_staircase_hand_computed() {
        // points (0.5, 1) and (0.9, 4), ref (0, 10):
        // slab [1,4): best qor 0.5 -> 0.5*3 = 1.5
        // slab [4,10): best qor 0.9 -> 0.9*6 = 5.4
        // total 6.9
        let pts = [TradeoffPoint::new(0.5, 1.0), TradeoffPoint::new(0.9, 4.0)];
        let hv = hypervolume2(&pts, TradeoffPoint::new(0.0, 10.0));
        assert!((hv - 6.9).abs() < 1e-12, "{hv}");
    }

    #[test]
    fn hypervolume2_ignores_dominated_and_out_of_box_points() {
        let reference = TradeoffPoint::new(0.0, 10.0);
        let base = [TradeoffPoint::new(0.5, 1.0), TradeoffPoint::new(0.9, 4.0)];
        let hv_base = hypervolume2(&base, reference);
        let noisy = [
            base[0],
            base[1],
            TradeoffPoint::new(0.4, 5.0),      // dominated by (0.9, 4)
            TradeoffPoint::new(0.95, 11.0),    // outside: cost beyond ref
            TradeoffPoint::new(-0.1, 2.0),     // outside: qor below ref
            TradeoffPoint::new(f64::NAN, 1.0), // non-finite
        ];
        assert_eq!(hypervolume2(&noisy, reference).to_bits(), hv_base.to_bits());
        // empty front has zero hypervolume
        assert_eq!(hypervolume2(&[], reference), 0.0);
    }

    #[test]
    fn hypervolume2_dominating_front_has_larger_volume() {
        let reference = TradeoffPoint::new(0.0, 10.0);
        let worse = [TradeoffPoint::new(0.5, 5.0)];
        let better = [TradeoffPoint::new(0.7, 3.0)];
        assert!(hypervolume2(&better, reference) > hypervolume2(&worse, reference));
    }

    #[test]
    fn hypervolume3_single_point_is_its_box() {
        // point (0.5, 2, 3), ref (0, 10, 10):
        // volume = 0.5 * (10-2) * (10-3) = 28
        let hv = hypervolume3(&[[0.5, 2.0, 3.0]], [0.0, 10.0, 10.0]);
        assert!((hv - 28.0).abs() < 1e-12, "{hv}");
    }

    #[test]
    fn hypervolume3_two_points_hand_computed() {
        // p1 = (1.0, 1, 5), p2 = (2.0, 2, 3), ref (0, 10, 10).
        // Slab qor in (1, 2]: only p2 -> area (10-2)*(10-3) = 56, h = 1.
        // Slab qor in (0, 1]: p1 and p2 -> union of [1,10]x[5,10] and
        // [2,10]x[3,10] = 9*5 + 8*2 = 61, h = 1.
        // total = 56 + 61 = 117
        let hv = hypervolume3(&[[1.0, 1.0, 5.0], [2.0, 2.0, 3.0]], [0.0, 10.0, 10.0]);
        assert!((hv - 117.0).abs() < 1e-12, "{hv}");
    }

    #[test]
    fn hypervolume3_degenerate_third_objective_matches_2d() {
        // With cost_b identical everywhere, hv3 = hv2 * (ref_b - b).
        let pts2 = [TradeoffPoint::new(0.5, 1.0), TradeoffPoint::new(0.9, 4.0)];
        let pts3: Vec<[f64; 3]> = pts2.iter().map(|p| [p.qor, p.cost, 7.0]).collect();
        let hv2 = hypervolume2(&pts2, TradeoffPoint::new(0.0, 10.0));
        let hv3 = hypervolume3(&pts3, [0.0, 10.0, 10.0]);
        assert!((hv3 - hv2 * 3.0).abs() < 1e-12, "{hv3} vs {}", hv2 * 3.0);
    }

    #[test]
    fn joint_hypervolumes_rank_fronts_consistently() {
        let strong = vec![TradeoffPoint::new(0.95, 10.0), TradeoffPoint::new(0.6, 2.0)];
        let weak = vec![TradeoffPoint::new(0.5, 9.0)];
        let hv = joint_hypervolumes(&[&strong, &weak]);
        assert_eq!(hv.len(), 2);
        assert!(hv[0] > hv[1], "{hv:?}");
        // normalized volumes live in (slightly above) the unit square
        assert!(hv[0] <= 1.0 + 1e-6);
        assert!(hv[1] >= 0.0);
    }

    #[test]
    fn try_insert_with_builds_payload_only_on_accept() {
        let mut f = ParetoFront::new();
        let mut built = 0;
        assert!(f.try_insert_with(TradeoffPoint::new(0.9, 10.0), || {
            built += 1;
            "a"
        }));
        assert_eq!(built, 1);
        // dominated candidate: the payload closure must never run
        let mut ran = false;
        assert!(!f.try_insert_with(TradeoffPoint::new(0.5, 20.0), || {
            ran = true;
            "b"
        }));
        assert!(!ran, "payload built for a rejected candidate");
        // duplicate point: also rejected without building
        let mut ran2 = false;
        assert!(!f.try_insert_with(TradeoffPoint::new(0.9, 10.0), || {
            ran2 = true;
            "c"
        }));
        assert!(!ran2);
    }

    #[test]
    fn insert_batch_matches_sequential_inserts_exactly() {
        // Many seeds, duplicate-heavy grid streams, varying batch sizes
        // and non-empty starting fronts: the batched path must reproduce
        // the sequential path member-for-member, order included.
        for seed in [1u64, 7, 42, 2019, 77777] {
            let inputs = grid_stream(seed, 400);
            for batch in [1usize, 3, 32, 400] {
                let mut seq: ParetoFront<usize> = ParetoFront::new();
                let mut bat: ParetoFront<usize> = ParetoFront::new();
                let mut seq_accepts = 0usize;
                let mut bat_accepts = 0usize;
                for (ci, chunk) in inputs.chunks(batch).enumerate() {
                    for (i, p) in chunk.iter().enumerate() {
                        if seq.try_insert_with(*p, || ci * batch + i) {
                            seq_accepts += 1;
                        }
                    }
                    bat_accepts += bat.insert_batch_with(chunk, |i| ci * batch + i);
                }
                assert_eq!(
                    seq_accepts, bat_accepts,
                    "seed {seed} batch {batch}: acceptance counts differ"
                );
                let sm: Vec<(u64, u64, usize)> = seq
                    .iter()
                    .map(|(p, t)| (p.qor.to_bits(), p.cost.to_bits(), *t))
                    .collect();
                let bm: Vec<(u64, u64, usize)> = bat
                    .iter()
                    .map(|(p, t)| (p.qor.to_bits(), p.cost.to_bits(), *t))
                    .collect();
                assert_eq!(sm, bm, "seed {seed} batch {batch}: fronts diverge");
            }
        }
    }

    #[test]
    fn insert_batch_defers_materialization_of_evicted_candidates() {
        let mut f: ParetoFront<&str> = ParetoFront::new();
        let mut built = Vec::new();
        // index 0 is accepted then evicted by index 2; index 1 is
        // dominated outright. Only index 2 may materialize.
        let pts = [
            TradeoffPoint::new(0.5, 5.0),
            TradeoffPoint::new(0.4, 6.0),
            TradeoffPoint::new(0.9, 1.0),
        ];
        let accepted = f.insert_batch_with(&pts, |i| {
            built.push(i);
            "x"
        });
        assert_eq!(accepted, 2, "0 and 2 are accepted at their turn");
        assert_eq!(built, vec![2], "evicted candidate 0 must not materialize");
        assert_eq!(f.len(), 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn insert_batch_skips_non_finite_candidates() {
        let mut f: ParetoFront<()> = ParetoFront::new();
        let pts = [
            TradeoffPoint::new(f64::NAN, 1.0),
            TradeoffPoint::new(0.9, 10.0),
            TradeoffPoint::new(0.5, f64::INFINITY),
        ];
        assert_eq!(f.insert_batch_with(&pts, |_| ()), 1);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn into_sorted_orders_by_cost() {
        let mut f = ParetoFront::new();
        f.try_insert(TradeoffPoint::new(0.9, 30.0), 1);
        f.try_insert(TradeoffPoint::new(0.5, 10.0), 2);
        f.try_insert(TradeoffPoint::new(0.7, 20.0), 3);
        let sorted = f.into_sorted();
        let costs: Vec<f64> = sorted.iter().map(|(p, _)| p.cost).collect();
        assert_eq!(costs, vec![10.0, 20.0, 30.0]);
    }
}
