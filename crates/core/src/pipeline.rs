//! The end-to-end autoAx pipeline (paper Fig. 1): pre-processing → model
//! construction → model-based DSE → real evaluation of the pseudo-Pareto
//! set → final Pareto front over real QoR, area and energy.
//!
//! The pipeline is generic over the QoR domain: it drives any
//! [`Workload`] — the paper's image accelerators (mean-SSIM QoR, via the
//! blanket `Accelerator → Workload` impl) and the quantized-NN workload
//! of `autoax-nn` (top-1-accuracy QoR) run through identical code.

use crate::cache::{
    decode_refined, decode_step12, encode_refined, encode_step12, pipeline_cache_key,
    refined_cache_key, step12_matches_library, REFINED_KIND, REFINED_TAG, STEP12_KIND, STEP12_TAG,
};
use crate::config::Configuration;
use crate::error::AutoAxError;
use crate::evaluate::{Evaluator, RealEval};
use crate::job::CancelToken;
use crate::model::{
    fidelity_report, fit_models, EvaluatedSet, FidelityReport, FittedModels, ModelEstimator,
};
use crate::pareto::{ParetoFront, ParetoFront3, TradeoffPoint};
use crate::preprocess::{preprocess_with_pmfs, PreprocessOptions, Preprocessed};
use crate::refine::{refined_search, RefinementReport};
use crate::search::{run_search_cancellable, SearchAlgo, SearchOptions};
use autoax_accel::Workload;
use autoax_circuit::charlib::ComponentLibrary;
use autoax_ml::EngineKind;
use autoax_store::cache::{BlobStore, CacheMode, Loaded, Store};
use autoax_telemetry as telemetry;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// All pipeline knobs, preset-constructible for the paper's scenarios.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Library pre-processing options.
    pub preprocess: PreprocessOptions,
    /// Learning engine for both estimation models (paper: random forest).
    pub engine: EngineKind,
    /// Fully evaluated configurations for training (paper: 1500 Sobel,
    /// 4000 GF).
    pub train_configs: usize,
    /// Held-out configurations for the fidelity report (paper: 1500/1000).
    pub test_configs: usize,
    /// The complete Step-3 search configuration: strategy
    /// ([`SearchOptions::strategy`]), estimate budget
    /// ([`SearchOptions::max_evals`]; paper: 10^5 Sobel, 10^6 GF),
    /// stagnation limit, islands, batch size and worker threads — one
    /// embedded [`SearchOptions`] instead of field-by-field re-declared
    /// knobs. [`SearchOptions::seed`] is ignored: the pipeline derives
    /// the search seed from [`PipelineOptions::seed`].
    pub search: SearchOptions,
    /// Cap on the number of pseudo-Pareto members that get the full real
    /// evaluation (the paper evaluates ~1000 in 3 h).
    pub final_eval_cap: usize,
    /// Master seed.
    pub seed: u64,
    /// Directory of the content-addressed artifact cache. `None` disables
    /// caching regardless of [`PipelineOptions::cache_mode`].
    pub cache_dir: Option<PathBuf>,
    /// A shared [`BlobStore`] to cache through instead of a fresh
    /// [`Store`] over [`PipelineOptions::cache_dir`] — how the service
    /// tier routes every job through one LRU-fronted
    /// [`autoax_store::ShardedStore`]. Takes precedence over
    /// `cache_dir`; [`PipelineOptions::cache_mode`] still gates reads
    /// and writes.
    pub cache_store: Option<Arc<dyn BlobStore>>,
    /// How the pipeline interacts with the cache: warm-start Steps 1–2
    /// from disk ([`CacheMode::Read`]/[`CacheMode::ReadWrite`]) and
    /// persist them after a cold run ([`CacheMode::ReadWrite`]).
    pub cache_mode: CacheMode,
    /// Cooperative cancellation: checked between pipeline stages and at
    /// search-round boundaries; a fired token makes the run return
    /// [`AutoAxError::Cancelled`]. The default token never fires.
    pub cancel: CancelToken,
}

impl PipelineOptions {
    /// Paper-faithful parameters for the Sobel case study.
    pub fn paper_sobel() -> Self {
        PipelineOptions {
            preprocess: PreprocessOptions::default(),
            engine: EngineKind::RandomForest,
            train_configs: 1500,
            test_configs: 1500,
            search: SearchOptions {
                max_evals: 100_000,
                ..SearchOptions::default()
            },
            final_eval_cap: 1000,
            seed: 42,
            cache_dir: None,
            cache_store: None,
            cache_mode: CacheMode::Off,
            cancel: CancelToken::new(),
        }
    }

    /// Paper-faithful parameters for the Gaussian-filter case studies.
    pub fn paper_gf() -> Self {
        PipelineOptions {
            train_configs: 4000,
            test_configs: 1000,
            search: SearchOptions {
                max_evals: 1_000_000,
                ..SearchOptions::default()
            },
            ..Self::paper_sobel()
        }
    }

    /// Small budgets for tests and smoke runs.
    pub fn quick() -> Self {
        PipelineOptions {
            preprocess: PreprocessOptions::default(),
            engine: EngineKind::RandomForest,
            train_configs: 50,
            test_configs: 30,
            search: SearchOptions {
                max_evals: 3000,
                islands: 4,
                ..SearchOptions::default()
            },
            final_eval_cap: 40,
            seed: 42,
            cache_dir: None,
            cache_store: None,
            cache_mode: CacheMode::Off,
            cancel: CancelToken::new(),
        }
    }

    /// Enables the on-disk cache (builder style).
    pub fn with_cache(mut self, dir: impl Into<PathBuf>, mode: CacheMode) -> Self {
        self.cache_dir = Some(dir.into());
        self.cache_mode = mode;
        self
    }

    /// Selects the Step-3 search strategy (builder style).
    pub fn with_strategy(mut self, strategy: SearchAlgo) -> Self {
        self.search.strategy = strategy;
        self
    }

    /// Caches through a shared [`BlobStore`] (builder style) — see
    /// [`PipelineOptions::cache_store`].
    pub fn with_store(mut self, store: Arc<dyn BlobStore>, mode: CacheMode) -> Self {
        self.cache_store = Some(store);
        self.cache_mode = mode;
        self
    }
}

/// Wall-clock timings of the pipeline stages, including the per-step
/// breakdown of Steps 1–2 and the cache ledger that makes warm-start
/// savings visible in bench output.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineTimings {
    /// Step 1a: operand-PMF profiling on the benchmark images (zero on a
    /// warm run).
    pub profiling: Duration,
    /// Step 1 total: profiling + WMED characterization scoring + Pareto
    /// filtering (zero on a warm run).
    pub preprocess: Duration,
    /// Step 2a: training/test-set generation (real evaluations; zero on a
    /// warm run).
    pub training_data: Duration,
    /// Step 2b: model fitting + fidelity evaluation (zero on a warm run).
    pub model_fit: Duration,
    /// Combined compute time of Steps 1–2 (`preprocess + training_data +
    /// model_fit`); the number a cache hit saves.
    pub step12_compute: Duration,
    /// Time spent loading + decoding the Step-1/2 cache entry (the
    /// load-side counterpart of [`PipelineTimings::step12_compute`]).
    pub cache_load: Duration,
    /// Cache lookups that produced a usable warm start.
    pub cache_hits: u32,
    /// Cache lookups that missed (no entry, corrupt, stale version or
    /// undecodable) and fell back to recompute.
    pub cache_misses: u32,
    /// Step-3 model-based search.
    pub search: Duration,
    /// Name of the [`SearchAlgo`] that produced the pseudo front.
    pub search_strategy: &'static str,
    /// Search estimate throughput: model evaluations per second of wall
    /// clock, with the numerator counted at the estimator
    /// ([`crate::search::SearchTimings::estimates`]) — honest for every
    /// strategy, including the ones that ignore the eval budget
    /// (`uniform` estimates its level grid, `exhaustive` the whole
    /// space).
    pub search_evals_per_sec: f64,
    /// Candidate rows actually sent through the estimator during Step 3
    /// (the [`PipelineTimings::search_evals_per_sec`] numerator).
    pub search_estimates: u64,
    /// Search time spent generating candidates (summed across worker
    /// threads; see [`crate::search::SearchTimings`]).
    pub search_propose: Duration,
    /// Search time spent in batched model estimation (summed across
    /// worker threads).
    pub search_estimate: Duration,
    /// Search time spent in Pareto-front / selection bookkeeping (summed
    /// across worker threads).
    pub search_insert: Duration,
    /// Node encoding the fused QoR/hardware kernels dispatched to during
    /// Step 3 (see [`crate::model::ModelEstimator::engines`]).
    pub search_engines: (&'static str, &'static str),
    /// Real evaluation of the pseudo-Pareto set.
    pub final_eval: Duration,
}

/// A member of the final, really-evaluated Pareto front.
#[derive(Debug, Clone)]
pub struct FinalMember {
    /// The configuration.
    pub config: Configuration,
    /// Real QoR (mean SSIM for the image workloads, top-1 accuracy for
    /// the NN workload).
    pub qor: f64,
    /// Real post-synthesis area (µm²).
    pub area: f64,
    /// Real energy per operation (fJ).
    pub energy: f64,
}

/// Everything the pipeline produces (feeds Tables 3–5 and Fig. 5).
pub struct PipelineResult {
    /// Pre-processing outcome (reduced space + PMFs).
    pub preprocessed: Preprocessed,
    /// Fidelity of the chosen engine's models.
    pub fidelity: FidelityReport,
    /// The fitted models (for further estimation).
    pub models: FittedModels,
    /// The pseudo-Pareto set from Algorithm 1 (estimated objectives).
    pub pseudo_front: ParetoFront<Configuration>,
    /// Real evaluations of the (capped) pseudo-Pareto members.
    pub evaluated: Vec<(Configuration, RealEval)>,
    /// Final Pareto front over real (QoR, area, energy).
    pub final_front: Vec<FinalMember>,
    /// What the active-learning refinement loop did to the models
    /// (fidelity before/after, real-eval cost). `None` when
    /// [`crate::refine::RefinementSchedule::is_off`] — the plain
    /// single-shot Step 3 ran.
    pub refinement: Option<RefinementReport>,
    /// Human-readable name of the workload's QoR measure (`"SSIM"`,
    /// `"top-1 accuracy"`), for report headers.
    pub qor_metric: &'static str,
    /// Stage timings.
    pub timings: PipelineTimings,
}

impl PipelineResult {
    /// FNV-style digest of the final front: the bit patterns of every
    /// member's QoR, area and energy, in front order.
    ///
    /// This is the byte-identity fingerprint the examples print as
    /// `front-digest:` and the CI cache-smoke jobs and the golden-parity
    /// test (`tests/workload_parity.rs`) compare — one shared
    /// implementation so the pinned values can never drift apart from
    /// what the examples report.
    pub fn front_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut push = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for m in &self.final_front {
            push(m.qor.to_bits());
            push(m.area.to_bits());
            push(m.energy.to_bits());
        }
        h
    }

    /// Table 5 row: `log10` sizes after each reduction step.
    pub fn space_sizes_log10(&self) -> (f64, f64, usize, usize) {
        (
            self.preprocessed.full_log10_size,
            self.preprocessed.space.log10_size(),
            self.pseudo_front.len(),
            self.final_front.len(),
        )
    }
}

/// Runs the complete three-step methodology.
///
/// With a populated cache ([`PipelineOptions::cache_dir`] +
/// [`PipelineOptions::cache_mode`]), Steps 1–2 are warm-started from disk
/// and skipped entirely; the result is byte-identical to the cold run
/// because every persisted float survives as its exact bit pattern.
/// Corrupt, stale or undecodable cache entries count as misses and fall
/// back to recompute (read-write mode then replaces them).
///
/// # Errors
/// Returns an error when the models cannot be fitted (degenerate training
/// data) or the inputs are inconsistent.
pub fn run_pipeline<W: Workload + ?Sized>(
    work: &W,
    lib: &ComponentLibrary,
    samples: &[W::Sample],
    opts: &PipelineOptions,
) -> Result<PipelineResult, AutoAxError> {
    if samples.is_empty() {
        return Err(AutoAxError::Invalid("no benchmark samples".into()));
    }
    if opts.cancel.is_cancelled() {
        return Err(AutoAxError::Cancelled);
    }
    // Root span: covers the whole run (cache, Steps 1-3b). The stage
    // spans below *feed* the `PipelineTimings` fields via their measured
    // durations instead of keeping a parallel set of `Instant` pairs.
    let mut sp_run = telemetry::span("pipeline.run");
    sp_run.field("strategy", opts.search.strategy.name());
    // Cache lookup: Steps 1–2 are a pure function of the key's inputs.
    // A shared store (service tier) takes precedence over the per-run
    // directory store.
    let cache: Option<(Arc<dyn BlobStore>, _)> =
        if opts.cache_mode.reads() || opts.cache_mode.writes() {
            opts.cache_store
                .clone()
                .or_else(|| {
                    opts.cache_dir
                        .as_ref()
                        .map(|dir| Arc::new(Store::new(dir)) as Arc<dyn BlobStore>)
                })
                .map(|store| {
                    let key = pipeline_cache_key(work, lib, samples, opts);
                    (store, key)
                })
        } else {
            None
        };
    let mut t_cache_load = Duration::ZERO;
    let mut warm: Option<(Preprocessed, FidelityReport, FittedModels)> = None;
    if let Some((store, key)) = &cache {
        if opts.cache_mode.reads() {
            let sp = telemetry::span("pipeline.cache.load_step12");
            if let Loaded::Hit(payload) = store.load_blob(STEP12_KIND, *key, STEP12_TAG) {
                warm = decode_step12(&payload)
                    .ok()
                    .filter(|(pre, _, _)| step12_matches_library(pre, lib));
            }
            t_cache_load = sp.finish();
        }
    }
    let cache_enabled = cache.is_some() && opts.cache_mode.reads();
    let (mut cache_hits, mut cache_misses) = match (&warm, cache_enabled) {
        (Some(_), _) => (1u32, 0u32),
        (None, true) => (0, 1),
        (None, false) => (0, 0),
    };

    // An exhaustive Step 3 over an unenumerable (reduced) space is
    // doomed; fail right after pre-processing, before the expensive
    // training evaluations, not after them.
    let exhaustive_guard = |size: f64| {
        if opts.search.strategy == SearchAlgo::Exhaustive
            && size > crate::config::MAX_ENUMERABLE_CONFIGS
        {
            Err(AutoAxError::Invalid(format!(
                "exhaustive search is infeasible for this space ({size:.2e} configurations); \
                 pick a budgeted strategy"
            )))
        } else {
            Ok(())
        }
    };

    let (pre, mut fidelity, mut models, t_profile, t_pre, t_train_data, t_fit);
    // The Step-2 evaluator (golden outputs + compiled-op cache) is reused
    // by the refinement loop and the final real evaluation of Step 3b
    // when it exists.
    let mut step2_evaluator: Option<Evaluator<'_, W>> = None;
    // The Step-2 train/test sets survive the cold branch so a refined
    // run can grow the training set without regenerating it.
    let mut step2_sets: Option<(EvaluatedSet, EvaluatedSet)> = None;
    match warm {
        Some((p, f, m)) => {
            // Warm start: Steps 1–2 skipped entirely.
            pre = p;
            fidelity = f;
            models = m;
            t_profile = Duration::ZERO;
            t_pre = Duration::ZERO;
            t_train_data = Duration::ZERO;
            t_fit = Duration::ZERO;
        }
        None => {
            // Step 1: library pre-processing (profiling timed separately,
            // nested inside the step span).
            let sp_step1 = telemetry::span("pipeline.step1.preprocess");
            let sp_profile = telemetry::span("pipeline.step1.profile");
            let pmfs = work.profile(samples);
            t_profile = sp_profile.finish();
            pre = preprocess_with_pmfs(work, lib, pmfs, &opts.preprocess)?;
            t_pre = sp_step1.finish();
            // Fail fast before the expensive training evaluations.
            exhaustive_guard(pre.space.size())?;

            if opts.cancel.is_cancelled() {
                return Err(AutoAxError::Cancelled);
            }

            // Step 2: model construction.
            let _sp_step2 = telemetry::span("pipeline.step2");
            let sp_td = telemetry::span("pipeline.step2.training_data");
            let evaluator = step2_evaluator.insert(Evaluator::new(work, lib, &pre.space, samples));
            let train =
                EvaluatedSet::try_generate(evaluator, &pre.space, opts.train_configs, opts.seed)?;
            let test = EvaluatedSet::try_generate(
                evaluator,
                &pre.space,
                opts.test_configs,
                opts.seed.wrapping_add(1),
            )?;
            t_train_data = sp_td.finish();
            let sp_fit = telemetry::span("pipeline.step2.fit");
            models = fit_models(opts.engine, &pre.space, lib, &train, opts.seed)?;
            fidelity = fidelity_report(&models, &pre.space, lib, &train, &test)?;
            t_fit = sp_fit.finish();

            // Persist for the next run (best-effort: an unsupported engine
            // or a failed write degrades to "no cache", never to an error).
            if let Some((store, key)) = &cache {
                if opts.cache_mode.writes() {
                    if let Ok(payload) = encode_step12(&pre, &fidelity, &models) {
                        let _ = store.save_blob(STEP12_KIND, *key, STEP12_TAG, payload);
                    }
                }
            }
            step2_sets = Some((train, test));
        }
    }

    // Step 3a: model-based Pareto construction — the selected
    // SearchStrategy over the batched columnar model estimator. (The
    // guard re-runs here for the warm-start path, where Steps 1–2 were
    // loaded in milliseconds.)
    exhaustive_guard(pre.space.size())?;
    if opts.cancel.is_cancelled() {
        return Err(AutoAxError::Cancelled);
    }
    // Refined-model cache: a separate entry domain from Step 1–2 —
    // refined models depend on the semantic search + refinement knobs
    // ([`refined_cache_key`]) — consulted only when refinement is on, so
    // the plain path's cache ledger stays exactly as before.
    let refine_on = !opts.search.refine.is_off();
    let mut refined_warm: Option<(FittedModels, RefinementReport, ParetoFront<Configuration>)> =
        None;
    let refined_cache = if refine_on {
        cache.as_ref().map(|(store, _)| {
            (
                Arc::clone(store),
                refined_cache_key(work, lib, samples, opts),
            )
        })
    } else {
        None
    };
    if let Some((store, rkey)) = &refined_cache {
        if opts.cache_mode.reads() {
            let sp = telemetry::span("pipeline.cache.load_refined");
            if let Loaded::Hit(payload) = store.load_blob(REFINED_KIND, *rkey, REFINED_TAG) {
                // genomes of a (pathologically colliding) entry must
                // still index inside the live reduced space
                refined_warm = decode_refined(&payload).ok().filter(|(_, _, front)| {
                    let sizes = pre.space.sizes();
                    front.iter().all(|(_, c)| {
                        c.genes().len() == sizes.len()
                            && c.genes()
                                .iter()
                                .zip(&sizes)
                                .all(|(&g, &n)| (g as usize) < n)
                    })
                });
            }
            t_cache_load += sp.finish();
            if refined_warm.is_some() {
                cache_hits += 1;
            } else {
                cache_misses += 1;
            }
        }
    }

    let mut sp_search = telemetry::span("pipeline.step3.search");
    sp_search.field("strategy", opts.search.strategy.name());
    sp_search.field("refine", refine_on);
    let phases_at_t3 = crate::search::SearchTimings::snapshot();
    let search_opts = SearchOptions {
        seed: opts.seed.wrapping_add(2),
        ..opts.search
    };
    let (pseudo_front, refinement) = if refine_on {
        match refined_warm {
            Some((m, report, front)) => {
                // Warm refined start: models, report and front replay
                // bit-identically without a single real evaluation.
                models = m;
                fidelity = report.after;
                (front, Some(report))
            }
            None => {
                if step2_evaluator.is_none() {
                    step2_evaluator = Some(Evaluator::new(work, lib, &pre.space, samples));
                }
                let evaluator = step2_evaluator.as_ref().expect("just built");
                // A warm Step-1/2 start skipped data generation; the
                // loop regenerates the same sets from the same seeds
                // (bit-identical to the cold run's).
                let (mut train, test) = match step2_sets.take() {
                    Some(sets) => sets,
                    None => (
                        EvaluatedSet::try_generate(
                            evaluator,
                            &pre.space,
                            opts.train_configs,
                            opts.seed,
                        )?,
                        EvaluatedSet::try_generate(
                            evaluator,
                            &pre.space,
                            opts.test_configs,
                            opts.seed.wrapping_add(1),
                        )?,
                    ),
                };
                let (front, report) = refined_search(
                    evaluator,
                    opts.engine,
                    &pre.space,
                    lib,
                    &mut train,
                    &test,
                    &mut models,
                    &search_opts,
                    opts.seed,
                    &opts.cancel,
                )?;
                // The result carries the models that produced the front.
                fidelity = report.after;
                if let Some((store, rkey)) = &refined_cache {
                    if opts.cache_mode.writes() && !opts.cancel.is_cancelled() {
                        if let Ok(payload) = encode_refined(&models, &report, &front) {
                            let _ = store.save_blob(REFINED_KIND, *rkey, REFINED_TAG, payload);
                        }
                    }
                }
                (front, Some(report))
            }
        }
    } else {
        let estimator = ModelEstimator::new(&models, &pre.space, lib);
        (
            run_search_cancellable(&pre.space, &estimator, &search_opts, &opts.cancel),
            None,
        )
    };
    let t_search = sp_search.finish();
    let phases = crate::search::SearchTimings::snapshot().since(&phases_at_t3);
    // Which kernel encodings Step 3 ran on (rebaked from the final
    // models — cheap, and outside every timed region).
    let search_engines = ModelEstimator::new(&models, &pre.space, lib).engines();
    // A mid-search cancellation leaves a truncated front; refuse to pass
    // it off as a result.
    if opts.cancel.is_cancelled() {
        return Err(AutoAxError::Cancelled);
    }
    // Throughput over the rows the estimator actually saw — for budgeted
    // strategies this equals max_evals (plus warm re-estimates under
    // refinement); uniform and exhaustive get their real denominators
    // (level grid / space size) instead of the historical hardcoded 0.
    let search_evals_per_sec = phases.estimates as f64 / t_search.as_secs_f64().max(1e-12);

    // Step 3b: real evaluation of the pseudo-Pareto set (capped), final
    // Pareto filtering on real SSIM, area and energy. A warm run builds
    // its evaluator here (the cold run reuses the Step-2 one).
    let sp_final = telemetry::span("pipeline.step3b.final_eval");
    let evaluator = match step2_evaluator {
        Some(ev) => ev,
        None => Evaluator::new(work, lib, &pre.space, samples),
    };
    let mut members: Vec<(TradeoffPoint, Configuration)> = pseudo_front.clone().into_sorted();
    if members.len() > opts.final_eval_cap {
        // keep an even spread across the estimated front
        let n = members.len();
        let cap = opts.final_eval_cap;
        members = (0..cap)
            .map(|i| members[i * (n - 1) / (cap - 1).max(1)].clone())
            .collect();
    }
    let mut configs: Vec<Configuration> = members.into_iter().map(|(_, c)| c).collect();
    // The accurate design is always part of the comparison set: the final
    // front must reach the maximum QoR at the exact-configuration cost.
    let exact = pre.space.exact();
    if !configs.contains(&exact) {
        configs.push(exact);
    }
    let evals = evaluator.evaluate_batch(&configs);
    let evaluated: Vec<(Configuration, RealEval)> = configs.into_iter().zip(evals).collect();
    let mut front3: ParetoFront3<Configuration> = ParetoFront3::new();
    let mut seen_points: std::collections::HashSet<(u64, u64, u64)> =
        std::collections::HashSet::new();
    for (c, r) in &evaluated {
        // skip exact duplicates of an already-inserted objective triple
        let key = (r.qor.to_bits(), r.hw.area.to_bits(), r.hw.energy.to_bits());
        if seen_points.insert(key) {
            front3.try_insert(r.qor, r.hw.area, r.hw.energy, c.clone());
        }
    }
    let final_front: Vec<FinalMember> = front3
        .into_sorted()
        .into_iter()
        .map(|([qor, area, energy], config)| FinalMember {
            config,
            qor,
            area,
            energy,
        })
        .collect();
    let t_final = sp_final.finish();

    // Registry-side run accounting (one relaxed load when unsubscribed).
    if telemetry::metrics_enabled() {
        telemetry::counter("autoax_pipeline_runs_total").inc();
        telemetry::counter("autoax_pipeline_cache_hits_total").add(cache_hits as u64);
        telemetry::counter("autoax_pipeline_cache_misses_total").add(cache_misses as u64);
        telemetry::histogram("autoax_pipeline_search_ns").record(t_search.as_nanos() as u64);
        telemetry::histogram("autoax_pipeline_run_ns").record(sp_run.elapsed().as_nanos() as u64);
    }

    Ok(PipelineResult {
        preprocessed: pre,
        fidelity,
        models,
        pseudo_front,
        evaluated,
        final_front,
        refinement,
        qor_metric: work.qor_metric(),
        timings: PipelineTimings {
            profiling: t_profile,
            preprocess: t_pre,
            training_data: t_train_data,
            model_fit: t_fit,
            step12_compute: t_pre + t_train_data + t_fit,
            cache_load: t_cache_load,
            cache_hits,
            cache_misses,
            search: t_search,
            search_strategy: opts.search.strategy.name(),
            search_evals_per_sec,
            search_estimates: phases.estimates,
            search_propose: Duration::from_nanos(phases.propose_ns),
            search_estimate: Duration::from_nanos(phases.estimate_ns),
            search_insert: Duration::from_nanos(phases.insert_ns),
            search_engines,
            final_eval: t_final,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_accel::sobel::SobelEd;
    use autoax_circuit::charlib::{build_library, LibraryConfig};
    use autoax_image::synthetic::benchmark_suite;

    #[test]
    fn quick_pipeline_on_sobel_produces_a_front() {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(2, 48, 32, 5);
        let res = run_pipeline(&accel, &lib, &images, &PipelineOptions::quick()).unwrap();
        assert!(!res.final_front.is_empty());
        assert!(res.fidelity.qor_test > 0.5, "{:?}", res.fidelity);
        // front sorted by area and mutually non-dominated in 2D projection
        for w in res.final_front.windows(2) {
            assert!(w[0].area <= w[1].area);
        }
        // the largest-area member should be the best-ssim member
        let best_ssim = res
            .final_front
            .iter()
            .map(|m| m.qor)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best_ssim > 0.9, "front should reach high SSIM: {best_ssim}");
        let (full, reduced, pseudo, finaln) = res.space_sizes_log10();
        assert!(full >= reduced);
        assert!(pseudo >= finaln);
    }

    #[test]
    fn empty_images_is_an_error() {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let err = run_pipeline(&accel, &lib, &[], &PipelineOptions::quick());
        assert!(err.is_err());
    }

    #[test]
    fn pre_cancelled_pipeline_returns_cancelled() {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(2, 48, 32, 5);
        let opts = PipelineOptions::quick();
        opts.cancel.cancel();
        match run_pipeline(&accel, &lib, &images, &opts) {
            Err(AutoAxError::Cancelled) => {}
            other => panic!("expected Cancelled, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn shared_blob_store_warm_starts_like_a_cache_dir() {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(2, 48, 32, 5);
        let dir = std::env::temp_dir().join(format!("autoax-pipe-store-{}", std::process::id()));
        let store: Arc<dyn BlobStore> = Arc::new(autoax_store::ShardedStore::with_defaults(&dir));
        let opts = PipelineOptions::quick().with_store(Arc::clone(&store), CacheMode::ReadWrite);
        let cold = run_pipeline(&accel, &lib, &images, &opts).unwrap();
        assert_eq!(cold.timings.cache_misses, 1);
        let warm = run_pipeline(&accel, &lib, &images, &opts).unwrap();
        assert_eq!(warm.timings.cache_hits, 1);
        assert_eq!(
            cold.front_digest(),
            warm.front_digest(),
            "warm start through a shared store must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
