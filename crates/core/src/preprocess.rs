//! Step 1 of the methodology: library pre-processing (paper Section 2.2).
//!
//! For every operation slot of the workload, profile its operand PMF on
//! benchmark data, score every library circuit of the slot's class with
//! the WMED, and keep only the circuits on the per-slot WMED/area Pareto
//! front. The paper reduces the 8-bit adder class from 6979 circuits to
//! 32–37 per Sobel slot this way. The step is domain-generic: it runs
//! against any [`Workload`] (image accelerators, the NN workload, …).

use crate::config::{ConfigSpace, SlotChoices, SlotMember};
use crate::error::AutoAxError;
use crate::wmed::wmed_class;
use autoax_accel::{Pmf, Workload};
use autoax_circuit::charlib::{CircuitId, ComponentLibrary};

/// Options for library pre-processing.
#[derive(Debug, Clone, Copy)]
pub struct PreprocessOptions {
    /// PMF mass fraction used for WMED computation (1.0 = exact; smaller
    /// values truncate the support for speed; see `autoax::wmed`).
    pub mass_frac: f64,
    /// Optional cap on the reduced library size per slot (keeps the
    /// `cap` lowest-WMED Pareto members; `None` = no cap). Used by
    /// benchmarks that need an exhaustively enumerable reduced space.
    pub slot_cap: Option<usize>,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        PreprocessOptions {
            mass_frac: 0.999,
            slot_cap: None,
        }
    }
}

/// Result of pre-processing: the reduced configuration space plus the
/// profiled PMFs (kept for reporting — Fig. 3).
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// The reduced configuration space (`RL_1 × … × RL_n`).
    pub space: ConfigSpace,
    /// Per-slot operand PMFs.
    pub pmfs: Vec<Pmf>,
    /// `log10` of the unreduced space size (Table 5, "all possible").
    pub full_log10_size: f64,
}

/// Runs library pre-processing for a workload.
///
/// # Errors
/// [`AutoAxError::EmptyProfile`] when a slot's operand distribution comes
/// back empty (the software model never executed it), and
/// [`AutoAxError::Invalid`] when the library has no circuits for a slot's
/// class or the PMF count does not match the slot count.
pub fn preprocess<W: Workload + ?Sized>(
    work: &W,
    lib: &ComponentLibrary,
    samples: &[W::Sample],
    opts: &PreprocessOptions,
) -> Result<Preprocessed, AutoAxError> {
    let pmfs = work.profile(samples);
    preprocess_with_pmfs(work, lib, pmfs, opts)
}

/// Pre-processing with already-profiled PMFs (lets callers reuse the
/// profiling pass).
///
/// # Errors
/// Same contract as [`preprocess`].
pub fn preprocess_with_pmfs<W: Workload + ?Sized>(
    work: &W,
    lib: &ComponentLibrary,
    pmfs: Vec<Pmf>,
    opts: &PreprocessOptions,
) -> Result<Preprocessed, AutoAxError> {
    if pmfs.len() != work.slots().len() {
        return Err(AutoAxError::Invalid(format!(
            "profiling produced {} PMFs for {} slots",
            pmfs.len(),
            work.slots().len()
        )));
    }
    let mut slots = Vec::with_capacity(work.slots().len());
    let mut full_log10 = 0.0;
    for (slot, pmf) in work.slots().iter().zip(pmfs.iter()) {
        if pmf.total() == 0 {
            return Err(AutoAxError::EmptyProfile {
                slot: slot.name.clone(),
            });
        }
        let class = lib.class(slot.signature);
        if class.is_empty() {
            return Err(AutoAxError::Invalid(format!(
                "library has no circuits for class {} (slot {})",
                slot.signature, slot.name
            )));
        }
        full_log10 += (class.len() as f64).log10();
        let wmeds = wmed_class(class, pmf, opts.mass_frac);
        let mut members = pareto_filter(class.iter().map(|e| e.hw.area).collect(), &wmeds);
        if let Some(cap) = opts.slot_cap {
            // keep the cap members spread across the WMED range:
            // sort by WMED and take an even subsample (always keeping the
            // exact circuit and the cheapest one).
            if members.len() > cap {
                members.sort_by(|a, b| {
                    wmeds[a.0 as usize]
                        .partial_cmp(&wmeds[b.0 as usize])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let n = members.len();
                let picked: Vec<CircuitId> = (0..cap)
                    .map(|i| members[i * (n - 1) / (cap - 1).max(1)])
                    .collect();
                members = picked;
            }
        }
        let mut slot_members: Vec<SlotMember> = members
            .into_iter()
            .map(|id| SlotMember {
                id,
                wmed: wmeds[id.0 as usize],
            })
            .collect();
        // The globally exact circuit (id 0) is always retained even when a
        // cheaper workload-exact circuit shadows it on the (WMED, area)
        // front — configurations must be able to express "accurate here".
        if !slot_members.iter().any(|m| m.id == CircuitId(0)) {
            if let Some(cap) = opts.slot_cap {
                if slot_members.len() >= cap.max(1) {
                    slot_members.pop(); // drop the highest-WMED member
                }
            }
            slot_members.push(SlotMember {
                id: CircuitId(0),
                wmed: wmeds[0],
            });
        }
        // deterministic order: ascending WMED (exact first)
        slot_members.sort_by(|a, b| {
            a.wmed
                .partial_cmp(&b.wmed)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        slots.push(SlotChoices {
            name: slot.name.clone(),
            signature: slot.signature,
            members: slot_members,
        });
    }
    Ok(Preprocessed {
        space: ConfigSpace::new(slots),
        pmfs,
        full_log10_size: full_log10,
    })
}

/// Keeps the indices whose `(wmed, area)` pairs are Pareto-optimal
/// (both minimized). Ties on both objectives keep the first occurrence.
fn pareto_filter(areas: Vec<f64>, wmeds: &[f64]) -> Vec<CircuitId> {
    assert_eq!(areas.len(), wmeds.len());
    let mut idx: Vec<usize> = (0..areas.len()).collect();
    // sort by wmed asc, then area asc
    idx.sort_by(|&a, &b| {
        wmeds[a]
            .partial_cmp(&wmeds[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                areas[a]
                    .partial_cmp(&areas[b])
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut kept = Vec::new();
    let mut best_area = f64::INFINITY;
    let mut last_wmed = f64::NEG_INFINITY;
    for i in idx {
        if areas[i] < best_area {
            // skip duplicates with identical (wmed, area)
            if wmeds[i] == last_wmed && areas[i] == best_area {
                continue;
            }
            kept.push(CircuitId(i as u32));
            best_area = areas[i];
            last_wmed = wmeds[i];
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_accel::sobel::SobelEd;
    use autoax_circuit::charlib::{build_library, LibraryConfig};
    use autoax_image::synthetic::benchmark_suite;
    use autoax_image::GrayImage;

    fn tiny_setup() -> (SobelEd, ComponentLibrary, Vec<GrayImage>) {
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(2, 48, 32, 3);
        (SobelEd::new(), lib, images)
    }

    #[test]
    fn pareto_filter_keeps_staircase() {
        // wmed:   0, 1, 2, 3
        // area:  10, 5, 7, 2   -> (0,10), (1,5), (3,2) kept; (2,7) dominated
        let kept = pareto_filter(vec![10.0, 5.0, 7.0, 2.0], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(kept, vec![CircuitId(0), CircuitId(1), CircuitId(3)]);
    }

    #[test]
    fn pareto_filter_single_element() {
        assert_eq!(pareto_filter(vec![4.0], &[0.5]), vec![CircuitId(0)]);
    }

    #[test]
    fn reduced_space_is_smaller_and_keeps_exact() {
        let (accel, lib, images) = tiny_setup();
        let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).unwrap();
        assert_eq!(pre.space.slot_count(), 5);
        for (slot, choices) in Workload::slots(&accel).iter().zip(pre.space.slots().iter()) {
            let full = lib.class_size(slot.signature);
            assert!(choices.members.len() <= full);
            assert!(!choices.members.is_empty());
            // a zero-WMED circuit survives and comes first (it may be a
            // cheaper circuit that is exact on the profiled operands
            // rather than the globally exact one)
            assert_eq!(choices.members[0].wmed, 0.0);
        }
        assert!(pre.space.log10_size() <= pre.full_log10_size);
    }

    #[test]
    fn reduced_members_are_pareto_in_wmed_area() {
        let (accel, lib, images) = tiny_setup();
        let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).unwrap();
        for choices in pre.space.slots() {
            let class = lib.class(choices.signature);
            for (i, a) in choices.members.iter().enumerate() {
                // the globally exact circuit is exempt: it is retained by
                // policy even when a workload-exact circuit dominates it
                if a.id == CircuitId(0) {
                    continue;
                }
                for (j, b) in choices.members.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let dominated = b.wmed <= a.wmed
                        && class[b.id.0 as usize].hw.area <= class[a.id.0 as usize].hw.area
                        && (b.wmed < a.wmed
                            || class[b.id.0 as usize].hw.area < class[a.id.0 as usize].hw.area);
                    assert!(!dominated, "slot {}: member {i} dominated", choices.name);
                }
            }
        }
    }

    #[test]
    fn slot_cap_limits_size() {
        let (accel, lib, images) = tiny_setup();
        let opts = PreprocessOptions {
            slot_cap: Some(4),
            ..Default::default()
        };
        let pre = preprocess(&accel, &lib, &images, &opts).unwrap();
        for choices in pre.space.slots() {
            assert!(choices.members.len() <= 4);
            assert_eq!(choices.members[0].wmed, 0.0, "zero-WMED member kept");
        }
    }

    #[test]
    fn pmfs_are_returned_per_slot() {
        let (accel, lib, images) = tiny_setup();
        let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).unwrap();
        assert_eq!(pre.pmfs.len(), 5);
        for pmf in &pre.pmfs {
            assert!(pmf.total() > 0);
        }
        // image workloads concentrate adder operands near the diagonal
        assert!(pre.pmfs[0].diagonal_mass(32) > 0.5);
    }

    #[test]
    fn empty_operand_distribution_is_a_typed_error() {
        // A misconfigured workload whose software model never executes a
        // slot yields an empty PMF for it — that must surface as the
        // EmptyProfile variant naming the slot, not a panic.
        let (accel, lib, _images) = tiny_setup();
        let mut pmfs: Vec<Pmf> = (0..5).map(|_| Pmf::new()).collect();
        for pmf in pmfs.iter_mut().take(2) {
            pmf.add(10, 20); // slots 0–1 profiled, slot 2 ("add3") empty
        }
        let err = preprocess_with_pmfs(&accel, &lib, pmfs, &PreprocessOptions::default())
            .expect_err("empty slot distribution must not preprocess");
        match err {
            AutoAxError::EmptyProfile { slot } => assert_eq!(slot, "add3"),
            other => panic!("expected EmptyProfile, got {other:?}"),
        }
    }

    #[test]
    fn pmf_slot_count_mismatch_is_invalid() {
        let (accel, lib, _images) = tiny_setup();
        let err = preprocess_with_pmfs(&accel, &lib, Vec::new(), &PreprocessOptions::default())
            .expect_err("0 PMFs for 5 slots must fail");
        assert!(matches!(err, AutoAxError::Invalid(_)), "{err:?}");
    }
}
