//! Step 2/3 closure: active-learning surrogate refinement.
//!
//! The paper trains its estimation models once (Step 2) and then searches
//! on the frozen surrogates (Step 3). This module interleaves the two:
//! the eval budget is split into *segments*, and between segments the
//! loop real-evaluates the K most *informative* candidates near the
//! current front, folds them into the training set, and refits the
//! models before the next segment continues the search warm-started from
//! the front found so far.
//!
//! "Informative" combines two signals, both computed columnar off the
//! already-compiled forest arena:
//!
//! * **epistemic uncertainty** — the per-tree prediction variance of the
//!   QoR and hardware forests ([`crate::model::ModelEstimator::variance_slice`]);
//!   where the trees disagree, a real label buys the most model update;
//! * **novelty** — crowding distance of the candidate's *estimated*
//!   trade-off point over the candidate pool, so the picks spread along
//!   the front instead of piling onto one uncertain ridge.
//!
//! Determinism is a hard contract, matching the search layer: the whole
//! loop is a pure function of the semantic knobs (seed, budget, schedule)
//! — `threads` and `batch_size` never change a bit of the result. The
//! acquisition therefore sorts its candidate pool lexicographically by
//! genome before scoring (input order invariance) and breaks score ties
//! by genome (no dependence on float sort stability).

use crate::config::{ConfigSpace, Configuration};
use crate::error::AutoAxError;
use crate::evaluate::Evaluator;
use crate::job::CancelToken;
use crate::model::ModelEstimator;
use crate::model::{fidelity_report, fit_models, EvaluatedSet, FidelityReport, FittedModels};
use crate::pareto::ParetoFront;
use crate::search::{ConfigBatch, Estimator, SearchOptions};
use autoax_circuit::charlib::ComponentLibrary;
use autoax_ml::engine::EngineKind;
use std::collections::{BTreeSet, HashSet};

/// When and how hard the refinement loop runs. Part of
/// [`SearchOptions`]; [`RefinementSchedule::off`] (the default) keeps
/// the paper's plain single-shot Step 3.
///
/// Every field is a *semantic* knob: changing any of them changes the
/// result (deterministically). Throughput knobs stay in
/// [`SearchOptions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementSchedule {
    /// Refinement rounds. The search budget is split into `epochs + 1`
    /// segments with a real-eval + refit step between consecutive
    /// segments. `0` disables the loop entirely.
    pub epochs: usize,
    /// Candidates real-evaluated per epoch (the acquisition's K).
    /// `0` disables the loop entirely.
    pub per_epoch: usize,
    /// Weight of the crowding-novelty term against the two normalized
    /// variance terms in the acquisition score.
    pub novelty_weight: f64,
    /// Forest trees re-fit per refinement round
    /// ([`autoax_ml::forest::RandomForest::refit_trees`], rotating
    /// slots). When the engine has no forest to patch (or this is `0`),
    /// the loop falls back to a full [`fit_models`] refit.
    pub replace_trees: usize,
}

impl RefinementSchedule {
    /// No refinement: the plain single-shot search, bit-identical to a
    /// build without this module.
    pub const fn off() -> Self {
        RefinementSchedule {
            epochs: 0,
            per_epoch: 0,
            novelty_weight: 0.0,
            replace_trees: 0,
        }
    }

    /// A small schedule tuned for the quick pipeline configuration: two
    /// refinement rounds of 16 real evals each, patching a quarter of
    /// the default 100-tree forest per round.
    pub const fn quick() -> Self {
        RefinementSchedule {
            epochs: 2,
            per_epoch: 16,
            novelty_weight: 0.5,
            replace_trees: 25,
        }
    }

    /// Whether this schedule disables the loop ([`RefinementSchedule::off`]
    /// or any degenerate schedule with zero rounds or zero picks).
    pub fn is_off(&self) -> bool {
        self.epochs == 0 || self.per_epoch == 0
    }
}

impl Default for RefinementSchedule {
    fn default() -> Self {
        RefinementSchedule::off()
    }
}

/// What one refined search did to the models, reported next to the
/// front: the fidelity movement and the extra real-eval cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementReport {
    /// Model fidelities before the first refinement round.
    pub before: FidelityReport,
    /// Model fidelities after the last refit.
    pub after: FidelityReport,
    /// Real evaluations spent by the loop (excluding the initial
    /// training set).
    pub real_evals: usize,
    /// Refinement rounds actually run (differs from the schedule when
    /// the acquisition ran out of unevaluated candidates or the job was
    /// cancelled).
    pub epochs_run: usize,
}

/// Crowding distance of 2-D points (larger = more isolated), the NSGA-II
/// novelty measure restricted to one pool. `n <= 2` → all infinite.
fn crowding(points: &[(f64, f64)]) -> Vec<f64> {
    let n = points.len();
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let mut crowd = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    for obj in 0..2 {
        let key = |i: usize| {
            if obj == 0 {
                points[i].0
            } else {
                points[i].1
            }
        };
        order.sort_by(|&a, &b| key(a).total_cmp(&key(b)));
        let span = (key(order[n - 1]) - key(order[0])).max(1e-300);
        crowd[order[0]] = f64::INFINITY;
        crowd[order[n - 1]] = f64::INFINITY;
        for w in 1..n - 1 {
            let i = order[w];
            if crowd[i].is_finite() {
                crowd[i] += (key(order[w + 1]) - key(order[w - 1])) / span;
            }
        }
    }
    crowd
}

/// Selects the `k` most informative candidates for real evaluation.
///
/// The pool is deduplicated by genome, stripped of `exclude` (genomes
/// that already carry a real label) and sorted lexicographically, so the
/// result is invariant to the order and multiplicity of `candidates`.
/// Score = normalized QoR variance + normalized hardware variance +
/// `novelty_weight` × normalized crowding distance of the *estimated*
/// points; ties break lexicographically by genome.
pub fn select_informative(
    estimator: &ModelEstimator<'_>,
    candidates: &[Configuration],
    exclude: &HashSet<Vec<u16>>,
    k: usize,
    novelty_weight: f64,
) -> Vec<Configuration> {
    let mut pool: BTreeSet<&[u16]> = BTreeSet::new();
    for c in candidates {
        if !exclude.contains(c.genes()) {
            pool.insert(c.genes());
        }
    }
    if pool.is_empty() || k == 0 {
        return Vec::new();
    }
    let stride = estimator.space.slot_count();
    let mut batch = ConfigBatch::with_capacity(stride, pool.len());
    for genes in &pool {
        batch.push_genes(genes);
    }
    let rows = batch.slice(0..batch.len());
    let (mut qvar, mut hvar) = (Vec::new(), Vec::new());
    estimator.variance_slice(rows, &mut qvar, &mut hvar);
    let mut points = Vec::new();
    estimator.estimate_slice(rows, &mut points);
    let objs: Vec<(f64, f64)> = points.iter().map(|p| (-p.qor, p.cost)).collect();
    let crowd = crowding(&objs);

    // Normalize each signal to [0, 1] over the pool; a flat signal
    // (max 0) contributes nothing rather than dividing by zero.
    let norm = |v: &[f64]| -> Vec<f64> {
        let max = v
            .iter()
            .copied()
            .filter(|x| x.is_finite())
            .fold(0.0, f64::max);
        v.iter()
            .map(|&x| {
                if !x.is_finite() {
                    1.0
                } else if max > 0.0 {
                    x / max
                } else {
                    0.0
                }
            })
            .collect()
    };
    let (qn, hn, cn) = (norm(&qvar), norm(&hvar), norm(&crowd));
    let mut scored: Vec<(f64, usize)> = (0..batch.len())
        .map(|i| (qn[i] + hn[i] + novelty_weight * cn[i], i))
        .collect();
    scored.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| batch.row(a.1).cmp(batch.row(b.1)))
    });
    scored
        .into_iter()
        .take(k)
        .map(|(_, i)| batch.to_configuration(i))
        .collect()
}

/// The candidate pool of one refinement round: every front member plus
/// all its one-gene ±1 neighbours (the hill climb's move set), so the
/// acquisition can look one step past the shadow of the current front.
fn neighbourhood_pool(
    space: &ConfigSpace,
    front: &ParetoFront<Configuration>,
) -> Vec<Configuration> {
    let sizes = space.sizes();
    let mut pool = Vec::new();
    for (_, c) in front.iter() {
        pool.push(c.clone());
        for slot in 0..sizes.len() {
            let g = c.genes()[slot];
            for n in [g.checked_sub(1), g.checked_add(1)].into_iter().flatten() {
                if (n as usize) < sizes[slot] {
                    let mut genes = c.genes().to_vec();
                    genes[slot] = n;
                    pool.push(Configuration::from_genes(genes));
                }
            }
        }
    }
    pool
}

/// Deterministic per-segment seed stream (SplitMix64 over the base
/// seed): segment 0 reuses the caller's seed so a one-segment run is
/// bit-identical to the plain search.
fn segment_seed(base: u64, segment: usize) -> u64 {
    if segment == 0 {
        return base;
    }
    let mut z = base.wrapping_add((segment as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the refined search: `epochs + 1` warm-started search segments
/// with an acquire → real-evaluate → refit step between consecutive
/// segments. `train` and `models` are updated in place (the caller owns
/// the grown training set and the refined models afterwards); `test`
/// stays held out and is only used for the fidelity report.
///
/// With [`RefinementSchedule::is_off`] the caller should not be here —
/// the function still behaves (single segment, no refit) but the plain
/// [`crate::search::run_search_cancellable`] is cheaper.
///
/// # Errors
/// Propagates [`AutoAxError::Train`] from a refit and
/// [`AutoAxError::Fidelity`] from a malformed train/test set. A fired
/// [`CancelToken`] stops the loop at the next segment boundary and
/// returns the front found so far (like the search strategies).
#[allow(clippy::too_many_arguments)]
pub fn refined_search<W: autoax_accel::Workload + ?Sized>(
    evaluator: &Evaluator<'_, W>,
    engine: EngineKind,
    space: &ConfigSpace,
    lib: &ComponentLibrary,
    train: &mut EvaluatedSet,
    test: &EvaluatedSet,
    models: &mut FittedModels,
    opts: &SearchOptions,
    model_seed: u64,
    cancel: &CancelToken,
) -> Result<(ParetoFront<Configuration>, RefinementReport), AutoAxError> {
    let sched = opts.refine;
    let before = fidelity_report(models, space, lib, train, test)?;
    let mut evaluated: HashSet<Vec<u16>> = train
        .configs
        .iter()
        .chain(test.configs.iter())
        .map(|c| c.genes().to_vec())
        .collect();

    let segments = sched.epochs + 1;
    let base = opts.max_evals / segments;
    let extra = opts.max_evals % segments;
    let strategy = opts.strategy.strategy();

    let mut front: ParetoFront<Configuration> = ParetoFront::new();
    let mut real_evals = 0usize;
    let mut epochs_run = 0usize;
    for seg in 0..segments {
        if cancel.is_cancelled() {
            break;
        }
        let seg_opts = SearchOptions {
            max_evals: base + usize::from(seg < extra),
            seed: segment_seed(opts.seed, seg),
            refine: RefinementSchedule::off(),
            ..*opts
        };
        let picked = {
            let estimator = ModelEstimator::new(models, space, lib);
            front = strategy.search_epoch(space, &estimator, &seg_opts, cancel, &front);
            if seg + 1 == segments || cancel.is_cancelled() {
                break;
            }
            let pool = neighbourhood_pool(space, &front);
            select_informative(
                &estimator,
                &pool,
                &evaluated,
                sched.per_epoch,
                sched.novelty_weight,
            )
        };
        if picked.is_empty() {
            // Everything near the front already carries a real label;
            // further rounds would only re-search.
            continue;
        }
        let evals = evaluator.evaluate_batch(&picked);
        real_evals += picked.len();
        for (c, e) in picked.into_iter().zip(evals) {
            evaluated.insert(c.genes().to_vec());
            train.configs.push(c);
            train.evals.push(e);
        }
        refit(engine, space, lib, train, models, &sched, seg, model_seed)?;
        epochs_run += 1;
    }

    let after = fidelity_report(models, space, lib, train, test)?;
    Ok((
        front,
        RefinementReport {
            before,
            after,
            real_evals,
            epochs_run,
        },
    ))
}

/// One refit step: patch `replace_trees` rotating forest slots when both
/// models are random forests ([`autoax_ml::forest::RandomForest::refit_trees`]),
/// otherwise fall back to a full [`fit_models`] from scratch on the
/// grown training set (bit-identical to cold-training on it).
#[allow(clippy::too_many_arguments)]
fn refit(
    engine: EngineKind,
    space: &ConfigSpace,
    lib: &ComponentLibrary,
    train: &EvaluatedSet,
    models: &mut FittedModels,
    sched: &RefinementSchedule,
    round: usize,
    model_seed: u64,
) -> Result<(), AutoAxError> {
    let both_forests = sched.replace_trees > 0
        && models
            .qor
            .as_any()
            .map(|a| a.is::<autoax_ml::forest::RandomForest>())
            .unwrap_or(false)
        && models
            .hw
            .as_any()
            .map(|a| a.is::<autoax_ml::forest::RandomForest>())
            .unwrap_or(false);
    if !both_forests {
        *models = fit_models(engine, space, lib, train, model_seed)?;
        return Ok(());
    }
    let qx = train.qor_matrix(space);
    let qy = train.qor_targets();
    let hx = train.hw_matrix(space, lib);
    let hy = train.area_targets();
    let patch = |m: &mut Box<dyn autoax_ml::engine::Regressor>,
                 x: &autoax_ml::Matrix,
                 y: &[f64]|
     -> Result<(), AutoAxError> {
        let f = m
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<autoax_ml::forest::RandomForest>())
            .expect("checked above");
        f.refit_trees(x, y, round, sched.replace_trees)?;
        Ok(())
    };
    patch(&mut models.qor, &qx, &qy)?;
    patch(&mut models.hw, &hx, &hy)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fit_models;
    use crate::preprocess::{preprocess, PreprocessOptions};
    use crate::search::SearchAlgo;
    use autoax_accel::sobel::SobelEd;
    use autoax_circuit::charlib::{build_library, LibraryConfig};
    use autoax_image::synthetic::benchmark_suite;

    #[test]
    fn off_schedule_is_the_default_and_degenerates_detectably() {
        assert_eq!(RefinementSchedule::default(), RefinementSchedule::off());
        assert!(RefinementSchedule::off().is_off());
        assert!(!RefinementSchedule::quick().is_off());
        let degenerate = RefinementSchedule {
            per_epoch: 0,
            ..RefinementSchedule::quick()
        };
        assert!(degenerate.is_off());
    }

    #[test]
    fn crowding_marks_extremes_infinite_and_isolated_points_high() {
        let pts = [(0.0, 3.0), (1.0, 1.0), (1.1, 0.9), (3.0, 0.0)];
        let c = crowding(&pts);
        assert!(c[0].is_infinite() && c[3].is_infinite());
        // the (1.0, 1.0) pair sits in a tight cluster; its crowding must
        // be finite and smaller than the span-wide neighbour gap
        assert!(c[1].is_finite() && c[2].is_finite());
        assert!(c[1] < 2.0);
        let tiny = crowding(&pts[..2]);
        assert!(tiny.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn segment_seed_zero_is_identity_and_streams_differ() {
        assert_eq!(segment_seed(42, 0), 42);
        assert_ne!(segment_seed(42, 1), segment_seed(42, 2));
        assert_ne!(segment_seed(42, 1), segment_seed(43, 1));
    }

    struct Fixture {
        lib: autoax_circuit::charlib::ComponentLibrary,
        images: Vec<autoax_image::GrayImage>,
        pre: crate::preprocess::Preprocessed,
        accel: SobelEd,
    }

    fn fixture() -> Fixture {
        let accel = SobelEd::new();
        let lib = build_library(&LibraryConfig::tiny());
        let images = benchmark_suite(2, 48, 32, 5);
        let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).unwrap();
        Fixture {
            lib,
            images,
            pre,
            accel,
        }
    }

    #[test]
    fn selection_is_input_order_invariant_and_respects_exclusions() {
        let s = fixture();
        let ev = Evaluator::new(&s.accel, &s.lib, &s.pre.space, &s.images);
        let train = EvaluatedSet::generate(&ev, &s.pre.space, 40, 1);
        let models = fit_models(EngineKind::RandomForest, &s.pre.space, &s.lib, &train, 7).unwrap();
        let est = ModelEstimator::new(&models, &s.pre.space, &s.lib);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let pool: Vec<Configuration> = (0..30).map(|_| s.pre.space.random(&mut rng)).collect();
        let exclude: HashSet<Vec<u16>> = pool[..5].iter().map(|c| c.genes().to_vec()).collect();
        let a = select_informative(&est, &pool, &exclude, 8, 0.5);
        let mut reversed = pool.clone();
        reversed.reverse();
        // duplicate the pool too: multiplicity must not matter
        reversed.extend(pool.iter().cloned());
        let b = select_informative(&est, &reversed, &exclude, 8, 0.5);
        assert_eq!(a, b, "selection depends on candidate order/multiplicity");
        for c in &a {
            assert!(!exclude.contains(c.genes()), "picked an excluded genome");
        }
        let distinct: HashSet<&[u16]> = a.iter().map(|c| c.genes()).collect();
        assert_eq!(distinct.len(), a.len(), "duplicate picks");
    }

    #[test]
    fn refined_search_grows_train_and_reports_budget() {
        let s = fixture();
        let ev = Evaluator::new(&s.accel, &s.lib, &s.pre.space, &s.images);
        let mut train = EvaluatedSet::generate(&ev, &s.pre.space, 40, 1);
        let test = EvaluatedSet::generate(&ev, &s.pre.space, 24, 2);
        let mut models =
            fit_models(EngineKind::RandomForest, &s.pre.space, &s.lib, &train, 7).unwrap();
        let before_len = train.configs.len();
        let opts = SearchOptions {
            strategy: SearchAlgo::Hill,
            max_evals: 600,
            seed: 5,
            islands: 2,
            refine: RefinementSchedule {
                epochs: 2,
                per_epoch: 6,
                novelty_weight: 0.5,
                replace_trees: 10,
            },
            ..SearchOptions::default()
        };
        let (front, report) = refined_search(
            &ev,
            EngineKind::RandomForest,
            &s.pre.space,
            &s.lib,
            &mut train,
            &test,
            &mut models,
            &opts,
            7,
            &CancelToken::new(),
        )
        .unwrap();
        assert!(!front.is_empty());
        assert_eq!(report.epochs_run, 2);
        assert_eq!(report.real_evals, 12);
        assert_eq!(train.configs.len(), before_len + 12);
        assert_eq!(train.configs.len(), train.evals.len());
    }

    #[test]
    fn refined_search_is_deterministic_across_throughput_knobs() {
        let s = fixture();
        let ev = Evaluator::new(&s.accel, &s.lib, &s.pre.space, &s.images);
        let base_train = EvaluatedSet::generate(&ev, &s.pre.space, 40, 1);
        let test = EvaluatedSet::generate(&ev, &s.pre.space, 24, 2);
        let run = |threads: usize, batch: usize| {
            let mut train = base_train.clone();
            let mut models =
                fit_models(EngineKind::RandomForest, &s.pre.space, &s.lib, &train, 7).unwrap();
            let opts = SearchOptions {
                strategy: SearchAlgo::Hill,
                max_evals: 400,
                seed: 11,
                islands: 2,
                threads,
                batch_size: batch,
                refine: RefinementSchedule {
                    epochs: 1,
                    per_epoch: 5,
                    novelty_weight: 0.5,
                    replace_trees: 10,
                },
                ..SearchOptions::default()
            };
            let (front, report) = refined_search(
                &ev,
                EngineKind::RandomForest,
                &s.pre.space,
                &s.lib,
                &mut train,
                &test,
                &mut models,
                &opts,
                7,
                &CancelToken::new(),
            )
            .unwrap();
            let bits: Vec<(u64, u64, Vec<u16>)> = front
                .iter()
                .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c.genes().to_vec()))
                .collect();
            (bits, report.after, train.configs.len())
        };
        let reference = run(1, 1);
        for (threads, batch) in [(2, 7), (8, 64), (4, 256)] {
            assert_eq!(
                reference,
                run(threads, batch),
                "threads={threads} batch={batch} diverged"
            );
        }
    }
}
