//! The columnar candidate plane: a [`ConfigBatch`] arena holding candidate
//! genomes as one flat `u16` slab (stride = slot count), and the borrowed
//! [`ConfigSlice`] view estimators consume.
//!
//! The Step-3 hot path runs 10⁵–10⁶ model estimates per search; with a
//! `Vec`-backed [`Configuration`] every proposed candidate costs a heap
//! allocation that is thrown away the moment `ParetoInsert` rejects it
//! (the overwhelmingly common case). The batch slab amortizes that to
//! zero: rows are written in place with
//! [`crate::config::ConfigSpace::random_into`] /
//! [`crate::config::ConfigSpace::neighbor_into`], estimated through
//! [`crate::search::Estimator::estimate_slice`], and only the rare
//! accepted candidate materializes a [`Configuration`] for the front.

use crate::config::Configuration;

/// A growable arena of candidate genomes stored as one flat row-major
/// `u16` slab. `clear` keeps the capacity, so a search loop reuses the
/// same allocation for every round.
#[derive(Debug, Clone)]
pub struct ConfigBatch {
    genes: Vec<u16>,
    stride: usize,
}

impl ConfigBatch {
    /// An empty batch of genomes with `stride` slots each.
    ///
    /// # Panics
    /// Panics when `stride` is zero — a configuration always has at least
    /// one operation slot.
    pub fn new(stride: usize) -> Self {
        Self::with_capacity(stride, 0)
    }

    /// An empty batch with capacity for `rows` genomes pre-allocated.
    pub fn with_capacity(stride: usize, rows: usize) -> Self {
        assert!(stride > 0, "configurations have at least one slot");
        ConfigBatch {
            genes: Vec::with_capacity(stride * rows),
            stride,
        }
    }

    /// Slots per genome.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.genes.len() / self.stride
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Drops all rows, keeping the allocation.
    pub fn clear(&mut self) {
        self.genes.clear();
    }

    /// Appends a zeroed row and returns it for in-place writing (the
    /// allocation-free way to add a candidate: pair with
    /// [`crate::config::ConfigSpace::random_into`] or
    /// [`crate::config::ConfigSpace::neighbor_into`]).
    pub fn push_row(&mut self) -> &mut [u16] {
        let start = self.genes.len();
        self.genes.resize(start + self.stride, 0);
        &mut self.genes[start..]
    }

    /// Appends a copy of an existing genome.
    ///
    /// # Panics
    /// Panics when the genome length differs from the stride.
    pub fn push_genes(&mut self, genes: &[u16]) {
        assert_eq!(genes.len(), self.stride, "genome shape mismatch");
        self.genes.extend_from_slice(genes);
    }

    /// Appends a configuration's genome.
    pub fn push_config(&mut self, c: &Configuration) {
        self.push_genes(c.genes());
    }

    /// Row `i` as a genome slice.
    pub fn row(&self, i: usize) -> &[u16] {
        &self.genes[i * self.stride..(i + 1) * self.stride]
    }

    /// Row `i` as a mutable genome slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [u16] {
        &mut self.genes[i * self.stride..(i + 1) * self.stride]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u16]> {
        self.genes.chunks_exact(self.stride)
    }

    /// Materializes row `i` as an owned [`Configuration`].
    pub fn to_configuration(&self, i: usize) -> Configuration {
        Configuration::from_genes(self.row(i).to_vec())
    }

    /// The whole batch as a borrowed view.
    pub fn as_slice(&self) -> ConfigSlice<'_> {
        ConfigSlice {
            genes: &self.genes,
            stride: self.stride,
        }
    }

    /// Rows `range` as a borrowed view (the unit
    /// [`crate::search::Estimator::estimate_slice`] consumes — searches
    /// chunk their rounds by `SearchOptions::batch_size` through this).
    ///
    /// # Panics
    /// Panics when the range exceeds the row count.
    pub fn slice(&self, range: std::ops::Range<usize>) -> ConfigSlice<'_> {
        ConfigSlice {
            genes: &self.genes[range.start * self.stride..range.end * self.stride],
            stride: self.stride,
        }
    }

    /// Builds a batch from owned configurations (all the same shape).
    pub fn from_configs(configs: &[Configuration]) -> Self {
        assert!(!configs.is_empty(), "cannot infer stride from zero configs");
        let mut b = Self::with_capacity(configs[0].len(), configs.len());
        for c in configs {
            b.push_genes(c.genes());
        }
        b
    }
}

/// A borrowed, row-major view over candidate genomes — what estimators
/// see. Copy-cheap (a fat pointer plus a stride).
#[derive(Debug, Clone, Copy)]
pub struct ConfigSlice<'a> {
    genes: &'a [u16],
    stride: usize,
}

impl<'a> ConfigSlice<'a> {
    /// Wraps a raw slab; `genes.len()` must be a multiple of `stride`.
    ///
    /// # Panics
    /// Panics on a ragged slab or zero stride.
    pub fn new(genes: &'a [u16], stride: usize) -> Self {
        assert!(stride > 0, "configurations have at least one slot");
        assert_eq!(genes.len() % stride, 0, "ragged slab");
        ConfigSlice { genes, stride }
    }

    /// Slots per genome.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.genes.len() / self.stride
    }

    /// True when the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Row `i` as a genome slice.
    pub fn row(&self, i: usize) -> &'a [u16] {
        &self.genes[i * self.stride..(i + 1) * self.stride]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &'a [u16]> {
        self.genes.chunks_exact(self.stride)
    }

    /// The raw row-major gene slab (length = `len() * stride()`) — what
    /// the fused forest kernel consumes directly.
    pub fn genes(&self) -> &'a [u16] {
        self.genes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_read_back_rows() {
        let mut b = ConfigBatch::new(3);
        assert!(b.is_empty());
        b.push_row().copy_from_slice(&[1, 2, 3]);
        b.push_genes(&[4, 5, 6]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(0), &[1, 2, 3]);
        assert_eq!(b.row(1), &[4, 5, 6]);
        assert_eq!(b.to_configuration(1).genes(), &[4, 5, 6]);
        let rows: Vec<&[u16]> = b.rows().collect();
        assert_eq!(rows, vec![&[1u16, 2, 3][..], &[4, 5, 6][..]]);
    }

    #[test]
    fn clear_keeps_capacity_and_allocation() {
        let mut b = ConfigBatch::with_capacity(4, 8);
        for _ in 0..8 {
            b.push_row();
        }
        let cap = b.genes.capacity();
        let ptr = b.genes.as_ptr();
        b.clear();
        assert!(b.is_empty());
        for i in 0..8 {
            let row = b.push_row();
            row.fill(i as u16);
        }
        assert_eq!(b.genes.capacity(), cap, "clear() must not shrink");
        assert_eq!(b.genes.as_ptr(), ptr, "refill must reuse the slab");
    }

    #[test]
    fn slice_views_share_the_slab() {
        let mut b = ConfigBatch::new(2);
        for i in 0..5u16 {
            b.push_genes(&[i, i + 10]);
        }
        let s = b.slice(1..4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.stride(), 2);
        assert_eq!(s.row(0), &[1, 11]);
        assert_eq!(s.row(2), &[3, 13]);
        let whole = b.as_slice();
        assert_eq!(whole.len(), 5);
        assert!(!whole.is_empty());
        let collected: Vec<&[u16]> = s.rows().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    #[should_panic(expected = "genome shape mismatch")]
    fn ragged_push_panics() {
        let mut b = ConfigBatch::new(3);
        b.push_genes(&[1, 2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// ConfigBatch round-trips Configurations exactly: pushing any
        /// set of same-shape genomes and materializing them back yields
        /// the identical configurations, whichever of the three push
        /// paths wrote them.
        #[test]
        fn round_trips_configurations_exactly(
            stride in 1usize..9,
            raw in proptest::collection::vec(any::<u16>(), 0..120),
        ) {
            let rows = raw.len() / stride;
            let configs: Vec<crate::config::Configuration> = (0..rows)
                .map(|r| crate::config::Configuration::from_genes(
                    raw[r * stride..(r + 1) * stride].to_vec(),
                ))
                .collect();
            let mut b = ConfigBatch::new(stride);
            for (i, c) in configs.iter().enumerate() {
                match i % 3 {
                    0 => b.push_config(c),
                    1 => b.push_genes(c.genes()),
                    _ => b.push_row().copy_from_slice(c.genes()),
                }
            }
            prop_assert_eq!(b.len(), rows);
            for (i, c) in configs.iter().enumerate() {
                prop_assert_eq!(&b.to_configuration(i), c);
                prop_assert_eq!(b.row(i), c.genes());
                prop_assert_eq!(b.as_slice().row(i), c.genes());
            }
            if rows > 0 {
                let rebuilt = ConfigBatch::from_configs(&configs);
                prop_assert_eq!(rebuilt.genes, b.genes);
            }
        }
    }
}
