//! Exhaustive Pareto construction over a (small enough) configuration
//! space — used for the "Optimal Pareto" row of Table 4, where the paper
//! enumerates all 4.92·10^7 reduced Sobel configurations.

use super::Estimator;
use crate::config::{ConfigSpace, Configuration};
use crate::pareto::ParetoFront;

/// Enumerates the whole space and returns its exact Pareto front under the
/// estimator.
///
/// # Panics
/// Panics if the space exceeds 10^8 configurations (see
/// [`ConfigSpace::iter_all`]).
pub fn exhaustive_front(
    space: &ConfigSpace,
    estimator: &impl Estimator,
) -> ParetoFront<Configuration> {
    let mut front = ParetoFront::new();
    for c in space.iter_all() {
        let est = estimator.estimate(&c);
        front.try_insert(est, c);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SlotChoices, SlotMember};
    use crate::pareto::TradeoffPoint;
    use crate::search::{heuristic_pareto, SearchOptions};
    use autoax_circuit::charlib::CircuitId;
    use autoax_circuit::OpSignature;

    fn toy_space(slots: usize, per_slot: usize) -> ConfigSpace {
        ConfigSpace::new(
            (0..slots)
                .map(|i| SlotChoices {
                    name: format!("s{i}"),
                    signature: OpSignature::ADD8,
                    members: (0..per_slot)
                        .map(|k| SlotMember {
                            id: CircuitId(k as u32),
                            wmed: k as f64,
                        })
                        .collect(),
                })
                .collect(),
        )
    }

    fn estimator(c: &Configuration) -> TradeoffPoint {
        let t: f64 = c.0.iter().map(|&v| v as f64 * v as f64).sum();
        let u: f64 = c.0.iter().map(|&v| 9.0 - v as f64).sum();
        TradeoffPoint::new(-t, u)
    }

    #[test]
    fn heuristic_front_converges_to_exhaustive_optimum() {
        let space = toy_space(4, 4); // 256 configs
        let optimal = exhaustive_front(&space, &estimator);
        // With a budget far above the space size the heuristic visits
        // everything reachable and its front matches the optimum.
        let heuristic = heuristic_pareto(
            &space,
            &estimator,
            &SearchOptions {
                max_evals: 20_000,
                stagnation_limit: 30,
                seed: 1,
                ..SearchOptions::default()
            },
        );
        let d = crate::pareto::front_distances(&heuristic.points(), &optimal.points());
        assert!(d.to_optimal.1 < 1e-9, "{d:?}");
        assert!(d.from_optimal.1 < 1e-9, "{d:?}");
    }

    #[test]
    fn front_of_monotone_landscape_is_full_diagonal() {
        let space = toy_space(2, 3);
        // qor = -sum (maximize => prefer small sums), cost = 10 - sum
        // (minimize => prefer large sums): a genuine trade-off where every
        // distinct sum 0..=4 is non-dominated.
        let est = |c: &Configuration| {
            let t: f64 = c.0.iter().map(|&v| v as f64).sum();
            TradeoffPoint::new(-t, 10.0 - t)
        };
        let front = exhaustive_front(&space, &est);
        let mut costs: Vec<f64> = front.points().iter().map(|p| p.cost).collect();
        costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        costs.dedup();
        assert_eq!(costs, vec![6.0, 7.0, 8.0, 9.0, 10.0]);
    }
}
