//! Exhaustive Pareto construction over a (small enough) configuration
//! space — used for the "Optimal Pareto" row of Table 4, where the paper
//! enumerates all 4.92·10^7 reduced Sobel configurations.

use super::hill::SearchOptions;
use super::{ConfigBatch, Estimator, SearchStrategy};
use crate::config::{ConfigSpace, Configuration, MAX_ENUMERABLE_CONFIGS};
use crate::job::CancelToken;
use crate::pareto::{ParetoFront, TradeoffPoint};

/// Rows per enumeration slab. Enumeration has no sequential feedback
/// (the odometer never looks at an estimate), so unlike the hill climb's
/// fixed 32-candidate rounds the slab can be as large as cache economics
/// allow: big slabs amortize the per-call overhead of the fused forest
/// kernel (dispatch, scratch setup, block fill) over thousands of rows.
/// Results are bitwise invariant to the slab size — batch estimates equal
/// per-row estimates and insertion order is the enumeration order — so
/// this is a pure throughput knob; [`SearchOptions::batch_size`] still
/// wins when the caller asks for even bigger slices.
const SLAB: usize = 4096;

/// Full enumeration as a [`SearchStrategy`]: every configuration of the
/// space, in lexicographic order, estimated in columnar slabs (the
/// odometer advances in place — no per-candidate allocation) and
/// Pareto-filtered in one batched insert per slab.
/// [`SearchOptions::max_evals`] is ignored — the budget is the space
/// itself.
pub struct ExhaustiveEnumeration;

impl SearchStrategy for ExhaustiveEnumeration {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search_cancellable(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
        cancel: &CancelToken,
    ) -> ParetoFront<Configuration> {
        assert!(
            space.size() <= MAX_ENUMERABLE_CONFIGS,
            "space too large for exhaustive enumeration ({:.2e})",
            space.size()
        );
        let mut sp = autoax_telemetry::span("search.exhaustive");
        sp.field("space", space.size());
        let sizes = space.sizes();
        let stride = space.slot_count();
        let chunk = opts.batch_size.max(SLAB);
        let mut front = ParetoFront::new();
        let mut batch = ConfigBatch::with_capacity(stride, chunk);
        let mut estimates: Vec<TradeoffPoint> = Vec::with_capacity(chunk);
        let mut odometer = vec![0u16; stride];
        let mut done = false;
        while !done && !cancel.is_cancelled() {
            {
                let _t = super::phase::PhaseTimer::start(super::phase::Phase::Propose);
                batch.clear();
                while batch.len() < chunk && !done {
                    batch.push_genes(&odometer);
                    // advance the odometer (least-significant slot first,
                    // as ConfigSpace::iter_all does)
                    let mut i = 0;
                    loop {
                        if i == stride {
                            done = true;
                            break;
                        }
                        odometer[i] += 1;
                        if (odometer[i] as usize) < sizes[i] {
                            break;
                        }
                        odometer[i] = 0;
                        i += 1;
                    }
                }
            }
            estimates.clear();
            super::estimate_chunked(estimator, &batch, batch.len(), &mut estimates);
            debug_assert_eq!(estimates.len(), batch.len());
            // Batched offer — identical members and order to replaying
            // `try_insert_with` per candidate in enumeration order.
            let _t = super::phase::PhaseTimer::start(super::phase::Phase::Insert);
            front.insert_batch_with(&estimates, |i| batch.to_configuration(i));
        }
        front
    }
}

/// Enumerates the whole space and returns its exact Pareto front under the
/// estimator — the historical free-function entry point for
/// [`ExhaustiveEnumeration`].
///
/// # Panics
/// Panics if the space exceeds [`MAX_ENUMERABLE_CONFIGS`] (see
/// [`ConfigSpace::iter_all`]).
pub fn exhaustive_front(
    space: &ConfigSpace,
    estimator: &impl Estimator,
) -> ParetoFront<Configuration> {
    ExhaustiveEnumeration.search(space, estimator, &SearchOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::TradeoffPoint;
    use crate::search::testutil::toy_space;
    use crate::search::{heuristic_pareto, SearchOptions};

    fn estimator(c: &Configuration) -> TradeoffPoint {
        let t: f64 = c.genes().iter().map(|&v| v as f64 * v as f64).sum();
        let u: f64 = c.genes().iter().map(|&v| 9.0 - v as f64).sum();
        TradeoffPoint::new(-t, u)
    }

    #[test]
    fn enumeration_matches_iterator_order_and_coverage() {
        // The columnar odometer must visit exactly the configurations of
        // ConfigSpace::iter_all, and the resulting front must equal the
        // one built by inserting them one by one.
        let space = toy_space(3, 3);
        let mut reference = ParetoFront::new();
        for c in space.iter_all() {
            let est = estimator(&c);
            reference.try_insert(est, c);
        }
        let front = exhaustive_front(&space, &estimator);
        let snap = |f: &ParetoFront<Configuration>| {
            f.iter()
                .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c.genes().to_vec()))
                .collect::<Vec<_>>()
        };
        assert_eq!(snap(&reference), snap(&front));
    }

    #[test]
    fn heuristic_front_converges_to_exhaustive_optimum() {
        let space = toy_space(4, 4); // 256 configs
        let optimal = exhaustive_front(&space, &estimator);
        // With a budget far above the space size the heuristic visits
        // everything reachable and its front matches the optimum.
        let heuristic = heuristic_pareto(
            &space,
            &estimator,
            &SearchOptions {
                max_evals: 20_000,
                stagnation_limit: 30,
                seed: 1,
                ..SearchOptions::default()
            },
        );
        let d = crate::pareto::front_distances(&heuristic.points(), &optimal.points());
        assert!(d.to_optimal.1 < 1e-9, "{d:?}");
        assert!(d.from_optimal.1 < 1e-9, "{d:?}");
    }

    #[test]
    fn front_of_monotone_landscape_is_full_diagonal() {
        let space = toy_space(2, 3);
        // qor = -sum (maximize => prefer small sums), cost = 10 - sum
        // (minimize => prefer large sums): a genuine trade-off where every
        // distinct sum 0..=4 is non-dominated.
        let est = |c: &Configuration| {
            let t: f64 = c.genes().iter().map(|&v| v as f64).sum();
            TradeoffPoint::new(-t, 10.0 - t)
        };
        let front = exhaustive_front(&space, &est);
        let mut costs: Vec<f64> = front.points().iter().map(|p| p.cost).collect();
        costs.sort_by(f64::total_cmp);
        costs.dedup();
        assert_eq!(costs, vec![6.0, 7.0, 8.0, 9.0, 10.0]);
    }
}
