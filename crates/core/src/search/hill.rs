//! Algorithm 1 of the paper: heuristic Pareto set construction by
//! stochastic hill climbing over model estimates.
//!
//! ```text
//! Parent <- PickRandomlyFrom(RL_1 x ... x RL_n)
//! P <- {}
//! while not TerminationCondition:
//!     C <- GetNeighbour(Parent)
//!     eQoR <- M_QoR(C); eHW <- M_HW(C)
//!     if ParetoInsert(P, (eQoR, eHW), C): Parent <- C
//!     else if StagnationDetected:        Parent <- PickRandomlyFrom(P)
//! return P
//! ```
//!
//! Stagnation means the parent has not changed for `stagnation_limit`
//! successive iterations (the paper uses k = 50).

use super::Estimator;
use crate::config::{ConfigSpace, Configuration};
use crate::pareto::ParetoFront;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Search budget and behaviour knobs.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Number of candidate evaluations (model estimates).
    pub max_evals: usize,
    /// Parent-unchanged iterations before a restart (paper: 50).
    pub stagnation_limit: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_evals: 100_000,
            stagnation_limit: 50,
            seed: 0,
        }
    }
}

/// Runs Algorithm 1 and returns the pseudo-Pareto set.
pub fn heuristic_pareto(
    space: &ConfigSpace,
    estimator: &impl Estimator,
    opts: &SearchOptions,
) -> ParetoFront<Configuration> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut parent = space.random(&mut rng);
    let mut front: ParetoFront<Configuration> = ParetoFront::new();
    let mut stagnation = 0usize;
    for _ in 0..opts.max_evals {
        let candidate = space.neighbor(&parent, &mut rng);
        let est = estimator.estimate(&candidate);
        if front.try_insert(est, candidate.clone()) {
            parent = candidate;
            stagnation = 0;
        } else {
            stagnation += 1;
            if stagnation >= opts.stagnation_limit && !front.is_empty() {
                let pick = rng.gen_range(0..front.len());
                parent = front
                    .iter()
                    .nth(pick)
                    .map(|(_, c)| c.clone())
                    .expect("front member");
                stagnation = 0;
            }
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SlotChoices, SlotMember};
    use crate::pareto::TradeoffPoint;
    use autoax_circuit::charlib::CircuitId;
    use autoax_circuit::OpSignature;

    /// A synthetic space where member index k of every slot has
    /// wmed = k and "area" = size - k: the true Pareto front is the whole
    /// diagonal of sum-trade-offs.
    fn toy_space(slots: usize, per_slot: usize) -> ConfigSpace {
        ConfigSpace::new(
            (0..slots)
                .map(|i| SlotChoices {
                    name: format!("s{i}"),
                    signature: OpSignature::ADD8,
                    members: (0..per_slot)
                        .map(|k| SlotMember {
                            id: CircuitId(k as u32),
                            wmed: k as f64,
                        })
                        .collect(),
                })
                .collect(),
        )
    }

    fn toy_estimator(c: &Configuration) -> TradeoffPoint {
        // qor decreases with total wmed, cost decreases with wmed
        let total: f64 = c.0.iter().map(|&v| v as f64).sum();
        TradeoffPoint::new(-total, 100.0 - total)
    }

    #[test]
    fn finds_extreme_points() {
        let space = toy_space(4, 6);
        let opts = SearchOptions {
            max_evals: 20_000,
            stagnation_limit: 50,
            seed: 3,
        };
        let front = heuristic_pareto(&space, &toy_estimator, &opts);
        // with qor = -t and cost = 100 - t, every distinct t is
        // non-dominated; the search should discover most of the 21 levels
        assert!(front.len() >= 15, "only {} levels found", front.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let space = toy_space(3, 5);
        let opts = SearchOptions {
            max_evals: 5_000,
            stagnation_limit: 50,
            seed: 9,
        };
        let f1 = heuristic_pareto(&space, &toy_estimator, &opts);
        let f2 = heuristic_pareto(&space, &toy_estimator, &opts);
        assert_eq!(f1.len(), f2.len());
        let p1: Vec<_> = f1.points().iter().map(|p| (p.qor, p.cost)).collect();
        let p2: Vec<_> = f2.points().iter().map(|p| (p.qor, p.cost)).collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn front_members_are_mutually_nondominated() {
        let space = toy_space(3, 4);
        let estimator = |c: &Configuration| {
            // rugged landscape: xor-style interactions
            let a = c.0[0] as f64;
            let b = c.0[1] as f64;
            let d = c.0[2] as f64;
            TradeoffPoint::new((a - b).abs() + d, a + b + 2.0 * d)
        };
        let front = heuristic_pareto(
            &space,
            &estimator,
            &SearchOptions {
                max_evals: 3000,
                stagnation_limit: 20,
                seed: 5,
            },
        );
        let pts = front.points();
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b));
                }
            }
        }
    }

    #[test]
    fn more_evals_do_not_shrink_front_quality() {
        let space = toy_space(5, 8);
        let run = |evals: usize| {
            heuristic_pareto(
                &space,
                &toy_estimator,
                &SearchOptions {
                    max_evals: evals,
                    stagnation_limit: 50,
                    seed: 11,
                },
            )
            .len()
        };
        assert!(run(20_000) >= run(500));
    }
}
