//! Algorithm 1 of the paper: heuristic Pareto set construction by
//! stochastic hill climbing over model estimates.
//!
//! ```text
//! Parent <- PickRandomlyFrom(RL_1 x ... x RL_n)
//! P <- {}
//! while not TerminationCondition:
//!     C <- GetNeighbour(Parent)
//!     eQoR <- M_QoR(C); eHW <- M_HW(C)
//!     if ParetoInsert(P, (eQoR, eHW), C): Parent <- C
//!     else if StagnationDetected:        Parent <- PickRandomlyFrom(P)
//! return P
//! ```
//!
//! Stagnation means the parent has not changed for `stagnation_limit`
//! successive iterations (the paper uses k = 50).
//!
//! # Parallel island search
//!
//! The paper runs 10⁵ (Sobel) to 10⁶ (GF) estimates per search, which
//! makes estimation throughput the Step-3 bottleneck. [`HillClimb`]
//! therefore runs a **multi-start island** variant: `islands` independent
//! copies of Algorithm 1, each with its own RNG stream derived from the
//! master seed, executed on scoped worker threads. Each island proposes
//! candidates in fixed-size *rounds* — every candidate of a round is a
//! neighbour of the island's current parent, generated before any of the
//! round's estimates are consumed — so the round can be estimated with one
//! batched [`Estimator::estimate_slice`] call and then replayed through
//! the sequential `ParetoInsert` logic above.
//!
//! The round lives in a columnar [`ConfigBatch`]: candidates are written
//! in place with [`ConfigSpace::neighbor_into`], estimated straight off
//! the slab, and only an *accepted* candidate (a successful
//! `ParetoInsert`) materializes a [`Configuration`] — the eval loop
//! performs **zero per-candidate heap allocations**.
//!
//! At fixed synchronization epochs the island fronts are merged into the
//! global front **in island order**, and the merged front is shared back,
//! so stagnation restarts in later epochs draw from the best points found
//! anywhere. Determinism guarantees:
//!
//! * results are a pure function of `(seed, max_evals, stagnation_limit,
//!   islands)`;
//! * the worker-thread count ([`SearchOptions::threads`] /
//!   `AUTOAX_THREADS`) never changes the result — islands are
//!   deterministic in isolation and merged in island order;
//! * the estimation batch granularity ([`SearchOptions::batch_size`])
//!   never changes the result — a round's candidates are fixed before
//!   estimation, and batch estimates are bitwise equal to per-row
//!   estimates.
//!
//! The pre-island sequential loop is kept as
//! [`heuristic_pareto_scalar`] — the baseline the `search_throughput`
//! bench compares against.

use super::{ConfigBatch, Estimator, SearchAlgo, SearchStrategy};
use crate::config::{ConfigSpace, Configuration};
use crate::job::CancelToken;
use crate::pareto::{ParetoFront, TradeoffPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Candidates proposed per island round (one batched estimation per
/// round). Fixed — not a tuning knob — so that search results depend only
/// on the semantic options, never on execution-layer configuration.
const ROUND: usize = 32;

/// Number of island synchronization epochs per search: after each epoch
/// the island fronts merge into the global front (in island order) and the
/// merged front is shared back for the next epoch's restarts.
const SYNC_EPOCHS: usize = 4;

/// Search budget and behaviour knobs shared by every
/// [`super::SearchStrategy`].
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Which strategy [`super::run_search`] dispatches to.
    pub strategy: SearchAlgo,
    /// Number of candidate evaluations (model estimates).
    pub max_evals: usize,
    /// Parent-unchanged iterations before a restart (paper: 50; hill
    /// only).
    pub stagnation_limit: usize,
    /// RNG seed.
    pub seed: u64,
    /// Independent search islands (semantic knob: changes the trajectory,
    /// deterministically; hill only). The eval budget is split evenly
    /// across islands.
    pub islands: usize,
    /// Error levels of the manual uniform-selection baseline
    /// ([`super::UniformSelection`] only).
    pub uniform_levels: usize,
    /// Maximum genomes per [`Estimator::estimate_slice`] call.
    /// Pure throughput knob — any value produces identical results.
    pub batch_size: usize,
    /// Worker threads for the island search; `0` = the execution layer's
    /// default ([`autoax_exec::thread_count`]). Pure throughput knob —
    /// any value produces identical results.
    pub threads: usize,
    /// Active-learning surrogate refinement between search epochs
    /// ([`crate::refine`]). [`crate::refine::RefinementSchedule::off`]
    /// (the default) runs the plain single-shot search.
    pub refine: crate::refine::RefinementSchedule,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            strategy: SearchAlgo::Hill,
            max_evals: 100_000,
            stagnation_limit: 50,
            seed: 0,
            islands: 8,
            uniform_levels: 25,
            batch_size: ROUND,
            threads: 0,
            refine: crate::refine::RefinementSchedule::off(),
        }
    }
}

/// Per-island search state carried across rounds and epochs.
struct Island {
    rng: StdRng,
    /// Current parent genome (flat, no `Configuration` on the hot path).
    parent: Vec<u16>,
    stagnation: usize,
    front: ParetoFront<Configuration>,
    /// Remaining eval budget over the whole search.
    budget: usize,
    /// Evals to spend in the current epoch.
    epoch_budget: usize,
    /// Reused columnar arena for one round of candidates.
    round: ConfigBatch,
    /// Reused estimate buffer, aligned with `round`.
    estimates: Vec<TradeoffPoint>,
}

/// SplitMix64-style per-island seed derivation: decorrelates the island
/// RNG streams from each other and from the master seed.
fn island_seed(master: u64, island: u64) -> u64 {
    let mut z = master ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(island.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Island {
    fn new(space: &ConfigSpace, seed: u64, budget: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut parent = vec![0u16; space.slot_count()];
        space.random_into(&mut parent, &mut rng);
        Island {
            rng,
            parent,
            stagnation: 0,
            front: ParetoFront::new(),
            budget,
            epoch_budget: 0,
            round: ConfigBatch::with_capacity(space.slot_count(), ROUND),
            estimates: Vec::with_capacity(ROUND),
        }
    }

    /// Runs `epoch_budget` evaluations in rounds of [`ROUND`] candidates,
    /// polling `cancel` between rounds.
    fn run_epoch(
        &mut self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
        cancel: &CancelToken,
    ) {
        let limit = opts.stagnation_limit.max(1);
        let mut remaining = self.epoch_budget;
        while remaining > 0 && !cancel.is_cancelled() {
            let r = ROUND.min(remaining);
            // Propose the whole round up front (all neighbours of the
            // current parent), written straight into the columnar arena:
            // the trajectory is fixed before estimation, which is what
            // makes the batch granularity inert.
            {
                let _t = super::phase::PhaseTimer::start(super::phase::Phase::Propose);
                self.round.clear();
                for _ in 0..r {
                    space.neighbor_into(&self.parent, self.round.push_row(), &mut self.rng);
                }
            }
            self.estimates.clear();
            super::estimate_chunked(estimator, &self.round, opts.batch_size, &mut self.estimates);
            // Replay the round through the sequential Algorithm-1 logic;
            // only accepted candidates materialize a Configuration.
            let _t = super::phase::PhaseTimer::start(super::phase::Phase::Insert);
            for i in 0..r {
                let est = self.estimates[i];
                let genes = self.round.row(i);
                if self
                    .front
                    .try_insert_with(est, || Configuration::from_genes(genes.to_vec()))
                {
                    self.parent.copy_from_slice(genes);
                    self.stagnation = 0;
                } else {
                    self.stagnation += 1;
                    if self.stagnation >= limit && !self.front.is_empty() {
                        let pick = self.rng.gen_range(0..self.front.len());
                        let (_, cc) = self.front.iter().nth(pick).expect("front member");
                        self.parent.copy_from_slice(cc.genes());
                        self.stagnation = 0;
                    }
                }
            }
            remaining -= r;
        }
    }
}

/// The batched, multi-core island variant of Algorithm 1 — the paper's
/// search, ported onto the [`super::SearchStrategy`] engine.
///
/// The result is byte-identical for a given `(seed, max_evals,
/// stagnation_limit, islands)` regardless of [`SearchOptions::threads`]
/// and [`SearchOptions::batch_size`]; see the module docs for the
/// guarantees. A golden parity test pins the output bit-for-bit to the
/// pre-engine `heuristic_pareto` implementation.
pub struct HillClimb;

impl HillClimb {
    /// The island search body, warm-started from `initial`: the global
    /// front, the duplicate-offer filter and every island's front are
    /// seeded with the initial members (in stored front order) before the
    /// first epoch, so stagnation restarts can jump to warm discoveries
    /// immediately. An empty `initial` reduces to exactly the plain
    /// search — the seeding loops are no-ops.
    fn run_islands(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
        cancel: &CancelToken,
        initial: &ParetoFront<Configuration>,
    ) -> ParetoFront<Configuration> {
        let islands = opts.islands.max(1);
        let threads = if opts.threads == 0 {
            autoax_exec::thread_count()
        } else {
            opts.threads
        };
        // Split the eval budget across islands: the first
        // `max_evals % islands` islands take one extra eval.
        let base = opts.max_evals / islands;
        let extra = opts.max_evals % islands;
        let mut states: Vec<Island> = (0..islands)
            .map(|i| {
                let budget = base + usize::from(i < extra);
                Island::new(space, island_seed(opts.seed, i as u64), budget)
            })
            .collect();
        let mut global: ParetoFront<Configuration> = ParetoFront::new();
        // Every trade-off point ever offered to `global`, by bit pattern.
        // Once `try_insert` has seen a point it will reject that point
        // forever (a rejecting member can only be evicted by a
        // transitively dominating one), so the merge can skip re-offers —
        // in particular the shared front cloned back to every island — in
        // O(1) instead of replaying an O(|front|) scan per member per
        // epoch.
        let mut seen: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
        for (p, c) in initial.iter() {
            if seen.insert((p.qor.to_bits(), p.cost.to_bits())) {
                global.try_insert(*p, c.clone());
            }
        }
        if !global.is_empty() {
            for st in &mut states {
                st.front = global.clone();
            }
        }
        for epoch in 0..SYNC_EPOCHS {
            if cancel.is_cancelled() {
                break;
            }
            for st in &mut states {
                // Spend 1/SYNC_EPOCHS of the island budget per epoch; the
                // last epoch takes the remainder.
                st.epoch_budget = if epoch + 1 == SYNC_EPOCHS {
                    st.budget
                } else {
                    st.budget / (SYNC_EPOCHS - epoch)
                };
                st.budget -= st.epoch_budget;
            }
            states = autoax_exec::par_map_owned_with(threads.min(islands), states, |mut st| {
                st.run_epoch(space, estimator, opts, cancel);
                st
            });
            // Deterministic merge: island order, then each island's
            // insertion order. `try_insert` rejects duplicates and evicts
            // dominated members, so the global front stays minimal.
            for st in &states {
                for (p, c) in st.front.iter() {
                    if seen.insert((p.qor.to_bits(), p.cost.to_bits())) {
                        global.try_insert(*p, c.clone());
                    }
                }
            }
            // Share the merged knowledge back so later-epoch stagnation
            // restarts can jump to any island's discoveries.
            for st in &mut states {
                st.front = global.clone();
            }
        }
        global
    }
}

impl SearchStrategy for HillClimb {
    fn name(&self) -> &'static str {
        "hill"
    }

    fn search_cancellable(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
        cancel: &CancelToken,
    ) -> ParetoFront<Configuration> {
        let mut sp = autoax_telemetry::span("search.hill");
        sp.field("max_evals", opts.max_evals);
        self.run_islands(space, estimator, opts, cancel, &ParetoFront::new())
    }

    fn search_epoch(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
        cancel: &CancelToken,
        warm: &ParetoFront<Configuration>,
    ) -> ParetoFront<Configuration> {
        let mut sp = autoax_telemetry::span("search.hill.epoch");
        sp.field("warm", warm.len());
        let warm = super::reestimate_front(estimator, warm);
        self.run_islands(space, estimator, opts, cancel, &warm)
    }
}

/// Runs the island [`HillClimb`] strategy — kept as the historical free-
/// function entry point; new code selects strategies through
/// [`super::run_search`] / [`SearchAlgo`].
pub fn heuristic_pareto(
    space: &ConfigSpace,
    estimator: &impl Estimator,
    opts: &SearchOptions,
) -> ParetoFront<Configuration> {
    HillClimb.search(space, estimator, opts)
}

/// The original single-threaded, one-estimate-per-iteration Algorithm 1 —
/// the scalar baseline for the island search (kept for the
/// `search_throughput` bench and as the paper-literal reference).
pub fn heuristic_pareto_scalar(
    space: &ConfigSpace,
    estimator: &impl Estimator,
    opts: &SearchOptions,
) -> ParetoFront<Configuration> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut parent = space.random(&mut rng);
    let mut front: ParetoFront<Configuration> = ParetoFront::new();
    let mut stagnation = 0usize;
    for _ in 0..opts.max_evals {
        let candidate = space.neighbor(&parent, &mut rng);
        let est = estimator.estimate(&candidate);
        if front.try_insert(est, candidate.clone()) {
            parent = candidate;
            stagnation = 0;
        } else {
            stagnation += 1;
            if stagnation >= opts.stagnation_limit && !front.is_empty() {
                let pick = rng.gen_range(0..front.len());
                parent = front
                    .iter()
                    .nth(pick)
                    .map(|(_, c)| c.clone())
                    .expect("front member");
                stagnation = 0;
            }
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::TradeoffPoint;
    use crate::search::testutil::{snapshot, toy_space};

    fn toy_estimator(c: &Configuration) -> TradeoffPoint {
        // qor decreases with total wmed, cost decreases with wmed
        let total: f64 = c.genes().iter().map(|&v| v as f64).sum();
        TradeoffPoint::new(-total, 100.0 - total)
    }

    #[test]
    fn finds_extreme_points() {
        let space = toy_space(4, 6);
        let opts = SearchOptions {
            max_evals: 20_000,
            seed: 3,
            ..SearchOptions::default()
        };
        let front = heuristic_pareto(&space, &toy_estimator, &opts);
        // with qor = -t and cost = 100 - t, every distinct t is
        // non-dominated; the search should discover most of the 21 levels
        assert!(front.len() >= 15, "only {} levels found", front.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let space = toy_space(3, 5);
        let opts = SearchOptions {
            max_evals: 5_000,
            seed: 9,
            ..SearchOptions::default()
        };
        let f1 = heuristic_pareto(&space, &toy_estimator, &opts);
        let f2 = heuristic_pareto(&space, &toy_estimator, &opts);
        assert_eq!(f1.len(), f2.len());
        let p1: Vec<_> = f1.points().iter().map(|p| (p.qor, p.cost)).collect();
        let p2: Vec<_> = f2.points().iter().map(|p| (p.qor, p.cost)).collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn identical_fronts_for_thread_counts_1_2_8() {
        let space = toy_space(5, 7);
        let run = |threads: usize| {
            heuristic_pareto(
                &space,
                &toy_estimator,
                &SearchOptions {
                    max_evals: 6_000,
                    seed: 17,
                    threads,
                    ..SearchOptions::default()
                },
            )
        };
        let one = snapshot(&run(1));
        for threads in [2, 8] {
            assert_eq!(one, snapshot(&run(threads)), "threads={threads} diverged");
        }
    }

    #[test]
    fn identical_fronts_for_any_batch_size() {
        let space = toy_space(4, 6);
        let run = |batch_size: usize| {
            heuristic_pareto(
                &space,
                &toy_estimator,
                &SearchOptions {
                    max_evals: 4_000,
                    seed: 23,
                    batch_size,
                    ..SearchOptions::default()
                },
            )
        };
        let reference = snapshot(&run(1));
        for batch in [3, 7, 32, 1000] {
            assert_eq!(reference, snapshot(&run(batch)), "batch={batch} diverged");
        }
    }

    #[test]
    fn island_count_is_a_semantic_knob() {
        // Different island counts are allowed to (and generally do)
        // explore different trajectories — but each must be internally
        // deterministic.
        let space = toy_space(4, 6);
        let run = |islands: usize| {
            heuristic_pareto(
                &space,
                &toy_estimator,
                &SearchOptions {
                    max_evals: 2_000,
                    seed: 5,
                    islands,
                    ..SearchOptions::default()
                },
            )
        };
        for islands in [1, 2, 8] {
            assert_eq!(
                snapshot(&run(islands)),
                snapshot(&run(islands)),
                "islands={islands} not deterministic"
            );
        }
    }

    #[test]
    fn scalar_baseline_matches_historical_behavior() {
        // The scalar path is the pre-island sequential loop; it must stay
        // deterministic and produce a sane front.
        let space = toy_space(4, 6);
        let opts = SearchOptions {
            max_evals: 10_000,
            seed: 3,
            ..SearchOptions::default()
        };
        let a = heuristic_pareto_scalar(&space, &toy_estimator, &opts);
        let b = heuristic_pareto_scalar(&space, &toy_estimator, &opts);
        assert_eq!(snapshot(&a), snapshot(&b));
        assert!(a.len() >= 15, "scalar found only {} levels", a.len());
    }

    #[test]
    fn front_members_are_mutually_nondominated() {
        let space = toy_space(3, 4);
        let estimator = |c: &Configuration| {
            // rugged landscape: xor-style interactions
            let a = c.genes()[0] as f64;
            let b = c.genes()[1] as f64;
            let d = c.genes()[2] as f64;
            TradeoffPoint::new((a - b).abs() + d, a + b + 2.0 * d)
        };
        let front = heuristic_pareto(
            &space,
            &estimator,
            &SearchOptions {
                max_evals: 3000,
                stagnation_limit: 20,
                seed: 5,
                ..SearchOptions::default()
            },
        );
        let pts = front.points();
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b));
                }
            }
        }
    }

    #[test]
    fn more_evals_do_not_shrink_front_quality() {
        let space = toy_space(5, 8);
        let run = |evals: usize| {
            heuristic_pareto(
                &space,
                &toy_estimator,
                &SearchOptions {
                    max_evals: evals,
                    seed: 11,
                    ..SearchOptions::default()
                },
            )
            .len()
        };
        assert!(run(20_000) >= run(500));
    }
}
