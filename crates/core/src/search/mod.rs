//! Step 3 of the methodology: model-based design space exploration,
//! unified behind the pluggable [`SearchStrategy`] engine.
//!
//! Every algorithm implements one trait over one candidate representation
//! (the columnar [`ConfigBatch`] plane of [`batch`]) and is driven by one
//! option set ([`SearchOptions`]), so pipelines, benches and examples
//! select a strategy by name ([`SearchAlgo`]) instead of hard-wiring a
//! free function:
//!
//! * [`hill`] — the paper's Algorithm 1 (stochastic hill climbing with
//!   `ParetoInsert` and stagnation restarts), as the parallel island
//!   search;
//! * [`nsga2`] — NSGA-II with crowding distance, the classic
//!   multi-objective evolutionary baseline the paper's algorithm is
//!   usually compared against;
//! * [`random`] — the random-sampling baseline of Table 4 / Fig. 5;
//! * [`uniform`] — the manual "uniform selection" baseline of Fig. 5;
//! * [`exhaustive`] — full enumeration, used for the optimal fronts of
//!   Table 4 and for tests.
//!
//! Strategies are compared quantitatively with the hypervolume indicator
//! ([`crate::pareto::hypervolume2`] / [`crate::pareto::joint_hypervolumes`]).
//!
//! # Adding a strategy
//!
//! Implement [`SearchStrategy`] (generate candidates into a
//! [`ConfigBatch`], estimate them through
//! [`Estimator::estimate_slice`], keep the non-dominated set in a
//! [`ParetoFront`]), add a variant to [`SearchAlgo`], and every entry
//! point — `run_pipeline`, the bench binaries, the examples'
//! `--strategy` flag — can select it.

pub mod batch;
pub mod exhaustive;
pub mod hill;
pub mod nsga2;
pub mod phase;
pub mod random;
pub mod uniform;

pub use batch::{ConfigBatch, ConfigSlice};
pub use exhaustive::{exhaustive_front, ExhaustiveEnumeration};
pub use hill::{heuristic_pareto, heuristic_pareto_scalar, HillClimb, SearchOptions};
pub use nsga2::Nsga2;
pub use phase::SearchTimings;
pub use random::{random_sampling, RandomSampling};
pub use uniform::{uniform_selection, UniformSelection};

use crate::config::{ConfigSpace, Configuration};
use crate::job::CancelToken;
use crate::pareto::{ParetoFront, TradeoffPoint};
use autoax_telemetry::ax_warn;

/// An estimation oracle mapping a configuration to `(QoR, cost)` — in the
/// pipeline this is a pair of fitted models, in tests a closed form.
///
/// Estimators are immutable (`Sync`) so the island search can share one
/// instance across worker threads.
pub trait Estimator: Sync {
    /// Estimates the trade-off point of a configuration.
    fn estimate(&self, c: &Configuration) -> TradeoffPoint;

    /// Estimates a batch of configurations at once.
    ///
    /// The default loops over [`Estimator::estimate`]; model-backed
    /// estimators override this to encode all features into one matrix
    /// and run a single batched prediction per model (see
    /// [`crate::model::ModelEstimator`]). Implementations must return
    /// exactly `configs.len()` points, bitwise equal to what per-row
    /// estimation would produce, so batch granularity never changes
    /// search results.
    fn estimate_batch(&self, configs: &[Configuration]) -> Vec<TradeoffPoint> {
        configs.iter().map(|c| self.estimate(c)).collect()
    }

    /// Estimates a columnar slice of candidate genomes, appending one
    /// point per row to `out` — the allocation-free hot path every
    /// [`SearchStrategy`] drives.
    ///
    /// The default materializes configurations and delegates to
    /// [`Estimator::estimate_batch`] (correct for ad-hoc closures, but
    /// allocating); [`crate::model::ModelEstimator`] overrides it to
    /// gather features straight from the slab. Results must be bitwise
    /// equal to per-row estimation.
    fn estimate_slice(&self, rows: ConfigSlice<'_>, out: &mut Vec<TradeoffPoint>) {
        let configs: Vec<Configuration> = rows
            .rows()
            .map(|r| Configuration::from_genes(r.to_vec()))
            .collect();
        out.extend(self.estimate_batch(&configs));
    }
}

impl<F> Estimator for F
where
    F: Fn(&Configuration) -> TradeoffPoint + Sync,
{
    fn estimate(&self, c: &Configuration) -> TradeoffPoint {
        self(c)
    }
}

/// A Step-3 search algorithm: drives an [`Estimator`] over a
/// [`ConfigSpace`] within the budget of a [`SearchOptions`] and reports
/// the non-dominated set it found.
///
/// Implementations must be deterministic functions of
/// `(space, estimator, opts)` — the throughput knobs
/// ([`SearchOptions::batch_size`], [`SearchOptions::threads`]) never
/// change the result.
pub trait SearchStrategy: Sync {
    /// Stable lowercase name (CLI flags, bench labels, timing reports).
    fn name(&self) -> &'static str;

    /// Runs the search and returns the pseudo-Pareto set.
    fn search(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
    ) -> ParetoFront<Configuration> {
        self.search_cancellable(space, estimator, opts, &CancelToken::new())
    }

    /// [`SearchStrategy::search`] with cooperative cancellation: the
    /// strategy polls `cancel` at round/epoch boundaries and returns the
    /// front accumulated so far once it fires. An un-cancelled token
    /// must produce exactly the [`SearchStrategy::search`] result.
    fn search_cancellable(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
        cancel: &CancelToken,
    ) -> ParetoFront<Configuration>;

    /// One epoch of the refinement loop ([`crate::refine`]): like
    /// [`SearchStrategy::search_cancellable`], but warm-started from the
    /// front of the previous epoch. The warm points are re-estimated
    /// under the *current* estimator (the models were refitted between
    /// epochs, so stored points are stale) before they participate.
    ///
    /// The default runs a fresh search and merges the re-estimated warm
    /// members afterwards; trajectory strategies (hill, NSGA-II)
    /// override it to seed their islands/population so the epoch
    /// genuinely continues the search. Every implementation must be
    /// byte-identical to [`SearchStrategy::search_cancellable`] when
    /// `warm` is empty, and remain invariant to the throughput knobs.
    fn search_epoch(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
        cancel: &CancelToken,
        warm: &ParetoFront<Configuration>,
    ) -> ParetoFront<Configuration> {
        let mut front = self.search_cancellable(space, estimator, opts, cancel);
        for (p, c) in reestimate_front(estimator, warm).iter() {
            front.try_insert(*p, c.clone());
        }
        front
    }
}

/// Re-estimates a front's configurations under the current estimator and
/// rebuilds the non-dominated set, offering members in stored front
/// order. The warm-start glue of [`SearchStrategy::search_epoch`]:
/// points stored by a previous epoch came from a previous model
/// generation and cannot be compared against fresh estimates directly.
/// Deterministic at any thread count because batch estimation is bitwise
/// identical to per-row estimation.
pub fn reestimate_front(
    estimator: &dyn Estimator,
    front: &ParetoFront<Configuration>,
) -> ParetoFront<Configuration> {
    if front.is_empty() {
        return ParetoFront::new();
    }
    let configs: Vec<Configuration> = front.iter().map(|(_, c)| c.clone()).collect();
    let points = {
        let _t = phase::PhaseTimer::start(phase::Phase::Estimate);
        phase::count_estimates(configs.len());
        estimator.estimate_batch(&configs)
    };
    let mut out = ParetoFront::new();
    for (p, c) in points.into_iter().zip(configs) {
        out.try_insert(p, c);
    }
    out
}

/// The registry of built-in strategies — the `search_strategy` scenario
/// axis threaded through `PipelineOptions`, the bench binaries and the
/// examples' `--strategy` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchAlgo {
    /// Parallel island variant of the paper's Algorithm 1 (the default).
    Hill,
    /// NSGA-II with crowding distance.
    Nsga2,
    /// Uniform random sampling.
    Random,
    /// Manual uniform WMED-level selection.
    Uniform,
    /// Full enumeration (small spaces only).
    Exhaustive,
}

impl SearchAlgo {
    /// Every built-in strategy.
    pub const ALL: [SearchAlgo; 5] = [
        SearchAlgo::Hill,
        SearchAlgo::Nsga2,
        SearchAlgo::Random,
        SearchAlgo::Uniform,
        SearchAlgo::Exhaustive,
    ];

    /// True for strategies that spend exactly [`SearchOptions::max_evals`]
    /// model estimates. [`SearchAlgo::Uniform`] (level-grid-sized) and
    /// [`SearchAlgo::Exhaustive`] (space-sized) ignore the budget;
    /// throughput metrics count actual estimator rows
    /// ([`SearchTimings::estimates`]) so they stay meaningful either way.
    pub fn budgeted(self) -> bool {
        !matches!(self, SearchAlgo::Uniform | SearchAlgo::Exhaustive)
    }

    /// The stable lowercase name (matches [`SearchStrategy::name`]).
    pub fn name(self) -> &'static str {
        match self {
            SearchAlgo::Hill => "hill",
            SearchAlgo::Nsga2 => "nsga2",
            SearchAlgo::Random => "random",
            SearchAlgo::Uniform => "uniform",
            SearchAlgo::Exhaustive => "exhaustive",
        }
    }

    /// Parses a strategy name (the [`SearchAlgo::name`] spelling plus a
    /// few common aliases). Returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<SearchAlgo> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hill" | "hill-climb" | "hillclimb" | "algorithm1" => Some(SearchAlgo::Hill),
            "nsga2" | "nsga-ii" | "nsga" => Some(SearchAlgo::Nsga2),
            "random" | "rs" => Some(SearchAlgo::Random),
            "uniform" => Some(SearchAlgo::Uniform),
            "exhaustive" | "optimal" => Some(SearchAlgo::Exhaustive),
            _ => None,
        }
    }

    /// Parses `--strategy <name>` / `--strategy=<name>` from argv-style
    /// args. Unknown names and a missing value warn through the leveled
    /// logger (`AUTOAX_LOG=warn`) and fall back to `None` (caller keeps
    /// its default).
    pub fn from_args(args: &[String]) -> Option<SearchAlgo> {
        for (i, a) in args.iter().enumerate() {
            let v = if let Some(rest) = a.strip_prefix("--strategy=") {
                Some(rest.to_string())
            } else if a == "--strategy" {
                let next = args.get(i + 1).cloned();
                if next.is_none() {
                    ax_warn!("--strategy needs a value, keeping default");
                    return None;
                }
                next
            } else {
                None
            };
            if let Some(v) = v {
                match SearchAlgo::parse(&v) {
                    Some(algo) => return Some(algo),
                    None => {
                        ax_warn!(
                            "unknown search strategy `{v}` (expected one of {}), keeping default",
                            SearchAlgo::ALL.map(|a| a.name()).join("|")
                        );
                        return None;
                    }
                }
            }
        }
        None
    }

    /// The strategy implementation behind the name.
    pub fn strategy(self) -> &'static dyn SearchStrategy {
        match self {
            SearchAlgo::Hill => &HillClimb,
            SearchAlgo::Nsga2 => &Nsga2,
            SearchAlgo::Random => &RandomSampling,
            SearchAlgo::Uniform => &UniformSelection,
            SearchAlgo::Exhaustive => &ExhaustiveEnumeration,
        }
    }
}

impl std::fmt::Display for SearchAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs the strategy selected by [`SearchOptions::strategy`] — the single
/// Step-3 entry point the pipeline and the bench binaries share.
pub fn run_search(
    space: &ConfigSpace,
    estimator: &impl Estimator,
    opts: &SearchOptions,
) -> ParetoFront<Configuration> {
    opts.strategy.strategy().search(space, estimator, opts)
}

/// [`run_search`] with cooperative cancellation — what the service tier
/// drives so a shutdown or client disconnect stops a job within one
/// search round.
pub fn run_search_cancellable(
    space: &ConfigSpace,
    estimator: &impl Estimator,
    opts: &SearchOptions,
    cancel: &CancelToken,
) -> ParetoFront<Configuration> {
    opts.strategy
        .strategy()
        .search_cancellable(space, estimator, opts, cancel)
}

/// Estimates every row of `batch` in `chunk`-row slices through
/// [`Estimator::estimate_slice`], appending to `out` — the one chunked
/// driver loop every strategy shares. Results are invariant to `chunk`
/// (a zero chunk is treated as 1); exactly `batch.len()` points are
/// appended.
pub fn estimate_chunked(
    estimator: &dyn Estimator,
    batch: &ConfigBatch,
    chunk: usize,
    out: &mut Vec<TradeoffPoint>,
) {
    let n = batch.len();
    let chunk = chunk.max(1);
    let before = out.len();
    let _t = phase::PhaseTimer::start(phase::Phase::Estimate);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        estimator.estimate_slice(batch.slice(start..end), out);
        start = end;
    }
    phase::count_estimates(n);
    debug_assert_eq!(out.len() - before, n, "estimator returned wrong count");
}

/// Shared fixtures for the per-strategy test modules.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::config::{SlotChoices, SlotMember};
    use autoax_circuit::charlib::CircuitId;
    use autoax_circuit::OpSignature;

    /// A synthetic space where member index k of every slot has wmed = k.
    pub(crate) fn toy_space(slots: usize, per_slot: usize) -> ConfigSpace {
        ConfigSpace::new(
            (0..slots)
                .map(|i| SlotChoices {
                    name: format!("s{i}"),
                    signature: OpSignature::ADD8,
                    members: (0..per_slot)
                        .map(|k| SlotMember {
                            id: CircuitId(k as u32),
                            wmed: k as f64,
                        })
                        .collect(),
                })
                .collect(),
        )
    }

    /// Full result of a front, payload genomes included, for byte-identity
    /// comparisons.
    pub(crate) fn snapshot(front: &ParetoFront<Configuration>) -> Vec<(u64, u64, Vec<u16>)> {
        front
            .iter()
            .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c.genes().to_vec()))
            .collect()
    }

    /// An estimator where good trade-offs are *rare*: quality comes from
    /// all-equal assignments, which random sampling seldom hits.
    pub(crate) fn needle_estimator(c: &Configuration) -> TradeoffPoint {
        let g = c.genes();
        let t: f64 = g.iter().map(|&v| v as f64).sum();
        let spread = g
            .iter()
            .map(|&v| v as f64)
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                (lo.min(v), hi.max(v))
            });
        let penalty = (spread.1 - spread.0) * 3.0;
        TradeoffPoint::new(-(t + penalty), 100.0 - t + penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_names_round_trip_through_parse() {
        for algo in SearchAlgo::ALL {
            assert_eq!(SearchAlgo::parse(algo.name()), Some(algo));
            assert_eq!(algo.strategy().name(), algo.name());
            assert_eq!(algo.to_string(), algo.name());
        }
        assert_eq!(SearchAlgo::parse("NSGA-II"), Some(SearchAlgo::Nsga2));
        assert_eq!(SearchAlgo::parse("no-such-algo"), None);
    }

    #[test]
    fn budgeted_marks_the_fixed_cost_strategies() {
        for algo in SearchAlgo::ALL {
            let expect = !matches!(algo, SearchAlgo::Uniform | SearchAlgo::Exhaustive);
            assert_eq!(algo.budgeted(), expect, "{algo}");
        }
    }

    #[test]
    fn pre_cancelled_token_stops_every_strategy_early() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let space = testutil::toy_space(3, 4);
        for algo in SearchAlgo::ALL {
            let calls = AtomicUsize::new(0);
            let estimator = |c: &Configuration| {
                calls.fetch_add(1, Ordering::Relaxed);
                testutil::needle_estimator(c)
            };
            let opts = SearchOptions {
                strategy: algo,
                max_evals: 10_000,
                ..SearchOptions::default()
            };
            let cancel = CancelToken::new();
            cancel.cancel();
            let _front = run_search_cancellable(&space, &estimator, &opts, &cancel);
            // A fired token must stop the run long before the budget: no
            // strategy may spend more than one round of estimates.
            let spent = calls.load(Ordering::Relaxed);
            assert!(spent < opts.max_evals / 2, "{algo}: spent {spent} evals");
        }
    }

    #[test]
    fn uncancelled_token_matches_plain_search() {
        let space = testutil::toy_space(3, 4);
        let opts = SearchOptions {
            max_evals: 2_000,
            ..SearchOptions::default()
        };
        let plain = run_search(&space, &testutil::needle_estimator, &opts);
        let via_token = run_search_cancellable(
            &space,
            &testutil::needle_estimator,
            &opts,
            &CancelToken::new(),
        );
        assert_eq!(
            testutil::snapshot(&plain),
            testutil::snapshot(&via_token),
            "an un-cancelled token must not change results"
        );
    }

    #[test]
    fn strategy_flag_parsing() {
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert_eq!(
            SearchAlgo::from_args(&args(&["prog", "--strategy", "nsga2"])),
            Some(SearchAlgo::Nsga2)
        );
        assert_eq!(
            SearchAlgo::from_args(&args(&["prog", "--strategy=random"])),
            Some(SearchAlgo::Random)
        );
        assert_eq!(SearchAlgo::from_args(&args(&["prog"])), None);
        assert_eq!(
            SearchAlgo::from_args(&args(&["prog", "--strategy", "bogus"])),
            None
        );
    }
}
