//! Step 3 of the methodology: model-based design space exploration.
//!
//! * [`hill`] — the paper's Algorithm 1 (stochastic hill climbing with
//!   `ParetoInsert` and stagnation restarts);
//! * [`random`] — the random-sampling baseline of Table 4 / Fig. 5;
//! * [`uniform`] — the manual "uniform selection" baseline of Fig. 5;
//! * [`exhaustive`] — full enumeration, used for the optimal fronts of
//!   Table 4 and for tests.

pub mod exhaustive;
pub mod hill;
pub mod random;
pub mod uniform;

pub use exhaustive::exhaustive_front;
pub use hill::{heuristic_pareto, heuristic_pareto_scalar, SearchOptions};
pub use random::random_sampling;
pub use uniform::uniform_selection;

use crate::config::Configuration;
use crate::pareto::TradeoffPoint;

/// An estimation oracle mapping a configuration to `(QoR, cost)` — in the
/// pipeline this is a pair of fitted models, in tests a closed form.
///
/// Estimators are immutable (`Sync`) so the island search can share one
/// instance across worker threads.
pub trait Estimator: Sync {
    /// Estimates the trade-off point of a configuration.
    fn estimate(&self, c: &Configuration) -> TradeoffPoint;

    /// Estimates a batch of configurations at once.
    ///
    /// The default loops over [`Estimator::estimate`]; model-backed
    /// estimators override this to encode all features into one matrix
    /// and run a single batched prediction per model (see
    /// [`crate::model::ModelEstimator`]). Implementations must return
    /// exactly `configs.len()` points, bitwise equal to what per-row
    /// estimation would produce, so batch granularity never changes
    /// search results.
    fn estimate_batch(&self, configs: &[Configuration]) -> Vec<TradeoffPoint> {
        configs.iter().map(|c| self.estimate(c)).collect()
    }
}

impl<F> Estimator for F
where
    F: Fn(&Configuration) -> TradeoffPoint + Sync,
{
    fn estimate(&self, c: &Configuration) -> TradeoffPoint {
        self(c)
    }
}
