//! NSGA-II (Deb et al., 2002) over the columnar candidate plane: the
//! classic elitist multi-objective genetic algorithm, added as a second
//! *global* search strategy next to the paper's hill climb so estimator ×
//! algorithm combinations can be compared head-to-head (hypervolume,
//! Table-4-style distances).
//!
//! One generation:
//!
//! 1. rank the parent population by non-dominated sorting, break ties
//!    within a rank by crowding distance;
//! 2. produce offspring by binary tournaments, uniform crossover and
//!    one-gene-expected mutation (the same neighbourhood move as
//!    Algorithm 1, applied per gene with probability `1/slots`);
//! 3. estimate the offspring in one columnar
//!    [`Estimator::estimate_slice`] sweep (chunked by
//!    [`super::SearchOptions::batch_size`] — a pure throughput knob);
//! 4. environmental selection: keep the best `POP` of parents ∪ offspring
//!    by `(rank, crowding)`.
//!
//! Every estimated candidate is also offered to a global
//! [`ParetoFront`], so the returned front reflects the whole search
//! trajectory (like the hill climb's `ParetoInsert`), not just the final
//! population. Candidate genomes live in two reused [`ConfigBatch`]
//! arenas (parents and offspring) — the generation loop performs **zero
//! per-candidate heap allocations**; a `Configuration` is materialized
//! only when a candidate actually enters the global front.
//!
//! Determinism: the algorithm is a pure function of `(space, estimator,
//! seed, max_evals)`. It runs single-threaded on top of the (internally
//! parallel, thread-invariant) batched estimator, so
//! [`super::SearchOptions::threads`] and [`super::SearchOptions::batch_size`]
//! never change the result.

use super::{ConfigBatch, Estimator, SearchStrategy};
use crate::config::{ConfigSpace, Configuration};
use crate::job::CancelToken;
use crate::pareto::{ParetoFront, TradeoffPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Population size. Fixed (like the hill climb's round size) so results
/// depend only on the semantic options.
const POP: usize = 64;

/// NSGA-II with crowding distance.
pub struct Nsga2;

/// Scratch buffers reused across generations.
struct Scratch {
    /// Minimization objectives `(-qor, cost)` of the combined pool.
    objs: Vec<(f64, f64)>,
    /// Pareto rank per pool member (0 = non-dominated).
    rank: Vec<usize>,
    /// Crowding distance per pool member.
    crowd: Vec<f64>,
    /// Index ordering buffer.
    order: Vec<usize>,
    /// Selected pool indices for the next parent population.
    selected: Vec<usize>,
    /// Staircase of per-rank minimal second objectives for the 2-D
    /// non-dominated sweep (non-decreasing across ranks).
    stairs: Vec<f64>,
}

impl Scratch {
    fn with_capacity(cap: usize) -> Self {
        Scratch {
            objs: Vec::with_capacity(cap),
            rank: Vec::with_capacity(cap),
            crowd: Vec::with_capacity(cap),
            order: Vec::with_capacity(cap),
            selected: Vec::with_capacity(cap),
            stairs: Vec::with_capacity(cap),
        }
    }
}

/// Non-dominated sorting + crowding over `objs` (minimize both; finite —
/// model estimates always are), filling `rank` and `crowd`.
///
/// The canonical front number of a member is the length of the longest
/// strict-dominance chain ending at it — a property of the point set,
/// identical for every correct peeling. In two objectives it is
/// computable in **one lexicographic sweep**: process members sorted by
/// `(obj0, obj1)`; every earlier member has `obj0 <=` ours, so it
/// strictly dominates us iff its `obj1 <=` ours and it is not an exact
/// duplicate. Keeping a staircase `stairs[r]` = minimal `obj1` of the
/// rank-`r` members seen so far (non-decreasing in `r`: a rank-`r`
/// member has a rank-`r-1` dominator at most as large in `obj1`), the
/// rank is the first stair above our `obj1` — one `partition_point`
/// instead of the classic O(n²) dominance matrix. Exact duplicates are
/// processed as one run so they share a rank instead of dominating each
/// other. No per-generation allocation once the arenas reach pool size.
fn rank_and_crowd(s: &mut Scratch) {
    let n = s.objs.len();
    s.rank.clear();
    s.rank.resize(n, usize::MAX);
    s.crowd.clear();
    s.crowd.resize(n, 0.0);
    s.order.clear();
    s.order.extend(0..n);
    {
        let objs = &s.objs;
        s.order.sort_by(|&a, &b| {
            objs[a]
                .0
                .total_cmp(&objs[b].0)
                .then_with(|| objs[a].1.total_cmp(&objs[b].1))
        });
    }
    s.stairs.clear();
    let mut current = 0;
    let mut i = 0;
    while i < n {
        let p = s.objs[s.order[i]];
        // run of exact duplicates: same dominators, one shared rank
        let mut j = i + 1;
        while j < n && s.objs[s.order[j]] == p {
            j += 1;
        }
        let r = s.stairs.partition_point(|&y| y <= p.1);
        if r == s.stairs.len() {
            s.stairs.push(p.1);
        } else {
            s.stairs[r] = p.1; // partition guarantees stairs[r] > p.1
        }
        for &k in &s.order[i..j] {
            s.rank[k] = r;
        }
        current = current.max(r + 1);
        i = j;
    }
    // Crowding distance within each front, per objective.
    for front in 0..current {
        s.order.clear();
        s.order.extend((0..n).filter(|&i| s.rank[i] == front));
        let m = s.order.len();
        if m <= 2 {
            for &i in &s.order {
                s.crowd[i] = f64::INFINITY;
            }
            continue;
        }
        for obj in 0..2 {
            let key = |i: usize| if obj == 0 { s.objs[i].0 } else { s.objs[i].1 };
            s.order.sort_by(|&a, &b| key(a).total_cmp(&key(b)));
            let lo = key(s.order[0]);
            let hi = key(s.order[m - 1]);
            let span = (hi - lo).max(1e-300);
            s.crowd[s.order[0]] = f64::INFINITY;
            s.crowd[s.order[m - 1]] = f64::INFINITY;
            for w in 1..m - 1 {
                let i = s.order[w];
                if s.crowd[i].is_finite() {
                    s.crowd[i] += (key(s.order[w + 1]) - key(s.order[w - 1])) / span;
                }
            }
        }
    }
}

/// `(rank, crowding)` comparison: lower rank wins, then larger crowding.
/// Ties (identical rank and crowding) keep the first argument — fully
/// deterministic.
fn better(s: &Scratch, a: usize, b: usize) -> bool {
    if s.rank[a] != s.rank[b] {
        return s.rank[a] < s.rank[b];
    }
    s.crowd[a] > s.crowd[b]
}

impl Nsga2 {
    /// The generation loop, warm-started from `warm` (already re-estimated
    /// under the current estimator): warm genomes seed the initial
    /// population (front order, capped at the population size, random
    /// fill after) and the global front starts as the warm front. An
    /// empty `warm` reduces to exactly the plain search.
    fn run(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &super::SearchOptions,
        cancel: &CancelToken,
        warm: &ParetoFront<Configuration>,
    ) -> ParetoFront<Configuration> {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let stride = space.slot_count();
        let chunk = opts.batch_size.max(1);
        let pop = POP.min(opts.max_evals.max(2));
        let mut global: ParetoFront<Configuration> = warm.clone();

        // Initial population: warm genomes first, random fill after.
        let mut parents = ConfigBatch::with_capacity(stride, pop);
        for (_, c) in warm.iter().take(pop) {
            parents.push_genes(c.genes());
        }
        for _ in parents.len()..pop {
            space.random_into(parents.push_row(), &mut rng);
        }
        let mut par_pts: Vec<TradeoffPoint> = Vec::with_capacity(pop);
        super::estimate_chunked(estimator, &parents, chunk, &mut par_pts);
        offer_all(&mut global, &parents, &par_pts);
        let mut evals = pop;

        let mut offspring = ConfigBatch::with_capacity(stride, pop);
        let mut off_pts: Vec<TradeoffPoint> = Vec::with_capacity(pop);
        let mut next = ConfigBatch::with_capacity(stride, pop);
        let mut next_pts: Vec<TradeoffPoint> = Vec::with_capacity(pop);
        let mut s = Scratch::with_capacity(2 * pop);
        let pm = 1.0 / stride as f64;

        while evals < opts.max_evals && !cancel.is_cancelled() {
            let r = pop.min(opts.max_evals - evals);
            // Rank the current parents for tournament selection.
            let propose_t = super::phase::PhaseTimer::start(super::phase::Phase::Propose);
            s.objs.clear();
            s.objs.extend(par_pts.iter().map(|p| (-p.qor, p.cost)));
            rank_and_crowd(&mut s);
            // Offspring: tournament → uniform crossover → per-gene mutation.
            offspring.clear();
            for _ in 0..r {
                let pick = |rng: &mut StdRng, s: &Scratch| {
                    let a = rng.gen_range(0..pop);
                    let b = rng.gen_range(0..pop);
                    if better(s, b, a) {
                        b
                    } else {
                        a
                    }
                };
                let pa = pick(&mut rng, &s);
                let pb = pick(&mut rng, &s);
                let child = offspring.push_row();
                for (g, (x, y)) in child
                    .iter_mut()
                    .zip(parents.row(pa).iter().zip(parents.row(pb).iter()))
                {
                    *g = if rng.gen_bool(0.5) { *x } else { *y };
                }
                for (slot, g) in child.iter_mut().enumerate() {
                    if rng.gen_bool(pm) {
                        let n = space.slots()[slot].members.len();
                        *g = rng.gen_range(0..n) as u16;
                    }
                }
            }
            drop(propose_t);
            off_pts.clear();
            super::estimate_chunked(estimator, &offspring, chunk, &mut off_pts);
            offer_all(&mut global, &offspring, &off_pts);
            evals += r;

            // Environmental selection over parents ∪ offspring.
            let _select_t = super::phase::PhaseTimer::start(super::phase::Phase::Insert);
            s.objs.clear();
            s.objs.extend(par_pts.iter().map(|p| (-p.qor, p.cost)));
            s.objs.extend(off_pts.iter().map(|p| (-p.qor, p.cost)));
            rank_and_crowd(&mut s);
            let total = pop + r;
            s.selected.clear();
            s.selected.extend(0..total);
            // Stable sort by (rank asc, crowding desc): equal keys keep
            // pool order (parents before offspring), so selection is
            // deterministic.
            let (ranks, crowds) = (&s.rank, &s.crowd);
            s.selected.sort_by(|&a, &b| {
                ranks[a]
                    .cmp(&ranks[b])
                    .then_with(|| crowds[b].total_cmp(&crowds[a]))
            });
            s.selected.truncate(pop);
            next.clear();
            next_pts.clear();
            for &i in &s.selected {
                if i < pop {
                    next.push_genes(parents.row(i));
                    next_pts.push(par_pts[i]);
                } else {
                    next.push_genes(offspring.row(i - pop));
                    next_pts.push(off_pts[i - pop]);
                }
            }
            std::mem::swap(&mut parents, &mut next);
            std::mem::swap(&mut par_pts, &mut next_pts);
        }
        global
    }
}

impl SearchStrategy for Nsga2 {
    fn name(&self) -> &'static str {
        "nsga2"
    }

    fn search_cancellable(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &super::SearchOptions,
        cancel: &CancelToken,
    ) -> ParetoFront<Configuration> {
        let mut sp = autoax_telemetry::span("search.nsga2");
        sp.field("max_evals", opts.max_evals);
        self.run(space, estimator, opts, cancel, &ParetoFront::new())
    }

    fn search_epoch(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &super::SearchOptions,
        cancel: &CancelToken,
        warm: &ParetoFront<Configuration>,
    ) -> ParetoFront<Configuration> {
        let mut sp = autoax_telemetry::span("search.nsga2.epoch");
        sp.field("warm", warm.len());
        let warm = super::reestimate_front(estimator, warm);
        self.run(space, estimator, opts, cancel, &warm)
    }
}

/// Offers every estimated candidate to the global front in one batched
/// insert (insertion order = batch order; configurations materialize only
/// for candidates still on the front after the whole slab).
fn offer_all(global: &mut ParetoFront<Configuration>, batch: &ConfigBatch, pts: &[TradeoffPoint]) {
    let _t = crate::search::phase::PhaseTimer::start(crate::search::phase::Phase::Insert);
    global.insert_batch_with(pts, |i| batch.to_configuration(i));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testutil::{needle_estimator as needle, snapshot, toy_space};
    use crate::search::{RandomSampling, SearchOptions};

    #[test]
    fn deterministic_given_seed_and_invariant_to_throughput_knobs() {
        let space = toy_space(5, 6);
        let run = |threads: usize, batch_size: usize| {
            Nsga2.search(
                &space,
                &needle,
                &SearchOptions {
                    max_evals: 3_000,
                    seed: 21,
                    threads,
                    batch_size,
                    ..SearchOptions::default()
                },
            )
        };
        let reference = snapshot(&run(1, 1));
        assert!(!reference.is_empty());
        for (threads, batch) in [(1, 1), (2, 7), (8, 32), (4, 1000)] {
            assert_eq!(
                reference,
                snapshot(&run(threads, batch)),
                "threads={threads} batch={batch} diverged"
            );
        }
    }

    #[test]
    fn different_seeds_explore_different_trajectories() {
        let space = toy_space(5, 6);
        let run = |seed: u64| {
            Nsga2.search(
                &space,
                &needle,
                &SearchOptions {
                    max_evals: 2_000,
                    seed,
                    ..SearchOptions::default()
                },
            )
        };
        // not a hard requirement of the algorithm, but with a 6^5 space
        // two seeds virtually never retrace each other exactly
        assert_ne!(snapshot(&run(1)), snapshot(&run(2)));
    }

    #[test]
    fn front_members_are_mutually_nondominated() {
        let space = toy_space(4, 5);
        let front = Nsga2.search(
            &space,
            &needle,
            &SearchOptions {
                max_evals: 2_000,
                seed: 3,
                ..SearchOptions::default()
            },
        );
        let pts = front.points();
        assert!(!pts.is_empty());
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "{a:?} dominates {b:?}");
                }
            }
        }
    }

    #[test]
    fn beats_random_sampling_on_the_needle_landscape() {
        use crate::pareto::joint_hypervolumes;
        use crate::search::SearchStrategy;
        let space = toy_space(6, 5);
        let mut nsga_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..3 {
            let opts = SearchOptions {
                max_evals: 2_000,
                seed,
                ..SearchOptions::default()
            };
            let a = Nsga2.search(&space, &needle, &opts).points();
            let b = RandomSampling.search(&space, &needle, &opts).points();
            let hv = joint_hypervolumes(&[&a, &b]);
            nsga_total += hv[0];
            rs_total += hv[1];
        }
        assert!(
            nsga_total >= rs_total,
            "nsga2 hypervolume {nsga_total} below random sampling {rs_total}"
        );
    }

    #[test]
    fn tiny_budget_still_returns_a_front() {
        let space = toy_space(3, 4);
        let front = Nsga2.search(
            &space,
            &needle,
            &SearchOptions {
                max_evals: 10, // below the population size
                seed: 1,
                ..SearchOptions::default()
            },
        );
        assert!(!front.is_empty());
    }

    #[test]
    fn rank_and_crowd_hand_checked() {
        let mut s = Scratch::with_capacity(4);
        s.objs
            .extend([(0.0, 3.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        rank_and_crowd(&mut s);
        // (0,3) and (1,1) are mutually non-dominated: rank 0.
        // (2,2) is dominated by (1,1): rank 1. (3,3) by both: rank 1 too
        // ((2,2) dominates (3,3)? 2<=3, 2<=3, strict -> yes, so rank 2).
        assert_eq!(s.rank, vec![0, 0, 1, 2]);
        // two-member fronts get infinite crowding
        assert!(s.crowd[0].is_infinite() && s.crowd[1].is_infinite());
    }

    #[test]
    fn fast_sort_matches_reference_front_peeling() {
        // Oracle: the straightforward peel (repeatedly extract the
        // non-dominated members of the unranked remainder). The fast
        // bitset sort must assign identical canonical ranks — ties,
        // duplicates and long dominance chains included.
        let dominates =
            |a: (f64, f64), b: (f64, f64)| a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1);
        let reference_ranks = |objs: &[(f64, f64)]| -> Vec<usize> {
            let n = objs.len();
            let mut rank = vec![usize::MAX; n];
            let mut assigned = 0;
            let mut current = 0;
            while assigned < n {
                let front: Vec<usize> = (0..n)
                    .filter(|&i| rank[i] == usize::MAX)
                    .filter(|&i| {
                        !(0..n)
                            .any(|j| j != i && rank[j] == usize::MAX && dominates(objs[j], objs[i]))
                    })
                    .collect();
                for &i in &front {
                    rank[i] = current;
                    assigned += 1;
                }
                current += 1;
            }
            rank
        };
        let mut st = 2019u64;
        let mut next = |m: u64| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 33) % m) as f64
        };
        for n in [1usize, 2, 7, 64, 65, 128, 150] {
            // coarse grid => plenty of duplicates and single-axis ties
            let objs: Vec<(f64, f64)> = (0..n).map(|_| (next(9), next(9))).collect();
            let mut s = Scratch::with_capacity(n);
            s.objs.extend(objs.iter().copied());
            rank_and_crowd(&mut s);
            assert_eq!(s.rank, reference_ranks(&objs), "n={n}");
        }
    }
}
