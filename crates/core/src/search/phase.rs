//! Hot-path observability: process-wide per-phase counters for the three
//! phases every [`super::SearchStrategy`] cycles through —
//!
//! * **propose** — generating candidate genomes (neighbour moves, RNG
//!   sampling, odometer advance, NSGA-II variation);
//! * **estimate** — model inference over the proposed slab
//!   ([`super::estimate_chunked`] / [`super::Estimator::estimate_slice`]);
//! * **insert** — Pareto-front bookkeeping (`try_insert` replay,
//!   [`crate::pareto::ParetoFront::insert_batch_with`], NSGA-II
//!   rank/crowd selection).
//!
//! The counters are relaxed atomics accumulated from every worker thread,
//! so a snapshot taken around a search measures *summed* thread time (on
//! one worker it equals wall time; with N workers it can exceed wall time
//! by up to N×). Timers wrap whole per-round loops, never individual
//! candidates: at the hill climb's fixed 32-candidate round size the
//! bookkeeping adds two `Instant` reads per phase per round — well under
//! 1% of the round's work.
//!
//! Usage is snapshot-diff:
//!
//! ```
//! use autoax::search::SearchTimings;
//! let before = SearchTimings::snapshot();
//! // ... run a search ...
//! let spent = SearchTimings::snapshot().since(&before);
//! let per_phase = (spent.propose_s(), spent.estimate_s(), spent.insert_s());
//! # let _ = per_phase;
//! ```
//!
//! `estimates` counts the rows actually sent through the estimator — the
//! honest denominator for evals/s even for strategies that ignore
//! [`super::SearchOptions::max_evals`] (uniform's level grid, exhaustive's
//! full enumeration).

use autoax_telemetry as telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static PROPOSE_NS: AtomicU64 = AtomicU64::new(0);
static ESTIMATE_NS: AtomicU64 = AtomicU64::new(0);
static INSERT_NS: AtomicU64 = AtomicU64::new(0);
static ESTIMATES: AtomicU64 = AtomicU64::new(0);

/// Registry-side mirror of the phase counters: per-phase round-duration
/// histograms plus the estimated-rows counter. Bridged from the same
/// [`PhaseTimer`] drops that feed [`SearchTimings`], so every strategy is
/// covered without extra call sites; when the registry is unsubscribed
/// the bridge costs one relaxed load per phase per round.
struct PhaseMetrics {
    round_ns: [telemetry::Histogram; 3],
    estimates: telemetry::Counter,
}

fn phase_metrics() -> &'static PhaseMetrics {
    static M: OnceLock<PhaseMetrics> = OnceLock::new();
    M.get_or_init(|| PhaseMetrics {
        round_ns: [
            telemetry::histogram_with("autoax_search_phase_round_ns", &[("phase", "propose")]),
            telemetry::histogram_with("autoax_search_phase_round_ns", &[("phase", "estimate")]),
            telemetry::histogram_with("autoax_search_phase_round_ns", &[("phase", "insert")]),
        ],
        estimates: telemetry::counter("autoax_search_estimates_total"),
    })
}

/// A monotonic snapshot of the per-phase counters (cumulative since
/// process start). Subtract two snapshots with [`SearchTimings::since`] to
/// attribute time to a region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchTimings {
    /// Nanoseconds spent generating candidates.
    pub propose_ns: u64,
    /// Nanoseconds spent in batched model estimation.
    pub estimate_ns: u64,
    /// Nanoseconds spent in Pareto-front / selection bookkeeping.
    pub insert_ns: u64,
    /// Candidate rows estimated (one per genome row, every strategy).
    pub estimates: u64,
}

impl SearchTimings {
    /// Reads the current cumulative counters.
    pub fn snapshot() -> SearchTimings {
        SearchTimings {
            propose_ns: PROPOSE_NS.load(Ordering::Relaxed),
            estimate_ns: ESTIMATE_NS.load(Ordering::Relaxed),
            insert_ns: INSERT_NS.load(Ordering::Relaxed),
            estimates: ESTIMATES.load(Ordering::Relaxed),
        }
    }

    /// The counter deltas accumulated since `earlier` was taken.
    pub fn since(&self, earlier: &SearchTimings) -> SearchTimings {
        SearchTimings {
            propose_ns: self.propose_ns.wrapping_sub(earlier.propose_ns),
            estimate_ns: self.estimate_ns.wrapping_sub(earlier.estimate_ns),
            insert_ns: self.insert_ns.wrapping_sub(earlier.insert_ns),
            estimates: self.estimates.wrapping_sub(earlier.estimates),
        }
    }

    /// Propose time in seconds.
    pub fn propose_s(&self) -> f64 {
        self.propose_ns as f64 * 1e-9
    }

    /// Estimate time in seconds.
    pub fn estimate_s(&self) -> f64 {
        self.estimate_ns as f64 * 1e-9
    }

    /// Insert/selection time in seconds.
    pub fn insert_s(&self) -> f64 {
        self.insert_ns as f64 * 1e-9
    }
}

/// Which phase a [`PhaseTimer`] charges.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    Propose,
    Estimate,
    Insert,
}

impl Phase {
    fn sink(self) -> &'static AtomicU64 {
        match self {
            Phase::Propose => &PROPOSE_NS,
            Phase::Estimate => &ESTIMATE_NS,
            Phase::Insert => &INSERT_NS,
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Propose => 0,
            Phase::Estimate => 1,
            Phase::Insert => 2,
        }
    }
}

/// Scope guard charging its lifetime to one phase counter. Created at the
/// top of a per-round loop; the `Drop` adds the elapsed nanoseconds.
pub(crate) struct PhaseTimer {
    t0: Instant,
    phase: Phase,
}

impl PhaseTimer {
    pub(crate) fn start(phase: Phase) -> Self {
        PhaseTimer {
            t0: Instant::now(),
            phase,
        }
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        let ns = self.t0.elapsed().as_nanos() as u64;
        self.phase.sink().fetch_add(ns, Ordering::Relaxed);
        if telemetry::metrics_enabled() {
            phase_metrics().round_ns[self.phase.index()].record(ns);
        }
    }
}

/// Records `n` candidate rows as estimated (the evals/s numerator).
pub(crate) fn count_estimates(n: usize) {
    ESTIMATES.fetch_add(n as u64, Ordering::Relaxed);
    if telemetry::metrics_enabled() {
        phase_metrics().estimates.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_accumulate_into_their_phase() {
        let before = SearchTimings::snapshot();
        {
            let _t = PhaseTimer::start(Phase::Propose);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _t = PhaseTimer::start(Phase::Insert);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        count_estimates(17);
        let d = SearchTimings::snapshot().since(&before);
        assert!(d.propose_ns >= 1_000_000, "propose {:?}", d);
        assert!(d.insert_ns >= 500_000, "insert {:?}", d);
        assert!(d.estimates >= 17, "estimates {:?}", d);
    }

    #[test]
    fn since_is_componentwise_difference() {
        let a = SearchTimings {
            propose_ns: 10,
            estimate_ns: 20,
            insert_ns: 30,
            estimates: 40,
        };
        let b = SearchTimings {
            propose_ns: 1,
            estimate_ns: 2,
            insert_ns: 3,
            estimates: 4,
        };
        let d = a.since(&b);
        assert_eq!(
            (d.propose_ns, d.estimate_ns, d.insert_ns, d.estimates),
            (9, 18, 27, 36)
        );
    }
}
