//! Random-sampling Pareto construction — the "RS" baseline of Table 4 and
//! Fig. 5: sample configurations uniformly, estimate, keep the Pareto set.

use super::hill::SearchOptions;
use super::Estimator;
use crate::config::{ConfigSpace, Configuration};
use crate::pareto::ParetoFront;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a Pareto set from `opts.max_evals` uniformly random samples.
///
/// Samples are drawn sequentially from one RNG stream but estimated in
/// batches of [`SearchOptions::batch_size`] through
/// [`Estimator::estimate_batch`]; because sampling never depends on
/// estimates, the result is byte-identical for any batch size (and to the
/// historical one-estimate-per-iteration loop).
pub fn random_sampling(
    space: &ConfigSpace,
    estimator: &impl Estimator,
    opts: &SearchOptions,
) -> ParetoFront<Configuration> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut front = ParetoFront::new();
    let chunk = opts.batch_size.max(1);
    let mut remaining = opts.max_evals;
    while remaining > 0 {
        let r = chunk.min(remaining);
        let candidates: Vec<Configuration> = (0..r).map(|_| space.random(&mut rng)).collect();
        let estimates = estimator.estimate_batch(&candidates);
        for (c, est) in candidates.into_iter().zip(estimates) {
            front.try_insert(est, c);
        }
        remaining -= r;
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SlotChoices, SlotMember};
    use crate::pareto::TradeoffPoint;
    use crate::search::heuristic_pareto;
    use autoax_circuit::charlib::CircuitId;
    use autoax_circuit::OpSignature;

    fn toy_space(slots: usize, per_slot: usize) -> ConfigSpace {
        ConfigSpace::new(
            (0..slots)
                .map(|i| SlotChoices {
                    name: format!("s{i}"),
                    signature: OpSignature::ADD8,
                    members: (0..per_slot)
                        .map(|k| SlotMember {
                            id: CircuitId(k as u32),
                            wmed: k as f64,
                        })
                        .collect(),
                })
                .collect(),
        )
    }

    /// An estimator where good trade-offs are *rare*: quality comes from
    /// all-equal assignments, which random sampling seldom hits.
    fn needle_estimator(c: &Configuration) -> TradeoffPoint {
        let t: f64 = c.0.iter().map(|&v| v as f64).sum();
        let spread =
            c.0.iter()
                .map(|&v| v as f64)
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                    (lo.min(v), hi.max(v))
                });
        let penalty = (spread.1 - spread.0) * 3.0;
        TradeoffPoint::new(-(t + penalty), 100.0 - t + penalty)
    }

    #[test]
    fn finds_some_front() {
        let space = toy_space(4, 5);
        let opts = SearchOptions {
            max_evals: 2000,
            stagnation_limit: 50,
            seed: 1,
            ..SearchOptions::default()
        };
        let front = random_sampling(&space, &needle_estimator, &opts);
        assert!(!front.is_empty());
    }

    #[test]
    fn hill_climbing_approaches_thin_front_better_than_random_sampling() {
        // The Table 4 shape. With two different objective weight vectors
        // the true Pareto front is the *thin* bang-bang set (every slot at
        // an extreme): interior candidates get rejected by ParetoInsert,
        // which ratchets the hill climb's parent toward the front, while
        // random sampling keeps drawing from the dominated interior.
        use crate::pareto::front_distances;
        use crate::search::exhaustive_front;
        let w: Vec<f64> = (0..6).map(|i| 1.0 + i as f64 * 0.35).collect();
        let u: Vec<f64> = (0..6).map(|i| 1.0 + ((i * 3) % 5) as f64 * 0.6).collect();
        let est = move |c: &Configuration| {
            let qor: f64 =
                -c.0.iter()
                    .zip(w.iter())
                    .map(|(&v, wi)| wi * v as f64)
                    .sum::<f64>();
            let cost: f64 =
                c.0.iter()
                    .zip(u.iter())
                    .map(|(&v, ui)| ui * (4.0 - v as f64))
                    .sum();
            TradeoffPoint::new(qor, cost)
        };
        let space = toy_space(6, 5); // 15625 configs: exhaustible
        let optimal = exhaustive_front(&space, &est);
        let budget = 1500;
        let dist = |front: &crate::pareto::ParetoFront<Configuration>| {
            front_distances(&front.points(), &optimal.points())
                .from_optimal
                .0
        };
        let mut hill_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..5 {
            let opts = SearchOptions {
                max_evals: budget,
                stagnation_limit: 50,
                seed,
                ..SearchOptions::default()
            };
            hill_total += dist(&heuristic_pareto(&space, &est, &opts));
            rs_total += dist(&random_sampling(&space, &est, &opts));
        }
        assert!(
            hill_total < rs_total,
            "hill avg from-optimal distance {hill_total} should beat rs {rs_total}"
        );
    }

    #[test]
    fn deterministic() {
        let space = toy_space(3, 4);
        let opts = SearchOptions {
            max_evals: 500,
            stagnation_limit: 50,
            seed: 7,
            ..SearchOptions::default()
        };
        let a = random_sampling(&space, &needle_estimator, &opts);
        let b = random_sampling(&space, &needle_estimator, &opts);
        assert_eq!(a.len(), b.len());
    }
}
