//! Random-sampling Pareto construction — the "RS" baseline of Table 4 and
//! Fig. 5: sample configurations uniformly, estimate, keep the Pareto set.

use super::hill::SearchOptions;
use super::{ConfigBatch, Estimator, SearchStrategy};
use crate::config::{ConfigSpace, Configuration};
use crate::job::CancelToken;
use crate::pareto::{ParetoFront, TradeoffPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random sampling as a [`SearchStrategy`].
///
/// Samples are drawn sequentially from one RNG stream into a reused
/// columnar [`ConfigBatch`] and estimated in slices of
/// [`SearchOptions::batch_size`] through [`Estimator::estimate_slice`];
/// because sampling never depends on estimates, the result is
/// byte-identical for any batch size (and to the historical
/// one-estimate-per-iteration loop). Only candidates accepted onto the
/// front materialize a [`Configuration`].
pub struct RandomSampling;

impl SearchStrategy for RandomSampling {
    fn name(&self) -> &'static str {
        "random"
    }

    fn search_cancellable(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
        cancel: &CancelToken,
    ) -> ParetoFront<Configuration> {
        let mut sp = autoax_telemetry::span("search.random");
        sp.field("max_evals", opts.max_evals);
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut front = ParetoFront::new();
        let chunk = opts.batch_size.max(1);
        let mut batch = ConfigBatch::with_capacity(space.slot_count(), chunk);
        let mut estimates: Vec<TradeoffPoint> = Vec::with_capacity(chunk);
        let mut remaining = opts.max_evals;
        while remaining > 0 && !cancel.is_cancelled() {
            let r = chunk.min(remaining);
            {
                let _t = super::phase::PhaseTimer::start(super::phase::Phase::Propose);
                batch.clear();
                for _ in 0..r {
                    space.random_into(batch.push_row(), &mut rng);
                }
            }
            estimates.clear();
            super::estimate_chunked(estimator, &batch, r, &mut estimates);
            debug_assert_eq!(estimates.len(), r, "estimator returned wrong batch size");
            // Batched offer — identical members and order to replaying
            // `try_insert_with` per candidate.
            let _t = super::phase::PhaseTimer::start(super::phase::Phase::Insert);
            front.insert_batch_with(&estimates, |i| batch.to_configuration(i));
            remaining -= r;
        }
        front
    }
}

/// Builds a Pareto set from `opts.max_evals` uniformly random samples —
/// the historical free-function entry point for [`RandomSampling`].
pub fn random_sampling(
    space: &ConfigSpace,
    estimator: &impl Estimator,
    opts: &SearchOptions,
) -> ParetoFront<Configuration> {
    RandomSampling.search(space, estimator, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::TradeoffPoint;
    use crate::search::heuristic_pareto;
    use crate::search::testutil::{needle_estimator, snapshot, toy_space};

    #[test]
    fn finds_some_front() {
        let space = toy_space(4, 5);
        let opts = SearchOptions {
            max_evals: 2000,
            stagnation_limit: 50,
            seed: 1,
            ..SearchOptions::default()
        };
        let front = random_sampling(&space, &needle_estimator, &opts);
        assert!(!front.is_empty());
    }

    #[test]
    fn batch_size_never_changes_the_result() {
        let space = toy_space(4, 5);
        let run = |batch_size: usize| {
            snapshot(&random_sampling(
                &space,
                &needle_estimator,
                &SearchOptions {
                    max_evals: 1000,
                    seed: 11,
                    batch_size,
                    ..SearchOptions::default()
                },
            ))
        };
        let reference = run(1);
        for batch in [7, 32, 1000] {
            assert_eq!(reference, run(batch), "batch={batch} diverged");
        }
    }

    #[test]
    fn hill_climbing_approaches_thin_front_better_than_random_sampling() {
        // The Table 4 shape. With two different objective weight vectors
        // the true Pareto front is the *thin* bang-bang set (every slot at
        // an extreme): interior candidates get rejected by ParetoInsert,
        // which ratchets the hill climb's parent toward the front, while
        // random sampling keeps drawing from the dominated interior.
        use crate::pareto::front_distances;
        use crate::search::exhaustive_front;
        let w: Vec<f64> = (0..6).map(|i| 1.0 + i as f64 * 0.35).collect();
        let u: Vec<f64> = (0..6).map(|i| 1.0 + ((i * 3) % 5) as f64 * 0.6).collect();
        let est = move |c: &Configuration| {
            let qor: f64 = -c
                .genes()
                .iter()
                .zip(w.iter())
                .map(|(&v, wi)| wi * v as f64)
                .sum::<f64>();
            let cost: f64 = c
                .genes()
                .iter()
                .zip(u.iter())
                .map(|(&v, ui)| ui * (4.0 - v as f64))
                .sum();
            TradeoffPoint::new(qor, cost)
        };
        let space = toy_space(6, 5); // 15625 configs: exhaustible
        let optimal = exhaustive_front(&space, &est);
        let budget = 1500;
        let dist = |front: &crate::pareto::ParetoFront<Configuration>| {
            front_distances(&front.points(), &optimal.points())
                .from_optimal
                .0
        };
        let mut hill_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..5 {
            let opts = SearchOptions {
                max_evals: budget,
                stagnation_limit: 50,
                seed,
                ..SearchOptions::default()
            };
            hill_total += dist(&heuristic_pareto(&space, &est, &opts));
            rs_total += dist(&random_sampling(&space, &est, &opts));
        }
        assert!(
            hill_total < rs_total,
            "hill avg from-optimal distance {hill_total} should beat rs {rs_total}"
        );
    }

    #[test]
    fn deterministic() {
        let space = toy_space(3, 4);
        let opts = SearchOptions {
            max_evals: 500,
            stagnation_limit: 50,
            seed: 7,
            ..SearchOptions::default()
        };
        let a = random_sampling(&space, &needle_estimator, &opts);
        let b = random_sampling(&space, &needle_estimator, &opts);
        assert_eq!(a.len(), b.len());
    }
}
