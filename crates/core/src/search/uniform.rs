//! The "uniform selection" baseline of Fig. 5 — the manual method a
//! designer without automated DSE would use:
//!
//! > "particular approximate circuits are deterministically selected to
//! > exhibit the same error WMED (relatively to the output range)."
//!
//! For each target error level, every slot independently picks the
//! candidate whose relative WMED is closest to the level; one
//! configuration per level.

use super::hill::SearchOptions;
use super::{ConfigBatch, Estimator, SearchStrategy};
use crate::config::{ConfigSpace, Configuration};
use crate::job::CancelToken;
use crate::pareto::{ParetoFront, TradeoffPoint};

/// The manual uniform-WMED-level selection as a [`SearchStrategy`]: the
/// [`uniform_selection`] configurations (one per error level,
/// [`SearchOptions::uniform_levels`] levels) are estimated in one columnar
/// sweep and Pareto-filtered. Deterministic and RNG-free; the eval budget
/// is ignored beyond capping the level count.
pub struct UniformSelection;

impl SearchStrategy for UniformSelection {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn search_cancellable(
        &self,
        space: &ConfigSpace,
        estimator: &dyn Estimator,
        opts: &SearchOptions,
        cancel: &CancelToken,
    ) -> ParetoFront<Configuration> {
        if cancel.is_cancelled() {
            return ParetoFront::new();
        }
        let levels = opts.uniform_levels.max(2).min(opts.max_evals.max(2));
        let mut sp = autoax_telemetry::span("search.uniform");
        sp.field("levels", levels);
        let (configs, batch) = {
            let _t = super::phase::PhaseTimer::start(super::phase::Phase::Propose);
            let configs = uniform_selection(space, levels);
            let batch = ConfigBatch::from_configs(&configs);
            (configs, batch)
        };
        let mut estimates: Vec<TradeoffPoint> = Vec::with_capacity(batch.len());
        super::estimate_chunked(estimator, &batch, opts.batch_size, &mut estimates);
        let _t = super::phase::PhaseTimer::start(super::phase::Phase::Insert);
        configs
            .into_iter()
            .zip(estimates)
            .map(|(c, p)| (p, c))
            .collect()
    }
}

/// Generates `levels` configurations with uniformly spaced relative-WMED
/// targets (deduplicated, so fewer may be returned).
///
/// The level grid spans `[0, max_rel]` where `max_rel` is the largest
/// relative WMED available in any slot — beyond it no slot has circuits to
/// offer.
pub fn uniform_selection(space: &ConfigSpace, levels: usize) -> Vec<Configuration> {
    assert!(levels >= 2, "need at least two levels");
    // relative WMED of member m in slot s: wmed / output_range(slot class)
    let rel: Vec<Vec<f64>> = space
        .slots()
        .iter()
        .map(|s| {
            let range = s.signature.output_range();
            s.members.iter().map(|m| m.wmed / range).collect()
        })
        .collect();
    let max_rel = rel
        .iter()
        .flat_map(|v| v.iter().copied())
        .fold(0.0f64, f64::max);
    let mut out: Vec<Configuration> = Vec::new();
    for level in 0..levels {
        let target = max_rel * level as f64 / (levels - 1) as f64;
        let config = Configuration::from_genes(
            rel.iter()
                .map(|slot_rel| {
                    slot_rel
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            (*a - target).abs().total_cmp(&(*b - target).abs())
                        })
                        .map(|(i, _)| i as u16)
                        .expect("non-empty slot")
                })
                .collect(),
        );
        if out.last() != Some(&config) {
            out.push(config);
        }
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SlotChoices, SlotMember};
    use autoax_circuit::charlib::CircuitId;
    use autoax_circuit::OpSignature;

    fn space_with_wmeds(slot_wmeds: Vec<Vec<f64>>) -> ConfigSpace {
        ConfigSpace::new(
            slot_wmeds
                .into_iter()
                .enumerate()
                .map(|(i, ws)| SlotChoices {
                    name: format!("s{i}"),
                    signature: OpSignature::ADD8, // range 510
                    members: ws
                        .into_iter()
                        .enumerate()
                        .map(|(k, w)| SlotMember {
                            id: CircuitId(k as u32),
                            wmed: w,
                        })
                        .collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn first_level_is_exact_configuration() {
        let space = space_with_wmeds(vec![vec![0.0, 10.0, 40.0], vec![0.0, 5.0, 80.0]]);
        let configs = uniform_selection(&space, 5);
        assert_eq!(configs[0], Configuration::from_genes(vec![0, 0]));
    }

    #[test]
    fn last_level_picks_highest_error_members() {
        let space = space_with_wmeds(vec![vec![0.0, 10.0, 40.0], vec![0.0, 5.0, 40.0]]);
        let configs = uniform_selection(&space, 5);
        let last = configs.last().unwrap();
        assert_eq!(*last, Configuration::from_genes(vec![2, 2]));
    }

    #[test]
    fn levels_are_deduplicated() {
        // only two distinct members -> many levels collapse
        let space = space_with_wmeds(vec![vec![0.0, 100.0]]);
        let configs = uniform_selection(&space, 10);
        assert!(configs.len() <= 2, "{configs:?}");
    }

    #[test]
    fn slots_track_the_same_relative_level() {
        // slot A range up to rel 40/510, slot B also but with finer steps;
        // at mid level both should pick mid-range members
        let space = space_with_wmeds(vec![
            vec![0.0, 20.0, 40.0],
            vec![0.0, 10.0, 20.0, 30.0, 40.0],
        ]);
        let configs = uniform_selection(&space, 3);
        let mid = &configs[1];
        assert_eq!(mid.genes()[0], 1); // 20 of {0,20,40}
        assert_eq!(mid.genes()[1], 2); // 20 of {0,10,20,30,40}
    }
}
