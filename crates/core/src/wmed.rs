//! Weighted mean error distance (paper Section 2.2):
//!
//! `WMED_k(M̃) = Σ_{i ∈ I} D_k(i) · |M(i) − M̃(i)|`
//!
//! where `D_k` is the operand PMF of the accelerator's `k`-th operation,
//! profiled on benchmark data. WMED is the application-aware error score
//! that drives library pre-processing.

use autoax_accel::Pmf;
use autoax_circuit::CircuitEntry;
use autoax_exec::par_map;

/// Computes the WMED of one circuit against a PMF support.
///
/// `support` is a list of `((a, b), probability)` pairs, typically
/// obtained from [`Pmf::top_mass`].
pub fn wmed_on_support(entry: &CircuitEntry, support: &[((u32, u32), f64)]) -> f64 {
    let sig = entry.signature();
    let mut acc = 0.0;
    for &((a, b), p) in support {
        let raw = entry.eval(a as u64, b as u64);
        let err = sig.error(a as u64, b as u64, raw);
        acc += p * err.unsigned_abs() as f64;
    }
    acc
}

/// Computes WMED for every circuit of a class in parallel.
///
/// `mass_frac` truncates the PMF support to its highest-probability prefix
/// covering that fraction of the mass (1.0 = exact WMED); the truncation
/// bounds the cost on the 2^16-point supports of the multiplier class.
pub fn wmed_class(entries: &[CircuitEntry], pmf: &Pmf, mass_frac: f64) -> Vec<f64> {
    let support = pmf.top_mass(mass_frac);
    par_map(entries, |e| wmed_on_support(e, &support))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_circuit::approx::adders::AdderKind;
    use autoax_circuit::approx::Behavior;
    use autoax_circuit::charlib::{build_class, CircuitEntry, CircuitId, LibraryConfig};
    use autoax_circuit::synth::HwReport;
    use autoax_circuit::{ErrorMetrics, OpSignature};

    /// An 8-bit adder that zeroes the low `k` result bits
    /// (`((a >> k) + (b >> k)) << k`), wrapped as a bare library entry.
    fn trunc_adder_entry(k: u32) -> CircuitEntry {
        CircuitEntry {
            id: CircuitId(1),
            behavior: Behavior::Adder {
                w: 8,
                kind: AdderKind::TruncZero { k },
            },
            label: format!("add_trunc0_k{k}"),
            hw: HwReport::ZERO,
            err: ErrorMetrics::default(),
        }
    }

    #[test]
    fn wmed_matches_hand_computed_error_table() {
        // TruncZero k=2 computes ((a >> 2) + (b >> 2)) << 2, so:
        //   (3, 1): exact 4,  approx (0 + 0) << 2 = 0  -> |err| = 4
        //   (4, 4): exact 8,  approx (1 + 1) << 2 = 8  -> |err| = 0
        //   (7, 5): exact 12, approx (1 + 1) << 2 = 8  -> |err| = 4
        // With weights (0.5, 0.25, 0.25):
        //   WMED = 0.5 * 4 + 0.25 * 0 + 0.25 * 4 = 3 (exact in binary fp).
        let entry = trunc_adder_entry(2);
        let support = [((3, 1), 0.5), ((4, 4), 0.25), ((7, 5), 0.25)];
        assert_eq!(wmed_on_support(&entry, &support), 3.0);
    }

    #[test]
    fn wmed_from_profiled_pmf_matches_hand_computed_table() {
        // The same error table, with the weights coming from a profiled
        // PMF: 2 hits on (3,1) and 1 hit each on (4,4) and (7,5) gives
        // probabilities (0.5, 0.25, 0.25) after normalization.
        let entry = trunc_adder_entry(2);
        let mut pmf = Pmf::new();
        pmf.add(3, 1);
        pmf.add(3, 1);
        pmf.add(4, 4);
        pmf.add(7, 5);
        let support = pmf.top_mass(1.0);
        assert_eq!(wmed_on_support(&entry, &support), 3.0);
    }

    #[test]
    fn wmed_scales_linearly_with_truncation_error() {
        // On the all-ones operand pair (every low bit lost), TruncZero's
        // absolute error is exactly (a mod 2^k) + (b mod 2^k); a
        // single-point PMF makes WMED equal that number.
        for k in 1..4u32 {
            let entry = trunc_adder_entry(k);
            let a = (1u32 << k) - 1; // low k bits all set
            let support = [((a, a), 1.0)];
            let expected = 2.0 * a as f64;
            assert_eq!(wmed_on_support(&entry, &support), expected, "k={k}");
        }
    }

    #[test]
    fn wmed_of_exact_behavior_is_zero_on_any_support() {
        let entry = CircuitEntry {
            id: CircuitId(0),
            behavior: Behavior::exact_for(OpSignature::ADD8),
            label: "add_exact".into(),
            hw: HwReport::ZERO,
            err: ErrorMetrics::default(),
        };
        let support: Vec<((u32, u32), f64)> = (0..64u32)
            .map(|i| (((i * 7) % 256, (i * 13) % 256), 1.0 / 64.0))
            .collect();
        assert_eq!(wmed_on_support(&entry, &support), 0.0);
    }

    fn diag_pmf() -> Pmf {
        // Mass concentrated near small operands.
        let mut p = Pmf::new();
        for a in 0u32..32 {
            for d in 0u32..4 {
                p.add(a, (a + d).min(255));
            }
        }
        p
    }

    #[test]
    fn exact_circuit_has_zero_wmed() {
        let cfg = LibraryConfig::tiny();
        let lib = build_class(OpSignature::ADD8, 10, &cfg, 1);
        let pmf = diag_pmf();
        let w = wmed_class(&lib, &pmf, 1.0);
        assert_eq!(w[0], 0.0);
        assert!(w[1..].iter().any(|&x| x > 0.0));
    }

    #[test]
    fn wmed_is_bounded_by_wce() {
        let cfg = LibraryConfig::tiny();
        let lib = build_class(OpSignature::ADD8, 20, &cfg, 2);
        let pmf = diag_pmf();
        let w = wmed_class(&lib, &pmf, 1.0);
        for (e, &wm) in lib.iter().zip(w.iter()) {
            assert!(
                wm <= e.err.wce as f64 + 1e-9,
                "{}: wmed {wm} > wce {}",
                e.label,
                e.err.wce
            );
        }
    }

    #[test]
    fn pmf_weighting_matters() {
        // A circuit that truncates low bits is harmless for operands that
        // are multiples of 8, harmful otherwise.
        let cfg = LibraryConfig::tiny();
        let lib = build_class(OpSignature::ADD8, 30, &cfg, 3);
        let trunc = lib
            .iter()
            .find(|e| e.label.contains("trunc0_k3"))
            .expect("trunc k=3 in library");
        let mut aligned = Pmf::new();
        let mut unaligned = Pmf::new();
        for i in 0u32..16 {
            aligned.add(i * 8, i * 8);
            unaligned.add(i * 8 + 7, i * 8 + 7);
        }
        let w_aligned = wmed_on_support(trunc, &aligned.top_mass(1.0));
        let w_unaligned = wmed_on_support(trunc, &unaligned.top_mass(1.0));
        assert_eq!(w_aligned, 0.0);
        assert!(w_unaligned > 0.0);
    }

    #[test]
    fn mass_truncation_approximates_full_wmed() {
        let cfg = LibraryConfig::tiny();
        let lib = build_class(OpSignature::ADD8, 15, &cfg, 4);
        // skewed pmf: a few dominant pairs plus a long tail
        let mut p = Pmf::new();
        for _ in 0..1000 {
            p.add(100, 100);
        }
        for i in 0..200u32 {
            p.add(i, 255 - i);
        }
        let full = wmed_class(&lib, &p, 1.0);
        let trunc = wmed_class(&lib, &p, 0.95);
        for (&f, &t) in full.iter().zip(trunc.iter()) {
            assert!(t <= f + 1e-9, "truncated WMED must not exceed full");
            if f > 0.0 {
                assert!(t / f > 0.5, "truncation lost too much mass: {t} vs {f}");
            }
        }
    }
}
