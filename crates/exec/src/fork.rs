//! Persistent fork-join worker pool behind the scoped primitives.
//!
//! Before this module existed, every [`crate::par_map`] /
//! [`crate::par_map_range`] / [`crate::par_map_owned_with`] call paid for
//! `std::thread::scope` + one OS thread spawn per chunk. A search run
//! performs thousands of such bursts (one per island epoch, one per
//! characterization batch, one per forest-prediction slab), so the spawn
//! cost — tens of microseconds each — was a measurable fraction of the
//! hot path. This module keeps a process-wide set of long-lived workers
//! behind a condvar-guarded job queue and hands them *bursts*: a fixed
//! number of index-addressed tasks plus a completion latch.
//!
//! ## Determinism contract
//!
//! The pool never decides *what* a task computes or *where* its result
//! goes — a burst is `f(0), f(1), …, f(tasks-1)` and each `f(i)` writes
//! to a result slot chosen by `i` alone. Workers claim indices with an
//! atomic `fetch_add`, so scheduling only affects *which thread* runs a
//! task, never the task→slot association. Combined with the fixed
//! chunking of the callers (chunk boundaries derive from the requested
//! thread count, not from the pool state), results are byte-identical to
//! the old scoped-spawn implementation at every thread count.
//!
//! ## Blocking and nesting
//!
//! The submitting thread participates in its own burst (it claims indices
//! like any worker) and only then waits on the latch. Because of that, a
//! burst always makes progress even when every pool worker is busy — in
//! particular a task may itself submit a nested burst (e.g. island search
//! calling batched forest prediction) without deadlocking: the inner
//! submitter simply runs its own tasks inline if nobody is free.
//!
//! ## Panics
//!
//! A panicking task is caught on the worker (keeping the thread alive for
//! future bursts), recorded on the job, and re-raised on the submitting
//! thread once the burst completes — same observable behavior as the old
//! `join().expect(..)`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use autoax_telemetry as telemetry;

/// Pool metrics, registered once and cached. Burst-granular only — never
/// per task — so the subscribed overhead is a few atomics per burst and
/// the unsubscribed overhead is one relaxed load per burst.
struct PoolMetrics {
    workers: telemetry::Gauge,
    busy: telemetry::Gauge,
    bursts: telemetry::Counter,
    burst_tasks: telemetry::Histogram,
    burst_ns: telemetry::Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| PoolMetrics {
        workers: telemetry::gauge("autoax_pool_workers"),
        busy: telemetry::gauge("autoax_pool_busy_workers"),
        bursts: telemetry::counter("autoax_pool_bursts_total"),
        burst_tasks: telemetry::histogram("autoax_pool_burst_tasks"),
        burst_ns: telemetry::histogram("autoax_pool_burst_ns"),
    })
}

/// Upper bound on pool workers, far above any sane `AUTOAX_THREADS`.
/// Requests beyond it still complete — the submitter runs the overflow
/// tasks itself — there is just no extra parallelism past the cap.
const MAX_WORKERS: usize = 256;

type Task = dyn Fn(usize) + Sync;

/// One fork-join burst: `total` index-addressed tasks over an erased
/// closure, a claim counter, and a completion latch.
struct Job {
    /// Lifetime-erased reference to the burst closure. Safety: the
    /// submitting `run_burst` frame owns the real closure and does not
    /// return until `remaining` reaches zero, and no task can be claimed
    /// once `next >= total`, so every dereference happens while the
    /// closure is alive.
    f: &'static Task,
    total: usize,
    /// Next unclaimed task index; values ≥ `total` mean "drained".
    next: AtomicUsize,
    /// Unfinished-task latch; the last decrement flips `done`.
    remaining: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

struct Pool {
    /// Active bursts in submission order; workers drain from the front.
    queue: Mutex<VecDeque<Arc<Job>>>,
    wake: Condvar,
    /// Workers spawned so far (grown lazily, never shrunk).
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

/// Number of pool workers spawned so far (observability; tests).
pub fn pool_workers() -> usize {
    *pool().spawned.lock().expect("pool spawn lock poisoned")
}

impl Pool {
    /// Grows the worker set to at least `want` threads (capped). Spawn
    /// failure is tolerated: the submitter self-executes, so a smaller
    /// pool only costs parallelism, never correctness.
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().expect("pool spawn lock poisoned");
        while *spawned < want {
            let name = format!("autoax-pool-{}", *spawned);
            let ok = std::thread::Builder::new()
                .name(name)
                .spawn(|| worker_loop(pool()))
                .is_ok();
            if !ok {
                break;
            }
            *spawned += 1;
        }
        if telemetry::metrics_enabled() {
            pool_metrics().workers.set(*spawned as i64);
        }
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("pool queue lock poisoned");
            loop {
                // Drop drained bursts from the front, claim the first
                // one that still has unclaimed tasks.
                let mut found = None;
                while let Some(j) = q.front() {
                    if j.next.load(Ordering::Relaxed) < j.total {
                        found = Some(Arc::clone(j));
                        break;
                    }
                    q.pop_front();
                }
                if let Some(j) = found {
                    break j;
                }
                q = pool.wake.wait(q).expect("pool queue lock poisoned");
            }
        };
        // Capture the flag once so the inc/dec pair stays balanced even if
        // the registry is toggled mid-burst.
        let track = telemetry::metrics_enabled();
        if track {
            pool_metrics().busy.inc();
        }
        execute(&job);
        if track {
            pool_metrics().busy.dec();
        }
    }
}

/// Claims and runs tasks of `job` until the claim counter drains.
/// Shared by pool workers and the submitting thread.
fn execute(job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.total {
            return;
        }
        let f = job.f;
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        // AcqRel: publishes this task's result writes to whoever observes
        // the latch, and (for the final decrement) acquires everyone
        // else's.
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = job.done.lock().expect("pool done lock poisoned");
            *done = true;
            job.done_cv.notify_all();
        }
    }
}

/// Runs `f(0), f(1), …, f(tasks-1)` on the persistent pool and returns
/// once all of them completed. The submitting thread participates, so the
/// effective parallelism is up to `tasks` (submitter + `tasks-1` workers)
/// and the call makes progress even with zero free workers — including
/// when invoked from inside another burst's task.
///
/// # Panics
/// Re-raises (as a fresh panic) if any task panicked.
pub fn run_burst<F>(tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    match tasks {
        0 => return,
        1 => {
            f(0);
            return;
        }
        _ => {}
    }
    let pool = pool();
    pool.ensure_workers(tasks - 1);
    // Burst-granular telemetry (0/1-task bursts run inline above and are
    // deliberately uncounted — they never touch the pool).
    let burst_start = if telemetry::metrics_enabled() {
        let m = pool_metrics();
        m.bursts.inc();
        m.burst_tasks.record(tasks as u64);
        Some(std::time::Instant::now())
    } else {
        None
    };

    // Erase the closure lifetime; see the safety note on `Job::f`.
    let f_ref: &(dyn Fn(usize) + Sync + '_) = &f;
    let f_static: &'static Task =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync + '_), &'static Task>(f_ref) };
    let job = Arc::new(Job {
        f: f_static,
        total: tasks,
        next: AtomicUsize::new(0),
        remaining: AtomicUsize::new(tasks),
        panicked: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });

    {
        let mut q = pool.queue.lock().expect("pool queue lock poisoned");
        q.push_back(Arc::clone(&job));
    }
    // Wake at most as many workers as there are tasks to hand out.
    for _ in 0..tasks - 1 {
        pool.wake.notify_one();
    }

    // Work on our own burst, then wait out stragglers on the latch.
    execute(&job);
    let mut done = job.done.lock().expect("pool done lock poisoned");
    while !*done {
        done = job.done_cv.wait(done).expect("pool done lock poisoned");
    }
    drop(done);

    // The queue self-cleans lazily (workers pop drained fronts), but a
    // burst that no worker ever looked at would linger; remove it now so
    // the erased closure reference never outlives this frame inside the
    // queue.
    {
        let mut q = pool.queue.lock().expect("pool queue lock poisoned");
        if let Some(pos) = q.iter().position(|j| Arc::ptr_eq(j, &job)) {
            q.remove(pos);
        }
    }

    if let Some(t0) = burst_start {
        pool_metrics()
            .burst_ns
            .record(t0.elapsed().as_nanos() as u64);
    }

    if job.panicked.load(Ordering::Relaxed) {
        panic!("pooled burst task panicked");
    }
}

/// Shared-`&self` slot writer for disjoint-index result scatter.
///
/// `run_burst` tasks write their outputs into pre-sized vectors; each
/// task owns exactly the slots derived from its index, so the writes are
/// disjoint and the latch in [`run_burst`] orders them before the reader.
pub(crate) struct Slots<T>(*mut T, usize);

unsafe impl<T: Send> Sync for Slots<T> {}
unsafe impl<T: Send> Send for Slots<T> {}

impl<T> Slots<T> {
    pub(crate) fn new(v: &mut [T]) -> Self {
        Slots(v.as_mut_ptr(), v.len())
    }

    /// # Safety
    /// Each index must be written by at most one task per burst.
    pub(crate) unsafe fn put(&self, i: usize, val: T) {
        debug_assert!(i < self.1);
        *self.0.add(i) = val;
    }

    /// # Safety
    /// Each index must be taken by at most one task per burst.
    pub(crate) unsafe fn take(&self, i: usize) -> T
    where
        T: Default,
    {
        debug_assert!(i < self.1);
        std::mem::take(&mut *self.0.add(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_runs_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        run_burst(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn zero_and_single_task_bursts_run_inline() {
        run_burst(0, |_| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        run_burst(1, |i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_bursts_do_not_deadlock() {
        let total = AtomicUsize::new(0);
        run_burst(4, |_| {
            run_burst(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn concurrent_bursts_from_many_threads() {
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..16 {
                        run_burst(5, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16 * 5);
    }

    #[test]
    fn panicking_task_reraises_on_submitter_and_pool_survives() {
        let r = std::panic::catch_unwind(|| {
            run_burst(4, |i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err(), "burst panic must propagate to the submitter");
        // Pool threads survived the contained panic and still serve work.
        let count = AtomicUsize::new(0);
        run_burst(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }
}
