//! # autoax-exec
//!
//! The execution layer of the autoAx reproduction: std-only (scoped
//! threads, no external runtime) parallel primitives shared by the
//! `circuit`, `ml`, `core` and `accel` crates.
//!
//! The design-space-exploration loop of the paper performs 10⁵–10⁶ model
//! estimates per run; library characterization and real evaluation are
//! embarrassingly parallel as well. Everything here is built around one
//! invariant: **results are byte-identical regardless of the worker-thread
//! count** — outputs preserve input order and reductions use a fixed
//! association, so parallelism is purely a throughput knob.
//!
//! ## Thread-count knob
//!
//! The default worker count is [`std::thread::available_parallelism`],
//! overridable with the `AUTOAX_THREADS` environment variable (clamped to
//! at least 1). Every primitive also has a `*_with` variant taking an
//! explicit thread count, which the determinism tests use to avoid racing
//! on the process environment.
//!
//! ## Execution substrate
//!
//! All data-parallel primitives run their chunks as a *burst* on one
//! process-wide persistent worker pool ([`fork`]), so a search performing
//! thousands of parallel rounds pays for thread spawns once, not per
//! round. The thread-count parameter keeps its exact old meaning — it
//! fixes the chunk boundaries (and hence the results, byte-for-byte) and
//! bounds the parallelism of the burst; it does not resize the pool's
//! worker set, which grows lazily to the largest burst seen. The same
//! pool serves island search, library characterization and the searches
//! spawned by `autoax-serve` jobs (whose connection handling still uses
//! the queue-of-closures [`WorkerPool`]).
//!
//! # Example
//!
//! ```
//! // Order-preserving parallel map: identical output at any thread count.
//! let inputs: Vec<u64> = (0..100).collect();
//! let squares = autoax_exec::par_map(&inputs, |&x| x * x);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares, autoax_exec::par_map_with(1, &inputs, |&x| x * x));
//! ```

pub mod fork;
pub mod pool;

pub use fork::pool_workers;
pub use pool::{SubmitError, WorkerPool};

use fork::Slots;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "AUTOAX_THREADS";

/// Inputs shorter than this run sequentially in [`par_map`]: for cheap
/// per-item work the spawn overhead dominates below a few dozen items.
const PAR_MAP_MIN_LEN: usize = 32;

/// The default worker-thread count: `AUTOAX_THREADS` if set and parseable
/// (clamped to ≥ 1), otherwise [`std::thread::available_parallelism`].
///
/// Read on every call (not cached) so tests and long-running processes can
/// re-tune; the lookup is two syscalls at worst.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` in parallel using scoped std threads, with the
/// default [`thread_count`]. Results are in input order.
///
/// Falls back to sequential execution for small inputs (the per-item work
/// is assumed cheap; use [`par_map_coarse`] or [`par_map_owned_with`] for
/// expensive items).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker-thread count.
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_impl(threads, items, f, PAR_MAP_MIN_LEN)
}

/// [`par_map`] for *coarse-grained* items (whole images, circuits):
/// parallelizes from two items up instead of [`par_map`]'s 32-item floor,
/// because the per-item work is assumed to dwarf the spawn overhead.
/// Results are in input order.
pub fn par_map_coarse<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_impl(thread_count(), items, f, 2)
}

fn par_map_impl<T, U, F>(threads: usize, items: &[T], f: F, min_len: usize) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() < min_len || threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    let mut results: Vec<Option<Vec<U>>> = Vec::new();
    results.resize_with(items.len().div_ceil(chunk), || None);
    {
        let slots = Slots::new(&mut results);
        let f = &f;
        fork::run_burst(items.len().div_ceil(chunk), |ci| {
            let part = &items[ci * chunk..(ci * chunk + chunk).min(items.len())];
            let out = part.iter().map(f).collect::<Vec<U>>();
            unsafe { slots.put(ci, Some(out)) };
        });
    }
    results.into_iter().flatten().flatten().collect()
}

/// Block scheduler for batched kernels: maps `f` over successive
/// `block`-sized index ranges of `0..n` in parallel, preserving block
/// order. The block size is part of the *result semantics* of callers
/// like batched forest prediction (fixed blocks keep outputs independent
/// of the worker count), so it is an explicit parameter, never derived
/// from the thread count.
///
/// Unlike slicing + [`par_map`], no intermediate range vector is built;
/// workers receive contiguous spans of block indices.
///
/// # Panics
/// Panics when `block` is zero.
pub fn par_map_range<U, F>(n: usize, block: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> U + Sync,
{
    par_map_range_with(thread_count(), n, block, f)
}

/// [`par_map_range`] with an explicit worker-thread count.
///
/// # Panics
/// Panics when `block` is zero.
pub fn par_map_range_with<U, F>(threads: usize, n: usize, block: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> U + Sync,
{
    assert!(block > 0, "block size must be positive");
    let blocks = n.div_ceil(block);
    let range_of = |bi: usize| bi * block..((bi + 1) * block).min(n);
    if blocks < 2 || blocks * block < PAR_MAP_MIN_LEN || threads <= 1 {
        return (0..blocks).map(range_of).map(&f).collect();
    }
    let span = blocks.div_ceil(threads.min(blocks));
    let mut results: Vec<Option<Vec<U>>> = Vec::new();
    results.resize_with(blocks.div_ceil(span), || None);
    {
        let slots = Slots::new(&mut results);
        let f = &f;
        let range_of = &range_of;
        fork::run_burst(blocks.div_ceil(span), |ci| {
            let lo = ci * span;
            let hi = (lo + span).min(blocks);
            let out = (lo..hi).map(range_of).map(f).collect::<Vec<U>>();
            unsafe { slots.put(ci, Some(out)) };
        });
    }
    results.into_iter().flatten().flatten().collect()
}

/// Maps `f` over owned `items` in parallel, preserving order.
///
/// Unlike [`par_map_with`] this is meant for a *small number of expensive,
/// stateful* tasks (e.g. search islands carrying their own RNG): it
/// parallelizes from two items up and hands each worker ownership of its
/// chunk.
pub fn par_map_owned_with<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.into_iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    let mut parts: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let part: Vec<T> = it.by_ref().take(chunk).collect();
        if part.is_empty() {
            break;
        }
        parts.push(part);
    }
    let mut parts: Vec<Option<Vec<T>>> = parts.into_iter().map(Some).collect();
    let mut results: Vec<Option<Vec<U>>> = Vec::new();
    results.resize_with(parts.len(), || None);
    {
        let part_slots = Slots::new(&mut parts);
        let slots = Slots::new(&mut results);
        let f = &f;
        fork::run_burst(results.len(), |ci| {
            let part = unsafe { part_slots.take(ci) }.expect("owned chunk claimed twice");
            let out = part.into_iter().map(f).collect::<Vec<U>>();
            unsafe { slots.put(ci, Some(out)) };
        });
    }
    results.into_iter().flatten().flatten().collect()
}

/// Chunked parallel map-reduce with the default [`thread_count`]: maps
/// every item, then folds the mapped values **left-associatively in input
/// order**. Returns `None` for empty input.
///
/// Because the fold association is fixed (independent of the thread
/// count), the result is byte-identical to the sequential
/// `items.iter().map(map).reduce(fold)` even for non-associative `fold`
/// operations such as floating-point sums.
pub fn map_reduce<T, U, M, R>(items: &[T], map: M, fold: R) -> Option<U>
where
    T: Sync,
    U: Send,
    M: Fn(&T) -> U + Sync,
    R: Fn(U, U) -> U,
{
    map_reduce_with(thread_count(), items, map, fold)
}

/// [`map_reduce`] with an explicit worker-thread count.
pub fn map_reduce_with<T, U, M, R>(threads: usize, items: &[T], map: M, fold: R) -> Option<U>
where
    T: Sync,
    U: Send,
    M: Fn(&T) -> U + Sync,
    R: Fn(U, U) -> U,
{
    // The map phase is assumed coarse-grained (images, circuits):
    // parallelize from two items up, one contiguous chunk per worker.
    par_map_impl(threads, items, map, 2)
        .into_iter()
        .reduce(fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let par = par_map(&items, |x| x * 3 + 1);
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_small_input() {
        let items = vec![1u32, 2, 3];
        assert_eq!(par_map(&items, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn par_map_order_invariant_across_thread_counts() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|x| x ^ 0xA5).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                par_map_with(threads, &items, |x| x ^ 0xA5),
                expect,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_owned_preserves_order_and_moves_state() {
        let items: Vec<String> = (0..17).map(|i| format!("v{i}")).collect();
        let expect: Vec<String> = items.iter().map(|s| format!("{s}!")).collect();
        for threads in [1, 2, 5, 32] {
            let out = par_map_owned_with(threads, items.clone(), |s| s + "!");
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_coarse_parallelizes_small_inputs() {
        let items = vec![3u64, 4];
        assert_eq!(par_map_coarse(&items, |x| x * x), vec![9, 16]);
        let many: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = many.iter().map(|x| x + 1).collect();
        assert_eq!(par_map_coarse(&many, |x| x + 1), expect);
    }

    #[test]
    fn par_map_range_covers_exactly_and_in_order() {
        let got = par_map_range(103, 8, |r| r);
        let flat: Vec<usize> = got.into_iter().flatten().collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
        // a single block never pays for a thread spawn
        assert_eq!(par_map_range(32, 32, |r| r), vec![0..32]);
        // short tail block is its own range
        let blocks = par_map_range(10, 4, |r| (r.start, r.end));
        assert_eq!(blocks, vec![(0, 4), (4, 8), (8, 10)]);
        assert!(par_map_range(0, 4, |r| r).is_empty());
    }

    #[test]
    fn par_map_range_is_thread_invariant() {
        let expect: Vec<usize> = par_map_range_with(1, 1000, 7, |r| r.end * 3 - r.start);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                par_map_range_with(threads, 1000, 7, |r| r.end * 3 - r.start),
                expect,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_reduce_empty_is_none() {
        let items: Vec<u32> = Vec::new();
        assert_eq!(map_reduce(&items, |&x| x, |a, b| a + b), None);
    }

    #[test]
    fn map_reduce_float_sum_is_bitwise_thread_invariant() {
        // Non-associative fold: f64 addition. The fixed left association
        // must give the exact sequential bits at every thread count.
        let items: Vec<f64> = (0..501).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let seq = items
            .iter()
            .map(|&x| x * 1.000001)
            .reduce(|a, b| a + b)
            .unwrap();
        for threads in [1, 2, 3, 7, 16] {
            let par = map_reduce_with(threads, &items, |&x| x * 1.000001, |a, b| a + b).unwrap();
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn map_reduce_two_items_parallelizes() {
        // Coarse-grained threshold: two items are enough to fan out.
        let got = map_reduce_with(4, &[10u64, 32], |&x| x, |a, b| a + b);
        assert_eq!(got, Some(42));
    }

    #[test]
    fn pooled_primitives_grow_one_shared_worker_set() {
        // Repeated bursts reuse pool threads: after a warm-up round the
        // worker count stays put no matter how many more calls follow.
        let items: Vec<u64> = (0..256).collect();
        let _ = par_map_with(4, &items, |x| x + 1);
        let after_first = pool_workers();
        assert!(after_first >= 1, "burst must have grown the pool");
        for _ in 0..50 {
            let _ = par_map_with(4, &items, |x| x + 1);
            let _ = par_map_range_with(4, 256, 8, |r| r.len());
            let _ = par_map_owned_with(4, items.clone(), |x| x * 2);
        }
        assert!(
            pool_workers() <= after_first.max(3),
            "same-width bursts must not spawn new workers per call"
        );
    }

    #[test]
    fn thread_count_env_override() {
        // Serialized within this test: set, read, restore.
        let prev = std::env::var(THREADS_ENV).ok();
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var(THREADS_ENV, "0"); // clamped up
        assert_eq!(thread_count(), 1);
        std::env::set_var(THREADS_ENV, "not-a-number"); // ignored
        assert!(thread_count() >= 1);
        match prev {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }
}
