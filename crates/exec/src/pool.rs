//! A reusable fixed-size worker pool.
//!
//! The scoped primitives in the crate root ([`crate::par_map`] and
//! friends) spawn threads per call — right for a single data-parallel
//! burst, wasteful for a long-lived service that handles an open-ended
//! stream of independent tasks (e.g. one task per accepted connection in
//! `autoax-serve`). [`WorkerPool`] keeps `n` threads alive behind a
//! condvar-guarded queue:
//!
//! * [`WorkerPool::submit`] enqueues a boxed closure; a bounded queue
//!   rejects work instead of buffering unboundedly;
//! * [`WorkerPool::shutdown`] is graceful — already-queued tasks drain,
//!   workers then exit and are joined. Submissions after shutdown are
//!   rejected;
//! * dropping the pool shuts it down implicitly.
//!
//! Panics in a task are contained to that task: the worker catches the
//! unwind, counts it, and keeps serving.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use autoax_telemetry as telemetry;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Service-pool metrics (shared by all [`WorkerPool`] instances — in
/// practice one per process, the `autoax-serve` connection pool).
struct ServiceMetrics {
    busy: telemetry::Gauge,
    tasks: telemetry::Counter,
    task_panics: telemetry::Counter,
}

fn service_metrics() -> &'static ServiceMetrics {
    static M: OnceLock<ServiceMetrics> = OnceLock::new();
    M.get_or_init(|| ServiceMetrics {
        busy: telemetry::gauge("autoax_service_pool_busy_workers"),
        tasks: telemetry::counter("autoax_service_pool_tasks_total"),
        task_panics: telemetry::counter("autoax_service_pool_task_panics_total"),
    })
}

/// Why a [`WorkerPool::submit`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — the caller should shed load.
    QueueFull,
    /// The pool is shutting down (or already shut down).
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "worker pool queue is full"),
            SubmitError::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Default)]
struct QueueState {
    tasks: VecDeque<Task>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled on task arrival and on shutdown.
    wake: Condvar,
    capacity: usize,
    completed: AtomicU64,
    panicked: AtomicU64,
}

/// A fixed-size pool of long-lived worker threads over a bounded queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to ≥ 1) with room for
    /// `capacity` queued tasks (clamped to ≥ 1) beyond the ones running.
    pub fn new(threads: usize, capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            wake: Condvar::new(),
            capacity: capacity.max(1),
            completed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("autoax-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a task for execution on some worker.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::ShuttingDown`]
    /// after [`WorkerPool::shutdown`].
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if state.tasks.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull);
        }
        state.tasks.push_back(Box::new(task));
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Tasks completed so far (including panicked ones).
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Tasks that panicked (contained; the worker survived).
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: rejects new submissions, lets queued tasks
    /// drain, then joins every worker. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutting_down = true;
        }
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(t) = state.tasks.pop_front() {
                    break t;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.wake.wait(state).expect("pool lock poisoned");
            }
        };
        let track = telemetry::metrics_enabled();
        if track {
            service_metrics().busy.inc();
        }
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err();
        if panicked {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
        shared.completed.fetch_add(1, Ordering::Relaxed);
        if track {
            let m = service_metrics();
            m.busy.dec();
            m.tasks.inc();
            if panicked {
                m.task_panics.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_submitted_tasks() {
        let pool = WorkerPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        let mut pool = pool;
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        assert_eq!(pool.completed(), 32);
        assert_eq!(pool.panicked(), 0);
    }

    #[test]
    fn shutdown_drains_queued_tasks_and_rejects_new_ones() {
        let mut pool = WorkerPool::new(1, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 8, "queued tasks must drain");
        assert_eq!(pool.submit(|| ()), Err(SubmitError::ShuttingDown));
        pool.shutdown(); // idempotent
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Occupy the single worker until released.
        let g = Arc::clone(&gate);
        pool.submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Wait for the worker to pick the blocker up, then fill the queue.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            {
                let state = pool.shared.state.lock().unwrap();
                if state.tasks.is_empty() {
                    break;
                }
            }
            assert!(std::time::Instant::now() < deadline, "worker never started");
            std::thread::yield_now();
        }
        pool.submit(|| ()).unwrap();
        assert_eq!(pool.submit(|| ()), Err(SubmitError::QueueFull));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let mut pool = WorkerPool::new(1, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("task boom")).unwrap();
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert_eq!(pool.panicked(), 1);
        assert_eq!(pool.completed(), 2);
    }
}
