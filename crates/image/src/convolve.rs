//! Reference (floating point) convolution used by golden models and tests.

use crate::image::GrayImage;

/// Convolves an image with a 3×3 kernel (replicated-edge padding), scales by
/// `scale`, rounds and clamps to `0..=255`.
///
/// The kernel is row-major, `kernel[ky][kx]`, applied with the usual
/// correlation convention (no flipping) since all paper kernels are
/// symmetric.
pub fn convolve3x3(img: &GrayImage, kernel: &[[f64; 3]; 3], scale: f64) -> GrayImage {
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f64;
        for (ky, row) in kernel.iter().enumerate() {
            for (kx, &k) in row.iter().enumerate() {
                let px =
                    img.get_clamped(x as isize + kx as isize - 1, y as isize + ky as isize - 1);
                acc += k * px as f64;
            }
        }
        (acc * scale).round().clamp(0.0, 255.0) as u8
    })
}

/// Like [`convolve3x3`] but takes the magnitude `|acc|` before clamping —
/// the form edge detectors use.
pub fn convolve3x3_abs(img: &GrayImage, kernel: &[[f64; 3]; 3], scale: f64) -> GrayImage {
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f64;
        for (ky, row) in kernel.iter().enumerate() {
            for (kx, &k) in row.iter().enumerate() {
                let px =
                    img.get_clamped(x as isize + kx as isize - 1, y as isize + ky as isize - 1);
                acc += k * px as f64;
            }
        }
        (acc.abs() * scale).round().clamp(0.0, 255.0) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_is_identity() {
        let img = crate::synthetic::benchmark_suite(1, 32, 24, 9).remove(0);
        let id = [[0.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 0.0]];
        assert_eq!(convolve3x3(&img, &id, 1.0), img);
    }

    #[test]
    fn box_blur_reduces_variance() {
        let img = crate::synthetic::polygons(64, 48, 3, 6);
        let k = [[1.0; 3]; 3];
        let blurred = convolve3x3(&img, &k, 1.0 / 9.0);
        let var = |im: &GrayImage| {
            let m = im.mean();
            im.data()
                .iter()
                .map(|&p| (p as f64 - m).powi(2))
                .sum::<f64>()
                / im.data().len() as f64
        };
        assert!(var(&blurred) < var(&img));
    }

    #[test]
    fn abs_variant_detects_edges() {
        // A vertical step edge produces strong output under a Sobel-x kernel.
        let img = GrayImage::from_fn(16, 16, |x, _| if x < 8 { 0 } else { 200 });
        let sobel_x = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];
        let edges = convolve3x3_abs(&img, &sobel_x, 1.0);
        // Edge column x=7..8 must light up; flat regions must be zero.
        assert!(edges.get(7, 8) > 100);
        assert_eq!(edges.get(2, 8), 0);
        assert_eq!(edges.get(13, 8), 0);
    }
}
