//! 8-bit grayscale image container.

/// An 8-bit grayscale image stored row-major.
///
/// Pixel access outside the image uses *clamped* (replicated-edge)
/// coordinates via [`GrayImage::get_clamped`], which is the padding the
/// paper's 3×3 filters need at the borders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates a black image of the given size.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        GrayImage {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Wraps existing pixel data (row-major, `width * height` bytes).
    ///
    /// # Panics
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        assert_eq!(data.len(), width * height, "pixel buffer size mismatch");
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut img = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major pixel data.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw pixel data.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x] = v;
    }

    /// Pixel at signed coordinates with replicated-edge padding.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    /// Mean pixel intensity.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&p| p as f64).sum::<f64>() / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = GrayImage::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert!(img.data().iter().all(|&p| p == 0));
    }

    #[test]
    fn from_fn_and_get() {
        let img = GrayImage::from_fn(3, 2, |x, y| (x + 10 * y) as u8);
        assert_eq!(img.get(2, 1), 12);
        assert_eq!(img.get(0, 0), 0);
    }

    #[test]
    fn clamped_access() {
        let img = GrayImage::from_fn(3, 3, |x, y| (x + 3 * y) as u8);
        assert_eq!(img.get_clamped(-1, -1), img.get(0, 0));
        assert_eq!(img.get_clamped(5, 1), img.get(2, 1));
        assert_eq!(img.get_clamped(1, 7), img.get(1, 2));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_data_size_checked() {
        let _ = GrayImage::from_data(2, 2, vec![0; 3]);
    }

    #[test]
    fn mean_of_constant_image() {
        let img = GrayImage::from_fn(8, 8, |_, _| 100);
        assert_eq!(img.mean(), 100.0);
    }
}
