//! # autoax-image
//!
//! Grayscale images, a deterministic synthetic benchmark suite, and the
//! quality-of-result metrics used by the autoAx (DAC 2019) reproduction.
//!
//! The paper profiles and evaluates its accelerators on 384×256 grayscale
//! images from the Berkeley Segmentation Dataset. That dataset is not
//! available offline, so [`synthetic`] generates a deterministic suite of
//! natural-image proxies (multi-octave value noise, gradients, blobs and
//! edges) with the property that matters for the methodology: neighbouring
//! pixels are strongly correlated, which produces the diagonal-concentrated
//! operand distributions of the paper's Fig. 3.
//!
//! QoR is measured with the structural similarity index ([`ssim::ssim`],
//! Wang et al. 2004), exactly as in the paper; [`metrics`] adds PSNR/MSE.
//!
//! # Example
//!
//! ```
//! use autoax_image::synthetic::benchmark_suite;
//! use autoax_image::ssim::ssim;
//!
//! let imgs = benchmark_suite(2, 64, 48, 7);
//! assert_eq!(imgs.len(), 2);
//! let s = ssim(&imgs[0], &imgs[0]);
//! assert!((s - 1.0).abs() < 1e-12);
//! ```

pub mod convolve;
pub mod image;
pub mod metrics;
pub mod pgm;
pub mod ssim;
pub mod synthetic;

pub use image::GrayImage;
