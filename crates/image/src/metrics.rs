//! Auxiliary quality metrics: mean squared error and PSNR.
//!
//! The paper reports SSIM; these are provided for users who prefer the
//! classic distortion metrics, and for cross-checking (SSIM and PSNR agree
//! on the ordering of mild distortions).

use crate::image::GrayImage;

/// Mean squared error between two images of identical dimensions.
///
/// # Panics
/// Panics if the images have different dimensions.
pub fn mse(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.width(), b.width(), "MSE requires equal widths");
    assert_eq!(a.height(), b.height(), "MSE requires equal heights");
    let n = a.data().len() as f64;
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / n
}

/// Peak signal-to-noise ratio in dB. Returns `f64::INFINITY` for identical
/// images.
pub fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / m).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn identical_images() {
        let img = synthetic::natural_proxy(48, 32, 1);
        assert_eq!(mse(&img, &img), 0.0);
        assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn mse_of_constant_offset() {
        let a = GrayImage::from_fn(8, 8, |_, _| 100);
        let b = GrayImage::from_fn(8, 8, |_, _| 110);
        assert_eq!(mse(&a, &b), 100.0);
        let p = psnr(&a, &b);
        assert!((p - 28.13).abs() < 0.01, "psnr {p}");
    }

    #[test]
    fn psnr_orders_distortions_like_ssim() {
        let img = synthetic::natural_proxy(64, 48, 9);
        let mild = GrayImage::from_fn(img.width(), img.height(), |x, y| {
            img.get(x, y).saturating_add(3)
        });
        let harsh = GrayImage::from_fn(img.width(), img.height(), |x, y| {
            img.get(x, y).wrapping_add(90)
        });
        assert!(psnr(&img, &mild) > psnr(&img, &harsh));
        assert!(crate::ssim::ssim(&img, &mild) > crate::ssim::ssim(&img, &harsh));
    }
}
