//! Plain PGM (portable graymap, P2) import/export — lets users inspect
//! the synthetic benchmark images and accelerator outputs with any image
//! viewer, and feed their own grayscale data into the pipeline.

use crate::image::GrayImage;
use std::fmt::Write as _;
use std::path::Path;

/// Serializes an image as plain-text PGM (`P2`).
pub fn to_pgm(img: &GrayImage) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "P2");
    let _ = writeln!(s, "{} {}", img.width(), img.height());
    let _ = writeln!(s, "255");
    for y in 0..img.height() {
        let row: Vec<String> = (0..img.width())
            .map(|x| img.get(x, y).to_string())
            .collect();
        let _ = writeln!(s, "{}", row.join(" "));
    }
    s
}

/// Writes an image to a `.pgm` file.
///
/// # Errors
/// Propagates I/O errors from the filesystem.
pub fn save_pgm(img: &GrayImage, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, to_pgm(img))
}

/// Error parsing a PGM document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePgmError {
    message: String,
}

impl ParsePgmError {
    fn new(message: impl Into<String>) -> Self {
        ParsePgmError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParsePgmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid PGM: {}", self.message)
    }
}

impl std::error::Error for ParsePgmError {}

/// Parses a plain-text PGM (`P2`) document.
///
/// Values above the declared maximum are rescaled to `0..=255`.
///
/// # Errors
/// Returns [`ParsePgmError`] for wrong magic, missing tokens, or pixel
/// count mismatches.
pub fn from_pgm(text: &str) -> Result<GrayImage, ParsePgmError> {
    let mut tokens = text
        .lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .flat_map(|l| l.split_whitespace());
    if tokens.next() != Some("P2") {
        return Err(ParsePgmError::new("expected magic `P2`"));
    }
    let mut next_num = |what: &str| -> Result<u32, ParsePgmError> {
        tokens
            .next()
            .ok_or_else(|| ParsePgmError::new(format!("missing {what}")))?
            .parse::<u32>()
            .map_err(|_| ParsePgmError::new(format!("non-numeric {what}")))
    };
    let width = next_num("width")? as usize;
    let height = next_num("height")? as usize;
    let maxval = next_num("maxval")?.max(1);
    if width == 0 || height == 0 {
        return Err(ParsePgmError::new("zero dimension"));
    }
    let mut data = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        let v = next_num("pixel")?;
        data.push(((v.min(maxval) * 255) / maxval) as u8);
    }
    Ok(GrayImage::from_data(width, height, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::natural_proxy;

    #[test]
    fn roundtrip_preserves_pixels() {
        let img = natural_proxy(17, 11, 5);
        let parsed = from_pgm(&to_pgm(&img)).unwrap();
        assert_eq!(parsed, img);
    }

    #[test]
    fn header_format() {
        let img = GrayImage::from_fn(2, 2, |x, y| (x + 2 * y) as u8);
        let s = to_pgm(&img);
        let mut lines = s.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("2 2"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(lines.next(), Some("0 1"));
        assert_eq!(lines.next(), Some("2 3"));
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(from_pgm("P5\n1 1\n255\n0").is_err());
    }

    #[test]
    fn rejects_truncated_pixels() {
        assert!(from_pgm("P2\n2 2\n255\n1 2 3").is_err());
    }

    #[test]
    fn rescales_nonstandard_maxval() {
        let img = from_pgm("P2\n2 1\n15\n0 15").unwrap();
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(1, 0), 255);
    }

    #[test]
    fn ignores_comment_lines() {
        let img = from_pgm("P2\n# a comment\n1 1\n255\n42").unwrap();
        assert_eq!(img.get(0, 0), 42);
    }

    #[test]
    fn save_writes_file() {
        let img = natural_proxy(8, 6, 9);
        let dir = std::env::temp_dir().join("autoax_pgm_test.pgm");
        save_pgm(&img, &dir).unwrap();
        let back = from_pgm(&std::fs::read_to_string(&dir).unwrap()).unwrap();
        assert_eq!(back, img);
        let _ = std::fs::remove_file(&dir);
    }
}
