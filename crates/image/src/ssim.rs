//! Structural similarity index (SSIM), Wang et al. 2004 — the QoR metric of
//! the paper.
//!
//! Implemented with the standard parameters: an 11×11 Gaussian window with
//! σ = 1.5, K1 = 0.01, K2 = 0.03, dynamic range L = 255. The windowed
//! statistics are computed with separable Gaussian filtering over float
//! planes, so a full 384×256 comparison costs a few milliseconds.

use crate::image::GrayImage;

const K1: f64 = 0.01;
const K2: f64 = 0.03;
const L: f64 = 255.0;
const WINDOW_RADIUS: usize = 5;

/// The 11-tap Gaussian window (σ = 1.5), normalized to sum 1.
fn gaussian_taps() -> [f64; 2 * WINDOW_RADIUS + 1] {
    let sigma = 1.5f64;
    let mut taps = [0.0; 2 * WINDOW_RADIUS + 1];
    let mut sum = 0.0;
    for (i, t) in taps.iter_mut().enumerate() {
        let d = i as f64 - WINDOW_RADIUS as f64;
        *t = (-d * d / (2.0 * sigma * sigma)).exp();
        sum += *t;
    }
    for t in taps.iter_mut() {
        *t /= sum;
    }
    taps
}

/// Separable Gaussian filter over an `f64` plane with replicated edges.
fn gauss_filter(plane: &[f64], width: usize, height: usize) -> Vec<f64> {
    let taps = gaussian_taps();
    let r = WINDOW_RADIUS as isize;
    let mut tmp = vec![0.0f64; width * height];
    // horizontal pass
    for y in 0..height {
        let row = &plane[y * width..(y + 1) * width];
        for x in 0..width {
            let mut acc = 0.0;
            for (k, &t) in taps.iter().enumerate() {
                let xx = (x as isize + k as isize - r).clamp(0, width as isize - 1) as usize;
                acc += t * row[xx];
            }
            tmp[y * width + x] = acc;
        }
    }
    // vertical pass
    let mut out = vec![0.0f64; width * height];
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0;
            for (k, &t) in taps.iter().enumerate() {
                let yy = (y as isize + k as isize - r).clamp(0, height as isize - 1) as usize;
                acc += t * tmp[yy * width + x];
            }
            out[y * width + x] = acc;
        }
    }
    out
}

/// Mean SSIM between two images of identical dimensions.
///
/// Returns a value in `(-1, 1]`; `1.0` iff the images are identical.
///
/// # Panics
/// Panics if the images have different dimensions.
pub fn ssim(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.width(), b.width(), "SSIM requires equal widths");
    assert_eq!(a.height(), b.height(), "SSIM requires equal heights");
    let (w, h) = (a.width(), a.height());
    let n = w * h;
    let ap: Vec<f64> = a.data().iter().map(|&p| p as f64).collect();
    let bp: Vec<f64> = b.data().iter().map(|&p| p as f64).collect();
    let a2: Vec<f64> = ap.iter().map(|v| v * v).collect();
    let b2: Vec<f64> = bp.iter().map(|v| v * v).collect();
    let ab: Vec<f64> = ap.iter().zip(bp.iter()).map(|(x, y)| x * y).collect();

    let mu_a = gauss_filter(&ap, w, h);
    let mu_b = gauss_filter(&bp, w, h);
    let m_a2 = gauss_filter(&a2, w, h);
    let m_b2 = gauss_filter(&b2, w, h);
    let m_ab = gauss_filter(&ab, w, h);

    let c1 = (K1 * L) * (K1 * L);
    let c2 = (K2 * L) * (K2 * L);
    let mut total = 0.0;
    for i in 0..n {
        let (ma, mb) = (mu_a[i], mu_b[i]);
        let va = (m_a2[i] - ma * ma).max(0.0);
        let vb = (m_b2[i] - mb * mb).max(0.0);
        let cov = m_ab[i] - ma * mb;
        let s =
            ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) / ((ma * ma + mb * mb + c1) * (va + vb + c2));
        total += s;
    }
    total / n as f64
}

/// Mean SSIM of a processed image suite against golden outputs:
/// `mean(ssim(approx[i], golden[i]))`.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mean_ssim(approx: &[GrayImage], golden: &[GrayImage]) -> f64 {
    assert_eq!(approx.len(), golden.len());
    assert!(!approx.is_empty());
    approx
        .iter()
        .zip(golden.iter())
        .map(|(a, g)| ssim(a, g))
        .sum::<f64>()
        / approx.len() as f64
}

/// Tiny deterministic signed-noise helper for tests (kept out of the public
/// API surface).
#[doc(hidden)]
pub fn synthetic_test_noise(state: &mut u64, amount: i32) -> i32 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let r = (*state >> 33) as i32;
    (r % (2 * amount + 1)) - amount
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn identical_images_score_one() {
        let img = synthetic::natural_proxy(64, 48, 5);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = synthetic::natural_proxy(64, 48, 5);
        let b = synthetic::value_noise(64, 48, 6, 4);
        assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn small_noise_scores_high_heavy_noise_scores_lower() {
        let img = synthetic::natural_proxy(96, 64, 7);
        let perturb = |amount: i32, seed: u64| {
            let mut st = seed;
            GrayImage::from_fn(img.width(), img.height(), |x, y| {
                let r = synthetic_test_noise(&mut st, amount);
                (img.get(x, y) as i32 + r).clamp(0, 255) as u8
            })
        };
        let light = perturb(2, 1);
        let heavy = perturb(60, 2);
        let s_light = ssim(&img, &light);
        let s_heavy = ssim(&img, &heavy);
        assert!(s_light > 0.95, "light noise: {s_light}");
        assert!(s_heavy < s_light, "heavy {s_heavy} !< light {s_light}");
        assert!(s_heavy < 0.8, "heavy noise should hurt: {s_heavy}");
    }

    #[test]
    fn constant_shift_scores_below_one() {
        let img = synthetic::natural_proxy(64, 48, 8);
        let shifted = GrayImage::from_fn(img.width(), img.height(), |x, y| {
            img.get(x, y).saturating_add(40)
        });
        let s = ssim(&img, &shifted);
        assert!(s < 0.999 && s > 0.0);
    }

    #[test]
    fn mean_ssim_averages() {
        let a = synthetic::natural_proxy(32, 24, 1);
        let b = synthetic::value_noise(32, 24, 2, 3);
        let m = mean_ssim(&[a.clone(), a.clone()], &[a.clone(), b.clone()]);
        let expected = (1.0 + ssim(&a, &b)) / 2.0;
        assert!((m - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn dimension_mismatch_panics() {
        let a = GrayImage::new(4, 4);
        let b = GrayImage::new(5, 4);
        let _ = ssim(&a, &b);
    }
}
