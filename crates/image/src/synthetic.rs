//! Deterministic synthetic benchmark images.
//!
//! A stand-in for the Berkeley Segmentation Dataset used by the paper
//! (384×256 grayscale). The generators are designed so that the images have
//! natural-image statistics in the one respect the methodology depends on:
//! *neighbouring pixels are strongly correlated*, which makes the profiled
//! operand PMFs concentrate near the diagonal (paper Fig. 3).
//!
//! Every generator is a pure function of its seed; the whole suite is
//! reproducible bit-for-bit.

use crate::image::GrayImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Smooth multi-octave value noise ("cloud" texture).
pub fn value_noise(width: usize, height: usize, seed: u64, octaves: u32) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random lattice per octave; bilinear interpolation between lattice
    // points gives C0-smooth fields.
    let mut acc = vec![0.0f64; width * height];
    let mut amplitude = 1.0;
    let mut total_amp = 0.0;
    for octave in 0..octaves {
        let cell = (32usize >> octave).max(2);
        let gw = width / cell + 2;
        let gh = height / cell + 2;
        let lattice: Vec<f64> = (0..gw * gh).map(|_| rng.gen::<f64>()).collect();
        for y in 0..height {
            for x in 0..width {
                let fx = x as f64 / cell as f64;
                let fy = y as f64 / cell as f64;
                let x0 = fx as usize;
                let y0 = fy as usize;
                let tx = fx - x0 as f64;
                let ty = fy - y0 as f64;
                // smoothstep for softer gradients
                let sx = tx * tx * (3.0 - 2.0 * tx);
                let sy = ty * ty * (3.0 - 2.0 * ty);
                let l = |gx: usize, gy: usize| lattice[gy * gw + gx];
                let v = l(x0, y0) * (1.0 - sx) * (1.0 - sy)
                    + l(x0 + 1, y0) * sx * (1.0 - sy)
                    + l(x0, y0 + 1) * (1.0 - sx) * sy
                    + l(x0 + 1, y0 + 1) * sx * sy;
                acc[y * width + x] += v * amplitude;
            }
        }
        total_amp += amplitude;
        amplitude *= 0.55;
    }
    GrayImage::from_fn(width, height, |x, y| {
        (acc[y * width + x] / total_amp * 255.0)
            .round()
            .clamp(0.0, 255.0) as u8
    })
}

/// A linear gradient with a seeded direction and offset.
pub fn gradient(width: usize, height: usize, seed: u64) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let angle: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let (dx, dy) = (angle.cos(), angle.sin());
    let norm = (width as f64 * dx.abs() + height as f64 * dy.abs()).max(1.0);
    GrayImage::from_fn(width, height, |x, y| {
        let t = (x as f64 * dx + y as f64 * dy) / norm;
        ((t * 0.5 + 0.5) * 255.0).round().clamp(0.0, 255.0) as u8
    })
}

/// Soft Gaussian blobs on a dark background (cell/microscopy-like).
pub fn blobs(width: usize, height: usize, seed: u64, count: usize) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<(f64, f64, f64, f64)> = (0..count)
        .map(|_| {
            (
                rng.gen::<f64>() * width as f64,
                rng.gen::<f64>() * height as f64,
                8.0 + rng.gen::<f64>() * 30.0,
                0.4 + rng.gen::<f64>() * 0.6,
            )
        })
        .collect();
    let mut field = vec![0.0f64; width * height];
    for y in 0..height {
        for x in 0..width {
            let mut v = 0.08f64;
            for &(cx, cy, r, a) in &centers {
                let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                v += a * (-d2 / (2.0 * r * r)).exp();
            }
            field[y * width + x] = v;
        }
    }
    // Min-max normalize: on small images the blobs overlap so much that a
    // clamped sum can saturate the whole frame; normalizing keeps the
    // contrast (and neighbour correlation) at every geometry.
    let lo = field.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    GrayImage::from_fn(width, height, |x, y| {
        ((field[y * width + x] - lo) / span * 255.0).round() as u8
    })
}

/// Piecewise-constant regions with sharp edges (cartoon/segmentation-like),
/// built from seeded half-plane cuts. Exercises edge detectors.
pub fn polygons(width: usize, height: usize, seed: u64, cuts: usize) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let planes: Vec<(f64, f64, f64, u8)> = (0..cuts)
        .map(|_| {
            let angle: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
            (
                angle.cos(),
                angle.sin(),
                rng.gen::<f64>() * (width + height) as f64 - height as f64,
                rng.gen::<u8>(),
            )
        })
        .collect();
    GrayImage::from_fn(width, height, |x, y| {
        let mut v = 128u32;
        for &(a, b, c, delta) in &planes {
            if a * x as f64 + b * y as f64 > c {
                v = (v + delta as u32) % 256;
            }
        }
        v as u8
    })
}

/// A blend of smooth texture and edges — the closest proxy to a natural
/// photograph in the suite.
pub fn natural_proxy(width: usize, height: usize, seed: u64) -> GrayImage {
    let noise = value_noise(width, height, seed, 4);
    let poly = polygons(width, height, seed ^ 0xABCD, 5);
    let grad = gradient(width, height, seed ^ 0x1234);
    GrayImage::from_fn(width, height, |x, y| {
        let n = noise.get(x, y) as f64;
        let p = poly.get(x, y) as f64;
        let g = grad.get(x, y) as f64;
        (0.55 * n + 0.3 * p + 0.15 * g).round().clamp(0.0, 255.0) as u8
    })
}

/// Generates the benchmark suite: `n` deterministic images of the given
/// size, cycling through the generator kinds so every suite contains
/// smooth, edged and textured content.
///
/// The paper uses 24 images of 384×256 for Sobel/fixed-GF QoR and 4 for the
/// generic GF.
pub fn benchmark_suite(n: usize, width: usize, height: usize, seed: u64) -> Vec<GrayImage> {
    (0..n)
        .map(|i| {
            let s = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 * 0x1000_0001);
            match i % 4 {
                0 => natural_proxy(width, height, s),
                1 => value_noise(width, height, s, 5),
                2 => blobs(width, height, s, 14),
                _ => polygons(width, height, s, 7),
            }
        })
        .collect()
}

/// The paper's image geometry: 384×256 pixels.
pub const PAPER_WIDTH: usize = 384;
/// The paper's image geometry: 384×256 pixels.
pub const PAPER_HEIGHT: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic() {
        let a = benchmark_suite(4, 64, 48, 11);
        let b = benchmark_suite(4, 64, 48, 11);
        assert_eq!(a, b);
        let c = benchmark_suite(4, 64, 48, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn images_have_dynamic_range() {
        for img in benchmark_suite(4, 96, 64, 3) {
            let min = *img.data().iter().min().unwrap();
            let max = *img.data().iter().max().unwrap();
            assert!(max - min > 60, "image too flat: {min}..{max}");
        }
    }

    #[test]
    fn neighbours_are_correlated() {
        // The property Fig. 3 depends on: horizontal neighbours are close
        // in value far more often than random pixel pairs would be.
        for img in benchmark_suite(4, 128, 96, 5) {
            let mut close = 0usize;
            let mut total = 0usize;
            for y in 0..img.height() {
                for x in 1..img.width() {
                    let d = (img.get(x, y) as i32 - img.get(x - 1, y) as i32).abs();
                    if d <= 16 {
                        close += 1;
                    }
                    total += 1;
                }
            }
            let frac = close as f64 / total as f64;
            assert!(frac > 0.7, "neighbour correlation too weak: {frac}");
        }
    }

    #[test]
    fn polygons_have_edges() {
        let img = polygons(128, 96, 17, 6);
        let mut strong_edges = 0;
        for y in 0..img.height() {
            for x in 1..img.width() {
                if (img.get(x, y) as i32 - img.get(x - 1, y) as i32).abs() > 60 {
                    strong_edges += 1;
                }
            }
        }
        assert!(
            strong_edges > 50,
            "expected sharp edges, got {strong_edges}"
        );
    }

    #[test]
    fn value_noise_is_smooth() {
        let img = value_noise(128, 96, 23, 3);
        let mut max_step = 0i32;
        for y in 0..img.height() {
            for x in 1..img.width() {
                max_step = max_step.max((img.get(x, y) as i32 - img.get(x - 1, y) as i32).abs());
            }
        }
        assert!(max_step < 120, "noise has implausible jumps: {max_step}");
    }
}
