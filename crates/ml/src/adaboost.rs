//! AdaBoost.R2 (Drucker 1997) with shallow CART trees — the "Ada Boost"
//! row of the paper's Table 3.

use crate::engine::{Regressor, TrainError};
use crate::linalg::Matrix;
use crate::tree::{DecisionTree, TreeConfig};

/// AdaBoost.R2 regressor with linear loss.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    /// Maximum number of boosting rounds.
    pub n_estimators: usize,
    /// Depth of each weak learner.
    pub max_depth: usize,
    /// Seed for weighted resampling.
    pub seed: u64,
    models: Vec<(DecisionTree, f64)>, // (tree, log(1/beta))
}

impl AdaBoost {
    /// scikit-learn-like defaults: 50 estimators of depth 3.
    pub fn new(seed: u64) -> Self {
        AdaBoost {
            n_estimators: 50,
            max_depth: 3,
            seed,
            models: Vec::new(),
        }
    }

    /// Weighted-median prediction over the ensemble.
    fn weighted_median(&self, preds: &[(f64, f64)]) -> f64 {
        // preds: (prediction, weight) sorted by prediction
        let total: f64 = preds.iter().map(|p| p.1).sum();
        let mut acc = 0.0;
        for &(p, w) in preds {
            acc += w;
            if acc >= total / 2.0 {
                return p;
            }
        }
        preds.last().map(|p| p.0).unwrap_or(0.0)
    }
}

impl Regressor for AdaBoost {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        let n = x.nrows();
        if n == 0 || n != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        self.models.clear();
        let mut weights = vec![1.0 / n as f64; n];
        let mut st = self.seed ^ 0xADA_B005_7000_0001;
        let next = |st: &mut u64| {
            *st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *st;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        for round in 0..self.n_estimators {
            // weighted bootstrap resample
            let cdf: Vec<f64> = weights
                .iter()
                .scan(0.0, |acc, &w| {
                    *acc += w;
                    Some(*acc)
                })
                .collect();
            let total = *cdf.last().unwrap();
            let idx: Vec<usize> = (0..n)
                .map(|_| {
                    let r = next(&mut st) * total;
                    cdf.partition_point(|&c| c < r).min(n - 1)
                })
                .collect();
            let mut tree = DecisionTree::new(TreeConfig {
                max_depth: self.max_depth,
                seed: self.seed.wrapping_add(round as u64),
                ..Default::default()
            });
            tree.fit_subset(x, y, &idx, None)?;
            // linear loss per sample
            let errs: Vec<f64> = (0..n)
                .map(|i| (tree.predict_row(x.row(i)) - y[i]).abs())
                .collect();
            let emax = errs.iter().cloned().fold(0.0f64, f64::max);
            if emax <= 1e-12 {
                // perfect learner: give it a large weight and stop
                self.models.push((tree, 10.0));
                break;
            }
            let losses: Vec<f64> = errs.iter().map(|e| e / emax).collect();
            let avg_loss: f64 = losses
                .iter()
                .zip(weights.iter())
                .map(|(l, w)| l * w)
                .sum::<f64>()
                / weights.iter().sum::<f64>();
            if avg_loss >= 0.5 {
                // learner no better than chance; stop as in AdaBoost.R2
                break;
            }
            let beta = avg_loss / (1.0 - avg_loss);
            for (w, l) in weights.iter_mut().zip(losses.iter()) {
                *w *= beta.powf(1.0 - l);
            }
            let wsum: f64 = weights.iter().sum();
            for w in weights.iter_mut() {
                *w /= wsum;
            }
            self.models.push((tree, (1.0 / beta).ln()));
        }
        if self.models.is_empty() {
            // fall back to one unweighted tree so predictions are defined
            let idx: Vec<usize> = (0..n).collect();
            let mut tree = DecisionTree::new(TreeConfig {
                max_depth: self.max_depth,
                ..Default::default()
            });
            tree.fit_subset(x, y, &idx, None)?;
            self.models.push((tree, 1.0));
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut preds: Vec<(f64, f64)> = self
            .models
            .iter()
            .map(|(t, w)| (t.predict_row(row), *w))
            .collect();
        preds.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        self.weighted_median(&preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_smooth_function() {
        let rows: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0].sqrt() * 3.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut a = AdaBoost::new(0);
        a.fit(&x, &y).unwrap();
        let preds = a.predict(&x);
        let mse: f64 = preds
            .iter()
            .zip(y.iter())
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.5, "mse {mse}");
    }

    #[test]
    fn deterministic() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut a1 = AdaBoost::new(3);
        let mut a2 = AdaBoost::new(3);
        a1.fit(&x, &y).unwrap();
        a2.fit(&x, &y).unwrap();
        assert_eq!(a1.predict_row(&[30.5]), a2.predict_row(&[30.5]));
    }

    #[test]
    fn handles_constant_target() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![4.0; 20];
        let x = Matrix::from_rows(&rows);
        let mut a = AdaBoost::new(0);
        a.fit(&x, &y).unwrap();
        assert!((a.predict_row(&[7.0]) - 4.0).abs() < 1e-9);
    }
}
