//! Compiled forest inference: the estimation kernel behind the Step-3
//! hot path.
//!
//! A fitted [`RandomForest`]/[`DecisionTree`] walks pointer-chasing
//! [`crate::tree::NodeRepr`]-shaped enum nodes one row at a time — fine
//! for fitting, hostile to a search loop that performs 10⁵–10⁶ model
//! estimates per run. [`CompiledForest`] flattens **all** trees into one
//! structure-of-arrays arena (contiguous `feature`/`threshold`/`left`/
//! `right`/`leaf` lanes, trees concatenated with root offsets) and
//! predicts whole batches with a *branchless* batch-major traversal:
//!
//! * leaves are encoded as self-loops (`left == right == self`, threshold
//!   `NaN` so `x <= t` is always false), which makes every node a split
//!   and the step `idx = if x <= t { left } else { right }` a pure
//!   arithmetic select (mask/cmov — no data-dependent branch);
//! * trees run in the outer loop over a block of rows, so one tree's
//!   lanes stay cache-hot across the whole block;
//! * per-row accumulation happens in tree order with a single final
//!   division, exactly like [`crate::engine::Regressor::predict_row`] — results are
//!   **bitwise identical** to the pointer walk.
//!
//! [`GatherForest`] goes one step further for the DSE: the per-slot
//! feature tables of the estimator are pre-baked *into* the arena's
//! feature indices (each node stores a flat table offset plus the genome
//! slot that selects the row), so prediction runs straight off a `u16`
//! genome slab — the feature matrix is never materialized. An explicit
//! AVX2 variant (4 rows per instruction stream, `vgatherqpd` lane loads,
//! `vcmppd`/`vblendvpd` select) is runtime-dispatched on `x86_64`; the
//! scalar mask-select fallback is bit-identical.

use crate::engine::TrainError;
use crate::forest::RandomForest;
use crate::linalg::Matrix;
use crate::tree::{DecisionTree, NodeRepr};

/// Rows per traversal block: one tree's lanes are reused across this many
/// rows before the next tree streams in. Matches the cache-blocking of
/// [`RandomForest::predict`] and comfortably covers the search layer's
/// 32-candidate estimation rounds.
const BLOCK: usize = 64;

/// All trees of a fitted ensemble flattened into one structure-of-arrays
/// arena. See the module docs for the layout and identity guarantees.
#[derive(Debug, Clone)]
pub struct CompiledForest {
    /// Feature column tested at each node (0 for leaves).
    feature: Vec<u32>,
    /// Split threshold (`NaN` for leaves, so `x <= t` never holds).
    threshold: Vec<f64>,
    /// Left child (self for leaves).
    left: Vec<u32>,
    /// Right child (self for leaves).
    right: Vec<u32>,
    /// Leaf value (0 for splits — never read there).
    leaf: Vec<f64>,
    /// Root node index per tree.
    roots: Vec<u32>,
    /// Deepest leaf per tree: the fixed trip count of its traversal.
    depths: Vec<u32>,
    /// Feature-vector width the arena was compiled for.
    n_features: usize,
    /// Final per-row division (tree count for forests, 1 for a tree) —
    /// dividing (not multiplying by a reciprocal) keeps the result
    /// bitwise equal to `sum / n`.
    divisor: f64,
}

impl CompiledForest {
    /// Compiles a fitted forest. Fails on an unfitted (empty) forest.
    ///
    /// # Errors
    /// [`TrainError`] when the forest has no trees or a tree is malformed.
    pub fn from_forest(f: &RandomForest) -> Result<Self, TrainError> {
        let trees = f.fitted_trees();
        if trees.is_empty() {
            return Err(TrainError::new("cannot compile an unfitted forest"));
        }
        let lists: Vec<Vec<NodeRepr>> = trees.iter().map(|t| t.export_nodes()).collect();
        Self::from_node_lists(&lists, trees.len() as f64)
    }

    /// Compiles a fitted single tree (divisor 1 — `x / 1.0` is exact, so
    /// results still match [`crate::engine::Regressor::predict_row`] bit for bit).
    ///
    /// # Errors
    /// [`TrainError`] when the tree is unfitted or malformed.
    pub fn from_tree(t: &DecisionTree) -> Result<Self, TrainError> {
        Self::from_node_lists(&[t.export_nodes()], 1.0)
    }

    /// Compiles exported node lists (node 0 of each list is its root).
    ///
    /// # Errors
    /// [`TrainError`] on empty input, an empty tree, a child index out of
    /// range, or a node graph that is not a tree (shared or cyclic nodes
    /// would make the fixed-trip traversal diverge from the pointer walk).
    pub fn from_node_lists(lists: &[Vec<NodeRepr>], divisor: f64) -> Result<Self, TrainError> {
        if lists.is_empty() {
            return Err(TrainError::new("cannot compile zero trees"));
        }
        let total: usize = lists.iter().map(Vec::len).sum();
        if total > u32::MAX as usize {
            return Err(TrainError::new("arena exceeds u32 node indices"));
        }
        let mut arena = CompiledForest {
            feature: Vec::with_capacity(total),
            threshold: Vec::with_capacity(total),
            left: Vec::with_capacity(total),
            right: Vec::with_capacity(total),
            leaf: Vec::with_capacity(total),
            roots: Vec::with_capacity(lists.len()),
            depths: Vec::with_capacity(lists.len()),
            n_features: 0,
            divisor,
        };
        for nodes in lists {
            if nodes.is_empty() {
                return Err(TrainError::new("cannot compile an empty tree"));
            }
            let base = arena.feature.len() as u32;
            arena.roots.push(base);
            for (i, n) in nodes.iter().enumerate() {
                let me = base + i as u32;
                match *n {
                    NodeRepr::Leaf { value } => {
                        arena.feature.push(0);
                        arena.threshold.push(f64::NAN);
                        arena.left.push(me);
                        arena.right.push(me);
                        arena.leaf.push(value);
                    }
                    NodeRepr::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        if left as usize >= nodes.len() || right as usize >= nodes.len() {
                            return Err(TrainError::new("tree node child out of range"));
                        }
                        arena.n_features = arena.n_features.max(feature as usize + 1);
                        arena.feature.push(feature);
                        arena.threshold.push(threshold);
                        arena.left.push(base + left);
                        arena.right.push(base + right);
                        arena.leaf.push(0.0);
                    }
                }
            }
            arena.depths.push(tree_depth(nodes)?);
        }
        Ok(arena)
    }

    /// Number of trees in the arena.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees.
    pub fn node_count(&self) -> usize {
        self.feature.len()
    }

    /// Feature-vector width the arena expects (highest feature index + 1).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// FNV-1a 64 digest over every lane of the arena — two compilations
    /// are interchangeable iff their digests match, which is how the
    /// store round-trip (compile → export → reload → recompile) is pinned.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for &f in &self.feature {
            h.u32(f);
        }
        for &t in &self.threshold {
            h.u64(t.to_bits());
        }
        for &l in &self.left {
            h.u32(l);
        }
        for &r in &self.right {
            h.u32(r);
        }
        for &v in &self.leaf {
            h.u64(v.to_bits());
        }
        for &r in &self.roots {
            h.u32(r);
        }
        for &d in &self.depths {
            h.u32(d);
        }
        h.u64(self.n_features as u64);
        h.u64(self.divisor.to_bits());
        h.0
    }

    /// Predicts every row of `x`, overwriting `out` (cleared first; the
    /// caller's allocation is reused across rounds).
    ///
    /// Bitwise identical to mapping [`crate::engine::Regressor::predict_row`] of the
    /// source model over the rows.
    ///
    /// # Panics
    /// Panics when `x` has fewer columns than the arena's feature width.
    pub fn predict_matrix_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        assert!(
            x.ncols() >= self.n_features,
            "matrix has {} columns, arena needs {}",
            x.ncols(),
            self.n_features
        );
        let n = x.nrows();
        out.clear();
        out.resize(n, 0.0);
        let mut idx = [0u32; BLOCK];
        for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
            let r0 = b * BLOCK;
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..chunk.len()].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, slot) in idx[..chunk.len()].iter_mut().enumerate() {
                        let i = *slot as usize;
                        let xv = x.row(r0 + k)[self.feature[i] as usize];
                        // mask select: no data-dependent branch
                        let m = 0u32.wrapping_sub((xv <= self.threshold[i]) as u32);
                        let next = (self.left[i] & m) | (self.right[i] & !m);
                        changed |= next ^ *slot;
                        *slot = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    *acc += self.leaf[idx[k] as usize];
                }
            }
        }
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// Bakes a per-slot feature table into the arena, producing the fused
    /// genome-slab kernel of the DSE. `layout.slot_of[f]` names the
    /// genome slot whose gene selects feature `f`'s value, and
    /// `layout.values[f][g]` is the value feature `f` takes for gene `g` —
    /// exactly what a gathered feature matrix would contain, so fused
    /// predictions stay bitwise identical to the matrix path.
    ///
    /// # Errors
    /// [`TrainError`] when the layout does not cover the arena's feature
    /// width or names a slot outside its own stride.
    pub fn bake_gather(&self, layout: &GatherLayout) -> Result<GatherForest, TrainError> {
        if layout.slot_of.len() < self.n_features || layout.values.len() != layout.slot_of.len() {
            return Err(TrainError::new("gather layout narrower than the arena"));
        }
        let stride = layout.stride;
        let mut slot_members = vec![u32::MAX; stride];
        let mut offsets = Vec::with_capacity(layout.values.len());
        let mut values = Vec::new();
        for (f, table) in layout.values.iter().enumerate() {
            let s = layout.slot_of[f] as usize;
            if s >= stride {
                return Err(TrainError::new("gather layout slot out of range"));
            }
            offsets.push(values.len() as u32);
            values.extend_from_slice(table);
            slot_members[s] = slot_members[s].min(table.len() as u32);
        }
        // `u32::MAX` marks a slot no feature reads — never indexed, so it
        // does not block the mask encoding.
        let mask_mode = slot_members.iter().all(|&m| m <= 64 || m == u32::MAX)
            && self.feature.len() < (1 << 24)
            && stride < (1 << 16);
        let masks = if mask_mode {
            (0..self.feature.len())
                .map(|i| {
                    let f = self.feature[i] as usize;
                    let t = self.threshold[i];
                    let mut mask = 0u64;
                    for (g, &v) in layout.values[f].iter().enumerate().take(64) {
                        mask |= ((v <= t) as u64) << g;
                    }
                    MaskNode {
                        mask,
                        meta: (self.left[i] as u64)
                            | ((self.right[i] as u64) << 24)
                            | ((layout.slot_of[f] as u64) << 48),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(GatherForest {
            nodes: (0..self.feature.len())
                .map(|i| {
                    let f = self.feature[i] as usize;
                    PackedNode {
                        threshold: self.threshold[i],
                        slot_off: ((layout.slot_of[f] as u64) << 32) | offsets[f] as u64,
                        children: ((self.right[i] as u64) << 32) | self.left[i] as u64,
                    }
                })
                .collect(),
            masks,
            leaf: self.leaf.clone(),
            roots: self.roots.clone(),
            depths: self.depths.clone(),
            values,
            slot_members,
            stride,
            divisor: self.divisor,
        })
    }
}

/// Deepest leaf of an exported tree (node 0 is the root) — the fixed trip
/// count of the branchless traversal.
fn tree_depth(nodes: &[NodeRepr]) -> Result<u32, TrainError> {
    let mut visited = vec![false; nodes.len()];
    let mut stack = vec![(0u32, 0u32)];
    let mut max = 0u32;
    while let Some((at, d)) = stack.pop() {
        let slot = &mut visited[at as usize];
        if *slot {
            return Err(TrainError::new("node graph is not a tree"));
        }
        *slot = true;
        match nodes[at as usize] {
            NodeRepr::Leaf { .. } => max = max.max(d),
            NodeRepr::Split { left, right, .. } => {
                stack.push((left, d + 1));
                stack.push((right, d + 1));
            }
        }
    }
    Ok(max)
}

/// The feature-table layout [`CompiledForest::bake_gather`] consumes:
/// how each feature column of the model maps onto (slot, per-gene value).
#[derive(Debug, Clone)]
pub struct GatherLayout {
    /// Genome stride (slot count).
    pub stride: usize,
    /// `slot_of[f]` = genome slot whose gene selects feature `f`.
    pub slot_of: Vec<u32>,
    /// `values[f][g]` = value of feature `f` when the slot's gene is `g`.
    pub values: Vec<Vec<f64>>,
}

/// One traversal node of a [`GatherForest`], packed to 24 bytes so a
/// node visit touches one cache line instead of five SoA lanes (paths
/// through a paper-sized arena are effectively random, so the lane
/// spread dominates the miss rate).
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct PackedNode {
    /// Split threshold (`NaN` for leaves, so `x <= t` never holds).
    threshold: f64,
    /// Genome slot in the high 32 bits, base offset of the node's value
    /// table in the low 32.
    slot_off: u64,
    /// Left child in the low 32 bits, right child in the high 32 (self
    /// for leaves).
    children: u64,
}

/// One mask-mode traversal node: when every slot has ≤ 64 members (and
/// the arena fits 24-bit node indices), the per-node comparison
/// `table[gene] <= threshold` is precomputed for every gene into a
/// bitmask at bake time, so a step needs neither the value load nor the
/// float compare — just `(mask >> gene) & 1`. 16 bytes per node keeps
/// four nodes per cache line; node-record traffic is what bounds the
/// kernel on paper-sized arenas.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct MaskNode {
    /// Bit `g` = `table[g] <= threshold` (0 everywhere for leaves, since
    /// `x <= NaN` never holds).
    mask: u64,
    /// Bits 0..24 left child, 24..48 right child (self for leaves),
    /// 48..64 the genome slot read at this node.
    meta: u64,
}

/// A [`CompiledForest`] with the estimator's per-slot feature tables
/// baked into the node records: node `i` resolves its split value as
/// `values[off(i) + genome[slot(i)]]`, fusing the feature gather into
/// the traversal — no feature matrix exists at any point.
#[derive(Debug, Clone)]
pub struct GatherForest {
    /// Packed traversal records, trees concatenated.
    nodes: Vec<PackedNode>,
    /// Mask-mode records (empty when some slot exceeds 64 members and
    /// the precomputed-comparison encoding cannot hold it; the kernels
    /// then run on `nodes`). Same node order as `nodes`, same bits out.
    masks: Vec<MaskNode>,
    /// Leaf value per node (0 for splits — read once per row and tree).
    leaf: Vec<f64>,
    roots: Vec<u32>,
    depths: Vec<u32>,
    /// Flat baked feature tables.
    values: Vec<f64>,
    /// Per slot: smallest table length over the features it backs — the
    /// exclusive upper bound a gene must respect (checked per batch, so
    /// the gather kernels can load unchecked).
    slot_members: Vec<u32>,
    stride: usize,
    divisor: f64,
}

impl GatherForest {
    /// Genome stride (slot count) the kernel expects.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Predicts one value per genome row of a flat `u16` slab,
    /// overwriting `out` (cleared first; the allocation is reused across
    /// rounds). Dispatches to the AVX2 kernel when the CPU supports it;
    /// the scalar fallback produces identical bits.
    ///
    /// # Panics
    /// Panics on a ragged slab or a gene outside its slot's baked table —
    /// both indicate a genome from a different configuration space.
    pub fn predict_genomes_into(&self, genes: &[u16], out: &mut Vec<f64>) {
        self.check_genes(genes);
        #[cfg(target_arch = "x86_64")]
        if simd_enabled() && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 confirmed at runtime; gene bounds checked above.
            unsafe {
                if self.masks.is_empty() {
                    self.predict_avx2(genes, out);
                } else {
                    self.predict_mask_avx2(genes, out);
                }
            }
            return;
        }
        if self.masks.is_empty() {
            self.predict_scalar(genes, out);
        } else {
            self.predict_mask_scalar(genes, out);
        }
    }

    /// The portable mask-select kernel (also the test oracle for the SIMD
    /// path). Same contract as [`GatherForest::predict_genomes_into`].
    ///
    /// # Panics
    /// Panics on a ragged slab or an out-of-range gene.
    pub fn predict_genomes_scalar_into(&self, genes: &[u16], out: &mut Vec<f64>) {
        self.check_genes(genes);
        self.predict_scalar(genes, out);
    }

    /// Per-row mean and per-tree prediction variance over the compiled
    /// arena — the refinement loop's acquisition signal, computed without
    /// materializing per-tree prediction vectors. Batch-major walk over
    /// the packed `nodes` lane (the same block shape as
    /// [`GatherForest::predict_genomes_scalar_into`]) with sum and
    /// sum-of-squares accumulators updated per tree, in tree order, so
    /// `mean` is bitwise identical to [`GatherForest::predict_genomes_into`]
    /// on the scalar path and `var` is bitwise identical to brute force
    /// over the source forest's fitted trees.
    ///
    /// # Panics
    /// Panics on a ragged slab or an out-of-range gene.
    pub fn predict_genomes_stats_into(
        &self,
        genes: &[u16],
        mean: &mut Vec<f64>,
        var: &mut Vec<f64>,
    ) {
        self.check_genes(genes);
        let n = genes.len() / self.stride;
        mean.clear();
        mean.resize(n, 0.0);
        var.clear();
        var.resize(n, 0.0);
        let mut idx = [0u32; BLOCK];
        let mut sumsq = [0.0f64; BLOCK];
        for (b, chunk) in mean.chunks_mut(BLOCK).enumerate() {
            let rows = &genes[b * BLOCK * self.stride..];
            let len = chunk.len();
            sumsq[..len].fill(0.0);
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..len].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, at) in idx[..len].iter_mut().enumerate() {
                        let nd = &self.nodes[*at as usize];
                        let g = rows[k * self.stride + (nd.slot_off >> 32) as usize] as u64;
                        let xv = self.values[((nd.slot_off & 0xFFFF_FFFF) + g) as usize];
                        let hit = (xv <= nd.threshold) as u64;
                        let next = (nd.children >> (32 & hit.wrapping_sub(1))) as u32;
                        changed |= next ^ *at;
                        *at = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    let v = self.leaf[idx[k] as usize];
                    *acc += v;
                    sumsq[k] += v * v;
                }
            }
            for (k, acc) in chunk.iter_mut().enumerate() {
                let m = *acc / self.divisor;
                *acc = m;
                var[b * BLOCK + k] = (sumsq[k] / self.divisor - m * m).max(0.0);
            }
        }
    }

    /// Validates the slab shape and that every gene indexes inside its
    /// slot's baked table, so the kernels can gather unchecked.
    fn check_genes(&self, genes: &[u16]) {
        assert_eq!(genes.len() % self.stride, 0, "ragged genome slab");
        if genes.is_empty() {
            return;
        }
        for s in 0..self.stride {
            let mut max = 0u16;
            for &g in genes[s..].iter().step_by(self.stride) {
                max = max.max(g);
            }
            assert!(
                (max as u32) < self.slot_members[s],
                "gene {max} out of range for slot {s} ({} members)",
                self.slot_members[s]
            );
        }
    }

    fn predict_scalar(&self, genes: &[u16], out: &mut Vec<f64>) {
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        // Batch-major: the depth loop is OUTER, the rows inner. Every
        // node step of the inner loop is independent across the block's
        // rows, so the out-of-order window keeps ~BLOCK dependency
        // chains in flight instead of serializing one row's walk — the
        // same shape (and early exit) as `predict_matrix_into`.
        let mut idx = [0u32; BLOCK];
        for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
            let rows = &genes[b * BLOCK * self.stride..];
            let len = chunk.len();
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..len].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, at) in idx[..len].iter_mut().enumerate() {
                        let nd = &self.nodes[*at as usize];
                        let g = rows[k * self.stride + (nd.slot_off >> 32) as usize] as u64;
                        let xv = self.values[((nd.slot_off & 0xFFFF_FFFF) + g) as usize];
                        // arithmetic select: left in the low half, right
                        // in the high; `xv <= NaN` is false, so leaves
                        // always step to themselves
                        let b = (xv <= nd.threshold) as u64;
                        let next = (nd.children >> (32 & b.wrapping_sub(1))) as u32;
                        changed |= next ^ *at;
                        *at = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    *acc += self.leaf[idx[k] as usize];
                }
            }
        }
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// The mask-mode portable kernel: a step is `(mask >> gene) & 1` plus
    /// the arithmetic child select — no value load, no float compare.
    /// Bitwise identical to [`GatherForest::predict_scalar`] because the
    /// masks ARE the precomputed comparisons.
    fn predict_mask_scalar(&self, genes: &[u16], out: &mut Vec<f64>) {
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        let mut idx = [0u32; BLOCK];
        for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
            let rows = &genes[b * BLOCK * self.stride..];
            let len = chunk.len();
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..len].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, at) in idx[..len].iter_mut().enumerate() {
                        let nd = &self.masks[*at as usize];
                        let g = rows[k * self.stride + (nd.meta >> 48) as usize];
                        let b = (nd.mask >> g) & 1;
                        let next = ((nd.meta >> (24 & b.wrapping_sub(1))) & 0xFF_FFFF) as u32;
                        changed |= next ^ *at;
                        *at = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    *acc += self.leaf[idx[k] as usize];
                }
            }
        }
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// Mask-mode AVX2 kernel: per step and 4-lane group, two record
    /// gathers (`mask`/`meta`) plus the gene gather — the comparison is an
    /// integer shift-and-test (`vpsrlvq`), so the float unit is idle and a
    /// step touches 16 record bytes instead of the value-gather kernel's
    /// 24 (plus its table load).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `genes` passed
    /// [`GatherForest::check_genes`], and `masks` is non-empty.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn predict_mask_avx2(&self, genes: &[u16], out: &mut Vec<f64>) {
        use std::arch::x86_64::*;
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        GENES32.with(|cell| {
            let mut genes32 = cell.take();
            for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
                let rows = &genes[b * BLOCK * self.stride..];
                genes32.clear();
                genes32.extend(rows[..chunk.len() * self.stride].iter().map(|&g| g as u32));
                let groups = chunk.len() / 4;
                let stride = self.stride as i64;
                let node_base = self.masks.as_ptr() as *const i64;
                let one = _mm256_set1_epi64x(1);
                let m24 = _mm256_set1_epi64x(0xFF_FFFF);
                for (ti, &root) in self.roots.iter().enumerate() {
                    let mut idx = [_mm256_set1_epi64x(root as i64); BLOCK / 4];
                    for _ in 0..self.depths[ti] {
                        let mut unsettled = 0i32;
                        for (gi, cur) in idx[..groups].iter_mut().enumerate() {
                            let base = (gi * 4) as i64 * stride;
                            let row_base = _mm256_set_epi64x(
                                base + 3 * stride,
                                base + 2 * stride,
                                base + stride,
                                base,
                            );
                            // 16-byte records: field f of node i is the
                            // 64-bit word at 2*i + f
                            let n2 = _mm256_slli_epi64::<1>(*cur);
                            let mask = _mm256_i64gather_epi64::<8>(node_base, n2);
                            let meta = _mm256_i64gather_epi64::<8>(node_base.add(1), n2);
                            let slot = _mm256_srli_epi64::<48>(meta);
                            let gpos = _mm256_add_epi64(row_base, slot);
                            let gene =
                                _mm256_i64gather_epi32::<4>(genes32.as_ptr() as *const i32, gpos);
                            let bit = _mm256_and_si256(
                                _mm256_srlv_epi64(mask, _mm256_cvtepu32_epi64(gene)),
                                one,
                            );
                            let go_left = _mm256_cmpeq_epi64(bit, one);
                            let l = _mm256_and_si256(meta, m24);
                            let r = _mm256_and_si256(_mm256_srli_epi64::<24>(meta), m24);
                            let next = _mm256_castpd_si256(_mm256_blendv_pd(
                                _mm256_castsi256_pd(r),
                                _mm256_castsi256_pd(l),
                                _mm256_castsi256_pd(go_left),
                            ));
                            let settled = _mm256_cmpeq_epi64(next, *cur);
                            unsettled |= _mm256_movemask_epi8(settled) ^ -1;
                            *cur = next;
                        }
                        if unsettled == 0 {
                            break; // whole block settled on leaves
                        }
                    }
                    for (gi, cur) in idx[..groups].iter().enumerate() {
                        let leaves = _mm256_i64gather_pd::<8>(self.leaf.as_ptr(), *cur);
                        let acc = _mm256_loadu_pd(chunk.as_ptr().add(gi * 4));
                        _mm256_storeu_pd(
                            chunk.as_mut_ptr().add(gi * 4),
                            _mm256_add_pd(acc, leaves),
                        );
                    }
                    // scalar tail: same ops, same bits
                    for k in groups * 4..chunk.len() {
                        let row = &rows[k * self.stride..(k + 1) * self.stride];
                        let mut at = root;
                        for _ in 0..self.depths[ti] {
                            let nd = &self.masks[at as usize];
                            let g = row[(nd.meta >> 48) as usize];
                            let b = (nd.mask >> g) & 1;
                            let next = ((nd.meta >> (24 & b.wrapping_sub(1))) & 0xFF_FFFF) as u32;
                            if next == at {
                                break;
                            }
                            at = next;
                        }
                        chunk[k] += self.leaf[at as usize];
                    }
                }
            }
            cell.replace(genes32);
        });
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// Four rows per instruction stream: lane indices advance through
    /// `vgatherqpd`/`vpgatherqd` loads, the compare is `vcmppd` and the
    /// child select `vblendvpd` — the exact operations of the scalar
    /// kernel, so every lane is bit-identical to it.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `genes` passed
    /// [`GatherForest::check_genes`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn predict_avx2(&self, genes: &[u16], out: &mut Vec<f64>) {
        use std::arch::x86_64::*;
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        GENES32.with(|cell| {
            let mut genes32 = cell.take();
            for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
                let rows = &genes[b * BLOCK * self.stride..];
                // widen this block's genes once so lane loads are 32-bit
                genes32.clear();
                genes32.extend(rows[..chunk.len() * self.stride].iter().map(|&g| g as u32));
                let groups = chunk.len() / 4;
                let stride = self.stride as i64;
                for (ti, &root) in self.roots.iter().enumerate() {
                    // Batch-major like the scalar kernel: the depth loop
                    // is outer and every step level walks ALL lane groups
                    // of the block, so the per-step gather chains of the
                    // groups are independent and overlap in flight
                    // (gather latency is hidden by breadth, not lanes).
                    let mut idx = [_mm256_set1_epi64x(root as i64); BLOCK / 4];
                    let node_base = self.nodes.as_ptr() as *const f64;
                    let lo32 = _mm256_set1_epi64x(0xFFFF_FFFF);
                    for _ in 0..self.depths[ti] {
                        let mut unsettled = 0i32;
                        for (gi, cur) in idx[..groups].iter_mut().enumerate() {
                            let base = (gi * 4) as i64 * stride;
                            let row_base = _mm256_set_epi64x(
                                base + 3 * stride,
                                base + 2 * stride,
                                base + stride,
                                base,
                            );
                            // packed 24-byte records: field f of node i
                            // lives at 64-bit offset 3*i + f
                            let n3 = _mm256_add_epi64(_mm256_add_epi64(*cur, *cur), *cur);
                            let t = _mm256_i64gather_pd::<8>(node_base, n3);
                            let slot_off =
                                _mm256_i64gather_epi64::<8>((node_base as *const i64).add(1), n3);
                            let children =
                                _mm256_i64gather_epi64::<8>((node_base as *const i64).add(2), n3);
                            let gpos =
                                _mm256_add_epi64(row_base, _mm256_srli_epi64::<32>(slot_off));
                            let gene =
                                _mm256_i64gather_epi32::<4>(genes32.as_ptr() as *const i32, gpos);
                            let vidx = _mm256_add_epi64(
                                _mm256_and_si256(slot_off, lo32),
                                _mm256_cvtepu32_epi64(gene),
                            );
                            let x = _mm256_i64gather_pd::<8>(self.values.as_ptr(), vidx);
                            let go_left = _mm256_cmp_pd::<_CMP_LE_OQ>(x, t);
                            let l = _mm256_and_si256(children, lo32);
                            let r = _mm256_srli_epi64::<32>(children);
                            let next = _mm256_castpd_si256(_mm256_blendv_pd(
                                _mm256_castsi256_pd(r),
                                _mm256_castsi256_pd(l),
                                go_left,
                            ));
                            let settled = _mm256_cmpeq_epi64(next, *cur);
                            unsettled |= _mm256_movemask_epi8(settled) ^ -1;
                            *cur = next;
                        }
                        if unsettled == 0 {
                            break; // whole block settled on leaves
                        }
                    }
                    for (gi, cur) in idx[..groups].iter().enumerate() {
                        let leaves = _mm256_i64gather_pd::<8>(self.leaf.as_ptr(), *cur);
                        let acc = _mm256_loadu_pd(chunk.as_ptr().add(gi * 4));
                        _mm256_storeu_pd(
                            chunk.as_mut_ptr().add(gi * 4),
                            _mm256_add_pd(acc, leaves),
                        );
                    }
                    // scalar tail: same ops, same bits
                    for k in groups * 4..chunk.len() {
                        let row = &rows[k * self.stride..(k + 1) * self.stride];
                        let mut at = root;
                        for _ in 0..self.depths[ti] {
                            let nd = &self.nodes[at as usize];
                            let g = row[(nd.slot_off >> 32) as usize] as u64;
                            let xv = self.values[((nd.slot_off & 0xFFFF_FFFF) + g) as usize];
                            let b = (xv <= nd.threshold) as u64;
                            let next = (nd.children >> (32 & b.wrapping_sub(1))) as u32;
                            if next == at {
                                break;
                            }
                            at = next;
                        }
                        chunk[k] += self.leaf[at as usize];
                    }
                }
            }
            cell.replace(genes32);
        });
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }
}

#[cfg(target_arch = "x86_64")]
thread_local! {
    /// Reusable widened-gene scratch for the AVX2 kernel (one block).
    static GENES32: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Whether the SIMD gather kernel is allowed (`AUTOAX_FOREST_SIMD=0`
/// forces the scalar kernel — a measurement/debug escape hatch; both
/// kernels are bit-identical). Read once per process.
#[cfg(target_arch = "x86_64")]
fn simd_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("AUTOAX_FOREST_SIMD").map_or(true, |v| v.trim() != "0"))
}

/// FNV-1a 64 running hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1_0000_0000_01B3);
        }
    }
    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1_0000_0000_01B3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Regressor;
    use crate::tree::TreeConfig;
    use proptest::prelude::*;

    /// Deterministic pseudo-random stream for test data.
    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (*state >> 33) as f64 / 2.0_f64.powi(31)
    }

    fn fit_forest(n_rows: usize, n_feats: usize, trees: usize, depth: usize) -> RandomForest {
        let mut st = (n_rows * 31 + n_feats * 7 + trees) as u64 + 1;
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| (0..n_feats).map(|_| lcg(&mut st)).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().enumerate().map(|(j, v)| v * (j + 1) as f64).sum())
            .collect();
        let mut f = RandomForest::new(42).with_trees(trees);
        f.tree_config.max_depth = depth;
        f.fit(&Matrix::from_rows(&rows), &y).unwrap();
        f
    }

    #[test]
    fn matrix_kernel_matches_pointer_walk_bitwise() {
        let f = fit_forest(120, 4, 17, 9);
        let cf = CompiledForest::from_forest(&f).unwrap();
        let mut st = 5u64;
        let rows: Vec<Vec<f64>> = (0..97)
            .map(|_| (0..4).map(|_| lcg(&mut st)).collect())
            .collect();
        let x = Matrix::from_rows(&rows);
        let mut out = Vec::new();
        cf.predict_matrix_into(&x, &mut out);
        assert_eq!(out.len(), 97);
        for (row, got) in rows.iter().zip(&out) {
            assert_eq!(got.to_bits(), f.predict_row(row).to_bits());
        }
    }

    #[test]
    fn single_tree_compiles_with_exact_division() {
        let f = fit_forest(60, 3, 1, 30);
        let tree = &f.fitted_trees()[0];
        let cf = CompiledForest::from_tree(tree).unwrap();
        let mut st = 9u64;
        let rows: Vec<Vec<f64>> = (0..33)
            .map(|_| (0..3).map(|_| lcg(&mut st)).collect())
            .collect();
        let mut out = Vec::new();
        cf.predict_matrix_into(&Matrix::from_rows(&rows), &mut out);
        for (row, got) in rows.iter().zip(&out) {
            assert_eq!(got.to_bits(), tree.predict_row(row).to_bits());
        }
    }

    #[test]
    fn unfitted_models_do_not_compile() {
        assert!(CompiledForest::from_forest(&RandomForest::new(0)).is_err());
        assert!(CompiledForest::from_tree(&DecisionTree::new(TreeConfig::default())).is_err());
        assert!(CompiledForest::from_node_lists(&[], 1.0).is_err());
        assert!(CompiledForest::from_node_lists(&[vec![]], 1.0).is_err());
    }

    #[test]
    fn malformed_children_are_rejected() {
        let bad = vec![NodeRepr::Split {
            feature: 0,
            threshold: 0.5,
            left: 7,
            right: 1,
        }];
        assert!(CompiledForest::from_node_lists(&[bad], 1.0).is_err());
        // a cycle (node 1 points back at the root) is not a tree
        let cyclic = vec![
            NodeRepr::Split {
                feature: 0,
                threshold: 0.5,
                left: 1,
                right: 1,
            },
            NodeRepr::Split {
                feature: 0,
                threshold: 0.2,
                left: 0,
                right: 0,
            },
        ];
        assert!(CompiledForest::from_node_lists(&[cyclic], 1.0).is_err());
    }

    #[test]
    fn digest_distinguishes_and_round_trips() {
        let f = fit_forest(80, 3, 5, 6);
        let a = CompiledForest::from_forest(&f).unwrap();
        let b = CompiledForest::from_forest(&f).unwrap();
        assert_eq!(a.digest(), b.digest());
        let g = fit_forest(80, 3, 5, 5);
        assert_ne!(
            a.digest(),
            CompiledForest::from_forest(&g).unwrap().digest()
        );
    }

    /// A random gather layout: `members` choices per slot, one feature
    /// per (slot, lane) pair like the estimator's hw table.
    fn random_layout(stride: usize, lanes: usize, members: usize, st: &mut u64) -> GatherLayout {
        let n_feats = stride * lanes;
        GatherLayout {
            stride,
            slot_of: (0..n_feats).map(|f| (f / lanes) as u32).collect(),
            values: (0..n_feats)
                .map(|_| (0..members).map(|_| lcg(st)).collect())
                .collect(),
        }
    }

    /// Materializes the feature matrix a layout + genome slab implies —
    /// the oracle the fused kernel must match bitwise.
    fn materialize(layout: &GatherLayout, genes: &[u16]) -> Matrix {
        let rows: Vec<Vec<f64>> = genes
            .chunks_exact(layout.stride)
            .map(|row| {
                (0..layout.values.len())
                    .map(|f| layout.values[f][row[layout.slot_of[f] as usize] as usize])
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn fused_kernel_matches_matrix_path_bitwise() {
        let mut st = 77u64;
        let stride = 5;
        let lanes = 3;
        let members = 6;
        let layout = random_layout(stride, lanes, members, &mut st);
        // fit on materialized features so the tree actually uses them
        let train_genes: Vec<u16> = (0..200 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train_genes);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(3).with_trees(12);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        let genes: Vec<u16> = (0..131 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let x = materialize(&layout, &genes);
        let mut fused = Vec::new();
        gf.predict_genomes_into(&genes, &mut fused);
        let mut scalar = Vec::new();
        gf.predict_genomes_scalar_into(&genes, &mut scalar);
        assert_eq!(fused.len(), 131);
        for (i, row) in x.rows_iter().enumerate() {
            let want = f.predict_row(row).to_bits();
            assert_eq!(fused[i].to_bits(), want, "fused row {i}");
            assert_eq!(scalar[i].to_bits(), want, "scalar row {i}");
        }
    }

    #[test]
    fn wide_slots_fall_back_to_the_gather_kernel_bitwise() {
        // one slot with > 64 members: the mask encoding cannot hold it,
        // so the value-gather kernels must carry the prediction (and
        // still match the pointer walk exactly)
        let mut st = 13u64;
        let members = 70;
        let layout = random_layout(3, 2, members, &mut st);
        let train: Vec<u16> = (0..120 * 3)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(11).with_trees(9);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        assert!(gf.masks.is_empty(), "70-member slots must disable masks");
        let genes: Vec<u16> = (0..77 * 3)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let x = materialize(&layout, &genes);
        let mut fused = Vec::new();
        gf.predict_genomes_into(&genes, &mut fused);
        for (i, row) in x.rows_iter().enumerate() {
            assert_eq!(fused[i].to_bits(), f.predict_row(row).to_bits(), "row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range for slot")]
    fn out_of_range_gene_panics() {
        let mut st = 1u64;
        let layout = random_layout(2, 1, 3, &mut st);
        let xt = Matrix::from_rows(&[vec![0.1, 0.2], vec![0.8, 0.9], vec![0.4, 0.6]]);
        let mut f = RandomForest::new(0).with_trees(2);
        f.fit(&xt, &[1.0, 2.0, 3.0]).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        gf.predict_genomes_into(&[0, 3], &mut Vec::new());
    }

    #[test]
    fn stats_kernel_matches_brute_force_mean_and_variance() {
        let mut st = 31u64;
        let stride = 4;
        let members = 5;
        let layout = random_layout(stride, 2, members, &mut st);
        let train_genes: Vec<u16> = (0..150 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train_genes);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(9).with_trees(13);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        // 131 rows straddles the BLOCK boundary, exercising the tail
        let genes: Vec<u16> = (0..131 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let x = materialize(&layout, &genes);
        let (mut mean, mut var) = (Vec::new(), Vec::new());
        gf.predict_genomes_stats_into(&genes, &mut mean, &mut var);
        let mut scalar = Vec::new();
        gf.predict_genomes_scalar_into(&genes, &mut scalar);
        for (i, row) in x.rows_iter().enumerate() {
            assert_eq!(mean[i].to_bits(), scalar[i].to_bits(), "mean row {i}");
            assert_eq!(
                var[i].to_bits(),
                f.predict_variance_row(row).to_bits(),
                "variance row {i}"
            );
        }
    }

    #[test]
    fn stats_kernel_variance_is_zero_for_a_single_tree() {
        let mut st = 8u64;
        let layout = random_layout(3, 1, 4, &mut st);
        let train_genes: Vec<u16> = (0..60 * 3)
            .map(|_| (lcg(&mut st) * 4.0) as u16 % 4)
            .collect();
        let xt = materialize(&layout, &train_genes);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(2).with_trees(1);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        let genes: Vec<u16> = (0..20 * 3)
            .map(|_| (lcg(&mut st) * 4.0) as u16 % 4)
            .collect();
        let (mut mean, mut var) = (Vec::new(), Vec::new());
        gf.predict_genomes_stats_into(&genes, &mut mean, &mut var);
        assert!(var.iter().all(|&v| v == 0.0), "single tree has no spread");
        assert_eq!(mean.len(), 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The compiled kernels are bitwise identical to the pointer walk
        /// across random tree depths, widths, batch sizes and both the
        /// matrix and the fused gather path (SIMD and scalar).
        #[test]
        fn compiled_paths_match_pointer_walk(
            seed in 0u64..1000,
            trees in 1usize..14,
            depth in 1usize..12,
            stride in 1usize..6,
            members in 2usize..7,
            batch in 1usize..150,
        ) {
            let mut st = seed.wrapping_mul(2654435761).wrapping_add(1);
            let layout = random_layout(stride, 2, members, &mut st);
            let train: Vec<u16> = (0..90 * stride)
                .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
                .collect();
            let xt = materialize(&layout, &train);
            let y: Vec<f64> = xt
                .rows_iter()
                .map(|r| r.iter().enumerate().map(|(j, v)| v * ((j % 3) as f64 + 1.0)).sum())
                .collect();
            let mut f = RandomForest::new(seed).with_trees(trees);
            f.tree_config.max_depth = depth;
            f.fit(&xt, &y).unwrap();
            let cf = CompiledForest::from_forest(&f).unwrap();
            let gf = cf.bake_gather(&layout).unwrap();
            let genes: Vec<u16> = (0..batch * stride)
                .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
                .collect();
            let x = materialize(&layout, &genes);
            let mut m_out = Vec::new();
            cf.predict_matrix_into(&x, &mut m_out);
            let mut fused = Vec::new();
            gf.predict_genomes_into(&genes, &mut fused);
            let mut scalar = Vec::new();
            gf.predict_genomes_scalar_into(&genes, &mut scalar);
            for (i, row) in x.rows_iter().enumerate() {
                let want = f.predict_row(row).to_bits();
                prop_assert_eq!(m_out[i].to_bits(), want);
                prop_assert_eq!(fused[i].to_bits(), want);
                prop_assert_eq!(scalar[i].to_bits(), want);
            }
        }
    }
}
