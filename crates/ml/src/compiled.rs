//! Compiled forest inference: the estimation kernel behind the Step-3
//! hot path.
//!
//! A fitted [`RandomForest`]/[`DecisionTree`] walks pointer-chasing
//! [`crate::tree::NodeRepr`]-shaped enum nodes one row at a time — fine
//! for fitting, hostile to a search loop that performs 10⁵–10⁶ model
//! estimates per run. [`CompiledForest`] flattens **all** trees into one
//! structure-of-arrays arena (contiguous `feature`/`threshold`/`left`/
//! `right`/`leaf` lanes, trees concatenated with root offsets) and
//! predicts whole batches with a *branchless* batch-major traversal:
//!
//! * leaves are encoded as self-loops (`left == right == self`, threshold
//!   `NaN` so `x <= t` is always false), which makes every node a split
//!   and the step `idx = if x <= t { left } else { right }` a pure
//!   arithmetic select (mask/cmov — no data-dependent branch);
//! * trees run in the outer loop over a block of rows, so one tree's
//!   lanes stay cache-hot across the whole block;
//! * per-row accumulation happens in tree order with a single final
//!   division, exactly like [`crate::engine::Regressor::predict_row`] — results are
//!   **bitwise identical** to the pointer walk.
//!
//! [`GatherForest`] goes one step further for the DSE: the per-slot
//! feature tables of the estimator are pre-baked *into* the arena's
//! feature indices (each node stores a flat table offset plus the genome
//! slot that selects the row), so prediction runs straight off a `u16`
//! genome slab — the feature matrix is never materialized. An explicit
//! AVX2 variant (4 rows per instruction stream, `vgatherqpd` lane loads,
//! `vcmppd`/`vblendvpd` select) is runtime-dispatched on `x86_64`; the
//! scalar mask-select fallback is bit-identical.

use crate::engine::TrainError;
use crate::forest::RandomForest;
use crate::linalg::Matrix;
use crate::tree::{DecisionTree, NodeRepr};

/// Rows per traversal block: one tree's lanes are reused across this many
/// rows before the next tree streams in. Matches the cache-blocking of
/// [`RandomForest::predict`] and comfortably covers the search layer's
/// 32-candidate estimation rounds.
const BLOCK: usize = 64;

/// All trees of a fitted ensemble flattened into one structure-of-arrays
/// arena. See the module docs for the layout and identity guarantees.
#[derive(Debug, Clone)]
pub struct CompiledForest {
    /// Feature column tested at each node (0 for leaves).
    feature: Vec<u32>,
    /// Split threshold (`NaN` for leaves, so `x <= t` never holds).
    threshold: Vec<f64>,
    /// Left child (self for leaves).
    left: Vec<u32>,
    /// Right child (self for leaves).
    right: Vec<u32>,
    /// Leaf value (0 for splits — never read there).
    leaf: Vec<f64>,
    /// Root node index per tree.
    roots: Vec<u32>,
    /// Deepest leaf per tree: the fixed trip count of its traversal.
    depths: Vec<u32>,
    /// Feature-vector width the arena was compiled for.
    n_features: usize,
    /// Final per-row division (tree count for forests, 1 for a tree) —
    /// dividing (not multiplying by a reciprocal) keeps the result
    /// bitwise equal to `sum / n`.
    divisor: f64,
}

impl CompiledForest {
    /// Compiles a fitted forest. Fails on an unfitted (empty) forest.
    ///
    /// # Errors
    /// [`TrainError`] when the forest has no trees or a tree is malformed.
    pub fn from_forest(f: &RandomForest) -> Result<Self, TrainError> {
        let trees = f.fitted_trees();
        if trees.is_empty() {
            return Err(TrainError::new("cannot compile an unfitted forest"));
        }
        let lists: Vec<Vec<NodeRepr>> = trees.iter().map(|t| t.export_nodes()).collect();
        Self::from_node_lists(&lists, trees.len() as f64)
    }

    /// Compiles a fitted single tree (divisor 1 — `x / 1.0` is exact, so
    /// results still match [`crate::engine::Regressor::predict_row`] bit for bit).
    ///
    /// # Errors
    /// [`TrainError`] when the tree is unfitted or malformed.
    pub fn from_tree(t: &DecisionTree) -> Result<Self, TrainError> {
        Self::from_node_lists(&[t.export_nodes()], 1.0)
    }

    /// Compiles exported node lists (node 0 of each list is its root).
    ///
    /// # Errors
    /// [`TrainError`] on empty input, an empty tree, a child index out of
    /// range, or a node graph that is not a tree (shared or cyclic nodes
    /// would make the fixed-trip traversal diverge from the pointer walk).
    pub fn from_node_lists(lists: &[Vec<NodeRepr>], divisor: f64) -> Result<Self, TrainError> {
        if lists.is_empty() {
            return Err(TrainError::new("cannot compile zero trees"));
        }
        let total: usize = lists.iter().map(Vec::len).sum();
        if total > u32::MAX as usize {
            return Err(TrainError::new("arena exceeds u32 node indices"));
        }
        let mut arena = CompiledForest {
            feature: Vec::with_capacity(total),
            threshold: Vec::with_capacity(total),
            left: Vec::with_capacity(total),
            right: Vec::with_capacity(total),
            leaf: Vec::with_capacity(total),
            roots: Vec::with_capacity(lists.len()),
            depths: Vec::with_capacity(lists.len()),
            n_features: 0,
            divisor,
        };
        for nodes in lists {
            if nodes.is_empty() {
                return Err(TrainError::new("cannot compile an empty tree"));
            }
            let base = arena.feature.len() as u32;
            arena.roots.push(base);
            for (i, n) in nodes.iter().enumerate() {
                let me = base + i as u32;
                match *n {
                    NodeRepr::Leaf { value } => {
                        arena.feature.push(0);
                        arena.threshold.push(f64::NAN);
                        arena.left.push(me);
                        arena.right.push(me);
                        arena.leaf.push(value);
                    }
                    NodeRepr::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        if left as usize >= nodes.len() || right as usize >= nodes.len() {
                            return Err(TrainError::new("tree node child out of range"));
                        }
                        arena.n_features = arena.n_features.max(feature as usize + 1);
                        arena.feature.push(feature);
                        arena.threshold.push(threshold);
                        arena.left.push(base + left);
                        arena.right.push(base + right);
                        arena.leaf.push(0.0);
                    }
                }
            }
            arena.depths.push(tree_depth(nodes)?);
        }
        Ok(arena)
    }

    /// Number of trees in the arena.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees.
    pub fn node_count(&self) -> usize {
        self.feature.len()
    }

    /// Feature-vector width the arena expects (highest feature index + 1).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// FNV-1a 64 digest over every lane of the arena — two compilations
    /// are interchangeable iff their digests match, which is how the
    /// store round-trip (compile → export → reload → recompile) is pinned.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for &f in &self.feature {
            h.u32(f);
        }
        for &t in &self.threshold {
            h.u64(t.to_bits());
        }
        for &l in &self.left {
            h.u32(l);
        }
        for &r in &self.right {
            h.u32(r);
        }
        for &v in &self.leaf {
            h.u64(v.to_bits());
        }
        for &r in &self.roots {
            h.u32(r);
        }
        for &d in &self.depths {
            h.u32(d);
        }
        h.u64(self.n_features as u64);
        h.u64(self.divisor.to_bits());
        h.0
    }

    /// Predicts every row of `x`, overwriting `out` (cleared first; the
    /// caller's allocation is reused across rounds).
    ///
    /// Bitwise identical to mapping [`crate::engine::Regressor::predict_row`] of the
    /// source model over the rows.
    ///
    /// # Panics
    /// Panics when `x` has fewer columns than the arena's feature width.
    pub fn predict_matrix_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        assert!(
            x.ncols() >= self.n_features,
            "matrix has {} columns, arena needs {}",
            x.ncols(),
            self.n_features
        );
        let n = x.nrows();
        out.clear();
        out.resize(n, 0.0);
        let mut idx = [0u32; BLOCK];
        for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
            let r0 = b * BLOCK;
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..chunk.len()].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, slot) in idx[..chunk.len()].iter_mut().enumerate() {
                        let i = *slot as usize;
                        let xv = x.row(r0 + k)[self.feature[i] as usize];
                        // mask select: no data-dependent branch
                        let m = 0u32.wrapping_sub((xv <= self.threshold[i]) as u32);
                        let next = (self.left[i] & m) | (self.right[i] & !m);
                        changed |= next ^ *slot;
                        *slot = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    *acc += self.leaf[idx[k] as usize];
                }
            }
        }
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// Bakes a per-slot feature table into the arena, producing the fused
    /// genome-slab kernel of the DSE. `layout.slot_of[f]` names the
    /// genome slot whose gene selects feature `f`'s value, and
    /// `layout.values[f][g]` is the value feature `f` takes for gene `g` —
    /// exactly what a gathered feature matrix would contain, so fused
    /// predictions stay bitwise identical to the matrix path.
    ///
    /// # Errors
    /// [`TrainError`] when the layout does not cover the arena's feature
    /// width or names a slot outside its own stride.
    pub fn bake_gather(&self, layout: &GatherLayout) -> Result<GatherForest, TrainError> {
        if layout.slot_of.len() < self.n_features || layout.values.len() != layout.slot_of.len() {
            return Err(TrainError::new("gather layout narrower than the arena"));
        }
        let stride = layout.stride;
        let mut slot_members = vec![u32::MAX; stride];
        let mut offsets = Vec::with_capacity(layout.values.len());
        let mut values = Vec::new();
        for (f, table) in layout.values.iter().enumerate() {
            let s = layout.slot_of[f] as usize;
            if s >= stride {
                return Err(TrainError::new("gather layout slot out of range"));
            }
            offsets.push(values.len() as u32);
            values.extend_from_slice(table);
            slot_members[s] = slot_members[s].min(table.len() as u32);
        }
        // `u32::MAX` marks a slot no feature reads — never indexed, so it
        // does not block the mask encoding.
        let mask_mode = slot_members.iter().all(|&m| m <= 64 || m == u32::MAX)
            && self.feature.len() < (1 << 24)
            && stride < (1 << 16);
        // Quantized-rank mode is the universal fallback when some slot
        // exceeds the 64-gene mask budget: every feature table is rank-
        // compressed so the hot compare is u16-vs-u16 on the genome slab,
        // no float feature gather at all. See `QuantNode` for the exact-
        // equivalence argument.
        let quant_mode = !mask_mode
            && stride < (1 << 16)
            && layout.values.iter().all(|t| t.len() <= u16::MAX as usize);
        let mut ranks = Vec::new();
        let mut ranks32 = Vec::new();
        let mut quants = Vec::new();
        if quant_mode {
            ranks.resize(values.len(), 0u16);
            for (f, table) in layout.values.iter().enumerate() {
                let off = offsets[f] as usize;
                // Argsort with NaNs (either sign) last: members of the
                // `v <= t` set then occupy exactly the ranks below
                // `count(v <= t)` for every threshold `t`, duplicates and
                // signed zeros included.
                let mut order: Vec<u32> = (0..table.len() as u32).collect();
                order.sort_by(|&a, &b| {
                    let (va, vb) = (table[a as usize], table[b as usize]);
                    va.is_nan()
                        .cmp(&vb.is_nan())
                        .then(va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal))
                });
                for (pos, &g) in order.iter().enumerate() {
                    ranks[off + g as usize] = pos as u16;
                }
            }
            ranks32 = ranks.iter().map(|&r| r as u32).collect();
            quants = (0..self.feature.len())
                .map(|i| {
                    let f = self.feature[i] as usize;
                    let t = self.threshold[i];
                    // Leaves carry a NaN threshold: `v <= NaN` never
                    // holds, so their count is 0 and `rank < 0` is always
                    // false — the self-loop still never steps left.
                    let thresh = layout.values[f].iter().filter(|&&v| v <= t).count() as u64;
                    QuantNode {
                        key: offsets[f] as u64
                            | (thresh << 32)
                            | ((layout.slot_of[f] as u64) << 48),
                        children: ((self.right[i] as u64) << 32) | self.left[i] as u64,
                    }
                })
                .collect();
        }
        let masks = if mask_mode {
            (0..self.feature.len())
                .map(|i| {
                    let f = self.feature[i] as usize;
                    let t = self.threshold[i];
                    let mut mask = 0u64;
                    for (g, &v) in layout.values[f].iter().enumerate().take(64) {
                        mask |= ((v <= t) as u64) << g;
                    }
                    MaskNode {
                        mask,
                        meta: (self.left[i] as u64)
                            | ((self.right[i] as u64) << 24)
                            | ((layout.slot_of[f] as u64) << 48),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        // The ≤32-member refinement of mask mode: 8-byte records with
        // root-relative 13-bit children. Falls back to the 16-byte masks
        // when a slot, the stride, or a tree span exceeds the packed
        // field widths — paper-scale spaces (≤ 32 members/slot, trees of
        // a few thousand nodes) always qualify.
        let masks32 = 'm32: {
            if !mask_mode || stride > 64 || !slot_members.iter().all(|&m| m <= 32 || m == u32::MAX)
            {
                break 'm32 Vec::new();
            }
            let n = self.feature.len() as u32;
            let mut out = Vec::with_capacity(n as usize);
            for (ti, &root) in self.roots.iter().enumerate() {
                let end = self.roots.get(ti + 1).copied().unwrap_or(n);
                if end - root > (1 << 13) {
                    break 'm32 Vec::new(); // tree too deep for 13-bit rel
                }
                for i in root..end {
                    let i = i as usize;
                    let f = self.feature[i] as usize;
                    let t = self.threshold[i];
                    let mut mask = 0u32;
                    for (g, &v) in layout.values[f].iter().enumerate().take(32) {
                        mask |= ((v <= t) as u32) << g;
                    }
                    out.push(Mask32Node {
                        mask,
                        meta: (self.right[i] - root)
                            | ((self.left[i] - root) << 13)
                            | (layout.slot_of[f] << 26),
                    });
                }
            }
            out
        };
        Ok(GatherForest {
            nodes: (0..self.feature.len())
                .map(|i| {
                    let f = self.feature[i] as usize;
                    PackedNode {
                        threshold: self.threshold[i],
                        slot_off: ((layout.slot_of[f] as u64) << 32) | offsets[f] as u64,
                        children: ((self.right[i] as u64) << 32) | self.left[i] as u64,
                    }
                })
                .collect(),
            masks,
            masks32,
            quants,
            ranks,
            ranks32,
            leaf: self.leaf.clone(),
            roots: self.roots.clone(),
            depths: self.depths.clone(),
            values,
            slot_members,
            stride,
            divisor: self.divisor,
        })
    }
}

/// Deepest leaf of an exported tree (node 0 is the root) — the fixed trip
/// count of the branchless traversal.
fn tree_depth(nodes: &[NodeRepr]) -> Result<u32, TrainError> {
    let mut visited = vec![false; nodes.len()];
    let mut stack = vec![(0u32, 0u32)];
    let mut max = 0u32;
    while let Some((at, d)) = stack.pop() {
        let slot = &mut visited[at as usize];
        if *slot {
            return Err(TrainError::new("node graph is not a tree"));
        }
        *slot = true;
        match nodes[at as usize] {
            NodeRepr::Leaf { .. } => max = max.max(d),
            NodeRepr::Split { left, right, .. } => {
                stack.push((left, d + 1));
                stack.push((right, d + 1));
            }
        }
    }
    Ok(max)
}

/// The feature-table layout [`CompiledForest::bake_gather`] consumes:
/// how each feature column of the model maps onto (slot, per-gene value).
#[derive(Debug, Clone)]
pub struct GatherLayout {
    /// Genome stride (slot count).
    pub stride: usize,
    /// `slot_of[f]` = genome slot whose gene selects feature `f`.
    pub slot_of: Vec<u32>,
    /// `values[f][g]` = value of feature `f` when the slot's gene is `g`.
    pub values: Vec<Vec<f64>>,
}

/// One traversal node of a [`GatherForest`], packed to 24 bytes so a
/// node visit touches one cache line instead of five SoA lanes (paths
/// through a paper-sized arena are effectively random, so the lane
/// spread dominates the miss rate).
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct PackedNode {
    /// Split threshold (`NaN` for leaves, so `x <= t` never holds).
    threshold: f64,
    /// Genome slot in the high 32 bits, base offset of the node's value
    /// table in the low 32.
    slot_off: u64,
    /// Left child in the low 32 bits, right child in the high 32 (self
    /// for leaves).
    children: u64,
}

/// One mask-mode traversal node: when every slot has ≤ 64 members (and
/// the arena fits 24-bit node indices), the per-node comparison
/// `table[gene] <= threshold` is precomputed for every gene into a
/// bitmask at bake time, so a step needs neither the value load nor the
/// float compare — just `(mask >> gene) & 1`. 16 bytes per node keeps
/// four nodes per cache line; node-record traffic is what bounds the
/// kernel on paper-sized arenas.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct MaskNode {
    /// Bit `g` = `table[g] <= threshold` (0 everywhere for leaves, since
    /// `x <= NaN` never holds).
    mask: u64,
    /// Bits 0..24 left child, 24..48 right child (self for leaves),
    /// 48..64 the genome slot read at this node.
    meta: u64,
}

/// One 32-bit mask-mode traversal node: when additionally every slot
/// has ≤ 32 members, every tree spans ≤ 8192 nodes and the genome
/// stride is ≤ 64, the [`MaskNode`] record halves to 8 bytes — the
/// comparison mask fits a `u32` and the children are stored
/// *root-relative* in 13 bits each (`next = root + rel`; leaves carry
/// their own offset on both sides, preserving the self-loop). Eight
/// records per cache line, and — the real win — the whole record is a
/// single 64-bit gather lane, so the SIMD kernel runs 8 rows per
/// vector on 32-bit lanes instead of 4 on 64-bit lanes, halving the
/// gather count per row on gather-bound cores.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct Mask32Node {
    /// Bit `g` = `table[g] <= threshold` (0 everywhere for leaves,
    /// since `x <= NaN` never holds).
    mask: u32,
    /// Bits 0..13 root-relative right child, 13..26 root-relative left
    /// child (self for leaves), 26..32 the genome slot read here.
    meta: u32,
}

/// One quantized-rank traversal node: the universal extension of the
/// ≤ 64-member [`MaskNode`] trick. At bake time every feature table is
/// stably argsorted and each gene `g` is assigned its sorted position
/// `rank[g]` (`u16`); the node stores `thresh_rank = |{v : v <= t}|`.
/// Because the `v <= t` members occupy exactly the sorted positions
/// `0..thresh_rank` (duplicates share a contiguous run that is entirely
/// in or entirely out; NaN table entries sort last and never compare
/// `<= t`), the float step `values[off+g] <= t` is **exactly**
/// `rank[off+g] < thresh_rank` — a u16-vs-u16 compare on the genome
/// slab with no float feature gather, reaching the same leaves and
/// therefore producing bit-identical predictions. 16 bytes per node,
/// same layout discipline as [`MaskNode`].
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct QuantNode {
    /// Bits 0..32 rank-slab base offset, 32..48 the threshold rank
    /// (0 for leaves — `rank < 0` never holds), 48..64 the genome slot.
    key: u64,
    /// Left child in the low 32 bits, right child in the high 32 (self
    /// for leaves).
    children: u64,
}

/// A [`CompiledForest`] with the estimator's per-slot feature tables
/// baked into the node records: node `i` resolves its split value as
/// `values[off(i) + genome[slot(i)]]`, fusing the feature gather into
/// the traversal — no feature matrix exists at any point.
#[derive(Debug, Clone)]
pub struct GatherForest {
    /// Packed traversal records, trees concatenated.
    nodes: Vec<PackedNode>,
    /// Mask-mode records (empty when some slot exceeds 64 members and
    /// the precomputed-comparison encoding cannot hold it; the kernels
    /// then run on `quants` or `nodes`). Same node order, same bits out.
    masks: Vec<MaskNode>,
    /// 8-byte mask records (built when every slot has ≤ 32 members,
    /// stride ≤ 64 and every tree fits 13-bit root-relative children;
    /// empty otherwise — the kernels then run on `masks`). Same node
    /// order, same bits out.
    masks32: Vec<Mask32Node>,
    /// Quantized-rank records (built when mask mode is unavailable but
    /// every table fits u16 ranks; empty otherwise). Same node order as
    /// `nodes`, bit-identical predictions.
    quants: Vec<QuantNode>,
    /// Per-gene sorted ranks, parallel to `values` (quant mode only).
    ranks: Vec<u16>,
    /// `ranks` widened to u32 for 32-bit SIMD gathers.
    ranks32: Vec<u32>,
    /// Leaf value per node (0 for splits — read once per row and tree).
    leaf: Vec<f64>,
    roots: Vec<u32>,
    depths: Vec<u32>,
    /// Flat baked feature tables.
    values: Vec<f64>,
    /// Per slot: smallest table length over the features it backs — the
    /// exclusive upper bound a gene must respect (checked per batch, so
    /// the gather kernels can load unchecked).
    slot_members: Vec<u32>,
    stride: usize,
    divisor: f64,
}

impl GatherForest {
    /// Genome stride (slot count) the kernel expects.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Predicts one value per genome row of a flat `u16` slab,
    /// overwriting `out` (cleared first; the allocation is reused across
    /// rounds). Dispatches to the AVX2 kernel when the CPU supports it;
    /// the scalar fallback produces identical bits.
    ///
    /// # Panics
    /// Panics on a ragged slab or a gene outside its slot's baked table —
    /// both indicate a genome from a different configuration space.
    pub fn predict_genomes_into(&self, genes: &[u16], out: &mut Vec<f64>) {
        self.check_genes(genes);
        let mask32 = !self.masks32.is_empty() && mask32_enabled();
        let quant = !self.quants.is_empty() && quant_enabled();
        #[cfg(target_arch = "x86_64")]
        if simd_enabled() && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 confirmed at runtime; gene bounds checked above.
            unsafe {
                if mask32 {
                    self.predict_mask32_avx2(genes, out);
                } else if !self.masks.is_empty() {
                    self.predict_mask_avx2(genes, out);
                } else if quant {
                    self.predict_quant_avx2(genes, out);
                } else {
                    self.predict_avx2(genes, out);
                }
            }
            return;
        }
        if mask32 {
            self.predict_mask32_scalar(genes, out);
        } else if !self.masks.is_empty() {
            self.predict_mask_scalar(genes, out);
        } else if quant {
            self.predict_quant_scalar(genes, out);
        } else {
            self.predict_scalar(genes, out);
        }
    }

    /// Which node encoding [`GatherForest::predict_genomes_into`] runs on:
    /// `"mask32"` (every slot ≤ 32 members, 8-byte records), `"mask"`
    /// (every slot ≤ 64 members), `"quant"` (u16 rank compare) or
    /// `"gather"` (float value gather). Observability for benches/tests.
    pub fn engine(&self) -> &'static str {
        if !self.masks32.is_empty() && mask32_enabled() {
            "mask32"
        } else if !self.masks.is_empty() {
            "mask"
        } else if !self.quants.is_empty() && quant_enabled() {
            "quant"
        } else {
            "gather"
        }
    }

    /// The portable mask-select kernel (also the test oracle for the SIMD
    /// path). Same contract as [`GatherForest::predict_genomes_into`].
    ///
    /// # Panics
    /// Panics on a ragged slab or an out-of-range gene.
    pub fn predict_genomes_scalar_into(&self, genes: &[u16], out: &mut Vec<f64>) {
        self.check_genes(genes);
        self.predict_scalar(genes, out);
    }

    /// Per-row mean and per-tree prediction variance over the compiled
    /// arena — the refinement loop's acquisition signal, computed without
    /// materializing per-tree prediction vectors. Batch-major walk over
    /// the packed `nodes` lane (the same block shape as
    /// [`GatherForest::predict_genomes_scalar_into`]) with sum and
    /// sum-of-squares accumulators updated per tree, in tree order, so
    /// `mean` is bitwise identical to [`GatherForest::predict_genomes_into`]
    /// on the scalar path and `var` is bitwise identical to brute force
    /// over the source forest's fitted trees.
    ///
    /// # Panics
    /// Panics on a ragged slab or an out-of-range gene.
    pub fn predict_genomes_stats_into(
        &self,
        genes: &[u16],
        mean: &mut Vec<f64>,
        var: &mut Vec<f64>,
    ) {
        self.check_genes(genes);
        let n = genes.len() / self.stride;
        mean.clear();
        mean.resize(n, 0.0);
        var.clear();
        var.resize(n, 0.0);
        let mut idx = [0u32; BLOCK];
        let mut sumsq = [0.0f64; BLOCK];
        for (b, chunk) in mean.chunks_mut(BLOCK).enumerate() {
            let rows = &genes[b * BLOCK * self.stride..];
            let len = chunk.len();
            sumsq[..len].fill(0.0);
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..len].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, at) in idx[..len].iter_mut().enumerate() {
                        let nd = &self.nodes[*at as usize];
                        let g = rows[k * self.stride + (nd.slot_off >> 32) as usize] as u64;
                        let xv = self.values[((nd.slot_off & 0xFFFF_FFFF) + g) as usize];
                        let hit = (xv <= nd.threshold) as u64;
                        let next = (nd.children >> (32 & hit.wrapping_sub(1))) as u32;
                        changed |= next ^ *at;
                        *at = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    let v = self.leaf[idx[k] as usize];
                    *acc += v;
                    sumsq[k] += v * v;
                }
            }
            for (k, acc) in chunk.iter_mut().enumerate() {
                let m = *acc / self.divisor;
                *acc = m;
                var[b * BLOCK + k] = (sumsq[k] / self.divisor - m * m).max(0.0);
            }
        }
    }

    /// Validates the slab shape and that every gene indexes inside its
    /// slot's baked table, so the kernels can gather unchecked.
    fn check_genes(&self, genes: &[u16]) {
        assert_eq!(genes.len() % self.stride, 0, "ragged genome slab");
        if genes.is_empty() {
            return;
        }
        for s in 0..self.stride {
            let mut max = 0u16;
            for &g in genes[s..].iter().step_by(self.stride) {
                max = max.max(g);
            }
            assert!(
                (max as u32) < self.slot_members[s],
                "gene {max} out of range for slot {s} ({} members)",
                self.slot_members[s]
            );
        }
    }

    fn predict_scalar(&self, genes: &[u16], out: &mut Vec<f64>) {
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        // Batch-major: the depth loop is OUTER, the rows inner. Every
        // node step of the inner loop is independent across the block's
        // rows, so the out-of-order window keeps ~BLOCK dependency
        // chains in flight instead of serializing one row's walk — the
        // same shape (and early exit) as `predict_matrix_into`.
        let mut idx = [0u32; BLOCK];
        for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
            let rows = &genes[b * BLOCK * self.stride..];
            let len = chunk.len();
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..len].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, at) in idx[..len].iter_mut().enumerate() {
                        let nd = &self.nodes[*at as usize];
                        let g = rows[k * self.stride + (nd.slot_off >> 32) as usize] as u64;
                        let xv = self.values[((nd.slot_off & 0xFFFF_FFFF) + g) as usize];
                        // arithmetic select: left in the low half, right
                        // in the high; `xv <= NaN` is false, so leaves
                        // always step to themselves
                        let b = (xv <= nd.threshold) as u64;
                        let next = (nd.children >> (32 & b.wrapping_sub(1))) as u32;
                        changed |= next ^ *at;
                        *at = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    *acc += self.leaf[idx[k] as usize];
                }
            }
        }
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// The mask-mode portable kernel: a step is `(mask >> gene) & 1` plus
    /// the arithmetic child select — no value load, no float compare.
    /// Bitwise identical to [`GatherForest::predict_scalar`] because the
    /// masks ARE the precomputed comparisons.
    fn predict_mask_scalar(&self, genes: &[u16], out: &mut Vec<f64>) {
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        let mut idx = [0u32; BLOCK];
        for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
            let rows = &genes[b * BLOCK * self.stride..];
            let len = chunk.len();
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..len].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, at) in idx[..len].iter_mut().enumerate() {
                        let nd = &self.masks[*at as usize];
                        let g = rows[k * self.stride + (nd.meta >> 48) as usize];
                        let b = (nd.mask >> g) & 1;
                        let next = ((nd.meta >> (24 & b.wrapping_sub(1))) & 0xFF_FFFF) as u32;
                        changed |= next ^ *at;
                        *at = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    *acc += self.leaf[idx[k] as usize];
                }
            }
        }
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// The 32-bit mask-mode portable kernel: identical step semantics to
    /// [`GatherForest::predict_mask_scalar`] on records half the size —
    /// `(mask >> gene) & 1`, then `next = root + rel` where the 13-bit
    /// relative child is selected arithmetically out of `meta`. Bitwise
    /// identical because the masks encode the same precomputed
    /// comparisons and the relative children resolve to the same nodes.
    fn predict_mask32_scalar(&self, genes: &[u16], out: &mut Vec<f64>) {
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        let mut idx = [0u32; BLOCK];
        for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
            let rows = &genes[b * BLOCK * self.stride..];
            let len = chunk.len();
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..len].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, at) in idx[..len].iter_mut().enumerate() {
                        let nd = &self.masks32[*at as usize];
                        let g = rows[k * self.stride + (nd.meta >> 26) as usize];
                        let b = (nd.mask >> g) & 1;
                        // shift 13 selects the left field when the bit
                        // is set, 0 the right field otherwise
                        let next = root + ((nd.meta >> (13 & b.wrapping_neg())) & 0x1FFF);
                        changed |= next ^ *at;
                        *at = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    *acc += self.leaf[idx[k] as usize];
                }
            }
        }
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// The quantized-rank portable kernel: a step gathers one `u16` rank
    /// and compares it against the node's 16-bit threshold rank — no
    /// float load, no float compare. Bitwise identical to
    /// [`GatherForest::predict_scalar`] because the rank order IS the
    /// value order (see [`QuantNode`]).
    fn predict_quant_scalar(&self, genes: &[u16], out: &mut Vec<f64>) {
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        let mut idx = [0u32; BLOCK];
        for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
            let rows = &genes[b * BLOCK * self.stride..];
            let len = chunk.len();
            for (ti, &root) in self.roots.iter().enumerate() {
                idx[..len].fill(root);
                for _ in 0..self.depths[ti] {
                    let mut changed = 0u32;
                    for (k, at) in idx[..len].iter_mut().enumerate() {
                        let nd = &self.quants[*at as usize];
                        let g = rows[k * self.stride + (nd.key >> 48) as usize] as u64;
                        let r = self.ranks[((nd.key & 0xFFFF_FFFF) + g) as usize];
                        let b = ((r as u64) < ((nd.key >> 32) & 0xFFFF)) as u64;
                        let next = (nd.children >> (32 & b.wrapping_sub(1))) as u32;
                        changed |= next ^ *at;
                        *at = next;
                    }
                    if changed == 0 {
                        break; // whole block settled on leaves
                    }
                }
                for (k, acc) in chunk.iter_mut().enumerate() {
                    *acc += self.leaf[idx[k] as usize];
                }
            }
        }
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// Quantized-rank AVX2 kernel: two 16-byte record gathers
    /// (`key`/`children`), the gene gather, and one 32-bit rank gather per
    /// step; the compare is an integer `vpcmpgtq` against the threshold
    /// rank, so — like the mask kernel — the float unit stays idle and no
    /// 8-byte value table is touched.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `genes` passed
    /// [`GatherForest::check_genes`], and `quants` is non-empty.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn predict_quant_avx2(&self, genes: &[u16], out: &mut Vec<f64>) {
        use std::arch::x86_64::*;
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        GENES32.with(|cell| {
            let mut genes32 = cell.take();
            for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
                let rows = &genes[b * BLOCK * self.stride..];
                genes32.clear();
                genes32.extend(rows[..chunk.len() * self.stride].iter().map(|&g| g as u32));
                let groups = chunk.len() / 4;
                let stride = self.stride as i64;
                let node_base = self.quants.as_ptr() as *const i64;
                let lo32 = _mm256_set1_epi64x(0xFFFF_FFFF);
                let m16 = _mm256_set1_epi64x(0xFFFF);
                for (ti, &root) in self.roots.iter().enumerate() {
                    let mut idx = [_mm256_set1_epi64x(root as i64); BLOCK / 4];
                    // settled groups stop gathering (self-loops only)
                    let mut done = [false; BLOCK / 4];
                    for _ in 0..self.depths[ti] {
                        let mut unsettled = 0i32;
                        for (gi, cur) in idx[..groups].iter_mut().enumerate() {
                            if done[gi] {
                                continue;
                            }
                            let base = (gi * 4) as i64 * stride;
                            let row_base = _mm256_set_epi64x(
                                base + 3 * stride,
                                base + 2 * stride,
                                base + stride,
                                base,
                            );
                            // 16-byte records: field f of node i is the
                            // 64-bit word at 2*i + f
                            let n2 = _mm256_slli_epi64::<1>(*cur);
                            let key = _mm256_i64gather_epi64::<8>(node_base, n2);
                            let children = _mm256_i64gather_epi64::<8>(node_base.add(1), n2);
                            let slot = _mm256_srli_epi64::<48>(key);
                            let gpos = _mm256_add_epi64(row_base, slot);
                            let gene =
                                _mm256_i64gather_epi32::<4>(genes32.as_ptr() as *const i32, gpos);
                            let rpos = _mm256_add_epi64(
                                _mm256_and_si256(key, lo32),
                                _mm256_cvtepu32_epi64(gene),
                            );
                            let rank = _mm256_i64gather_epi32::<4>(
                                self.ranks32.as_ptr() as *const i32,
                                rpos,
                            );
                            let thresh = _mm256_and_si256(_mm256_srli_epi64::<32>(key), m16);
                            // both operands < 2^16, so signed compare is safe
                            let go_left = _mm256_cmpgt_epi64(thresh, _mm256_cvtepu32_epi64(rank));
                            let l = _mm256_and_si256(children, lo32);
                            let r = _mm256_srli_epi64::<32>(children);
                            let next = _mm256_castpd_si256(_mm256_blendv_pd(
                                _mm256_castsi256_pd(r),
                                _mm256_castsi256_pd(l),
                                _mm256_castsi256_pd(go_left),
                            ));
                            let settled = _mm256_cmpeq_epi64(next, *cur);
                            let sm = _mm256_movemask_epi8(settled);
                            done[gi] = sm == -1;
                            unsettled |= sm ^ -1;
                            *cur = next;
                        }
                        if unsettled == 0 {
                            break; // whole block settled on leaves
                        }
                    }
                    for (gi, cur) in idx[..groups].iter().enumerate() {
                        let leaves = _mm256_i64gather_pd::<8>(self.leaf.as_ptr(), *cur);
                        let acc = _mm256_loadu_pd(chunk.as_ptr().add(gi * 4));
                        _mm256_storeu_pd(
                            chunk.as_mut_ptr().add(gi * 4),
                            _mm256_add_pd(acc, leaves),
                        );
                    }
                    // scalar tail: same ops, same bits
                    for k in groups * 4..chunk.len() {
                        let row = &rows[k * self.stride..(k + 1) * self.stride];
                        let mut at = root;
                        for _ in 0..self.depths[ti] {
                            let nd = &self.quants[at as usize];
                            let g = row[(nd.key >> 48) as usize] as u64;
                            let r = self.ranks[((nd.key & 0xFFFF_FFFF) + g) as usize];
                            let b = ((r as u64) < ((nd.key >> 32) & 0xFFFF)) as u64;
                            let next = (nd.children >> (32 & b.wrapping_sub(1))) as u32;
                            if next == at {
                                break;
                            }
                            at = next;
                        }
                        chunk[k] += self.leaf[at as usize];
                    }
                }
            }
            cell.replace(genes32);
        });
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// Mask-mode AVX2 kernel: per step and 4-lane group, two record
    /// gathers (`mask`/`meta`) plus the gene gather — the comparison is an
    /// integer shift-and-test (`vpsrlvq`), so the float unit is idle and a
    /// step touches 16 record bytes instead of the value-gather kernel's
    /// 24 (plus its table load).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `genes` passed
    /// [`GatherForest::check_genes`], and `masks` is non-empty.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn predict_mask_avx2(&self, genes: &[u16], out: &mut Vec<f64>) {
        use std::arch::x86_64::*;
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        GENES32.with(|cell| {
            let mut genes32 = cell.take();
            for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
                let rows = &genes[b * BLOCK * self.stride..];
                genes32.clear();
                genes32.extend(rows[..chunk.len() * self.stride].iter().map(|&g| g as u32));
                let groups = chunk.len() / 4;
                let stride = self.stride as i64;
                let node_base = self.masks.as_ptr() as *const i64;
                let one = _mm256_set1_epi64x(1);
                let m24 = _mm256_set1_epi64x(0xFF_FFFF);
                for (ti, &root) in self.roots.iter().enumerate() {
                    let mut idx = [_mm256_set1_epi64x(root as i64); BLOCK / 4];
                    // settled groups stop gathering (self-loops only)
                    let mut done = [false; BLOCK / 4];
                    for _ in 0..self.depths[ti] {
                        let mut unsettled = 0i32;
                        for (gi, cur) in idx[..groups].iter_mut().enumerate() {
                            if done[gi] {
                                continue;
                            }
                            let base = (gi * 4) as i64 * stride;
                            let row_base = _mm256_set_epi64x(
                                base + 3 * stride,
                                base + 2 * stride,
                                base + stride,
                                base,
                            );
                            // 16-byte records: field f of node i is the
                            // 64-bit word at 2*i + f
                            let n2 = _mm256_slli_epi64::<1>(*cur);
                            let mask = _mm256_i64gather_epi64::<8>(node_base, n2);
                            let meta = _mm256_i64gather_epi64::<8>(node_base.add(1), n2);
                            let slot = _mm256_srli_epi64::<48>(meta);
                            let gpos = _mm256_add_epi64(row_base, slot);
                            let gene =
                                _mm256_i64gather_epi32::<4>(genes32.as_ptr() as *const i32, gpos);
                            let bit = _mm256_and_si256(
                                _mm256_srlv_epi64(mask, _mm256_cvtepu32_epi64(gene)),
                                one,
                            );
                            let go_left = _mm256_cmpeq_epi64(bit, one);
                            let l = _mm256_and_si256(meta, m24);
                            let r = _mm256_and_si256(_mm256_srli_epi64::<24>(meta), m24);
                            let next = _mm256_castpd_si256(_mm256_blendv_pd(
                                _mm256_castsi256_pd(r),
                                _mm256_castsi256_pd(l),
                                _mm256_castsi256_pd(go_left),
                            ));
                            let settled = _mm256_cmpeq_epi64(next, *cur);
                            let sm = _mm256_movemask_epi8(settled);
                            done[gi] = sm == -1;
                            unsettled |= sm ^ -1;
                            *cur = next;
                        }
                        if unsettled == 0 {
                            break; // whole block settled on leaves
                        }
                    }
                    for (gi, cur) in idx[..groups].iter().enumerate() {
                        let leaves = _mm256_i64gather_pd::<8>(self.leaf.as_ptr(), *cur);
                        let acc = _mm256_loadu_pd(chunk.as_ptr().add(gi * 4));
                        _mm256_storeu_pd(
                            chunk.as_mut_ptr().add(gi * 4),
                            _mm256_add_pd(acc, leaves),
                        );
                    }
                    // scalar tail: same ops, same bits
                    for k in groups * 4..chunk.len() {
                        let row = &rows[k * self.stride..(k + 1) * self.stride];
                        let mut at = root;
                        for _ in 0..self.depths[ti] {
                            let nd = &self.masks[at as usize];
                            let g = row[(nd.meta >> 48) as usize];
                            let b = (nd.mask >> g) & 1;
                            let next = ((nd.meta >> (24 & b.wrapping_sub(1))) & 0xFF_FFFF) as u32;
                            if next == at {
                                break;
                            }
                            at = next;
                        }
                        chunk[k] += self.leaf[at as usize];
                    }
                }
            }
            cell.replace(genes32);
        });
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// 32-bit mask-mode AVX2 kernel: **eight** rows per vector on
    /// `epi32` lanes. A step needs two half-width record gathers (each
    /// 8-byte node is one 64-bit gather lane) plus the gene gather — 3
    /// gathers per 8 rows, where the 16-byte mask kernel spends 3 per 4
    /// rows, halving gather issue (the binding resource of traversal on
    /// gather-weak cores). The children are root-relative 13-bit fields
    /// selected with `vpblendvb` and re-based by one `vpaddd`; every
    /// lane performs exactly the scalar step, so bits match.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `genes` passed
    /// [`GatherForest::check_genes`], and `masks32` is non-empty.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn predict_mask32_avx2(&self, genes: &[u16], out: &mut Vec<f64>) {
        use std::arch::x86_64::*;
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        GENES32.with(|cell| {
            let mut genes32 = cell.take();
            for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
                let rows = &genes[b * BLOCK * self.stride..];
                genes32.clear();
                genes32.extend(rows[..chunk.len() * self.stride].iter().map(|&g| g as u32));
                let groups = chunk.len() / 8;
                let stride = self.stride as i32;
                let node_base = self.masks32.as_ptr() as *const i64;
                let one = _mm256_set1_epi32(1);
                let m13 = _mm256_set1_epi32(0x1FFF);
                let lane = _mm256_mullo_epi32(
                    _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                    _mm256_set1_epi32(stride),
                );
                for (ti, &root) in self.roots.iter().enumerate() {
                    let root8 = _mm256_set1_epi32(root as i32);
                    let mut idx = [root8; BLOCK / 8];
                    // Per-group settle tracking: a group whose eight lanes
                    // all reached leaves stops gathering while straggler
                    // groups keep walking — settled lanes only self-loop,
                    // so skipping them cannot change any bit.
                    let mut done = [false; BLOCK / 8];
                    for _ in 0..self.depths[ti] {
                        let mut unsettled = 0i32;
                        for (gi, cur) in idx[..groups].iter_mut().enumerate() {
                            if done[gi] {
                                continue;
                            }
                            let row_base =
                                _mm256_add_epi32(_mm256_set1_epi32((gi * 8) as i32 * stride), lane);
                            // 8-byte records: node i IS 64-bit word i.
                            // Two half-gathers fetch all eight records...
                            let lo = _mm256_i32gather_epi64::<8>(
                                node_base,
                                _mm256_castsi256_si128(*cur),
                            );
                            let hi = _mm256_i32gather_epi64::<8>(
                                node_base,
                                _mm256_extracti128_si256::<1>(*cur),
                            );
                            // ...then mask (low 32 of each record) and
                            // meta (high 32) deinterleave back into lane
                            // order: shuffle_ps picks the even/odd 32-bit
                            // words per 128-bit half, permute4x64
                            // (0,2,1,3) undoes the half interleave.
                            let even = _mm256_castps_si256(_mm256_shuffle_ps::<0b10_00_10_00>(
                                _mm256_castsi256_ps(lo),
                                _mm256_castsi256_ps(hi),
                            ));
                            let odd = _mm256_castps_si256(_mm256_shuffle_ps::<0b11_01_11_01>(
                                _mm256_castsi256_ps(lo),
                                _mm256_castsi256_ps(hi),
                            ));
                            let masks = _mm256_permute4x64_epi64::<0b11_01_10_00>(even);
                            let metas = _mm256_permute4x64_epi64::<0b11_01_10_00>(odd);
                            let slot = _mm256_srli_epi32::<26>(metas);
                            let gpos = _mm256_add_epi32(row_base, slot);
                            let gene =
                                _mm256_i32gather_epi32::<4>(genes32.as_ptr() as *const i32, gpos);
                            // gene < 32 (the ≤32-member bake guarantee),
                            // so the variable shift never saturates
                            let bit = _mm256_and_si256(_mm256_srlv_epi32(masks, gene), one);
                            let go_left = _mm256_cmpeq_epi32(bit, one);
                            let l = _mm256_and_si256(_mm256_srli_epi32::<13>(metas), m13);
                            let r = _mm256_and_si256(metas, m13);
                            // go_left is lane-uniform, so the byte blend
                            // is a 32-bit select
                            let rel = _mm256_blendv_epi8(r, l, go_left);
                            let next = _mm256_add_epi32(root8, rel);
                            let settled = _mm256_cmpeq_epi32(next, *cur);
                            let sm = _mm256_movemask_epi8(settled);
                            done[gi] = sm == -1;
                            unsettled |= sm ^ -1;
                            *cur = next;
                        }
                        if unsettled == 0 {
                            break; // whole block settled on leaves
                        }
                    }
                    for (gi, cur) in idx[..groups].iter().enumerate() {
                        let leaves_lo = _mm256_i32gather_pd::<8>(
                            self.leaf.as_ptr(),
                            _mm256_castsi256_si128(*cur),
                        );
                        let leaves_hi = _mm256_i32gather_pd::<8>(
                            self.leaf.as_ptr(),
                            _mm256_extracti128_si256::<1>(*cur),
                        );
                        let p = chunk.as_mut_ptr().add(gi * 8);
                        _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), leaves_lo));
                        let p = p.add(4);
                        _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), leaves_hi));
                    }
                    // scalar tail: same ops, same bits
                    for k in groups * 8..chunk.len() {
                        let row = &rows[k * self.stride..(k + 1) * self.stride];
                        let mut at = root;
                        for _ in 0..self.depths[ti] {
                            let nd = &self.masks32[at as usize];
                            let g = row[(nd.meta >> 26) as usize];
                            let b = (nd.mask >> g) & 1;
                            let next = root + ((nd.meta >> (13 & b.wrapping_neg())) & 0x1FFF);
                            if next == at {
                                break;
                            }
                            at = next;
                        }
                        chunk[k] += self.leaf[at as usize];
                    }
                }
            }
            cell.replace(genes32);
        });
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }

    /// Four rows per instruction stream: lane indices advance through
    /// `vgatherqpd`/`vpgatherqd` loads, the compare is `vcmppd` and the
    /// child select `vblendvpd` — the exact operations of the scalar
    /// kernel, so every lane is bit-identical to it.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `genes` passed
    /// [`GatherForest::check_genes`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn predict_avx2(&self, genes: &[u16], out: &mut Vec<f64>) {
        use std::arch::x86_64::*;
        let n = genes.len() / self.stride;
        out.clear();
        out.resize(n, 0.0);
        GENES32.with(|cell| {
            let mut genes32 = cell.take();
            for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
                let rows = &genes[b * BLOCK * self.stride..];
                // widen this block's genes once so lane loads are 32-bit
                genes32.clear();
                genes32.extend(rows[..chunk.len() * self.stride].iter().map(|&g| g as u32));
                let groups = chunk.len() / 4;
                let stride = self.stride as i64;
                for (ti, &root) in self.roots.iter().enumerate() {
                    // Batch-major like the scalar kernel: the depth loop
                    // is outer and every step level walks ALL lane groups
                    // of the block, so the per-step gather chains of the
                    // groups are independent and overlap in flight
                    // (gather latency is hidden by breadth, not lanes).
                    let mut idx = [_mm256_set1_epi64x(root as i64); BLOCK / 4];
                    // settled groups stop gathering (self-loops only)
                    let mut done = [false; BLOCK / 4];
                    let node_base = self.nodes.as_ptr() as *const f64;
                    let lo32 = _mm256_set1_epi64x(0xFFFF_FFFF);
                    for _ in 0..self.depths[ti] {
                        let mut unsettled = 0i32;
                        for (gi, cur) in idx[..groups].iter_mut().enumerate() {
                            if done[gi] {
                                continue;
                            }
                            let base = (gi * 4) as i64 * stride;
                            let row_base = _mm256_set_epi64x(
                                base + 3 * stride,
                                base + 2 * stride,
                                base + stride,
                                base,
                            );
                            // packed 24-byte records: field f of node i
                            // lives at 64-bit offset 3*i + f
                            let n3 = _mm256_add_epi64(_mm256_add_epi64(*cur, *cur), *cur);
                            let t = _mm256_i64gather_pd::<8>(node_base, n3);
                            let slot_off =
                                _mm256_i64gather_epi64::<8>((node_base as *const i64).add(1), n3);
                            let children =
                                _mm256_i64gather_epi64::<8>((node_base as *const i64).add(2), n3);
                            let gpos =
                                _mm256_add_epi64(row_base, _mm256_srli_epi64::<32>(slot_off));
                            let gene =
                                _mm256_i64gather_epi32::<4>(genes32.as_ptr() as *const i32, gpos);
                            let vidx = _mm256_add_epi64(
                                _mm256_and_si256(slot_off, lo32),
                                _mm256_cvtepu32_epi64(gene),
                            );
                            let x = _mm256_i64gather_pd::<8>(self.values.as_ptr(), vidx);
                            let go_left = _mm256_cmp_pd::<_CMP_LE_OQ>(x, t);
                            let l = _mm256_and_si256(children, lo32);
                            let r = _mm256_srli_epi64::<32>(children);
                            let next = _mm256_castpd_si256(_mm256_blendv_pd(
                                _mm256_castsi256_pd(r),
                                _mm256_castsi256_pd(l),
                                go_left,
                            ));
                            let settled = _mm256_cmpeq_epi64(next, *cur);
                            let sm = _mm256_movemask_epi8(settled);
                            done[gi] = sm == -1;
                            unsettled |= sm ^ -1;
                            *cur = next;
                        }
                        if unsettled == 0 {
                            break; // whole block settled on leaves
                        }
                    }
                    for (gi, cur) in idx[..groups].iter().enumerate() {
                        let leaves = _mm256_i64gather_pd::<8>(self.leaf.as_ptr(), *cur);
                        let acc = _mm256_loadu_pd(chunk.as_ptr().add(gi * 4));
                        _mm256_storeu_pd(
                            chunk.as_mut_ptr().add(gi * 4),
                            _mm256_add_pd(acc, leaves),
                        );
                    }
                    // scalar tail: same ops, same bits
                    for k in groups * 4..chunk.len() {
                        let row = &rows[k * self.stride..(k + 1) * self.stride];
                        let mut at = root;
                        for _ in 0..self.depths[ti] {
                            let nd = &self.nodes[at as usize];
                            let g = row[(nd.slot_off >> 32) as usize] as u64;
                            let xv = self.values[((nd.slot_off & 0xFFFF_FFFF) + g) as usize];
                            let b = (xv <= nd.threshold) as u64;
                            let next = (nd.children >> (32 & b.wrapping_sub(1))) as u32;
                            if next == at {
                                break;
                            }
                            at = next;
                        }
                        chunk[k] += self.leaf[at as usize];
                    }
                }
            }
            cell.replace(genes32);
        });
        for v in out.iter_mut() {
            *v /= self.divisor;
        }
    }
}

#[cfg(target_arch = "x86_64")]
thread_local! {
    /// Reusable widened-gene scratch for the AVX2 kernel (one block).
    static GENES32: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Whether the SIMD gather kernel is allowed (`AUTOAX_FOREST_SIMD=0`
/// forces the scalar kernel — a measurement/debug escape hatch; both
/// kernels are bit-identical). Read once per process.
#[cfg(target_arch = "x86_64")]
fn simd_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("AUTOAX_FOREST_SIMD").map_or(true, |v| v.trim() != "0"))
}

/// Whether the quantized-rank kernels are allowed
/// (`AUTOAX_FOREST_QUANT=0` forces the float value-gather kernels — an
/// A/B measurement escape hatch; both paths are bit-identical). Read
/// once per process.
fn quant_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("AUTOAX_FOREST_QUANT").map_or(true, |v| v.trim() != "0"))
}

/// Whether the 8-byte/8-lane mask32 kernels are allowed
/// (`AUTOAX_FOREST_MASK32=0` falls back to the 16-byte mask kernels —
/// an A/B measurement escape hatch; both paths are bit-identical).
/// Read once per process.
fn mask32_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("AUTOAX_FOREST_MASK32").map_or(true, |v| v.trim() != "0"))
}

/// FNV-1a 64 running hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1_0000_0000_01B3);
        }
    }
    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1_0000_0000_01B3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Regressor;
    use crate::tree::TreeConfig;
    use proptest::prelude::*;

    /// Deterministic pseudo-random stream for test data.
    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (*state >> 33) as f64 / 2.0_f64.powi(31)
    }

    fn fit_forest(n_rows: usize, n_feats: usize, trees: usize, depth: usize) -> RandomForest {
        let mut st = (n_rows * 31 + n_feats * 7 + trees) as u64 + 1;
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| (0..n_feats).map(|_| lcg(&mut st)).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().enumerate().map(|(j, v)| v * (j + 1) as f64).sum())
            .collect();
        let mut f = RandomForest::new(42).with_trees(trees);
        f.tree_config.max_depth = depth;
        f.fit(&Matrix::from_rows(&rows), &y).unwrap();
        f
    }

    #[test]
    fn matrix_kernel_matches_pointer_walk_bitwise() {
        let f = fit_forest(120, 4, 17, 9);
        let cf = CompiledForest::from_forest(&f).unwrap();
        let mut st = 5u64;
        let rows: Vec<Vec<f64>> = (0..97)
            .map(|_| (0..4).map(|_| lcg(&mut st)).collect())
            .collect();
        let x = Matrix::from_rows(&rows);
        let mut out = Vec::new();
        cf.predict_matrix_into(&x, &mut out);
        assert_eq!(out.len(), 97);
        for (row, got) in rows.iter().zip(&out) {
            assert_eq!(got.to_bits(), f.predict_row(row).to_bits());
        }
    }

    #[test]
    fn single_tree_compiles_with_exact_division() {
        let f = fit_forest(60, 3, 1, 30);
        let tree = &f.fitted_trees()[0];
        let cf = CompiledForest::from_tree(tree).unwrap();
        let mut st = 9u64;
        let rows: Vec<Vec<f64>> = (0..33)
            .map(|_| (0..3).map(|_| lcg(&mut st)).collect())
            .collect();
        let mut out = Vec::new();
        cf.predict_matrix_into(&Matrix::from_rows(&rows), &mut out);
        for (row, got) in rows.iter().zip(&out) {
            assert_eq!(got.to_bits(), tree.predict_row(row).to_bits());
        }
    }

    #[test]
    fn unfitted_models_do_not_compile() {
        assert!(CompiledForest::from_forest(&RandomForest::new(0)).is_err());
        assert!(CompiledForest::from_tree(&DecisionTree::new(TreeConfig::default())).is_err());
        assert!(CompiledForest::from_node_lists(&[], 1.0).is_err());
        assert!(CompiledForest::from_node_lists(&[vec![]], 1.0).is_err());
    }

    #[test]
    fn malformed_children_are_rejected() {
        let bad = vec![NodeRepr::Split {
            feature: 0,
            threshold: 0.5,
            left: 7,
            right: 1,
        }];
        assert!(CompiledForest::from_node_lists(&[bad], 1.0).is_err());
        // a cycle (node 1 points back at the root) is not a tree
        let cyclic = vec![
            NodeRepr::Split {
                feature: 0,
                threshold: 0.5,
                left: 1,
                right: 1,
            },
            NodeRepr::Split {
                feature: 0,
                threshold: 0.2,
                left: 0,
                right: 0,
            },
        ];
        assert!(CompiledForest::from_node_lists(&[cyclic], 1.0).is_err());
    }

    #[test]
    fn digest_distinguishes_and_round_trips() {
        let f = fit_forest(80, 3, 5, 6);
        let a = CompiledForest::from_forest(&f).unwrap();
        let b = CompiledForest::from_forest(&f).unwrap();
        assert_eq!(a.digest(), b.digest());
        let g = fit_forest(80, 3, 5, 5);
        assert_ne!(
            a.digest(),
            CompiledForest::from_forest(&g).unwrap().digest()
        );
    }

    /// A random gather layout: `members` choices per slot, one feature
    /// per (slot, lane) pair like the estimator's hw table.
    fn random_layout(stride: usize, lanes: usize, members: usize, st: &mut u64) -> GatherLayout {
        let n_feats = stride * lanes;
        GatherLayout {
            stride,
            slot_of: (0..n_feats).map(|f| (f / lanes) as u32).collect(),
            values: (0..n_feats)
                .map(|_| (0..members).map(|_| lcg(st)).collect())
                .collect(),
        }
    }

    /// Materializes the feature matrix a layout + genome slab implies —
    /// the oracle the fused kernel must match bitwise.
    fn materialize(layout: &GatherLayout, genes: &[u16]) -> Matrix {
        let rows: Vec<Vec<f64>> = genes
            .chunks_exact(layout.stride)
            .map(|row| {
                (0..layout.values.len())
                    .map(|f| layout.values[f][row[layout.slot_of[f] as usize] as usize])
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn fused_kernel_matches_matrix_path_bitwise() {
        let mut st = 77u64;
        let stride = 5;
        let lanes = 3;
        let members = 6;
        let layout = random_layout(stride, lanes, members, &mut st);
        // fit on materialized features so the tree actually uses them
        let train_genes: Vec<u16> = (0..200 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train_genes);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(3).with_trees(12);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        let genes: Vec<u16> = (0..131 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let x = materialize(&layout, &genes);
        let mut fused = Vec::new();
        gf.predict_genomes_into(&genes, &mut fused);
        let mut scalar = Vec::new();
        gf.predict_genomes_scalar_into(&genes, &mut scalar);
        assert_eq!(fused.len(), 131);
        for (i, row) in x.rows_iter().enumerate() {
            let want = f.predict_row(row).to_bits();
            assert_eq!(fused[i].to_bits(), want, "fused row {i}");
            assert_eq!(scalar[i].to_bits(), want, "scalar row {i}");
        }
    }

    #[test]
    fn wide_slots_fall_back_to_the_gather_kernel_bitwise() {
        // one slot with > 64 members: the mask encoding cannot hold it,
        // so the value-gather kernels must carry the prediction (and
        // still match the pointer walk exactly)
        let mut st = 13u64;
        let members = 70;
        let layout = random_layout(3, 2, members, &mut st);
        let train: Vec<u16> = (0..120 * 3)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(11).with_trees(9);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        assert!(gf.masks.is_empty(), "70-member slots must disable masks");
        let genes: Vec<u16> = (0..77 * 3)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let x = materialize(&layout, &genes);
        let mut fused = Vec::new();
        gf.predict_genomes_into(&genes, &mut fused);
        for (i, row) in x.rows_iter().enumerate() {
            assert_eq!(fused[i].to_bits(), f.predict_row(row).to_bits(), "row {i}");
        }
    }

    #[test]
    fn quantized_kernel_engages_for_wide_slots_and_matches_bitwise() {
        // Slots above the 64-member mask budget must bake the quantized
        // rank encoding and predict identically to both the float scalar
        // oracle and the source forest's pointer walk.
        let mut st = 29u64;
        let members = 90;
        let layout = random_layout(4, 2, members, &mut st);
        let train: Vec<u16> = (0..160 * 4)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(5).with_trees(11);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        assert!(gf.masks.is_empty(), "90-member slots must disable masks");
        assert!(!gf.quants.is_empty(), "quant encoding must engage");
        assert_eq!(gf.engine(), "quant");
        let genes: Vec<u16> = (0..133 * 4)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let x = materialize(&layout, &genes);
        let mut quant = Vec::new();
        gf.predict_genomes_into(&genes, &mut quant);
        let mut float_oracle = Vec::new();
        gf.predict_genomes_scalar_into(&genes, &mut float_oracle);
        let mut quant_scalar = Vec::new();
        gf.check_genes(&genes);
        gf.predict_quant_scalar(&genes, &mut quant_scalar);
        for (i, row) in x.rows_iter().enumerate() {
            let want = f.predict_row(row).to_bits();
            assert_eq!(quant[i].to_bits(), want, "quant row {i}");
            assert_eq!(float_oracle[i].to_bits(), want, "float row {i}");
            assert_eq!(quant_scalar[i].to_bits(), want, "quant scalar row {i}");
        }
    }

    #[test]
    fn quantized_ranks_handle_duplicate_table_values_exactly() {
        // Coarse value grid: many exact duplicates inside each table, so
        // split thresholds routinely land ON a duplicated value. The rank
        // compare must classify the whole duplicate run as one side.
        let mut st = 91u64;
        let members = 80;
        let stride = 3;
        let n_feats = stride * 2;
        let layout = GatherLayout {
            stride,
            slot_of: (0..n_feats).map(|f| (f as u32) / 2).collect(),
            values: (0..n_feats)
                .map(|_| {
                    (0..members)
                        .map(|_| ((lcg(&mut st) * 5.0).floor()) / 5.0)
                        .collect()
                })
                .collect(),
        };
        let train: Vec<u16> = (0..140 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train);
        let y: Vec<f64> = xt
            .rows_iter()
            .map(|r| r.iter().enumerate().map(|(j, v)| v * (j + 1) as f64).sum())
            .collect();
        let mut f = RandomForest::new(17).with_trees(7);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        assert_eq!(gf.engine(), "quant");
        let genes: Vec<u16> = (0..101 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let mut quant = Vec::new();
        gf.predict_genomes_into(&genes, &mut quant);
        let mut float_oracle = Vec::new();
        gf.predict_genomes_scalar_into(&genes, &mut float_oracle);
        for i in 0..quant.len() {
            assert_eq!(quant[i].to_bits(), float_oracle[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn mask32_kernel_engages_for_narrow_slots_and_matches_bitwise() {
        // ≤ 32 members per slot: the 8-byte record encoding must engage
        // and every kernel (dispatched, mask32 scalar, mask64 scalar,
        // float scalar) must reproduce the pointer walk bit for bit.
        let mut st = 41u64;
        let members = 13; // paper-scale slot width (quick Sobel: ≤ 13)
        let stride = 5;
        let layout = random_layout(stride, 2, members, &mut st);
        let train: Vec<u16> = (0..150 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(7).with_trees(13);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        assert!(!gf.masks32.is_empty(), "mask32 encoding must engage");
        assert!(!gf.masks.is_empty(), "mask64 fallback records still built");
        assert_eq!(gf.engine(), "mask32");
        let genes: Vec<u16> = (0..131 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let x = materialize(&layout, &genes);
        let mut dispatched = Vec::new();
        gf.predict_genomes_into(&genes, &mut dispatched);
        let mut float_oracle = Vec::new();
        gf.predict_genomes_scalar_into(&genes, &mut float_oracle);
        gf.check_genes(&genes);
        let mut m32 = Vec::new();
        gf.predict_mask32_scalar(&genes, &mut m32);
        let mut m64 = Vec::new();
        gf.predict_mask_scalar(&genes, &mut m64);
        for (i, row) in x.rows_iter().enumerate() {
            let want = f.predict_row(row).to_bits();
            assert_eq!(dispatched[i].to_bits(), want, "dispatched row {i}");
            assert_eq!(float_oracle[i].to_bits(), want, "float row {i}");
            assert_eq!(m32[i].to_bits(), want, "mask32 scalar row {i}");
            assert_eq!(m64[i].to_bits(), want, "mask64 scalar row {i}");
        }
    }

    #[test]
    fn mid_width_slots_use_mask64_records_bitwise() {
        // 33..=64 members: beyond the u32 mask but within the u64 one —
        // masks32 must stay empty and the 16-byte mask kernel carries
        // the prediction, still matching the pointer walk exactly.
        let mut st = 59u64;
        let members = 40;
        let layout = random_layout(3, 2, members, &mut st);
        let train: Vec<u16> = (0..130 * 3)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(23).with_trees(9);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        assert!(gf.masks32.is_empty(), "40-member slots must disable mask32");
        assert!(!gf.masks.is_empty(), "mask64 must still engage");
        assert_eq!(gf.engine(), "mask");
        let genes: Vec<u16> = (0..97 * 3)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let x = materialize(&layout, &genes);
        let mut fused = Vec::new();
        gf.predict_genomes_into(&genes, &mut fused);
        for (i, row) in x.rows_iter().enumerate() {
            assert_eq!(fused[i].to_bits(), f.predict_row(row).to_bits(), "row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range for slot")]
    fn out_of_range_gene_panics() {
        let mut st = 1u64;
        let layout = random_layout(2, 1, 3, &mut st);
        let xt = Matrix::from_rows(&[vec![0.1, 0.2], vec![0.8, 0.9], vec![0.4, 0.6]]);
        let mut f = RandomForest::new(0).with_trees(2);
        f.fit(&xt, &[1.0, 2.0, 3.0]).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        gf.predict_genomes_into(&[0, 3], &mut Vec::new());
    }

    #[test]
    fn stats_kernel_matches_brute_force_mean_and_variance() {
        let mut st = 31u64;
        let stride = 4;
        let members = 5;
        let layout = random_layout(stride, 2, members, &mut st);
        let train_genes: Vec<u16> = (0..150 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let xt = materialize(&layout, &train_genes);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(9).with_trees(13);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        // 131 rows straddles the BLOCK boundary, exercising the tail
        let genes: Vec<u16> = (0..131 * stride)
            .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
            .collect();
        let x = materialize(&layout, &genes);
        let (mut mean, mut var) = (Vec::new(), Vec::new());
        gf.predict_genomes_stats_into(&genes, &mut mean, &mut var);
        let mut scalar = Vec::new();
        gf.predict_genomes_scalar_into(&genes, &mut scalar);
        for (i, row) in x.rows_iter().enumerate() {
            assert_eq!(mean[i].to_bits(), scalar[i].to_bits(), "mean row {i}");
            assert_eq!(
                var[i].to_bits(),
                f.predict_variance_row(row).to_bits(),
                "variance row {i}"
            );
        }
    }

    #[test]
    fn stats_kernel_variance_is_zero_for_a_single_tree() {
        let mut st = 8u64;
        let layout = random_layout(3, 1, 4, &mut st);
        let train_genes: Vec<u16> = (0..60 * 3)
            .map(|_| (lcg(&mut st) * 4.0) as u16 % 4)
            .collect();
        let xt = materialize(&layout, &train_genes);
        let y: Vec<f64> = xt.rows_iter().map(|r| r.iter().sum()).collect();
        let mut f = RandomForest::new(2).with_trees(1);
        f.fit(&xt, &y).unwrap();
        let gf = CompiledForest::from_forest(&f)
            .unwrap()
            .bake_gather(&layout)
            .unwrap();
        let genes: Vec<u16> = (0..20 * 3)
            .map(|_| (lcg(&mut st) * 4.0) as u16 % 4)
            .collect();
        let (mut mean, mut var) = (Vec::new(), Vec::new());
        gf.predict_genomes_stats_into(&genes, &mut mean, &mut var);
        assert!(var.iter().all(|&v| v == 0.0), "single tree has no spread");
        assert_eq!(mean.len(), 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The compiled kernels are bitwise identical to the pointer walk
        /// across random tree depths, widths, batch sizes and both the
        /// matrix and the fused gather path (SIMD and scalar).
        #[test]
        fn compiled_paths_match_pointer_walk(
            seed in 0u64..1000,
            trees in 1usize..14,
            depth in 1usize..12,
            stride in 1usize..6,
            members in 2usize..7,
            batch in 1usize..150,
        ) {
            let mut st = seed.wrapping_mul(2654435761).wrapping_add(1);
            let layout = random_layout(stride, 2, members, &mut st);
            let train: Vec<u16> = (0..90 * stride)
                .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
                .collect();
            let xt = materialize(&layout, &train);
            let y: Vec<f64> = xt
                .rows_iter()
                .map(|r| r.iter().enumerate().map(|(j, v)| v * ((j % 3) as f64 + 1.0)).sum())
                .collect();
            let mut f = RandomForest::new(seed).with_trees(trees);
            f.tree_config.max_depth = depth;
            f.fit(&xt, &y).unwrap();
            let cf = CompiledForest::from_forest(&f).unwrap();
            let gf = cf.bake_gather(&layout).unwrap();
            let genes: Vec<u16> = (0..batch * stride)
                .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
                .collect();
            let x = materialize(&layout, &genes);
            let mut m_out = Vec::new();
            cf.predict_matrix_into(&x, &mut m_out);
            let mut fused = Vec::new();
            gf.predict_genomes_into(&genes, &mut fused);
            let mut scalar = Vec::new();
            gf.predict_genomes_scalar_into(&genes, &mut scalar);
            for (i, row) in x.rows_iter().enumerate() {
                let want = f.predict_row(row).to_bits();
                prop_assert_eq!(m_out[i].to_bits(), want);
                prop_assert_eq!(fused[i].to_bits(), want);
                prop_assert_eq!(scalar[i].to_bits(), want);
            }
        }

        /// The quantized-rank kernels (scalar and, where available, AVX2)
        /// are bitwise identical to the float-compare kernels and the
        /// pointer walk across slot widths beyond the mask budget, random
        /// forests and batch sizes — including batches straddling the
        /// traversal block and SIMD lane-group tails.
        #[test]
        fn quantized_kernels_match_float_compare_bitwise(
            seed in 0u64..1000,
            trees in 1usize..10,
            depth in 1usize..10,
            stride in 1usize..5,
            members in 65usize..140,
            batch in 1usize..150,
        ) {
            let mut st = seed.wrapping_mul(0x9E3779B9).wrapping_add(7);
            let layout = random_layout(stride, 2, members, &mut st);
            let train: Vec<u16> = (0..80 * stride)
                .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
                .collect();
            let xt = materialize(&layout, &train);
            let y: Vec<f64> = xt
                .rows_iter()
                .map(|r| r.iter().enumerate().map(|(j, v)| v * ((j % 2) as f64 + 1.0)).sum())
                .collect();
            let mut f = RandomForest::new(seed).with_trees(trees);
            f.tree_config.max_depth = depth;
            f.fit(&xt, &y).unwrap();
            let gf = CompiledForest::from_forest(&f)
                .unwrap()
                .bake_gather(&layout)
                .unwrap();
            prop_assert!(gf.masks.is_empty());
            prop_assert!(!gf.quants.is_empty());
            let genes: Vec<u16> = (0..batch * stride)
                .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
                .collect();
            let mut dispatched = Vec::new();
            gf.predict_genomes_into(&genes, &mut dispatched);
            let mut float_oracle = Vec::new();
            gf.predict_genomes_scalar_into(&genes, &mut float_oracle);
            let mut quant_scalar = Vec::new();
            gf.check_genes(&genes);
            gf.predict_quant_scalar(&genes, &mut quant_scalar);
            let x = materialize(&layout, &genes);
            for (i, row) in x.rows_iter().enumerate() {
                let want = f.predict_row(row).to_bits();
                prop_assert_eq!(dispatched[i].to_bits(), want);
                prop_assert_eq!(float_oracle[i].to_bits(), want);
                prop_assert_eq!(quant_scalar[i].to_bits(), want);
            }
        }

        /// The 8-byte mask32 kernels (scalar and, where available, AVX2
        /// 8-lane) are bitwise identical to the 16-byte mask kernels and
        /// the pointer walk across every slot width inside the u32 mask
        /// budget, random forests and batch sizes — including batches
        /// straddling the traversal block and the 8-lane group tails.
        #[test]
        fn mask32_kernels_match_mask64_and_pointer_walk(
            seed in 0u64..1000,
            trees in 1usize..10,
            depth in 1usize..10,
            stride in 1usize..6,
            members in 2usize..33,
            batch in 1usize..150,
        ) {
            let mut st = seed.wrapping_mul(0x85EB_CA6B).wrapping_add(3);
            let layout = random_layout(stride, 2, members, &mut st);
            let train: Vec<u16> = (0..80 * stride)
                .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
                .collect();
            let xt = materialize(&layout, &train);
            let y: Vec<f64> = xt
                .rows_iter()
                .map(|r| r.iter().enumerate().map(|(j, v)| v * ((j % 2) as f64 + 1.0)).sum())
                .collect();
            let mut f = RandomForest::new(seed).with_trees(trees);
            f.tree_config.max_depth = depth;
            f.fit(&xt, &y).unwrap();
            let gf = CompiledForest::from_forest(&f)
                .unwrap()
                .bake_gather(&layout)
                .unwrap();
            prop_assert!(!gf.masks32.is_empty());
            prop_assert!(!gf.masks.is_empty());
            let genes: Vec<u16> = (0..batch * stride)
                .map(|_| (lcg(&mut st) * members as f64) as u16 % members as u16)
                .collect();
            let mut dispatched = Vec::new();
            gf.predict_genomes_into(&genes, &mut dispatched);
            gf.check_genes(&genes);
            let mut m32 = Vec::new();
            gf.predict_mask32_scalar(&genes, &mut m32);
            let mut m64 = Vec::new();
            gf.predict_mask_scalar(&genes, &mut m64);
            let x = materialize(&layout, &genes);
            for (i, row) in x.rows_iter().enumerate() {
                let want = f.predict_row(row).to_bits();
                prop_assert_eq!(dispatched[i].to_bits(), want);
                prop_assert_eq!(m32[i].to_bits(), want);
                prop_assert_eq!(m64[i].to_bits(), want);
            }
        }
    }
}
