//! Feature standardization and train/test utilities shared by the engines.

use crate::linalg::Matrix;

/// Per-column standardization (zero mean, unit variance) fitted on
/// training data and applied to new rows.
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits on the columns of `x`. Constant columns get `std = 1` so they
    /// map to zero instead of NaN.
    pub fn fit(x: &Matrix) -> Self {
        let n = x.nrows() as f64;
        let d = x.ncols();
        let mut means = vec![0.0; d];
        for row in x.rows_iter() {
            for (m, &v) in means.iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for row in x.rows_iter() {
            for ((s, &v), m) in vars.iter_mut().zip(row.iter()).zip(means.iter()) {
                let dlt = v - m;
                *s += dlt * dlt;
            }
        }
        let stds: Vec<f64> = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { means, stds }
    }

    /// Standardizes one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter())
            .zip(self.stds.iter())
            .map(|((&v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardizes a whole matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = x.rows_iter().map(|r| self.transform_row(r)).collect();
        Matrix::from_rows(&rows)
    }

    /// Per-column means (serialization hook).
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations (serialization hook).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Rebuilds a standardizer from stored parts.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "mean/std length mismatch");
        Standardizer { means, stds }
    }
}

/// Scalar standardization for targets.
#[derive(Debug, Clone, Copy)]
pub struct TargetScaler {
    mean: f64,
    std: f64,
}

impl TargetScaler {
    /// Fits mean/std of `y` (constant targets get `std = 1`).
    pub fn fit(y: &[f64]) -> Self {
        let n = y.len() as f64;
        let mean = y.iter().sum::<f64>() / n;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        TargetScaler {
            mean,
            std: if std < 1e-12 { 1.0 } else { std },
        }
    }

    /// Maps a raw target into standardized space.
    pub fn scale(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Maps a standardized prediction back to the raw scale.
    pub fn unscale(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }

    /// The fitted `(mean, std)` pair (serialization hook).
    pub fn parts(&self) -> (f64, f64) {
        (self.mean, self.std)
    }

    /// Rebuilds a scaler from stored parts.
    pub fn from_parts(mean: f64, std: f64) -> Self {
        TargetScaler { mean, std }
    }
}

/// Deterministic index shuffle (Fisher–Yates with a SplitMix64 stream).
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut st = seed ^ 0x517C_C1B7_2722_0A95;
    for i in (1..n).rev() {
        st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = st;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let j = (z % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        for c in 0..2 {
            let col = t.col(c);
            let mean: f64 = col.iter().sum::<f64>() / 3.0;
            let var: f64 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_is_safe() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0], vec![7.0]]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        assert!(t.col(0).iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn target_scaler_roundtrip() {
        let y = [2.0, 4.0, 6.0, 8.0];
        let s = TargetScaler::fit(&y);
        for &v in &y {
            assert!((s.unscale(s.scale(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let a = shuffled_indices(100, 5);
        let b = shuffled_indices(100, 5);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, shuffled_indices(100, 6));
    }
}
