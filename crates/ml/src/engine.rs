//! The common [`Regressor`] trait and the [`EngineKind`] registry covering
//! every learning engine of the paper's Table 3.

use crate::linalg::Matrix;

/// Error returned when a model cannot be fitted.
#[derive(Debug, Clone)]
pub struct TrainError {
    message: String,
}

impl TrainError {
    /// Creates an error with a short lowercase description.
    pub fn new(message: impl Into<String>) -> Self {
        TrainError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model training failed: {}", self.message)
    }
}

impl std::error::Error for TrainError {}

/// A supervised regression model.
///
/// All engines are deterministic functions of their inputs and their
/// construction seed. Fitted models are immutable at prediction time
/// (`Sync`), so batch prediction can fan out across worker threads.
pub trait Regressor: Send + Sync {
    /// Fits the model on rows of `x` with targets `y`.
    ///
    /// # Errors
    /// Returns [`TrainError`] when the input is empty, shapes mismatch, or
    /// an internal solver fails on degenerate data.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError>;

    /// Predicts the target for one feature row.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predicts targets for every row of `x`.
    ///
    /// The default implementation maps [`Regressor::predict_row`] over the
    /// rows through the execution layer, parallelizing large batches
    /// across [`autoax_exec::thread_count`] workers; per-row results are
    /// bitwise identical to calling `predict_row` directly, at any thread
    /// count.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let rows: Vec<&[f64]> = x.rows_iter().collect();
        autoax_exec::par_map(&rows, |r| self.predict_row(r))
    }

    /// Predicts targets for every row of `x` into a caller-owned vector
    /// (cleared first), so hot loops reuse the output allocation across
    /// rounds the way they already reuse their feature scratch.
    ///
    /// The default delegates to [`Regressor::predict`]; engines with an
    /// allocation-free batch path override this to write `out` directly.
    /// Results are bitwise identical to [`Regressor::predict`].
    fn predict_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        out.clear();
        out.append(&mut self.predict(x));
    }

    /// Concrete-type view for serialization (`autoax-store` downcasts
    /// through this to encode fitted models). Engines that do not support
    /// persistence keep the default `None`, which the store reports as
    /// [`TrainError`]-free but unsupported — callers then fall back to
    /// refitting instead of caching.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable concrete-type view for in-place model surgery (the
    /// refinement loop downcasts through this to replace a subset of a
    /// fitted forest's trees instead of refitting from scratch). Engines
    /// without an incremental path keep the default `None`, and callers
    /// fall back to a full refit.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// The engines compared in the paper's Table 3 (naïve models are built
/// separately from fixed weights; see `autoax::model`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EngineKind {
    /// Random forest (100 trees) — the paper's winner.
    RandomForest,
    /// Single CART decision tree.
    DecisionTree,
    /// k-nearest neighbours (k = 5).
    KNeighbors,
    /// Bayesian ridge regression.
    BayesianRidge,
    /// Partial least squares (2 components).
    PartialLeastSquares,
    /// Lasso (coordinate descent).
    Lasso,
    /// AdaBoost.R2 with shallow trees.
    AdaBoost,
    /// Least-angle regression.
    LeastAngle,
    /// Gradient boosting (100 stages).
    GradientBoosting,
    /// Multi-layer perceptron.
    MlpNeuralNetwork,
    /// Gaussian-process regression (overfits by construction).
    GaussianProcess,
    /// Kernel ridge on raw features (degenerate by construction).
    KernelRidge,
    /// Plain SGD linear regression on raw features (the paper's worst).
    StochasticGradientDescent,
}

impl EngineKind {
    /// All engines, in the row order of Table 3 (best-first as printed).
    pub const ALL: [EngineKind; 13] = [
        EngineKind::RandomForest,
        EngineKind::DecisionTree,
        EngineKind::KNeighbors,
        EngineKind::BayesianRidge,
        EngineKind::PartialLeastSquares,
        EngineKind::Lasso,
        EngineKind::AdaBoost,
        EngineKind::LeastAngle,
        EngineKind::GradientBoosting,
        EngineKind::MlpNeuralNetwork,
        EngineKind::GaussianProcess,
        EngineKind::KernelRidge,
        EngineKind::StochasticGradientDescent,
    ];

    /// The display name used by the paper.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::RandomForest => "Random Forest",
            EngineKind::DecisionTree => "Decision Tree",
            EngineKind::KNeighbors => "K-Neighbors",
            EngineKind::BayesianRidge => "Bayesian Ridge",
            EngineKind::PartialLeastSquares => "Partial least squares",
            EngineKind::Lasso => "Lasso",
            EngineKind::AdaBoost => "Ada Boost",
            EngineKind::LeastAngle => "Least-angle",
            EngineKind::GradientBoosting => "Gradient Boosting",
            EngineKind::MlpNeuralNetwork => "MLP neural network",
            EngineKind::GaussianProcess => "Gaussian process",
            EngineKind::KernelRidge => "Kernel ridge",
            EngineKind::StochasticGradientDescent => "Stochastic Gradient Descent",
        }
    }

    /// Instantiates an unfitted model with this crate's default
    /// hyper-parameters (documented per engine module).
    pub fn make(&self, seed: u64) -> Box<dyn Regressor> {
        match self {
            EngineKind::RandomForest => Box::new(crate::forest::RandomForest::new(seed)),
            EngineKind::DecisionTree => Box::new(crate::tree::DecisionTree::new(
                crate::tree::TreeConfig::default(),
            )),
            EngineKind::KNeighbors => Box::new(crate::knn::KNeighbors::new()),
            EngineKind::BayesianRidge => Box::new(crate::linear::BayesianRidge::new()),
            EngineKind::PartialLeastSquares => Box::new(crate::pls::PartialLeastSquares::new()),
            EngineKind::Lasso => Box::new(crate::lasso::Lasso::new(1e-3)),
            EngineKind::AdaBoost => Box::new(crate::adaboost::AdaBoost::new(seed)),
            EngineKind::LeastAngle => Box::new(crate::lars::LeastAngle::new()),
            EngineKind::GradientBoosting => Box::new(crate::gbt::GradientBoosting::new(seed)),
            EngineKind::MlpNeuralNetwork => Box::new(crate::mlp::Mlp::new(seed)),
            EngineKind::GaussianProcess => Box::new(crate::gp::GaussianProcess::new()),
            EngineKind::KernelRidge => Box::new(crate::kernel_ridge::KernelRidge::new()),
            EngineKind::StochasticGradientDescent => Box::new(crate::linear::SgdLinear::new(seed)),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::fidelity;

    /// Mildly nonlinear data with train/test halves.
    fn split_data() -> (Matrix, Vec<f64>, Matrix, Vec<f64>) {
        let make = |offset: usize, n: usize| {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    let i = i + offset;
                    vec![
                        ((i * 7) % 23) as f64 / 22.0,
                        ((i * 13) % 17) as f64 / 16.0,
                        ((i * 3) % 11) as f64 / 10.0,
                    ]
                })
                .collect();
            let y: Vec<f64> = rows
                .iter()
                .map(|r| 2.0 * r[0] + r[1] * r[1] * 3.0 - r[2] + 0.5 * (r[0] * 4.0).sin())
                .collect();
            (Matrix::from_rows(&rows), y)
        };
        let (xt, yt) = make(0, 300);
        let (xv, yv) = make(1000, 150);
        (xt, yt, xv, yv)
    }

    #[test]
    fn all_engines_fit_and_predict() {
        let (xt, yt, xv, _) = split_data();
        for kind in EngineKind::ALL {
            let mut m = kind.make(7);
            m.fit(&xt, &yt).unwrap_or_else(|e| panic!("{kind}: {e}"));
            for row in xv.rows_iter().take(5) {
                assert!(m.predict_row(row).is_finite(), "{kind} produced non-finite");
            }
        }
    }

    #[test]
    fn tree_ensembles_beat_degenerate_engines_on_test_fidelity() {
        let (xt, yt, xv, yv) = split_data();
        let test_fidelity = |kind: EngineKind| {
            let mut m = kind.make(3);
            m.fit(&xt, &yt).unwrap();
            fidelity(&m.predict(&xv), &yv).unwrap()
        };
        let rf = test_fidelity(EngineKind::RandomForest);
        let sgd = test_fidelity(EngineKind::StochasticGradientDescent);
        assert!(rf > 0.85, "random forest too weak: {rf}");
        assert!(rf > sgd, "rf {rf} must beat sgd {sgd}");
    }

    #[test]
    fn gaussian_process_overfits() {
        let (xt, mut yt, xv, yv) = split_data();
        // add noise so interpolation hurts generalization
        let mut st = 3u64;
        for v in yt.iter_mut() {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v += ((st >> 33) as f64 / 2.0_f64.powi(31) - 0.5) * 0.6;
        }
        let mut gp = EngineKind::GaussianProcess.make(0);
        gp.fit(&xt, &yt).unwrap();
        let train_f = fidelity(&gp.predict(&xt), &yt).unwrap();
        let test_f = fidelity(&gp.predict(&xv), &yv).unwrap();
        assert!(train_f > 0.97, "GP must interpolate: {train_f}");
        assert!(
            test_f < train_f,
            "GP should generalize worse than it trains"
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EngineKind::ALL.len());
    }

    #[test]
    fn default_predict_maps_rows() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = [0.0, 2.0, 4.0];
        let mut m = EngineKind::DecisionTree.make(0);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&x);
        assert_eq!(p.len(), 3);
    }
}
