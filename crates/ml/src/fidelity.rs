//! The fidelity metric (paper Section 2.3).
//!
//! > "The fidelity tells us how often the estimated values are in the same
//! > relation (<, = or >) as the real values for each pair of
//! > configurations."
//!
//! Fidelity is the methodology's model-quality criterion because the design
//! space exploration only ever *compares* configurations — absolute
//! accuracy is unnecessary, and fidelity is invariant under strictly
//! monotone transforms of the predictions.

/// Error returned when the estimated and real slices cannot be compared
/// pairwise because their lengths differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FidelityError {
    /// Length of the estimated-values slice.
    pub estimated: usize,
    /// Length of the real-values slice.
    pub real: usize,
}

impl std::fmt::Display for FidelityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fidelity input length mismatch: {} estimated vs {} real values",
            self.estimated, self.real
        )
    }
}

impl std::error::Error for FidelityError {}

/// Three-way ordering with a tie tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Relation {
    Less,
    Equal,
    Greater,
}

#[inline]
fn relation(a: f64, b: f64, eps: f64) -> Relation {
    let d = a - b;
    if d.abs() <= eps {
        Relation::Equal
    } else if d < 0.0 {
        Relation::Less
    } else {
        Relation::Greater
    }
}

/// Fraction of pairs `(i, j)`, `i < j`, for which `estimated` orders the
/// pair the same way as `real` (with tie tolerance `eps` on both sides).
///
/// Returns `Ok(1.0)` for fewer than two samples (there is nothing to
/// disagree about).
///
/// # Errors
/// Returns [`FidelityError`] when the slices have different lengths —
/// pairwise comparison is undefined in that case.
pub fn fidelity_with_eps(estimated: &[f64], real: &[f64], eps: f64) -> Result<f64, FidelityError> {
    if estimated.len() != real.len() {
        return Err(FidelityError {
            estimated: estimated.len(),
            real: real.len(),
        });
    }
    let n = estimated.len();
    if n < 2 {
        return Ok(1.0);
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            let re = relation(estimated[i], estimated[j], eps);
            let rr = relation(real[i], real[j], eps);
            if re == rr {
                agree += 1;
            }
            total += 1;
        }
    }
    Ok(agree as f64 / total as f64)
}

/// [`fidelity_with_eps`] with a tie tolerance of `1e-9` times the spread of
/// the real values — a practical default that treats floating-point noise
/// as equality without collapsing genuinely distinct values.
///
/// # Errors
/// Returns [`FidelityError`] when the slices have different lengths.
pub fn fidelity(estimated: &[f64], real: &[f64]) -> Result<f64, FidelityError> {
    let spread = real
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let eps = ((spread.1 - spread.0).abs()) * 1e-9;
    fidelity_with_eps(estimated, real, eps.max(1e-15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_scores_one() {
        let real = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(fidelity(&real, &real).unwrap(), 1.0);
    }

    #[test]
    fn monotone_transform_preserves_fidelity() {
        let real = [1.0, 3.0, 2.0, 5.0, 4.0];
        let est: Vec<f64> = real.iter().map(|v| v * 100.0 - 7.0).collect();
        assert_eq!(fidelity(&est, &real).unwrap(), 1.0);
        let est_log: Vec<f64> = real.iter().map(|v| v.ln()).collect();
        assert_eq!(fidelity(&est_log, &real).unwrap(), 1.0);
    }

    #[test]
    fn inverted_model_scores_zero() {
        let real = [1.0, 2.0, 3.0, 4.0];
        let est = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(fidelity(&est, &real).unwrap(), 0.0);
    }

    #[test]
    fn constant_predictions_score_by_tie_mismatch() {
        // All predictions equal, all real values distinct: every pair is
        // Equal vs Less/Greater -> fidelity 0.
        let real = [1.0, 2.0, 3.0];
        let est = [5.0, 5.0, 5.0];
        assert_eq!(fidelity(&est, &real).unwrap(), 0.0);
    }

    #[test]
    fn half_right_model() {
        // est orders (a,b) correctly, (c,d) incorrectly, cross pairs mixed.
        let real = [0.0, 1.0, 2.0, 3.0];
        let est = [0.0, 1.0, 3.0, 2.0];
        // pairs: (0,1)+ (0,2)+ (0,3)+ (1,2)+ (1,3)+ (2,3)-  => 5/6
        assert!((fidelity(&est, &real).unwrap() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn tie_tolerance_counts_near_equal_as_equal() {
        let real = [1.0, 1.0, 2.0];
        let est = [5.0, 5.0 + 1e-12, 9.0];
        // (0,1): both Equal -> agree; others ordered correctly.
        assert_eq!(fidelity_with_eps(&est, &real, 1e-9).unwrap(), 1.0);
    }

    #[test]
    fn short_inputs_are_trivially_perfect() {
        assert_eq!(fidelity(&[1.0], &[2.0]).unwrap(), 1.0);
        assert_eq!(fidelity(&[], &[]).unwrap(), 1.0);
    }

    #[test]
    fn length_mismatch_is_a_typed_error() {
        let err = fidelity(&[1.0, 2.0], &[1.0]).unwrap_err();
        assert_eq!(
            err,
            FidelityError {
                estimated: 2,
                real: 1
            }
        );
        assert!(err.to_string().contains("2 estimated vs 1 real"));
        let err = fidelity_with_eps(&[], &[0.5], 1e-9).unwrap_err();
        assert_eq!(
            err,
            FidelityError {
                estimated: 0,
                real: 1
            }
        );
    }

    #[test]
    fn empty_against_empty_is_perfect_not_an_error() {
        assert_eq!(fidelity_with_eps(&[], &[], 0.0).unwrap(), 1.0);
    }

    #[test]
    fn exact_eps_boundary_counts_as_equal() {
        // |d| == eps exactly is Equal on both sides: agreement.
        let real = [0.0, 1.0, 5.0];
        let est = [3.0, 4.0, 9.0];
        assert_eq!(fidelity_with_eps(&est, &real, 1.0).unwrap(), 1.0);
        // Past the boundary the tie breaks on one side only.
        let est2 = [3.0, 4.5, 9.0];
        let f = fidelity_with_eps(&est2, &real, 1.0).unwrap();
        assert!((f - 2.0 / 3.0).abs() < 1e-12, "got {f}");
    }
}
