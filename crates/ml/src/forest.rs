//! Random forest regression: bagged CART trees (the paper's best engine,
//! "random forest consisting of 100 different trees").

use crate::engine::{Regressor, TrainError};
use crate::linalg::Matrix;
use crate::tree::{DecisionTree, TreeConfig};

/// Random forest regressor.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees (paper: 100).
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree_config: TreeConfig,
    /// Bootstrap seed.
    pub seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// A 100-tree forest with full-depth trees and bootstrap sampling.
    pub fn new(seed: u64) -> Self {
        RandomForest {
            n_trees: 100,
            tree_config: TreeConfig {
                min_samples_leaf: 1,
                ..Default::default()
            },
            seed,
            trees: Vec::new(),
        }
    }

    /// Sets the number of trees (builder style).
    pub fn with_trees(mut self, n: usize) -> Self {
        self.n_trees = n;
        self
    }

    /// The fitted trees (empty before [`Regressor::fit`]).
    pub fn fitted_trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Rebuilds a fitted forest from its parts (the serialization path:
    /// prediction over the restored forest is bitwise identical to the
    /// original because only the trees participate in prediction).
    pub fn from_fitted_parts(seed: u64, tree_config: TreeConfig, trees: Vec<DecisionTree>) -> Self {
        RandomForest {
            n_trees: trees.len(),
            tree_config,
            seed,
            trees,
        }
    }

    /// Population variance of the per-tree predictions for one row — the
    /// forest's epistemic-uncertainty signal, used by the refinement
    /// loop's acquisition function. Sum and sum-of-squares accumulate in
    /// tree order, so the result is bitwise reproducible and matches the
    /// compiled arena's stats kernel exactly. Returns 0.0 for an unfitted
    /// forest (and exactly 0.0 for a single tree).
    pub fn predict_variance_row(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for tree in &self.trees {
            let v = tree.predict_row(row);
            sum += v;
            sumsq += v * v;
        }
        let n = self.trees.len() as f64;
        let mean = sum / n;
        (sumsq / n - mean * mean).max(0.0)
    }

    /// Replaces a rotating subset of the fitted trees with trees trained
    /// on the (grown) training set — the refinement loop's incremental
    /// refit. Round `r` replaces slots `(r * replace + k) % n_trees` for
    /// `k` in `0..replace`, so successive rounds cycle through the whole
    /// forest while the untouched trees keep their exact node layout.
    ///
    /// Replacement trees draw bootstrap samples and tree seeds from a
    /// SplitMix64 stream keyed on `(seed, round, slot)` — the same mixing
    /// recipe as [`Regressor::fit`] — so the result is a pure function of
    /// the inputs, independent of thread count or call batching.
    ///
    /// # Errors
    /// Returns [`TrainError`] on an unfitted forest, an empty training
    /// set, or a row/target count mismatch.
    pub fn refit_trees(
        &mut self,
        x: &Matrix,
        y: &[f64],
        round: usize,
        replace: usize,
    ) -> Result<(), TrainError> {
        if self.trees.is_empty() {
            return Err(TrainError::new("refit on an unfitted forest"));
        }
        if x.nrows() == 0 {
            return Err(TrainError::new("empty training set"));
        }
        if x.nrows() != y.len() {
            return Err(TrainError::new("row/target count mismatch"));
        }
        let n = x.nrows();
        let n_trees = self.trees.len();
        let replace = replace.min(n_trees);
        for k in 0..replace {
            let slot = (round * replace + k) % n_trees;
            let stream = {
                let mut z = self.seed
                    ^ (round as u64)
                        .wrapping_add(1)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (slot as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut st = stream ^ 0xF0E5_7000_0000_0001;
            let idx: Vec<usize> = (0..n)
                .map(|_| {
                    st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = st;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((z ^ (z >> 31)) % n as u64) as usize
                })
                .collect();
            let mut tree = DecisionTree::new(TreeConfig {
                seed: stream,
                ..self.tree_config
            });
            tree.fit_subset(x, y, &idx, None)?;
            self.trees[slot] = tree;
        }
        Ok(())
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        if x.nrows() == 0 {
            return Err(TrainError::new("empty training set"));
        }
        if x.nrows() != y.len() {
            return Err(TrainError::new("row/target count mismatch"));
        }
        let n = x.nrows();
        self.trees.clear();
        let mut st = self.seed ^ 0xF0E5_7000_0000_0001;
        for t in 0..self.n_trees {
            // bootstrap resample
            let idx: Vec<usize> = (0..n)
                .map(|_| {
                    st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = st;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((z ^ (z >> 31)) % n as u64) as usize
                })
                .collect();
            let mut tree = DecisionTree::new(TreeConfig {
                seed: self.seed.wrapping_add(t as u64),
                ..self.tree_config
            });
            tree.fit_subset(x, y, &idx, None)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Batched prediction tuned for the estimation hot path: rows are
    /// processed in fixed blocks (scheduled through
    /// [`autoax_exec::par_map_range`]) and trees walk each block in the
    /// outer loop, so one tree's nodes stay cache-hot across the whole
    /// block. The per-row additions happen in tree order, exactly as in
    /// [`RandomForest::predict_row`], so results are bitwise identical at
    /// any thread count.
    ///
    /// The matrix is indexed directly and each block accumulates into a
    /// stack array — no per-call row/block index vectors, no per-block
    /// heap scratch.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut out = Vec::with_capacity(x.nrows());
        self.predict_into(x, &mut out);
        out
    }

    /// [`RandomForest::predict`] into a reused output vector.
    fn predict_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        out.clear();
        if self.trees.is_empty() {
            out.resize(x.nrows(), 0.0);
            return;
        }
        // Fixed block size: keeps results independent of the worker count
        // and matches the search layer's estimation round granularity.
        const BLOCK: usize = 32;
        let n_trees = self.trees.len() as f64;
        let parts = autoax_exec::par_map_range(x.nrows(), BLOCK, |range| {
            let mut acc = [0.0f64; BLOCK];
            let len = range.len();
            for tree in &self.trees {
                for (a, r) in acc[..len].iter_mut().zip(range.clone()) {
                    *a += tree.predict_row(x.row(r));
                }
            }
            for a in &mut acc[..len] {
                *a /= n_trees;
            }
            (acc, len)
        });
        for (acc, len) in parts {
            out.extend_from_slice(&acc[..len]);
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nonlinear_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i % 17) as f64 / 16.0;
                let b = ((i * 7) % 13) as f64 / 12.0;
                vec![a, b]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| (r[0] * 6.0).sin() + r[1] * r[1] * 3.0)
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = nonlinear_data(300);
        let mut f = RandomForest::new(1).with_trees(30);
        f.fit(&x, &y).unwrap();
        let preds = f.predict(&x);
        let mse: f64 = preds
            .iter()
            .zip(y.iter())
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.05, "training mse too high: {mse}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = nonlinear_data(100);
        let mut f1 = RandomForest::new(7).with_trees(10);
        let mut f2 = RandomForest::new(7).with_trees(10);
        f1.fit(&x, &y).unwrap();
        f2.fit(&x, &y).unwrap();
        assert_eq!(f1.predict_row(&[0.4, 0.9]), f2.predict_row(&[0.4, 0.9]));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = nonlinear_data(100);
        let mut f1 = RandomForest::new(1).with_trees(5);
        let mut f2 = RandomForest::new(2).with_trees(5);
        f1.fit(&x, &y).unwrap();
        f2.fit(&x, &y).unwrap();
        assert_ne!(f1.predict_row(&[0.35, 0.71]), f2.predict_row(&[0.35, 0.71]));
    }

    #[test]
    fn batched_predict_is_bitwise_identical_to_per_row() {
        let (x, y) = nonlinear_data(150);
        let mut f = RandomForest::new(5).with_trees(20);
        f.fit(&x, &y).unwrap();
        let batch = f.predict(&x);
        assert_eq!(batch.len(), x.nrows());
        for (i, row) in x.rows_iter().enumerate() {
            assert_eq!(
                batch[i].to_bits(),
                f.predict_row(row).to_bits(),
                "row {i} diverged"
            );
        }
    }

    #[test]
    fn predict_into_reuses_the_output_allocation() {
        let (x, y) = nonlinear_data(90);
        let mut f = RandomForest::new(2).with_trees(10);
        f.fit(&x, &y).unwrap();
        let mut out = vec![99.0; 7]; // stale content must be cleared
        f.predict_into(&x, &mut out);
        assert_eq!(out, f.predict(&x));
        let cap = out.capacity();
        let ptr = out.as_ptr();
        f.predict_into(&x, &mut out);
        assert_eq!(out.capacity(), cap, "refill must not reallocate");
        assert_eq!(out.as_ptr(), ptr);
    }

    #[test]
    fn variance_matches_brute_force_over_trees() {
        let (x, y) = nonlinear_data(120);
        let mut f = RandomForest::new(11).with_trees(15);
        f.fit(&x, &y).unwrap();
        for row in x.rows_iter().take(10) {
            let preds: Vec<f64> = f
                .fitted_trees()
                .iter()
                .map(|t| t.predict_row(row))
                .collect();
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for &v in &preds {
                sum += v;
                sumsq += v * v;
            }
            let n = preds.len() as f64;
            let mean = sum / n;
            let want = (sumsq / n - mean * mean).max(0.0);
            assert_eq!(f.predict_variance_row(row).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn variance_is_zero_for_empty_and_single_tree_forests() {
        assert_eq!(RandomForest::new(0).predict_variance_row(&[0.5]), 0.0);
        let (x, y) = nonlinear_data(60);
        let mut f = RandomForest::new(4).with_trees(1);
        f.fit(&x, &y).unwrap();
        assert_eq!(f.predict_variance_row(x.row(3)), 0.0);
    }

    #[test]
    fn refit_is_deterministic_and_only_touches_the_rotating_slots() {
        let (x, y) = nonlinear_data(100);
        let mut a = RandomForest::new(7).with_trees(10);
        let mut b = RandomForest::new(7).with_trees(10);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        a.refit_trees(&x, &y, 0, 3).unwrap();
        b.refit_trees(&x, &y, 0, 3).unwrap();
        for (ta, tb) in a.fitted_trees().iter().zip(b.fitted_trees()) {
            assert_eq!(format!("{ta:?}"), format!("{tb:?}"));
        }
        // round 1 replaces slots 3..6, leaving 0..3 as refit round 0 left
        // them and 6..10 as the original fit built them
        let after_r0: Vec<_> = a.fitted_trees().to_vec();
        a.refit_trees(&x, &y, 1, 3).unwrap();
        for s in [0usize, 1, 2, 6, 7, 8, 9] {
            assert_eq!(
                format!("{:?}", a.fitted_trees()[s]),
                format!("{:?}", after_r0[s]),
                "slot {s} must be untouched by round 1"
            );
        }
    }

    #[test]
    fn refit_on_unfitted_forest_is_error() {
        let (x, y) = nonlinear_data(30);
        let mut f = RandomForest::new(0).with_trees(5);
        assert!(f.refit_trees(&x, &y, 0, 2).is_err());
    }

    #[test]
    fn empty_input_is_error() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        let mut f = RandomForest::new(0);
        assert!(f.fit(&x, &[]).is_err());
    }

    #[test]
    fn generalizes_better_than_single_overfit_tree_on_noise() {
        // Smoothing property: forest averages reduce prediction variance on
        // noisy targets relative to a single deep tree.
        let (x, mut y) = nonlinear_data(200);
        let mut st = 9u64;
        for v in y.iter_mut() {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v += ((st >> 33) as f64 / 2.0_f64.powi(31) - 0.5) * 0.8;
        }
        let (xt, yt) = nonlinear_data(200); // clean targets as "truth"
        let mut forest = RandomForest::new(3).with_trees(40);
        forest.fit(&x, &y).unwrap();
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y).unwrap();
        let err = |preds: Vec<f64>| -> f64 {
            preds
                .iter()
                .zip(yt.iter())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
        };
        let fe = err(forest.predict(&xt));
        let te = err(tree.predict(&xt));
        assert!(fe < te, "forest {fe} should beat single tree {te}");
    }
}
