//! Gradient-boosted regression trees (least-squares boosting).

use crate::engine::{Regressor, TrainError};
use crate::linalg::Matrix;
use crate::tree::{DecisionTree, TreeConfig};

/// Gradient boosting regressor: shallow trees fitted to residuals.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    /// Number of boosting stages.
    pub n_stages: usize,
    /// Learning rate (shrinkage).
    pub learning_rate: f64,
    /// Depth of each stage's tree.
    pub max_depth: usize,
    /// Seed (reserved for subsampling variants).
    pub seed: u64,
    base: f64,
    stages: Vec<DecisionTree>,
}

impl GradientBoosting {
    /// scikit-learn-like defaults: 100 stages, depth 3, learning rate 0.1.
    pub fn new(seed: u64) -> Self {
        GradientBoosting {
            n_stages: 100,
            learning_rate: 0.1,
            max_depth: 3,
            seed,
            base: 0.0,
            stages: Vec::new(),
        }
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        if x.nrows() == 0 || x.nrows() != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        self.stages.clear();
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        let mut residual: Vec<f64> = y.iter().map(|&v| v - self.base).collect();
        let idx: Vec<usize> = (0..x.nrows()).collect();
        for s in 0..self.n_stages {
            let mut tree = DecisionTree::new(TreeConfig {
                max_depth: self.max_depth,
                seed: self.seed.wrapping_add(s as u64),
                ..Default::default()
            });
            tree.fit_subset(x, &residual, &idx, None)?;
            for (i, r) in residual.iter_mut().enumerate() {
                *r -= self.learning_rate * tree.predict_row(x.row(i));
            }
            self.stages.push(tree);
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.base + self.learning_rate * self.stages.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_function() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut g = GradientBoosting::new(0);
        g.fit(&x, &y).unwrap();
        let preds = g.predict(&x);
        let mse: f64 = preds
            .iter()
            .zip(y.iter())
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 1.0, "mse {mse}");
    }

    #[test]
    fn residual_shrinks_with_stages() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] / 10.0).sin() * 4.0).collect();
        let x = Matrix::from_rows(&rows);
        let mse_for = |stages: usize| {
            let mut g = GradientBoosting::new(0);
            g.n_stages = stages;
            g.fit(&x, &y).unwrap();
            g.predict(&x)
                .iter()
                .zip(y.iter())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
        };
        assert!(mse_for(50) < mse_for(5));
    }

    #[test]
    fn zero_stages_predicts_mean() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let y = [2.0, 4.0];
        let mut g = GradientBoosting::new(0);
        g.n_stages = 0;
        g.fit(&x, &y).unwrap();
        assert_eq!(g.predict_row(&[9.0]), 3.0);
    }
}
