//! Gaussian-process regression with an RBF kernel.
//!
//! With scikit-learn's default near-zero noise (`alpha = 1e-10`) the GP
//! interpolates the training data — which is exactly why the paper's
//! Table 3 shows it at 100 % train fidelity but only 55–71 % test
//! fidelity. The default here reproduces that overfitting behaviour.

use crate::dataset::{Standardizer, TargetScaler};
use crate::engine::{Regressor, TrainError};
use crate::linalg::{cholesky, cholesky_solve, sq_dist, Matrix};

/// GP regressor (RBF kernel, zero mean after target centering).
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    /// Observation noise added to the kernel diagonal.
    pub alpha: f64,
    /// RBF length scale (on standardized features).
    pub length_scale: f64,
    scaler: Option<Standardizer>,
    yscale: Option<TargetScaler>,
    x: Option<Matrix>,
    dual: Vec<f64>, // K^-1 y
}

impl GaussianProcess {
    /// scikit-learn-like defaults (`alpha = 1e-10`, unit length scale).
    pub fn new() -> Self {
        GaussianProcess {
            alpha: 1e-10,
            length_scale: 1.0,
            scaler: None,
            yscale: None,
            x: None,
            dual: Vec::new(),
        }
    }

    #[inline]
    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        (-sq_dist(a, b) / (2.0 * self.length_scale * self.length_scale)).exp()
    }
}

impl Default for GaussianProcess {
    fn default() -> Self {
        Self::new()
    }
}

impl Regressor for GaussianProcess {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        let n = x.nrows();
        if n == 0 || n != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let ys = TargetScaler::fit(y);
        let yt: Vec<f64> = y.iter().map(|&v| ys.scale(v)).collect();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.kernel(xs.row(i), xs.row(j));
                k.set(i, j, v);
                k.set(j, i, v);
            }
            k.set(i, i, k.get(i, i) + self.alpha);
        }
        let mut l = None;
        for jitter in [0.0, 1e-8, 1e-6, 1e-4] {
            l = cholesky(&k, jitter);
            if l.is_some() {
                break;
            }
        }
        let l = l.ok_or_else(|| TrainError::new("kernel matrix not positive definite"))?;
        self.dual = cholesky_solve(&l, &yt);
        self.x = Some(xs);
        self.scaler = Some(scaler);
        self.yscale = Some(ys);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let (Some(s), Some(ys), Some(x)) = (&self.scaler, &self.yscale, &self.x) else {
            return 0.0;
        };
        let q = s.transform_row(row);
        let mut acc = 0.0;
        for (r, &d) in x.rows_iter().zip(self.dual.iter()) {
            acc += self.kernel(&q, r) * d;
        }
        ys.unscale(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy_data(n: usize, phase: f64) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64 * 6.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] + phase).sin() * 3.0).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn interpolates_training_points() {
        let (x, y) = wavy_data(40, 0.0);
        let mut gp = GaussianProcess::new();
        gp.fit(&x, &y).unwrap();
        for (row, &t) in x.rows_iter().zip(y.iter()) {
            assert!(
                (gp.predict_row(row) - t).abs() < 1e-4,
                "GP must interpolate (alpha ~ 0)"
            );
        }
    }

    #[test]
    fn smooth_between_points() {
        let (x, y) = wavy_data(50, 0.0);
        let mut gp = GaussianProcess::new();
        gp.fit(&x, &y).unwrap();
        // Midpoint prediction should be near the true function.
        let pred = gp.predict_row(&[3.05]);
        let truth = (3.05f64).sin() * 3.0;
        assert!((pred - truth).abs() < 0.3, "pred {pred} vs {truth}");
    }

    #[test]
    fn larger_alpha_stops_interpolating() {
        let (x, mut y) = wavy_data(30, 0.0);
        // inject an outlier
        y[7] += 2.5;
        // A short length scale keeps the kernel matrix well conditioned so
        // near-zero alpha really interpolates.
        let mut sharp = GaussianProcess::new();
        sharp.length_scale = 0.05;
        sharp.fit(&x, &y).unwrap();
        let mut smooth = GaussianProcess::new();
        smooth.length_scale = 0.05;
        smooth.alpha = 1.0;
        smooth.fit(&x, &y).unwrap();
        let at7 = x.row(7);
        assert!((sharp.predict_row(at7) - y[7]).abs() < 1e-3);
        assert!((smooth.predict_row(at7) - y[7]).abs() > 0.5);
    }
}
