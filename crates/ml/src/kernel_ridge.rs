//! Kernel ridge regression with an RBF kernel on *raw* (unstandardized)
//! features.
//!
//! The missing standardization is deliberate: it reproduces the behaviour
//! behind the paper's Table 3 "Kernel ridge" row, where the engine scored
//! only 41–42 % fidelity on the SSIM model. With raw WMED features the
//! pairwise distances are enormous, the kernel matrix collapses toward the
//! identity, and predictions become nearly constant — fidelity then drops
//! toward the tie-mismatch floor. Pass features through
//! [`crate::dataset::Standardizer`] yourself if you want the well-behaved
//! variant.

use crate::engine::{Regressor, TrainError};
use crate::linalg::{cholesky, cholesky_solve, sq_dist, Matrix};

/// Kernel ridge regressor (RBF).
#[derive(Debug, Clone)]
pub struct KernelRidge {
    /// Ridge penalty on the kernel diagonal (scikit-learn default: 1.0).
    pub alpha: f64,
    /// RBF bandwidth `gamma` (`None` = `1 / n_features`).
    pub gamma: Option<f64>,
    x: Option<Matrix>,
    dual: Vec<f64>,
    y_mean: f64,
}

impl KernelRidge {
    /// Defaults mirroring scikit-learn (`alpha = 1`, `gamma = 1/d`).
    pub fn new() -> Self {
        KernelRidge {
            alpha: 1.0,
            gamma: None,
            x: None,
            dual: Vec::new(),
            y_mean: 0.0,
        }
    }

    fn gamma_for(&self, d: usize) -> f64 {
        self.gamma.unwrap_or(1.0 / d.max(1) as f64)
    }
}

impl Default for KernelRidge {
    fn default() -> Self {
        Self::new()
    }
}

impl Regressor for KernelRidge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        let n = x.nrows();
        if n == 0 || n != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let g = self.gamma_for(x.ncols());
        self.y_mean = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|&v| v - self.y_mean).collect();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = (-g * sq_dist(x.row(i), x.row(j))).exp();
                k.set(i, j, v);
                k.set(j, i, v);
            }
            k.set(i, i, k.get(i, i) + self.alpha);
        }
        let l = cholesky(&k, 0.0)
            .or_else(|| cholesky(&k, 1e-8))
            .ok_or_else(|| TrainError::new("kernel matrix not positive definite"))?;
        self.dual = cholesky_solve(&l, &yc);
        self.x = Some(x.clone());
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let Some(x) = &self.x else {
            return 0.0;
        };
        let g = self.gamma_for(row.len());
        let mut acc = self.y_mean;
        for (r, &d) in x.rows_iter().zip(self.dual.iter()) {
            acc += (-g * sq_dist(row, r)).exp() * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_on_small_scale_features() {
        // When features are already O(1), kernel ridge works fine.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] * 5.0).sin()).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = KernelRidge::new();
        m.alpha = 1e-3;
        m.gamma = Some(20.0);
        m.fit(&x, &y).unwrap();
        let preds: Vec<f64> = x.rows_iter().map(|r| m.predict_row(r)).collect();
        let f = crate::fidelity::fidelity(&preds, &y).unwrap();
        assert!(f > 0.9, "fidelity {f}");
    }

    #[test]
    fn degenerates_on_huge_scale_features() {
        // The Table 3 failure mode: raw large-scale features make the
        // kernel matrix ~identity, so predictions at *unseen* points
        // collapse to the target mean regardless of the feature value.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 1e4]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = KernelRidge::new();
        m.fit(&x, &y).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        // Query points between the training samples: the RBF sees them as
        // infinitely far from everything.
        let p_lo = m.predict_row(&[5_000.0]);
        let p_hi = m.predict_row(&[355_000.0]);
        assert!((p_lo - mean).abs() < 1.0, "p_lo {p_lo} vs mean {mean}");
        assert!((p_hi - mean).abs() < 1.0, "p_hi {p_hi} vs mean {mean}");
    }

    #[test]
    fn prediction_at_training_point_with_small_alpha() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 3.0 + 1.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = KernelRidge::new();
        m.alpha = 1e-8;
        m.gamma = Some(50.0);
        m.fit(&x, &y).unwrap();
        assert!((m.predict_row(x.row(5)) - y[5]).abs() < 0.05);
    }
}
