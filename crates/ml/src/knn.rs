//! k-nearest-neighbours regression (standardized features, uniform
//! weights, brute force).

use crate::dataset::Standardizer;
use crate::engine::{Regressor, TrainError};
use crate::linalg::{sq_dist, Matrix};

/// k-NN regressor.
#[derive(Debug, Clone)]
pub struct KNeighbors {
    /// Number of neighbours (scikit-learn default: 5).
    pub k: usize,
    scaler: Option<Standardizer>,
    x: Option<Matrix>,
    y: Vec<f64>,
}

impl KNeighbors {
    /// A 5-neighbour regressor.
    pub fn new() -> Self {
        KNeighbors {
            k: 5,
            scaler: None,
            x: None,
            y: Vec::new(),
        }
    }
}

impl Default for KNeighbors {
    fn default() -> Self {
        Self::new()
    }
}

impl Regressor for KNeighbors {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        if x.nrows() == 0 || x.nrows() != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let scaler = Standardizer::fit(x);
        self.x = Some(scaler.transform(x));
        self.scaler = Some(scaler);
        self.y = y.to_vec();
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let (Some(x), Some(scaler)) = (&self.x, &self.scaler) else {
            return 0.0;
        };
        let q = scaler.transform_row(row);
        let k = self.k.min(x.nrows());
        // Partial selection of the k smallest distances.
        let mut best: Vec<(f64, f64)> = Vec::with_capacity(k + 1); // (dist, y)
        for (i, r) in x.rows_iter().enumerate() {
            let d = sq_dist(&q, r);
            if best.len() < k || d < best.last().unwrap().0 {
                let pos = best.partition_point(|&(bd, _)| bd < d);
                best.insert(pos, (d, self.y[i]));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        best.iter().map(|&(_, v)| v).sum::<f64>() / best.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_neighbour_dominates_with_k1() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = [10.0, 20.0, 30.0];
        let mut m = KNeighbors::new();
        m.k = 1;
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_row(&[1.01]), 20.0);
    }

    #[test]
    fn averages_k_neighbours() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0]]);
        let y = [2.0, 4.0, 100.0];
        let mut m = KNeighbors::new();
        m.k = 2;
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_row(&[0.5]), 3.0);
    }

    #[test]
    fn standardization_makes_features_comparable() {
        // Feature 1 has a huge scale but is irrelevant; feature 0 decides y.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 2) as f64, (i as f64) * 1000.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 10.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = KNeighbors::new();
        m.fit(&x, &y).unwrap();
        // Without scaling the nearest neighbours would be dominated by
        // feature 1; with scaling the prediction tracks feature 0.
        let p = m.predict_row(&[1.0, 20000.0]);
        assert!(p > 5.0, "prediction {p} ignores the relevant feature");
    }

    #[test]
    fn k_larger_than_dataset_is_safe() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let y = [1.0, 3.0];
        let mut m = KNeighbors::new();
        m.k = 10;
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_row(&[0.5]), 2.0);
    }
}
