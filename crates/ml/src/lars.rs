//! Least-angle regression (Efron et al. 2004) — the "Least-angle" row of
//! Table 3.

use crate::dataset::{Standardizer, TargetScaler};
use crate::engine::{Regressor, TrainError};
use crate::linalg::{dot, solve_spd, Matrix};

/// LARS regressor (no lasso modification).
#[derive(Debug, Clone)]
pub struct LeastAngle {
    /// Maximum number of active features (scikit-learn default: 500,
    /// effectively all).
    pub max_features: usize,
    scaler: Option<Standardizer>,
    yscale: Option<TargetScaler>,
    weights: Vec<f64>,
}

impl LeastAngle {
    /// LARS that may activate every feature.
    pub fn new() -> Self {
        LeastAngle {
            max_features: usize::MAX,
            scaler: None,
            yscale: None,
            weights: Vec::new(),
        }
    }
}

impl Default for LeastAngle {
    fn default() -> Self {
        Self::new()
    }
}

impl Regressor for LeastAngle {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        let n = x.nrows();
        if n == 0 || n != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let ys = TargetScaler::fit(y);
        let yt: Vec<f64> = y.iter().map(|&v| ys.scale(v)).collect();
        let d = xs.ncols();
        let max_steps = self.max_features.min(d).min(n.saturating_sub(1)).max(1);

        let mut w = vec![0.0; d];
        let mut residual = yt.clone();
        let mut active: Vec<usize> = Vec::new();
        let mut signs: Vec<f64> = Vec::new();

        for _ in 0..max_steps {
            // correlations with the residual
            let corr = xs.t_matvec(&residual);
            // most correlated inactive feature
            let mut best: Option<(usize, f64)> = None;
            for (j, &c) in corr.iter().enumerate() {
                if active.contains(&j) {
                    continue;
                }
                if best.is_none_or(|(_, b)| c.abs() > b.abs()) {
                    best = Some((j, c));
                }
            }
            let Some((j_new, c_new)) = best else { break };
            let c_max = c_new.abs();
            if c_max < 1e-10 {
                break;
            }
            active.push(j_new);
            signs.push(c_new.signum());

            // equiangular direction: solve G_A w_A = s_A
            let k = active.len();
            let mut ga = Matrix::zeros(k, k);
            for (ai, &fa) in active.iter().enumerate() {
                for (bi, &fb) in active.iter().enumerate() {
                    let g = dot(&xs.col(fa), &xs.col(fb));
                    ga.set(ai, bi, g * signs[ai] * signs[bi]);
                }
            }
            let ones = vec![1.0; k];
            let Some(wa) = solve_spd(&ga, &ones) else {
                break; // collinear active set; stop the path
            };
            let norm = (dot(&wa, &ones)).max(1e-12).sqrt().recip();
            // direction in feature space: u = sum_a s_a * wa_a * A * x_a
            let dir_coeffs: Vec<f64> = wa.iter().map(|v| v * norm).collect();
            // equiangular predictor u (length n)
            let mut u = vec![0.0; n];
            for (ai, &fa) in active.iter().enumerate() {
                let col = xs.col(fa);
                for (ui, &xv) in u.iter_mut().zip(col.iter()) {
                    *ui += signs[ai] * dir_coeffs[ai] * xv;
                }
            }
            // a_j = x_j . u for all features
            let a_all = xs.t_matvec(&u);
            let a_a = dot(&xs.col(active[0]), &u) * signs[0]; // common value

            // step length: smallest positive gamma where an inactive
            // feature ties the active correlation
            let mut gamma = c_max / a_a.max(1e-12); // full step (OLS on active set)
            for (j, (&c, &a)) in corr.iter().zip(a_all.iter()).enumerate() {
                if active.contains(&j) {
                    continue;
                }
                for cand in [(c_max - c) / (a_a - a), (c_max + c) / (a_a + a)] {
                    if cand > 1e-12 && cand < gamma {
                        gamma = cand;
                    }
                }
            }
            // update coefficients and residual
            for (ai, &fa) in active.iter().enumerate() {
                w[fa] += gamma * signs[ai] * dir_coeffs[ai];
            }
            for (r, &uv) in residual.iter_mut().zip(u.iter()) {
                *r -= gamma * uv;
            }
        }

        self.weights = w;
        self.scaler = Some(scaler);
        self.yscale = Some(ys);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let (Some(s), Some(ys)) = (&self.scaler, &self.yscale) else {
            return 0.0;
        };
        ys.unscale(dot(&s.transform_row(row), &self.weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_function() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, ((i / 10) % 10) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 5.0 * r[1] - 3.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = LeastAngle::new();
        m.fit(&x, &y).unwrap();
        for (row, &t) in x.rows_iter().zip(y.iter()).take(15) {
            assert!(
                (m.predict_row(row) - t).abs() < 0.5,
                "pred {} vs {}",
                m.predict_row(row),
                t
            );
        }
    }

    #[test]
    fn max_features_limits_the_path() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 6) as f64, ((i / 6) % 10) as f64, ((i * 3) % 7) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 10.0 * r[1] + 0.1 * r[2]).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = LeastAngle::new();
        m.max_features = 1;
        m.fit(&x, &y).unwrap();
        // With one step the dominant feature is partially fit; prediction
        // correlates with y but is not exact.
        let preds: Vec<f64> = x.rows_iter().map(|r| m.predict_row(r)).collect();
        let f = crate::fidelity::fidelity(&preds, &y).unwrap();
        assert!(f > 0.7, "one-step LARS fidelity too low: {f}");
    }

    #[test]
    fn handles_constant_target() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 30];
        let x = Matrix::from_rows(&rows);
        let mut m = LeastAngle::new();
        m.fit(&x, &y).unwrap();
        assert!((m.predict_row(&[12.0]) - 5.0).abs() < 1e-6);
    }
}
